// E10 — adaptive-controller ablation: static GSFL vs the per-round
// cut/bandwidth controller on a heterogeneous straggler world.
//
// The world is deliberately lopsided: half the fleet sits near the AP with
// phone-class compute, the other half is far away with IoT-class compute,
// and contiguous grouping turns that into fast and slow groups sharing the
// band. The static baseline keeps the configured cut layer and equal
// per-group bandwidth shares for the whole run; the adaptive runs attach a
// schemes::AdaptiveController (greedy / paper / bandit), which re-picks the
// cut from each round's observed latency split and re-balances shares
// toward equal group radio time.
//
// Cut moves and share moves change *where* time is spent, never the model
// math: every run trains bitwise-identical weights, so the accuracy curve
// is shared and "wall-clock to target accuracy" reduces to the simulated
// seconds at the shared target round. The bench verifies that invariant and
// exits nonzero if the curves ever diverge.
//
// BENCH_adaptive.json conventions (BenchJson rows):
//   - "gsfl_straggler static": seconds = simulated time to the target
//     accuracy (or the full-run total if the round budget is too small to
//     get there), speedup = 1.0 (the baseline row).
//   - "gsfl_straggler adaptive-<policy>": same seconds metric, speedup =
//     static seconds / policy seconds.
//   - "gsfl_straggler adaptive-vs-static": the guarded row — speedup is
//     the greedy policy's ratio (floor in bench_floors.json).
//
//   $ ./ablation_adaptive [--rounds=N] [--full] [--csv=DIR] ...
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gsfl/schemes/adaptive.hpp"
#include "gsfl/schemes/trainer.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const auto options = bench::BenchOptions::parse(argc, argv,
                                                  /*default_rounds=*/40,
                                                  /*full_rounds=*/200);
  bench::print_header("E10: adaptive controller on a straggler world",
                      options.config);
  bench::BenchJson json;

  // The straggler fleet: reuse the experiment's data/model/seeds but
  // rebuild the radio population lopsided — near half phone-class, far
  // half weak IoT-class. Contiguous grouping then yields whole fast and
  // whole slow groups, the regime where a single static cut and equal
  // shares leave the most time on the table.
  const core::Experiment probe(options.config);
  std::vector<net::DeviceProfile> devices;
  for (std::size_t c = 0; c < options.config.num_clients; ++c) {
    auto profile = probe.network().client(c);
    const bool near = c < options.config.num_clients / 2;
    profile.distance_m = near ? 20.0 : 250.0;
    profile.tx_power_dbm = near ? 23.0 : 14.0;
    profile.compute_flops = near ? 4e9 : 1e9;
    devices.push_back(profile);
  }
  const net::WirelessNetwork network(options.config.network, devices);

  schemes::ExperimentOptions run;
  run.rounds = options.rounds;
  run.eval_every = 1;  // time-to-target needs the full accuracy curve

  const auto run_world =
      [&](const std::optional<schemes::AdaptivePolicy> policy) {
        core::GsflConfig gsfl_config;
        gsfl_config.num_groups = options.config.num_groups;
        gsfl_config.cut_layer = options.config.cut_layer;
        gsfl_config.grouping = core::GroupingPolicy::kContiguous;
        gsfl_config.train = options.config.train;
        core::GsflTrainer trainer(network, probe.client_data(),
                                  probe.initial_model(), gsfl_config);
        if (policy) {
          schemes::AdaptiveConfig adaptive_config;
          adaptive_config.policy = *policy;
          trainer.set_adaptive(
              std::make_shared<schemes::AdaptiveController>(adaptive_config));
        }
        auto recorder = schemes::run_experiment(trainer, probe.test_set(), run);
        return std::pair{std::move(recorder), trainer.cut_layer()};
      };

  const auto [static_run, static_cut] = run_world(std::nullopt);

  // Target: the static run's own best smoothed accuracy, backed off a
  // touch so short smoke runs (CI uses the default round budget) still
  // cross it with a few rounds to spare. All runs share one curve, so any
  // target below the shared ceiling compares the same convergence point.
  const double target = static_run.best_accuracy() * 0.95;
  const auto seconds_to_target = [&](const metrics::RunRecorder& recorder) {
    const auto seconds = recorder.seconds_to_accuracy(target, 2);
    return seconds ? *seconds : recorder.last().sim_seconds;
  };
  const double static_seconds = seconds_to_target(static_run);

  std::printf("target accuracy: %.1f%% (static best %.1f%%)\n\n",
              target * 100.0, static_run.best_accuracy() * 100.0);
  std::printf("%-10s %12s %16s %12s %10s\n", "policy", "final_acc%",
              "time_to_target_s", "total_sim_s", "speedup");
  std::printf("%-10s %12.1f %16.2f %12.2f %9.2fx\n", "static",
              static_run.final_accuracy() * 100.0, static_seconds,
              static_run.last().sim_seconds, 1.0);
  json.add("gsfl_straggler static", 1, static_seconds, 1.0);

  double greedy_speedup = 0.0;
  bool curves_match = true;
  const schemes::AdaptivePolicy policies[] = {schemes::AdaptivePolicy::kGreedy,
                                              schemes::AdaptivePolicy::kPaper,
                                              schemes::AdaptivePolicy::kBandit};
  for (const auto policy : policies) {
    const auto [recorder, final_cut] = run_world(policy);
    const double seconds = seconds_to_target(recorder);
    const double speedup = static_seconds / seconds;
    if (policy == schemes::AdaptivePolicy::kGreedy) greedy_speedup = speedup;

    // The invariant the timing comparison rests on: controller decisions
    // move latency, not weights, so every run's accuracy curve is the
    // static run's curve, round for round.
    for (std::size_t i = 0; i < recorder.records().size(); ++i) {
      if (recorder.records()[i].eval_accuracy !=
          static_run.records()[i].eval_accuracy) {
        curves_match = false;
      }
    }

    const std::string name = schemes::to_string(policy);
    std::printf("%-10s %12.1f %16.2f %12.2f %9.2fx  (final cut %zu)\n",
                name.c_str(), recorder.final_accuracy() * 100.0, seconds,
                recorder.last().sim_seconds, speedup, final_cut);
    json.add("gsfl_straggler adaptive-" + name, 1, seconds, speedup);
    bench::maybe_write_csv(options.csv_dir, "ablation_adaptive_" + name + ".csv",
                           recorder);
  }
  bench::maybe_write_csv(options.csv_dir, "ablation_adaptive_static.csv",
                         static_run);

  // Guarded summary row (floor in bench_floors.json): greedy is the
  // deterministic workhorse policy, so it carries the gate.
  json.add("gsfl_straggler adaptive-vs-static", 1, static_seconds,
           greedy_speedup);
  std::printf("\nadaptive (greedy) vs static wall-clock to %.1f%%: %.2fx\n",
              target * 100.0, greedy_speedup);
  std::cout << "notes:\n"
               "  - static keeps cut layer "
            << static_cut
            << " and equal shares; adaptive re-picks both per round\n"
               "  - all runs train bitwise-identical weights (cut and share "
               "moves change latency only)\n";
  if (!curves_match) {
    std::cerr << "FAIL: adaptive accuracy curve diverged from static — "
                 "controller decisions must not touch the model math\n";
    return 1;
  }

  json.write("BENCH_adaptive.json");
  return 0;
}
