// E9 — bandwidth-allocation ablation (the paper's §IV future work:
// "rationally allocating communication bandwidth and computing resource is
// crucial for enhancing system performance").
//
// Compares GSFL under equal per-group bandwidth shares (the paper's
// implicit choice) against the adaptive re-balancing policy that equalizes
// group radio time, on a deliberately lopsided network (half the fleet far
// from the AP). Weights are identical under both policies (verified by the
// test suite); only the latency differs.
#include <cstdio>

#include "bench_util.hpp"
#include "gsfl/schemes/trainer.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const auto options = bench::BenchOptions::parse(argc, argv,
                                                  /*default_rounds=*/10,
                                                  /*full_rounds=*/50);
  auto config = options.config;
  // Lopsided fleet: clients 0..N/2 near the AP, the rest far away.
  config.min_distance_m = 15.0;
  config.max_distance_m = 15.0;
  bench::print_header("E9: bandwidth allocation (future-work §IV)", config);

  // Build an explicitly lopsided network on top of the experiment's world.
  const core::Experiment probe(config);
  std::vector<net::DeviceProfile> devices;
  for (std::size_t c = 0; c < config.num_clients; ++c) {
    auto profile = probe.network().client(c);
    profile.distance_m = c < config.num_clients / 2 ? 20.0 : 200.0;
    devices.push_back(profile);
  }
  const net::WirelessNetwork network(config.network, devices);

  const auto run_policy = [&](core::BandwidthPolicy policy) {
    core::GsflConfig gsfl_config;
    gsfl_config.num_groups = config.num_groups;
    gsfl_config.cut_layer = config.cut_layer;
    gsfl_config.grouping = core::GroupingPolicy::kContiguous;  // near|far
    gsfl_config.bandwidth = policy;
    gsfl_config.train = config.train;
    core::GsflTrainer trainer(network, probe.client_data(),
                              probe.initial_model(), gsfl_config);
    std::vector<double> per_round;
    for (std::size_t r = 0; r < options.rounds; ++r) {
      per_round.push_back(trainer.run_round().latency.total());
    }
    return per_round;
  };

  const auto equal = run_policy(core::BandwidthPolicy::kEqualShare);
  const auto adaptive = run_policy(core::BandwidthPolicy::kAdaptive);

  std::printf("%-7s %16s %16s %12s\n", "round", "equal_share_s",
              "adaptive_s", "saving");
  double equal_total = 0.0;
  double adaptive_total = 0.0;
  for (std::size_t r = 0; r < equal.size(); ++r) {
    equal_total += equal[r];
    adaptive_total += adaptive[r];
    std::printf("%-7zu %16.4f %16.4f %11.1f%%\n", r + 1, equal[r],
                adaptive[r], (1.0 - adaptive[r] / equal[r]) * 100.0);
  }
  std::printf("%-7s %16.4f %16.4f %11.1f%%\n", "total", equal_total,
              adaptive_total, (1.0 - adaptive_total / equal_total) * 100.0);

  std::cout << "\nnotes:\n"
               "  - round 1 is identical (adaptive starts from equal shares "
               "and learns from observed chains)\n"
               "  - the adaptive policy moves spectrum toward far-away "
               "groups until group radio times equalize;\n"
               "    model weights are identical under both policies — only "
               "wall-clock changes\n";
  return 0;
}
