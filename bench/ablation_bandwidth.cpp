// E7 — bandwidth sweep ("resource-limited wireless networks", paper §I).
//
// Sweeps the shared band from starved to abundant and reports one round's
// latency for FL, SL, and GSFL. FL's full-model uploads hurt most on narrow
// bands; as bandwidth grows, compute dominates and the split schemes'
// parallelism decides the ordering.
#include <cstdio>

#include "bench_util.hpp"
#include "gsfl/common/csv.hpp"
#include "gsfl/schemes/trainer.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  auto options = bench::BenchOptions::parse(argc, argv,
                                            /*default_rounds=*/1,
                                            /*full_rounds=*/1);
  bench::print_header("E7: bandwidth ablation (resource-limited premise)",
                      options.config);

  std::printf("%-10s %14s %14s %14s %20s\n", "band_MHz", "FL_round_s",
              "SL_round_s", "GSFL_round_s", "GSFL_vs_SL_reduction");

  std::optional<common::CsvFile> csv;
  if (options.csv_dir) {
    std::filesystem::create_directories(*options.csv_dir);
    csv.emplace(*options.csv_dir + "/ablation_bandwidth.csv",
                std::vector<std::string>{"bandwidth_mhz", "fl_round_s",
                                         "sl_round_s", "gsfl_round_s"});
  }

  for (const double mhz : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    auto config = options.config;
    config.network.total_bandwidth_hz = mhz * 1e6;
    const core::Experiment experiment(config);

    auto fl = experiment.make_fl();
    auto sl = experiment.make_sl();
    auto gsfl_trainer = experiment.make_gsfl();
    const double fl_round = fl->run_round().latency.total();
    const double sl_round = sl->run_round().latency.total();
    const double gsfl_round = gsfl_trainer->run_round().latency.total();

    std::printf("%-10.0f %14.4f %14.4f %14.4f %19.1f%%\n", mhz, fl_round,
                sl_round, gsfl_round, (1.0 - gsfl_round / sl_round) * 100.0);
    if (csv) csv->row({mhz, fl_round, sl_round, gsfl_round});
  }

  std::cout
      << "\nnotes:\n"
         "  - per-round numbers only; FL needs several times more rounds "
         "(E1), so its time-to-accuracy\n"
         "    is worse than this table alone suggests\n"
         "  - GSFL's per-round edge over SL grows with bandwidth: once "
         "transfers are cheap, the M-way\n"
         "    parallel client compute dominates the critical path\n";
  return 0;
}
