// E4 — cut-layer ablation (the paper's §IV future work).
//
// The cut layer trades client compute against smashed-data traffic and
// client-model size. Model *accuracy* is provably cut-invariant in this
// library (see integration/equivalence_test.cpp), so the interesting output
// is the latency/payload/storage landscape per cut.
#include <cstdio>

#include "bench_util.hpp"
#include "gsfl/common/csv.hpp"
#include "gsfl/nn/split.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const auto options = bench::BenchOptions::parse(argc, argv,
                                                  /*default_rounds=*/1,
                                                  /*full_rounds=*/1);
  bench::print_header("E4: cut-layer ablation (future-work §IV)",
                      options.config);

  const core::Experiment experiment(options.config);
  auto probe_model = experiment.initial_model();
  const std::size_t depth = probe_model.size();
  const auto batch_shape =
      experiment.test_set().batch_shape(options.config.train.batch_size);

  std::printf(
      "%-4s %-28s %14s %16s %16s %18s %14s\n", "cut", "boundary_layer",
      "client_kB", "smashed_kB/batch", "client_MFLOP/b", "round_latency_s",
      "uplink_s");

  std::optional<common::CsvFile> csv;
  if (options.csv_dir) {
    std::filesystem::create_directories(*options.csv_dir);
    csv.emplace(*options.csv_dir + "/ablation_cutlayer.csv",
                std::vector<std::string>{"cut", "client_bytes",
                                         "smashed_bytes", "client_flops",
                                         "round_latency_s", "uplink_s"});
  }

  for (std::size_t cut = 1; cut < depth; ++cut) {
    nn::SplitModel split(probe_model, cut);
    if (split.server().parameters().empty()) continue;  // needs a trainable server
    const auto client_bytes = split.client_state_bytes();
    const auto smashed = split.smashed_bytes(batch_shape);
    const auto client_flops = split.client_flops(batch_shape);

    auto trainer = experiment.make_gsfl(options.config.num_groups, cut);
    const auto latency = trainer->run_round().latency;

    std::printf("%-4zu %-28s %14.2f %16.2f %16.3f %18.4f %14.4f\n", cut,
                probe_model.layer(cut - 1).name().c_str(),
                static_cast<double>(client_bytes) / 1024.0,
                static_cast<double>(smashed) / 1024.0,
                static_cast<double>(client_flops.forward +
                                    client_flops.backward) /
                    1e6,
                latency.total(), latency.uplink);
    if (csv) {
      csv->row({static_cast<std::int64_t>(cut),
                static_cast<std::int64_t>(client_bytes),
                static_cast<std::int64_t>(smashed),
                static_cast<std::int64_t>(client_flops.forward +
                                          client_flops.backward),
                latency.total(), latency.uplink});
    }
  }

  std::cout << "\nnotes:\n"
               "  - accuracy is cut-invariant (same SGD steps regardless of "
               "cut); verified by the equivalence test suite\n"
               "  - early cuts minimise client compute and client-model "
               "relays but ship large activations;\n"
               "    late cuts do the opposite — the latency column shows the "
               "sweet spot for this network profile\n";
  return 0;
}
