// E5 — group-count ablation (the paper's §IV future work).
//
// M = 1 degenerates to vanilla SL (fully sequential, one server model);
// M = N degenerates to SplitFed (fully parallel, N server models). The sweep
// shows the latency/convergence/storage trade-off in between, which is the
// design space the GSFL paper opens.
#include <cstdio>

#include "bench_util.hpp"
#include "gsfl/common/csv.hpp"
#include "gsfl/schemes/trainer.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const auto options = bench::BenchOptions::parse(argc, argv,
                                                  /*default_rounds=*/40,
                                                  /*full_rounds=*/300);
  bench::print_header("E5: group-count ablation (future-work §IV)",
                      options.config);

  const core::Experiment experiment(options.config);
  const std::size_t n = options.config.num_clients;
  std::vector<std::size_t> group_counts;
  for (const std::size_t m : {1ul, 2ul, 3ul, 5ul, 6ul, 10ul, 15ul, n}) {
    if (m <= n && (group_counts.empty() || group_counts.back() != m)) {
      group_counts.push_back(m);
    }
  }

  std::printf("%-4s %18s %16s %16s %14s %16s\n", "M", "round_latency_s",
              "rounds_to_90%", "seconds_to_90%", "server_kB",
              "final_acc%");

  std::optional<common::CsvFile> csv;
  if (options.csv_dir) {
    std::filesystem::create_directories(*options.csv_dir);
    csv.emplace(*options.csv_dir + "/ablation_groups.csv",
                std::vector<std::string>{"groups", "round_latency_s",
                                         "rounds_to_90", "seconds_to_90",
                                         "server_bytes", "final_acc"});
  }

  schemes::ExperimentOptions run;
  run.rounds = options.rounds;
  run.eval_every = 2;

  for (const std::size_t m : group_counts) {
    auto trainer = experiment.make_gsfl(m, options.config.cut_layer);
    const std::size_t storage = trainer->server_storage_bytes();
    const auto recorder =
        schemes::run_experiment(*trainer, experiment.test_set(), run);
    const double round_latency = recorder.records().front().sim_seconds;
    const auto rounds90 = recorder.rounds_to_accuracy(0.90, 2);
    const auto seconds90 = recorder.seconds_to_accuracy(0.90, 2);

    std::printf("%-4zu %18.4f %16s %16s %14.1f %16.1f\n", m, round_latency,
                rounds90 ? std::to_string(*rounds90).c_str() : "—",
                seconds90 ? bench::format_seconds(seconds90).c_str() : "—",
                static_cast<double>(storage) / 1024.0,
                recorder.final_accuracy() * 100.0);
    if (csv) {
      csv->row({static_cast<std::int64_t>(m), round_latency,
                static_cast<std::int64_t>(
                    rounds90 ? static_cast<std::int64_t>(*rounds90) : -1),
                seconds90 ? *seconds90 : -1.0,
                static_cast<std::int64_t>(storage),
                recorder.final_accuracy()});
    }
  }

  std::cout
      << "\nnotes:\n"
         "  - per-round latency falls with M (shorter sequential chains) "
         "while rounds-to-target rises\n"
         "    (averaging more, smaller replicas); seconds-to-target is the "
         "product — the paper's M=6 sits near the sweet spot\n"
         "  - server storage grows linearly in M: the GSFL-vs-SplitFed "
         "resource argument (see E6)\n";
  return 0;
}
