// E8 — cut-layer quantization ablation: accuracy vs bits, payload vs bits.
//
// Sweeps the channel quantizer's bit width on the SFL scheme (the split
// schemes are the ones whose smashed activations/gradients cross the radio)
// and reports, per width: final held-out accuracy, per-batch smashed
// payload bytes, compression vs raw f32, and simulated round latency. The
// f32 row (bits=0, quantizer off) is the baseline.
//
// BENCH_quant.json conventions (BenchJson rows — the schema only has
// seconds/speedup slots, so this bench documents its encoding):
//   - "quant accuracy-vs-bits b<N>": seconds = simulated seconds to finish
//     the run, speedup = final accuracy as a fraction (the accuracy curve).
//   - "quant payload-vs-bits b<N>": seconds = smashed payload bytes per
//     batch (a count, not a time), speedup = f32 payload / quantized
//     payload (the compression curve).
//   - "quant 8bit accuracy-vs-f32": speedup = 1 + (acc@8bit − acc@f32) —
//     the guarded row; floor 0.995 means 8-bit must land within 0.5 pp of
//     f32 on the synthetic-GTSRB scenario.
//   - "quant payload 8bit-vs-f32": speedup = f32 payload / 8-bit payload —
//     guarded; the codec's header overhead must keep this near 4×.
//
//   $ ./ablation_quantization [--rounds=N] [--full] [--csv=DIR] ...
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "gsfl/common/csv.hpp"
#include "gsfl/nn/split.hpp"
#include "gsfl/schemes/trainer.hpp"
#include "gsfl/tensor/quantize.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  auto options = bench::BenchOptions::parse(argc, argv,
                                            /*default_rounds=*/40,
                                            /*full_rounds=*/400);
  bench::print_header("E8: cut-layer quantization ablation", options.config);
  bench::BenchJson json;

  // Payload accounting straight from the model geometry: what one batch's
  // smashed tensor costs on the wire at each width.
  const core::Experiment probe(options.config);
  const nn::SplitModel split(probe.initial_model(),
                             options.config.cut_layer);
  const auto batch_shape =
      probe.test_set().batch_shape(options.config.train.batch_size);
  const auto f32_bytes =
      static_cast<double>(split.smashed_bytes(batch_shape));

  std::optional<common::CsvFile> csv;
  if (options.csv_dir) {
    std::filesystem::create_directories(*options.csv_dir);
    csv.emplace(*options.csv_dir + "/ablation_quantization.csv",
                std::vector<std::string>{"bits", "accuracy", "payload_bytes",
                                         "compression", "sim_seconds"});
  }

  std::printf("%-6s %12s %16s %12s %14s\n", "bits", "accuracy%",
              "payload_B/batch", "compression", "sim_seconds");

  // bits = 0 is the f32 baseline (quantizer off); the rest sweep the
  // supported widths down to the aggressive 2-bit setting.
  const std::size_t widths[] = {0, 8, 6, 4, 2};
  double f32_accuracy = 0.0;
  double accuracy_8bit = 0.0;
  double bytes_8bit = 0.0;
  for (const std::size_t bits : widths) {
    // Per-channel scales: one scale per sample row instead of one per
    // tensor, a few extra wire floats for noticeably better low-bit
    // fidelity — this is the configuration the guarded 8-bit accuracy
    // floor is measured against.
    auto config = options.config;
    config.network.channel.quantizer =
        tensor::QuantizerConfig{.bits = bits, .per_channel = true};
    const core::Experiment experiment(config);

    schemes::ExperimentOptions run;
    run.rounds = options.rounds;
    run.eval_every = std::max<std::size_t>(1, options.rounds / 10);
    auto trainer = experiment.make_sfl();
    const auto recorder =
        schemes::run_experiment(*trainer, experiment.test_set(), run);

    const double accuracy = recorder.final_accuracy();
    const double payload_bytes =
        bits == 0 ? f32_bytes
                  : static_cast<double>(tensor::quantized_wire_bytes(
                        split.smashed_shape(batch_shape),
                        config.network.channel.quantizer));
    const double compression = f32_bytes / payload_bytes;
    const double sim_seconds = recorder.records().empty()
                                   ? 0.0
                                   : recorder.records().back().sim_seconds;
    if (bits == 0) f32_accuracy = accuracy;
    if (bits == 8) {
      accuracy_8bit = accuracy;
      bytes_8bit = payload_bytes;
    }

    const std::string label = bits == 0 ? "f32" : "b" + std::to_string(bits);
    json.add("quant accuracy-vs-bits " + label, 1, sim_seconds, accuracy);
    json.add("quant payload-vs-bits " + label, 1, payload_bytes,
             compression);
    std::printf("%-6s %12.1f %16.0f %11.1fx %14.2f\n", label.c_str(),
                accuracy * 100.0, payload_bytes, compression, sim_seconds);
    if (csv) {
      csv->row({static_cast<std::int64_t>(bits), accuracy, payload_bytes,
                compression, sim_seconds});
    }
  }

  // Guarded summary rows (floors in bench_floors.json).
  json.add("quant 8bit accuracy-vs-f32", 1, 0.0,
           1.0 + (accuracy_8bit - f32_accuracy));
  json.add("quant payload 8bit-vs-f32", 1, bytes_8bit,
           f32_bytes / bytes_8bit);
  std::printf(
      "\n8-bit vs f32: accuracy %+.2f pp, payload %.1fx smaller\n",
      (accuracy_8bit - f32_accuracy) * 100.0, f32_bytes / bytes_8bit);

  json.write("BENCH_quant.json");
  return 0;
}
