// FedAvg aggregation bench: the parallel state-entry reduction.
//
// Times schemes::fedavg_states over paper-scale model states (the GTSRB CNN
// replicated per client) and a deep synthetic state, across thread counts.
// The per-entry fold is serial within a lane, so the speedup column tracks
// how well entry-level parallelism covers the aggregation bill the latency
// model prices with aggregation_flops. Emits BENCH_aggregate.json.
//
// JSON conventions (BenchJson rows): threads=1 rows are the serial
// baseline (speedup=1); threads=N rows report serial/parallel.
//
//   $ ./bench_aggregate [--reps=R] [--max-threads=N] [--clients=K]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gsfl/common/cli.hpp"
#include "gsfl/common/rng.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/schemes/aggregate.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::StateDict;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
using Clock = std::chrono::steady_clock;

template <typename Fn>
double time_best(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

std::size_t state_scalars(const StateDict& s) {
  std::size_t n = 0;
  for (const auto& t : s) n += t.numel();
  return n;
}

void run_case(const std::string& name, const std::vector<StateDict>& states,
              std::size_t reps, std::size_t max_threads,
              gsfl::bench::BenchJson& json) {
  std::vector<double> weights(states.size());
  for (std::size_t k = 0; k < weights.size(); ++k) {
    weights[k] = static_cast<double>(k % 5 + 1);
  }
  const std::size_t scalars = state_scalars(states.front());
  const double flops =
      gsfl::schemes::aggregation_flops(scalars, states.size());
  std::printf("%s: %zu clients x %zu entries x %zu scalars (%.1f MFLOP)\n",
              name.c_str(), states.size(), states.front().size(), scalars,
              flops / 1e6);

  double serial_s = 0.0;
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    gsfl::common::set_global_threads(threads);
    const double s = time_best(
        reps, [&] { (void)gsfl::schemes::fedavg_states(states, weights); });
    if (threads == 1) serial_s = s;
    json.add("aggregate " + name, threads, s, serial_s / s);
    std::printf("  t=%zu  %8.3f ms  %6.2f GFLOP/s  %5.2fx\n", threads,
                s * 1e3, flops / s / 1e9, serial_s / s);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const gsfl::common::CliArgs args(argc, argv, {});
  const auto reps = static_cast<std::size_t>(args.int_or("reps", 5));
  const auto max_threads =
      static_cast<std::size_t>(args.int_or("max-threads", 8));
  const auto clients = static_cast<std::size_t>(args.int_or("clients", 32));
  gsfl::bench::BenchJson json;

  std::printf("=== FedAvg aggregation bench ===\n\n");

  // The paper's GTSRB CNN, one replica per client — the exact state shape
  // every GSFL round folds in step 3.
  {
    Rng rng(11);
    gsfl::nn::CnnConfig config;
    auto model = gsfl::nn::make_gtsrb_cnn(config, rng);
    std::vector<StateDict> states;
    states.reserve(clients);
    for (std::size_t k = 0; k < clients; ++k) {
      Rng crng(100 + k);
      auto replica = gsfl::nn::make_gtsrb_cnn(config, crng);
      states.push_back(replica.state());
    }
    run_case("gtsrb-cnn K=" + std::to_string(clients), states, reps,
             max_threads, json);
  }

  // A deep synthetic state (many small entries) stresses the entry-level
  // chunking rather than per-entry bandwidth.
  {
    std::vector<StateDict> states;
    states.reserve(16);
    for (std::size_t k = 0; k < 16; ++k) {
      Rng rng(200 + k);
      StateDict s;
      for (std::size_t e = 0; e < 96; ++e) {
        s.push_back(Tensor::uniform(Shape{1024}, rng, -1.0f, 1.0f));
      }
      states.push_back(std::move(s));
    }
    run_case("deep-state K=16", states, reps, max_threads, json);
  }

  json.write("BENCH_aggregate.json");
  return 0;
}
