// Microkernel GEMM bench: the perf trajectory of the compute substrate.
//
// Times the k-blocked gemm_raw against two frozen baselines embedded below:
// the PR-1 saxpy row-sweep kernel and the PR-2 register-blocked unblocked
// sweep (verbatim pack + kernels as PR-2 shipped them, including its
// allocator-aligned scratch), on the paper model's headline layer shapes;
// batched conv2d against the per-sample im2col+GEMM pipeline it replaced;
// and the fused bias+relu epilogue against the unfused GEMM → bias pass →
// relu pass sequence. Prints GFLOP/s tables and emits BENCH_gemm.json.
//
// JSON conventions (BenchJson rows):
//   - "... saxpy" rows: the PR-1 baseline, threads=1, speedup=1.
//   - "... pr2" rows: the frozen PR-2 kernel, threads=1, speedup vs saxpy.
//   - "... micro" rows: speedup = saxpy seconds / micro seconds at that
//     thread count — so the threads=1 micro rows are the pure
//     single-thread kernel-vs-kernel ratio.
//   - "... kblock-vs-pr2" rows: speedup = pr2 seconds / micro seconds at
//     threads=1 — the PR-3 acceptance ratio.
//   - "... interleaved-vs-pr3" rows: speedup = up-front-packed (PR-3
//     schedule, forced via PackStrategy::kUpfront) seconds / interleaved
//     per-k-block-packed seconds, threads=1 — the PR-4 acceptance ratio on
//     the deep-k dense1 shape.
//   - "... int8-vs-f32" rows: speedup = f32 epilogue-GEMM seconds / int8
//     quantize-on-pack (GemmPrecision::kInt8) seconds, threads=1 — the
//     quantized-path acceptance ratio (floor on dense1).
//   - "... fused-bias-relu" rows: speedup = unfused-sequence seconds /
//     fused-epilogue seconds, threads=1.
//   - "bwd ... bwd-fused-vs-unfused" rows: speedup = (relu_mask pass +
//     unfused backward) seconds / mask-in-pack fused backward seconds,
//     threads=1.
//   - "conv ... per-sample" / "conv ... batched" rows: speedup = per-sample
//     seconds / batched seconds.
//
//   $ ./bench_gemm_microkernel [--reps=R] [--max-threads=N]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gsfl/common/cli.hpp"
#include "gsfl/common/rng.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/tensor/gemm.hpp"
#include "gsfl/tensor/im2col.hpp"
#include "gsfl/tensor/microkernel.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
using Clock = std::chrono::steady_clock;

/// Best-of-`reps` wall-clock seconds for fn().
template <typename Fn>
double time_best(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

// ---- frozen PR-1 baseline ---------------------------------------------------
// Verbatim port of the pre-microkernel gemm_raw hot path (panel-packed B +
// branch-free saxpy row sweep), serial form: the kernel the acceptance
// criterion measures against. Do not "improve" this — it is the yardstick.
constexpr std::size_t kBlockK = 128;
constexpr std::size_t kBlockN = 256;

void saxpy_row(float a_ik, const float* b_row, float* c_row, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
}

void saxpy_gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
                const float* b, float* c, std::vector<float>& pack) {
  pack.resize(k * n);
  std::size_t offset = 0;
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = std::min(k0 + kBlockK, k);
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::size_t j1 = std::min(j0 + kBlockN, n);
      const std::size_t jn = j1 - j0;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const float* b_row = b + kk * n + j0;
        std::copy(b_row, b_row + jn, pack.data() + offset + (kk - k0) * jn);
      }
      offset += (k1 - k0) * jn;
    }
  }
  std::fill(c, c + m * n, 0.0f);
  offset = 0;
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = std::min(k0 + kBlockK, k);
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::size_t j1 = std::min(j0 + kBlockN, n);
      const std::size_t jn = j1 - j0;
      const float* panel = pack.data() + offset;
      offset += (k1 - k0) * jn;
      for (std::size_t i = 0; i < m; ++i) {
        float* c_row = c + i * n + j0;
        const float* a_row = a + i * k;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          saxpy_row(a_row[kk], panel + (kk - k0) * jn, c_row, jn);
        }
      }
    }
  }
}
// ---------------------------------------------------------------------------

// ---- frozen PR-2 baseline ---------------------------------------------------
// Verbatim port of the PR-2 gemm hot path: per-strip packing and the
// always-kMR unblocked macrokernel sweep, serial form, on plain vector
// scratch (PR-2's Workspace had no cache-line alignment guarantee). This is
// the yardstick the k-blocked kernel's acceptance ratio measures against.
// Do not "improve" it.
namespace pr2 {

namespace micro = gsfl::tensor::micro;
using micro::kMR;
using micro::kNR;

void pack_a(const float* a, std::size_t lda, std::size_t rows, std::size_t k,
            float* pa) {
  for (std::size_t s = 0; s < rows; s += kMR) {
    const std::size_t mr = std::min(kMR, rows - s);
    for (std::size_t p = 0; p < k; ++p) {
      std::size_t i = 0;
      for (; i < mr; ++i) pa[p * kMR + i] = a[(s + i) * lda + p];
      for (; i < kMR; ++i) pa[p * kMR + i] = 0.0f;
    }
    pa += kMR * k;
  }
}

void pack_b(const float* b, std::size_t ldb, std::size_t k, std::size_t cols,
            float* pb) {
  for (std::size_t s = 0; s < cols; s += kNR) {
    const std::size_t nr = std::min(kNR, cols - s);
    for (std::size_t p = 0; p < k; ++p) {
      const float* src = b + p * ldb + s;
      std::size_t j = 0;
      for (; j < nr; ++j) pb[p * kNR + j] = src[j];
      for (; j < kNR; ++j) pb[p * kNR + j] = 0.0f;
    }
    pb += kNR * k;
  }
}

void accumulate(std::size_t kc, const float* pa, const float* pb,
                float acc[kMR][kNR]) {
  for (std::size_t p = 0; p < kc; ++p, pa += kMR, pb += kNR) {
    for (std::size_t i = 0; i < kMR; ++i) {
      const float a = pa[i];
      for (std::size_t j = 0; j < kNR; ++j) acc[i][j] += a * pb[j];
    }
  }
}

void kernel_full(std::size_t kc, float alpha, const float* pa,
                 const float* pb, float beta, float* c, std::size_t ldc) {
  float acc[kMR][kNR] = {};
  accumulate(kc, pa, pb, acc);
  if (beta == 0.0f) {
    for (std::size_t i = 0; i < kMR; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) c[i * ldc + j] = alpha * acc[i][j];
    }
  } else {
    for (std::size_t i = 0; i < kMR; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) {
        c[i * ldc + j] = alpha * acc[i][j] + beta * c[i * ldc + j];
      }
    }
  }
}

void kernel_edge(std::size_t kc, float alpha, const float* pa,
                 const float* pb, float beta, float* c, std::size_t ldc,
                 std::size_t mr, std::size_t nr) {
  float acc[kMR][kNR] = {};
  accumulate(kc, pa, pb, acc);
  if (beta == 0.0f) {
    for (std::size_t i = 0; i < mr; ++i) {
      for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] = alpha * acc[i][j];
    }
  } else {
    for (std::size_t i = 0; i < mr; ++i) {
      for (std::size_t j = 0; j < nr; ++j) {
        c[i * ldc + j] = alpha * acc[i][j] + beta * c[i * ldc + j];
      }
    }
  }
}

void macrokernel(std::size_t rows, std::size_t cols, std::size_t k,
                 float alpha, const float* pa, const float* pb, float beta,
                 float* c, std::size_t ldc) {
  for (std::size_t jr = 0; jr < cols; jr += kNR) {
    const std::size_t nr = std::min(kNR, cols - jr);
    const float* b_strip = pb + jr * k;
    for (std::size_t ir = 0; ir < rows; ir += kMR) {
      const std::size_t mr = std::min(kMR, rows - ir);
      const float* a_strip = pa + ir * k;
      float* ct = c + ir * ldc + jr;
      if (mr == kMR && nr == kNR) {
        kernel_full(k, alpha, a_strip, b_strip, beta, ct, ldc);
      } else {
        kernel_edge(k, alpha, a_strip, b_strip, beta, ct, ldc, mr, nr);
      }
    }
  }
}

/// Scratch with PR-2's panel alignment. The PR-2 Workspace stored panels in
/// std::vector<float>: large allocations come from mmap'd chunks with a
/// 16-byte malloc header, so its packed panels sat at 16 mod 64 — every
/// full-width kernel load split a cache line. The frozen baseline must
/// reproduce that layout, not inherit whatever this binary's allocator
/// happens to return.
struct Pr2Scratch {
  std::vector<float> storage;
  float* data = nullptr;

  void grow(std::size_t floats) {
    storage.resize(floats + 32);  // 128 B headroom for the offset below
    auto addr = reinterpret_cast<std::uintptr_t>(storage.data());
    const std::uintptr_t aligned = (addr + 63) / 64 * 64;
    data = reinterpret_cast<float*>(aligned + 16);
  }
};

/// The full PR-2 serial gemm: pack both operands, one unblocked sweep.
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c, Pr2Scratch& pa, Pr2Scratch& pb) {
  pa.grow(micro::packed_a_floats(m, k));
  pb.grow(micro::packed_b_floats(k, n));
  pack_a(a, k, m, k, pa.data);
  pack_b(b, n, k, n, pb.data);
  macrokernel(m, n, k, 1.0f, pa.data, pb.data, 0.0f, c, n);
}

}  // namespace pr2
// ---------------------------------------------------------------------------

struct GemmShape {
  const char* name;  ///< which paper layer this is
  std::size_t m, k, n;
};

double gflops(std::size_t m, std::size_t k, std::size_t n, double seconds) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n) / seconds / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const gsfl::common::CliArgs args(argc, argv, {});
  const auto reps = static_cast<std::size_t>(args.int_or("reps", 5));
  const auto max_threads =
      static_cast<std::size_t>(args.int_or("max-threads", 8));
  gsfl::bench::BenchJson json;

  std::printf("=== GEMM microkernel bench ===\n");
  std::printf("register block: %zux%zu (simd width %zu), reps %zu\n\n",
              gsfl::tensor::micro::kMR, gsfl::tensor::micro::kNR,
              gsfl::tensor::micro::kSimdWidth, reps);

  // The paper CNN's conv GEMMs as batched shapes (batch 16, 32×32 GTSRB
  // input: conv1 16@3·3·3 over 1024 positions, conv2 32@16·3·3 over 256
  // positions) plus the first dense layer — the shapes every training round
  // spends its FLOPs on.
  const GemmShape shapes[] = {
      {"conv1", 16, 27, 16 * 1024},
      {"conv2", 32, 144, 16 * 256},
      {"dense1", 16, 2048, 128},
  };

  for (const auto& shape : shapes) {
    Rng rng(7);
    const auto a = Tensor::uniform(Shape{shape.m, shape.k}, rng, -1, 1);
    const auto b = Tensor::uniform(Shape{shape.k, shape.n}, rng, -1, 1);
    Tensor c(Shape{shape.m, shape.n});
    const std::string tag = std::string(shape.name) + " " +
                            std::to_string(shape.m) + "x" +
                            std::to_string(shape.k) + "x" +
                            std::to_string(shape.n);

    std::vector<float> pack;
    const double saxpy_s = time_best(reps, [&] {
      saxpy_gemm(shape.m, shape.k, shape.n, a.data().data(), b.data().data(),
                 c.data().data(), pack);
    });
    json.add("gemm " + tag + " saxpy", 1, saxpy_s, 1.0);
    std::printf("%-24s saxpy   t=1  %8.3f ms  %6.2f GFLOP/s\n", tag.c_str(),
                saxpy_s * 1e3, gflops(shape.m, shape.k, shape.n, saxpy_s));

    pr2::Pr2Scratch pr2_pa;
    pr2::Pr2Scratch pr2_pb;
    const double pr2_s = time_best(reps, [&] {
      pr2::gemm(shape.m, shape.k, shape.n, a.data().data(), b.data().data(),
                c.data().data(), pr2_pa, pr2_pb);
    });
    json.add("gemm " + tag + " pr2", 1, pr2_s, saxpy_s / pr2_s);
    std::printf("%-24s pr2     t=1  %8.3f ms  %6.2f GFLOP/s  %5.2fx\n",
                tag.c_str(), pr2_s * 1e3,
                gflops(shape.m, shape.k, shape.n, pr2_s), saxpy_s / pr2_s);

    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      gsfl::common::set_global_threads(threads);
      const double micro_s = time_best(reps, [&] {
        gsfl::tensor::gemm_raw(shape.m, shape.k, shape.n, 1.0f,
                               a.data().data(), b.data().data(), 0.0f,
                               c.data().data());
      });
      json.add("gemm " + tag + " micro", threads, micro_s,
               saxpy_s / micro_s);
      std::printf("%-24s micro   t=%zu  %8.3f ms  %6.2f GFLOP/s  %5.2fx\n",
                  tag.c_str(), threads, micro_s * 1e3,
                  gflops(shape.m, shape.k, shape.n, micro_s),
                  saxpy_s / micro_s);
    }
    // The PR-3 acceptance ratio: k-blocked/aligned/sweep-packed path vs the
    // frozen PR-2 kernel, both single-thread. Measured interleaved (one
    // rep of each per iteration, best of each) so slow drift on a shared
    // host biases neither side.
    gsfl::common::set_global_threads(1);
    double pr2_best = 1e300;
    double micro_best = 1e300;
    for (std::size_t r = 0; r < 2 * reps; ++r) {
      const double p = time_best(1, [&] {
        pr2::gemm(shape.m, shape.k, shape.n, a.data().data(),
                  b.data().data(), c.data().data(), pr2_pa, pr2_pb);
      });
      pr2_best = std::min(pr2_best, p);
      const double q = time_best(1, [&] {
        gsfl::tensor::gemm_raw(shape.m, shape.k, shape.n, 1.0f,
                               a.data().data(), b.data().data(), 0.0f,
                               c.data().data());
      });
      micro_best = std::min(micro_best, q);
    }
    json.add("gemm " + tag + " kblock-vs-pr2", 1, micro_best,
             pr2_best / micro_best);
    std::printf("%-24s kblock-vs-pr2      %8.3f ms  %5.2fx\n", tag.c_str(),
                micro_best * 1e3, pr2_best / micro_best);

    // The PR-4 acceptance ratio: per-k-block interleaved packing vs the
    // frozen PR-3 schedule (full up-front pack, forced via the pack-strategy
    // override), single-thread, measured interleaved like kblock-vs-pr2.
    // Only the deep-k dense1 shape k-blocks; the conv shapes (k < KC) run
    // one block either way and report ~1.0.
    double upfront_best = 1e300;
    double inter_best = 1e300;
    for (std::size_t r = 0; r < 2 * reps; ++r) {
      gsfl::tensor::set_pack_strategy(gsfl::tensor::PackStrategy::kUpfront);
      const double u = time_best(1, [&] {
        gsfl::tensor::gemm_raw(shape.m, shape.k, shape.n, 1.0f,
                               a.data().data(), b.data().data(), 0.0f,
                               c.data().data());
      });
      upfront_best = std::min(upfront_best, u);
      gsfl::tensor::set_pack_strategy(
          gsfl::tensor::PackStrategy::kInterleaved);
      const double v = time_best(1, [&] {
        gsfl::tensor::gemm_raw(shape.m, shape.k, shape.n, 1.0f,
                               a.data().data(), b.data().data(), 0.0f,
                               c.data().data());
      });
      inter_best = std::min(inter_best, v);
    }
    gsfl::tensor::set_pack_strategy(gsfl::tensor::PackStrategy::kAuto);
    json.add("gemm " + tag + " interleaved-vs-pr3", 1, inter_best,
             upfront_best / inter_best);
    std::printf("%-24s interleaved-vs-pr3 %8.3f ms  %5.2fx\n", tag.c_str(),
                inter_best * 1e3, upfront_best / inter_best);

    // The PR-7 acceptance ratio: the int8 quantize-on-pack path
    // (GemmPrecision::kInt8 — quantize during pack, exact int32
    // accumulation, dequant on write-back) vs the f32 kernel on the same
    // operands, single-thread, measured interleaved. dense1 is the guarded
    // shape (floor in bench_floors.json): its deep k is where halved panel
    // bytes and 4-MACs-per-lane-byte VNNI issue pay off most.
    const gsfl::tensor::micro::Epilogue plain{};
    double f32_best = 1e300;
    double int8_best = 1e300;
    for (std::size_t r = 0; r < 2 * reps; ++r) {
      const double f = time_best(1, [&] {
        gsfl::tensor::gemm_raw(shape.m, shape.k, shape.n, 1.0f,
                               a.data().data(), gsfl::tensor::Trans::kNo,
                               b.data().data(), gsfl::tensor::Trans::kNo,
                               0.0f, c.data().data(), plain,
                               gsfl::tensor::GemmPrecision::kF32);
      });
      f32_best = std::min(f32_best, f);
      const double q = time_best(1, [&] {
        gsfl::tensor::gemm_raw(shape.m, shape.k, shape.n, 1.0f,
                               a.data().data(), gsfl::tensor::Trans::kNo,
                               b.data().data(), gsfl::tensor::Trans::kNo,
                               0.0f, c.data().data(), plain,
                               gsfl::tensor::GemmPrecision::kInt8);
      });
      int8_best = std::min(int8_best, q);
    }
    json.add("gemm " + tag + " int8-vs-f32", 1, int8_best,
             f32_best / int8_best);
    std::printf("%-24s int8-vs-f32        %8.3f ms  %5.2fx\n", tag.c_str(),
                int8_best * 1e3, f32_best / int8_best);
    std::printf("\n");
  }

  // Layer-level relu fusion: conv→relu and dense→relu pairs as one fused
  // call vs the unfused layer sequence. The epilogue itself is nearly free;
  // the win is retiring the standalone Relu layer's three full activation
  // copies (input cache, fresh output, output cache), single-thread.
  gsfl::common::set_global_threads(1);
  {
    const std::size_t batch = 16;
    Rng rng(8);
    gsfl::nn::Conv2d conv(16, 32, 3, 1, 1, rng);
    gsfl::nn::Relu relu;
    const auto x = Tensor::uniform(Shape{batch, 16, 16, 16}, rng, -1, 1);
    const double unfused_s = time_best(reps, [&] {
      (void)relu.forward(conv.forward(x, true), true);
    });
    const double fused_s =
        time_best(reps, [&] { (void)conv.forward_fused_relu(x, true); });
    json.add("fused conv2-relu b16 fwd", 1, fused_s, unfused_s / fused_s);
    std::printf("%-24s fused-bias-relu    %8.3f ms  %5.2fx vs unfused\n",
                "conv2+relu fwd b16", fused_s * 1e3, unfused_s / fused_s);

    gsfl::nn::Dense dense(2048, 128, rng);
    const auto xd = Tensor::uniform(Shape{batch, 2048}, rng, -1, 1);
    const double dense_unfused_s = time_best(reps, [&] {
      (void)relu.forward(dense.forward(xd, true), true);
    });
    const double dense_fused_s =
        time_best(reps, [&] { (void)dense.forward_fused_relu(xd, true); });
    json.add("fused dense1-relu b16 fwd", 1, dense_fused_s,
             dense_unfused_s / dense_fused_s);
    std::printf("%-24s fused-bias-relu    %8.3f ms  %5.2fx vs unfused\n\n",
                "dense1+relu fwd b16", dense_fused_s * 1e3,
                dense_unfused_s / dense_fused_s);
  }

  // Backward relu fusion: the fused backward folds the dy mask into the
  // dW/dx panel packing (and conv's restage copy), vs the unfused sequence
  // that materializes relu_mask(dy, y) and runs the plain backward — the
  // PR-3 implementation of backward_fused_relu. Single-thread, measured
  // interleaved. Gradients accumulate identically on both sides, so the
  // timed bodies match FLOP for FLOP except the mask pass and its
  // temporary.
  gsfl::common::set_global_threads(1);
  {
    const std::size_t batch = 16;
    Rng rng(10);
    gsfl::nn::Relu relu;

    gsfl::nn::Dense dense(2048, 128, rng);
    const auto xd = Tensor::uniform(Shape{batch, 2048}, rng, -1, 1);
    const auto dyd = Tensor::uniform(Shape{batch, 128}, rng, -1, 1);
    const auto yd = dense.forward_fused_relu(xd, true);
    double unf_best = 1e300;
    double fus_best = 1e300;
    for (std::size_t r = 0; r < 2 * reps; ++r) {
      const double u = time_best(1, [&] {
        (void)dense.backward(gsfl::nn::relu_mask(dyd, yd));
      });
      unf_best = std::min(unf_best, u);
      const double v =
          time_best(1, [&] { (void)dense.backward_fused_relu(dyd); });
      fus_best = std::min(fus_best, v);
    }
    json.add("bwd dense1-relu b16 unfused", 1, unf_best, 1.0);
    json.add("bwd dense1-relu b16 bwd-fused-vs-unfused", 1, fus_best,
             unf_best / fus_best);
    std::printf("%-24s bwd-fused-vs-unfused %8.3f ms  %5.2fx\n",
                "dense1+relu bwd b16", fus_best * 1e3, unf_best / fus_best);

    gsfl::nn::Conv2d conv(16, 32, 3, 1, 1, rng);
    const auto xc = Tensor::uniform(Shape{batch, 16, 16, 16}, rng, -1, 1);
    const auto yc = conv.forward_fused_relu(xc, true);
    const auto dyc = Tensor::uniform(Shape{batch, 32, 16, 16}, rng, -1, 1);
    double cunf_best = 1e300;
    double cfus_best = 1e300;
    for (std::size_t r = 0; r < 2 * reps; ++r) {
      const double u = time_best(1, [&] {
        (void)conv.backward(gsfl::nn::relu_mask(dyc, yc));
      });
      cunf_best = std::min(cunf_best, u);
      const double v =
          time_best(1, [&] { (void)conv.backward_fused_relu(dyc); });
      cfus_best = std::min(cfus_best, v);
    }
    json.add("bwd conv2-relu b16 unfused", 1, cunf_best, 1.0);
    json.add("bwd conv2-relu b16 bwd-fused-vs-unfused", 1, cfus_best,
             cunf_best / cfus_best);
    std::printf("%-24s bwd-fused-vs-unfused %8.3f ms  %5.2fx\n\n",
                "conv2+relu bwd b16", cfus_best * 1e3, cunf_best / cfus_best);
  }

  // Batched conv vs the per-sample pipelines, on the paper's conv2 block
  // (the FLOP-heaviest layer). "per-sample saxpy" is the PR-1 conv forward
  // (one im2col + one saxpy GEMM per sample) — the pipeline the batched
  // layer replaced and the baseline its speedup is measured against;
  // "per-sample micro" isolates the batching gain from the kernel gain.
  gsfl::common::set_global_threads(1);
  {
    const std::size_t batch = 16;
    Rng rng(9);
    gsfl::nn::Conv2d conv(16, 32, 3, 1, 1, rng);
    const auto x = Tensor::uniform(Shape{batch, 16, 16, 16}, rng, -1, 1);
    const gsfl::tensor::ConvGeometry geom{.in_channels = 16,
                                          .in_h = 16,
                                          .in_w = 16,
                                          .kernel = 3,
                                          .stride = 1,
                                          .pad = 1};
    const std::size_t positions = geom.out_positions();
    const std::size_t patch = geom.patch_size();
    Tensor y(Shape{batch, 32, 16, 16});
    Tensor columns(Shape{patch, positions});

    std::vector<float> pack;
    const double saxpy_s = time_best(reps, [&] {
      for (std::size_t n = 0; n < batch; ++n) {
        gsfl::tensor::im2col_into(
            x.data().data() + n * 16 * 16 * 16, geom, columns.data().data());
        saxpy_gemm(32, patch, positions, conv.weight().data().data(),
                   columns.data().data(),
                   y.data().data() + n * 32 * positions, pack);
      }
    });
    json.add("conv conv2 b16 per-sample saxpy", 1, saxpy_s, 1.0);
    std::printf("%-24s per-sample saxpy t=1 %8.3f ms\n", "conv2 fwd b16",
                saxpy_s * 1e3);

    const double micro_s = time_best(reps, [&] {
      for (std::size_t n = 0; n < batch; ++n) {
        gsfl::tensor::im2col_into(
            x.data().data() + n * 16 * 16 * 16, geom, columns.data().data());
        gsfl::tensor::gemm_raw(32, patch, positions, 1.0f,
                               conv.weight().data().data(),
                               columns.data().data(), 0.0f,
                               y.data().data() + n * 32 * positions);
      }
    });
    json.add("conv conv2 b16 per-sample micro", 1, micro_s,
             saxpy_s / micro_s);
    std::printf("%-24s per-sample micro t=1 %8.3f ms  %5.2fx\n",
                "conv2 fwd b16", micro_s * 1e3, saxpy_s / micro_s);

    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      gsfl::common::set_global_threads(threads);
      const double batched_s =
          time_best(reps, [&] { (void)conv.forward(x, false); });
      json.add("conv conv2 b16 batched", threads, batched_s,
               saxpy_s / batched_s);
      std::printf("%-24s batched          t=%zu %8.3f ms  %5.2fx\n",
                  "conv2 fwd b16", threads, batched_s * 1e3,
                  saxpy_s / batched_s);
    }
  }

  json.write("BENCH_gemm.json");
  return 0;
}
