// Microkernel GEMM bench: the perf trajectory of the compute substrate.
//
// Times the register-blocked gemm_raw against the PR-1 saxpy row-sweep
// kernel (embedded below as the frozen baseline) on the paper model's
// headline layer shapes, and batched conv2d against the per-sample
// im2col+GEMM pipeline it replaced. Prints GFLOP/s tables and emits
// BENCH_gemm.json.
//
// JSON conventions (BenchJson rows):
//   - "... saxpy" rows: the baseline, threads=1, speedup=1.
//   - "... micro" rows: speedup = saxpy seconds / micro seconds at that
//     thread count — so the threads=1 micro rows are the pure
//     single-thread kernel-vs-kernel ratio.
//   - "conv ... per-sample" / "conv ... batched" rows: speedup = per-sample
//     seconds / batched seconds.
//
//   $ ./bench_gemm_microkernel [--reps=R] [--max-threads=N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gsfl/common/cli.hpp"
#include "gsfl/common/rng.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/tensor/gemm.hpp"
#include "gsfl/tensor/im2col.hpp"
#include "gsfl/tensor/microkernel.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
using Clock = std::chrono::steady_clock;

/// Best-of-`reps` wall-clock seconds for fn().
template <typename Fn>
double time_best(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

// ---- frozen PR-1 baseline ---------------------------------------------------
// Verbatim port of the pre-microkernel gemm_raw hot path (panel-packed B +
// branch-free saxpy row sweep), serial form: the kernel the acceptance
// criterion measures against. Do not "improve" this — it is the yardstick.
constexpr std::size_t kBlockK = 128;
constexpr std::size_t kBlockN = 256;

void saxpy_row(float a_ik, const float* b_row, float* c_row, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
}

void saxpy_gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
                const float* b, float* c, std::vector<float>& pack) {
  pack.resize(k * n);
  std::size_t offset = 0;
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = std::min(k0 + kBlockK, k);
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::size_t j1 = std::min(j0 + kBlockN, n);
      const std::size_t jn = j1 - j0;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const float* b_row = b + kk * n + j0;
        std::copy(b_row, b_row + jn, pack.data() + offset + (kk - k0) * jn);
      }
      offset += (k1 - k0) * jn;
    }
  }
  std::fill(c, c + m * n, 0.0f);
  offset = 0;
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = std::min(k0 + kBlockK, k);
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::size_t j1 = std::min(j0 + kBlockN, n);
      const std::size_t jn = j1 - j0;
      const float* panel = pack.data() + offset;
      offset += (k1 - k0) * jn;
      for (std::size_t i = 0; i < m; ++i) {
        float* c_row = c + i * n + j0;
        const float* a_row = a + i * k;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          saxpy_row(a_row[kk], panel + (kk - k0) * jn, c_row, jn);
        }
      }
    }
  }
}
// ---------------------------------------------------------------------------

struct GemmShape {
  const char* name;  ///< which paper layer this is
  std::size_t m, k, n;
};

double gflops(std::size_t m, std::size_t k, std::size_t n, double seconds) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n) / seconds / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const gsfl::common::CliArgs args(argc, argv, {});
  const auto reps = static_cast<std::size_t>(args.int_or("reps", 5));
  const auto max_threads =
      static_cast<std::size_t>(args.int_or("max-threads", 8));
  gsfl::bench::BenchJson json;

  std::printf("=== GEMM microkernel bench ===\n");
  std::printf("register block: %zux%zu (simd width %zu), reps %zu\n\n",
              gsfl::tensor::micro::kMR, gsfl::tensor::micro::kNR,
              gsfl::tensor::micro::kSimdWidth, reps);

  // The paper CNN's conv GEMMs as batched shapes (batch 16, 32×32 GTSRB
  // input: conv1 16@3·3·3 over 1024 positions, conv2 32@16·3·3 over 256
  // positions) plus the first dense layer — the shapes every training round
  // spends its FLOPs on.
  const GemmShape shapes[] = {
      {"conv1", 16, 27, 16 * 1024},
      {"conv2", 32, 144, 16 * 256},
      {"dense1", 16, 2048, 128},
  };

  for (const auto& shape : shapes) {
    Rng rng(7);
    const auto a = Tensor::uniform(Shape{shape.m, shape.k}, rng, -1, 1);
    const auto b = Tensor::uniform(Shape{shape.k, shape.n}, rng, -1, 1);
    Tensor c(Shape{shape.m, shape.n});
    const std::string tag = std::string(shape.name) + " " +
                            std::to_string(shape.m) + "x" +
                            std::to_string(shape.k) + "x" +
                            std::to_string(shape.n);

    std::vector<float> pack;
    const double saxpy_s = time_best(reps, [&] {
      saxpy_gemm(shape.m, shape.k, shape.n, a.data().data(), b.data().data(),
                 c.data().data(), pack);
    });
    json.add("gemm " + tag + " saxpy", 1, saxpy_s, 1.0);
    std::printf("%-24s saxpy   t=1  %8.3f ms  %6.2f GFLOP/s\n", tag.c_str(),
                saxpy_s * 1e3, gflops(shape.m, shape.k, shape.n, saxpy_s));

    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      gsfl::common::set_global_threads(threads);
      const double micro_s = time_best(reps, [&] {
        gsfl::tensor::gemm_raw(shape.m, shape.k, shape.n, 1.0f,
                               a.data().data(), b.data().data(), 0.0f,
                               c.data().data());
      });
      json.add("gemm " + tag + " micro", threads, micro_s,
               saxpy_s / micro_s);
      std::printf("%-24s micro   t=%zu  %8.3f ms  %6.2f GFLOP/s  %5.2fx\n",
                  tag.c_str(), threads, micro_s * 1e3,
                  gflops(shape.m, shape.k, shape.n, micro_s),
                  saxpy_s / micro_s);
    }
    std::printf("\n");
  }

  // Batched conv vs the per-sample pipelines, on the paper's conv2 block
  // (the FLOP-heaviest layer). "per-sample saxpy" is the PR-1 conv forward
  // (one im2col + one saxpy GEMM per sample) — the pipeline the batched
  // layer replaced and the baseline its speedup is measured against;
  // "per-sample micro" isolates the batching gain from the kernel gain.
  gsfl::common::set_global_threads(1);
  {
    const std::size_t batch = 16;
    Rng rng(9);
    gsfl::nn::Conv2d conv(16, 32, 3, 1, 1, rng);
    const auto x = Tensor::uniform(Shape{batch, 16, 16, 16}, rng, -1, 1);
    const gsfl::tensor::ConvGeometry geom{.in_channels = 16,
                                          .in_h = 16,
                                          .in_w = 16,
                                          .kernel = 3,
                                          .stride = 1,
                                          .pad = 1};
    const std::size_t positions = geom.out_positions();
    const std::size_t patch = geom.patch_size();
    Tensor y(Shape{batch, 32, 16, 16});
    Tensor columns(Shape{patch, positions});

    std::vector<float> pack;
    const double saxpy_s = time_best(reps, [&] {
      for (std::size_t n = 0; n < batch; ++n) {
        gsfl::tensor::im2col_into(
            x.data().data() + n * 16 * 16 * 16, geom, columns.data().data());
        saxpy_gemm(32, patch, positions, conv.weight().data().data(),
                   columns.data().data(),
                   y.data().data() + n * 32 * positions, pack);
      }
    });
    json.add("conv conv2 b16 per-sample saxpy", 1, saxpy_s, 1.0);
    std::printf("%-24s per-sample saxpy t=1 %8.3f ms\n", "conv2 fwd b16",
                saxpy_s * 1e3);

    const double micro_s = time_best(reps, [&] {
      for (std::size_t n = 0; n < batch; ++n) {
        gsfl::tensor::im2col_into(
            x.data().data() + n * 16 * 16 * 16, geom, columns.data().data());
        gsfl::tensor::gemm_raw(32, patch, positions, 1.0f,
                               conv.weight().data().data(),
                               columns.data().data(), 0.0f,
                               y.data().data() + n * 32 * positions);
      }
    });
    json.add("conv conv2 b16 per-sample micro", 1, micro_s,
             saxpy_s / micro_s);
    std::printf("%-24s per-sample micro t=1 %8.3f ms  %5.2fx\n",
                "conv2 fwd b16", micro_s * 1e3, saxpy_s / micro_s);

    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      gsfl::common::set_global_threads(threads);
      const double batched_s =
          time_best(reps, [&] { (void)conv.forward(x, false); });
      json.add("conv conv2 b16 batched", threads, batched_s,
               saxpy_s / batched_s);
      std::printf("%-24s batched          t=%zu %8.3f ms  %5.2fx\n",
                  "conv2 fwd b16", threads, batched_s * 1e3,
                  saxpy_s / batched_s);
    }
  }

  json.write("BENCH_gemm.json");
  return 0;
}
