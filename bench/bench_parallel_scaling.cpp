// Thread-scaling bench for the parallel execution subsystem.
//
// Times the three hot layers the runtime threads through — raw GEMM, conv2d
// forward+backward over a batch, and a full 16-client SplitFed round — at
// thread counts 1, 2, 4, ... up to --max-threads (default: hardware
// concurrency, at least 8 so the table is comparable across hosts), then
// cross-checks that the serial and widest runs produced bitwise-identical
// global models. Emits BENCH_parallel.json for machine consumption.
//
//   $ ./bench_parallel_scaling [--max-threads=N] [--reps=R] [--seed=S]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "gsfl/common/cli.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/schemes/splitfed.hpp"
#include "gsfl/tensor/gemm.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
using Clock = std::chrono::steady_clock;

/// Best-of-`reps` wall-clock seconds for fn().
template <typename Fn>
double time_best(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

double bench_gemm(std::size_t reps) {
  Rng rng(1);
  const auto a = Tensor::uniform(Shape{384, 384}, rng, -1, 1);
  const auto b = Tensor::uniform(Shape{384, 384}, rng, -1, 1);
  Tensor c(Shape{384, 384});
  return time_best(reps, [&] {
    gsfl::tensor::gemm_raw(384, 384, 384, 1.0f, a.data().data(),
                           b.data().data(), 0.0f, c.data().data());
  });
}

double bench_conv(std::size_t reps) {
  Rng rng(2);
  gsfl::nn::Conv2d conv(3, 16, /*kernel=*/3, /*stride=*/1, /*pad=*/1, rng);
  const auto input = Tensor::uniform(Shape{32, 3, 32, 32}, rng, -1, 1);
  const auto grad = Tensor::uniform(Shape{32, 16, 32, 32}, rng, -1, 1);
  return time_best(reps, [&] {
    (void)conv.forward(input, /*train=*/true);
    (void)conv.backward(grad);
  });
}

struct SflWorld {
  gsfl::core::Experiment experiment;
  explicit SflWorld(std::uint64_t seed)
      : experiment([&] {
          auto config = gsfl::core::ExperimentConfig::scaled();
          config.num_clients = 16;
          config.num_groups = 4;
          config.dataset.samples_per_class = 24;  // 288 train samples
          config.test_samples_per_class = 4;
          config.seed = seed;
          return config;
        }()) {}
};

}  // namespace

int main(int argc, char** argv) {
  const gsfl::common::CliArgs args(argc, argv);
  const auto reps = static_cast<std::size_t>(args.int_or("reps", 3));
  const std::size_t hw = gsfl::common::resolve_threads(0);
  const auto requested = args.int_or(
      "max-threads", static_cast<std::int64_t>(std::max<std::size_t>(hw, 8)));
  // ≤ 0 falls back to the resolved default, mirroring --threads elsewhere.
  const std::size_t max_threads =
      requested > 0 ? static_cast<std::size_t>(requested) : hw;
  const auto seed = static_cast<std::uint64_t>(args.int_or("seed", 42));

  std::vector<std::size_t> lane_counts;
  for (std::size_t t = 1; t <= max_threads; t *= 2) lane_counts.push_back(t);
  if (lane_counts.back() != max_threads) lane_counts.push_back(max_threads);

  std::printf("=== parallel scaling (host: %zu hardware threads) ===\n", hw);
  std::printf("%-24s %8s %12s %9s\n", "section", "threads", "seconds",
              "speedup");

  const SflWorld world(seed);
  gsfl::bench::BenchJson json;
  gsfl::nn::Sequential serial_model;  // threads=1 final state, for the check
  gsfl::nn::Sequential widest_model;

  struct Section {
    const char* name;
    std::function<double(std::size_t threads)> run;
  };
  const Section sections[] = {
      {"gemm_384", [&](std::size_t) { return bench_gemm(reps); }},
      {"conv2d_fwd_bwd_b32", [&](std::size_t) { return bench_conv(reps); }},
      {"sfl_round_16_clients", [&](std::size_t threads) {
         // A round mutates trainer state, so every rep times round 1 of a
         // fresh trainer — built outside the timed region, like the final
         // model-state capture, so 'seconds' is the round alone.
         double best = 1e300;
         for (std::size_t r = 0; r < reps; ++r) {
           auto trainer = world.experiment.make_sfl();
           const auto start = Clock::now();
           (void)trainer->run_round();
           const std::chrono::duration<double> elapsed =
               Clock::now() - start;
           best = std::min(best, elapsed.count());
           if (threads == 1) serial_model = trainer->global_model();
           if (threads == lane_counts.back() || lane_counts.size() == 1) {
             widest_model = trainer->global_model();
           }
         }
         return best;
       }},
  };

  for (const auto& section : sections) {
    double serial_seconds = 0.0;
    for (const std::size_t threads : lane_counts) {
      gsfl::common::set_global_threads(threads);
      const double seconds = section.run(threads);
      if (threads == 1) serial_seconds = seconds;
      const double speedup = serial_seconds / seconds;
      std::printf("%-24s %8zu %12.4f %8.2fx\n", section.name, threads,
                  seconds, speedup);
      json.add(section.name, threads, seconds, speedup);
    }
  }
  gsfl::common::set_global_threads(0);

  const auto sa = serial_model.state();
  const auto sb = widest_model.state();
  bool identical = sa.size() == sb.size() && !sa.empty();
  for (std::size_t i = 0; identical && i < sa.size(); ++i) {
    identical = sa[i] == sb[i];
  }
  std::printf("\ndeterminism: threads=1 vs threads=%zu SFL round states %s\n",
              lane_counts.back(), identical ? "bitwise identical" : "DIFFER");

  json.write("BENCH_parallel.json");
  return identical ? 0 : 1;
}
