// Thread-scaling bench for the parallel execution subsystem.
//
// Times the three hot layers the runtime threads through — raw GEMM, conv2d
// forward+backward over a batch, and a full 16-client SplitFed round — at
// thread counts 1, 2, 4, ... up to --max-threads (default: hardware
// concurrency, at least 8 so the table is comparable across hosts), then
// cross-checks that the serial and widest runs produced bitwise-identical
// global models. A fourth section rates the pipelined round path on a
// straggler scenario (one client with far more data than the rest, a
// dense-heavy model so aggregation is a real fraction of the round):
// barriered run_round vs submit_round/collect_round, whose eager ordered
// fold overlaps FedAvg with the straggler's compute. The
// "sfl_round_straggler pipelined-vs-barriered" row is floor-guarded in CI
// (bench/bench_floors.json). Emits BENCH_parallel.json.
//
//   $ ./bench_parallel_scaling [--max-threads=N] [--reps=R] [--seed=S]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "gsfl/common/cli.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/flatten.hpp"
#include "gsfl/schemes/splitfed.hpp"
#include "gsfl/tensor/gemm.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
using Clock = std::chrono::steady_clock;

/// Best-of-`reps` wall-clock seconds for fn().
template <typename Fn>
double time_best(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

double bench_gemm(std::size_t reps) {
  Rng rng(1);
  const auto a = Tensor::uniform(Shape{384, 384}, rng, -1, 1);
  const auto b = Tensor::uniform(Shape{384, 384}, rng, -1, 1);
  Tensor c(Shape{384, 384});
  return time_best(reps, [&] {
    gsfl::tensor::gemm_raw(384, 384, 384, 1.0f, a.data().data(),
                           b.data().data(), 0.0f, c.data().data());
  });
}

double bench_conv(std::size_t reps) {
  Rng rng(2);
  gsfl::nn::Conv2d conv(3, 16, /*kernel=*/3, /*stride=*/1, /*pad=*/1, rng);
  const auto input = Tensor::uniform(Shape{32, 3, 32, 32}, rng, -1, 1);
  const auto grad = Tensor::uniform(Shape{32, 16, 32, 32}, rng, -1, 1);
  return time_best(reps, [&] {
    (void)conv.forward(input, /*train=*/true);
    (void)conv.backward(grad);
  });
}

struct SflWorld {
  gsfl::core::Experiment experiment;
  explicit SflWorld(std::uint64_t seed)
      : experiment([&] {
          auto config = gsfl::core::ExperimentConfig::scaled();
          config.num_clients = 16;
          config.num_groups = 4;
          config.dataset.samples_per_class = 24;  // 288 train samples
          config.test_samples_per_class = 4;
          config.seed = seed;
          return config;
        }()) {}
};

// --- straggler scenario for the pipelined round path ------------------------

gsfl::data::Dataset random_dataset(std::size_t samples, Rng& rng) {
  Tensor images = Tensor::uniform(Shape{samples, 3, 16, 16}, rng, -1, 1);
  std::vector<std::int32_t> labels(samples);
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.uniform_index(8));
  return gsfl::data::Dataset(std::move(images), std::move(labels), 8);
}

// Dense-heavy split model (~1.9M parameters, cheap per-sample FLOPs):
// aggregation cost scales with parameters × clients while compute scales
// with samples, which is exactly the regime where the barriered round pays
// a visible post-join FedAvg tail.
gsfl::nn::Sequential straggler_model(Rng& rng) {
  gsfl::nn::Sequential model;
  model.emplace<gsfl::nn::Flatten>();
  model.emplace<gsfl::nn::Dense>(3 * 16 * 16, 1024, rng);
  model.emplace<gsfl::nn::Relu>();
  model.emplace<gsfl::nn::Dense>(1024, 1024, rng);
  model.emplace<gsfl::nn::Relu>();
  model.emplace<gsfl::nn::Dense>(1024, 8, rng);
  return model;
}

struct StragglerWorld {
  static constexpr std::size_t kClients = 24;
  gsfl::net::WirelessNetwork network;
  std::vector<gsfl::data::Dataset> datasets;
  gsfl::nn::Sequential model;

  explicit StragglerWorld(std::uint64_t seed)
      : network([] {
          gsfl::net::NetworkConfig config;
          std::vector<gsfl::net::DeviceProfile> devices(kClients);
          for (auto& d : devices) {
            d.distance_m = 50.0;
            d.compute_flops = 1e9;
          }
          return gsfl::net::WirelessNetwork(config, std::move(devices));
        }()) {
    Rng rng(seed);
    datasets.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      // 23 quick clients (one batch each) and one straggler carrying ~16×
      // their data — its forward/backward is the span the eager fold hides
      // the other clients' aggregation under.
      const std::size_t samples = c + 1 == kClients ? 128 : 8;
      datasets.push_back(random_dataset(samples, rng));
    }
    auto model_rng = rng.fork(1);
    model = straggler_model(model_rng);
  }

  [[nodiscard]] std::unique_ptr<gsfl::schemes::SplitFedTrainer> make() const {
    gsfl::schemes::TrainConfig config;
    config.batch_size = 8;
    return std::make_unique<gsfl::schemes::SplitFedTrainer>(
        network, datasets, model, /*cut_layer=*/2, config);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const gsfl::common::CliArgs args(argc, argv);
  const auto reps = static_cast<std::size_t>(args.int_or("reps", 3));
  const std::size_t hw = gsfl::common::resolve_threads(0);
  const auto requested = args.int_or(
      "max-threads", static_cast<std::int64_t>(std::max<std::size_t>(hw, 8)));
  // ≤ 0 falls back to the resolved default, mirroring --threads elsewhere.
  const std::size_t max_threads =
      requested > 0 ? static_cast<std::size_t>(requested) : hw;
  const auto seed = static_cast<std::uint64_t>(args.int_or("seed", 42));

  std::vector<std::size_t> lane_counts;
  for (std::size_t t = 1; t <= max_threads; t *= 2) lane_counts.push_back(t);
  if (lane_counts.back() != max_threads) lane_counts.push_back(max_threads);

  std::printf("=== parallel scaling (host: %zu hardware threads) ===\n", hw);
  std::printf("%-24s %8s %12s %9s\n", "section", "threads", "seconds",
              "speedup");

  const SflWorld world(seed);
  gsfl::bench::BenchJson json;
  gsfl::nn::Sequential serial_model;  // threads=1 final state, for the check
  gsfl::nn::Sequential widest_model;

  struct Section {
    const char* name;
    std::function<double(std::size_t threads)> run;
  };
  const Section sections[] = {
      {"gemm_384", [&](std::size_t) { return bench_gemm(reps); }},
      {"conv2d_fwd_bwd_b32", [&](std::size_t) { return bench_conv(reps); }},
      {"sfl_round_16_clients", [&](std::size_t threads) {
         // A round mutates trainer state, so every rep times round 1 of a
         // fresh trainer — built outside the timed region, like the final
         // model-state capture, so 'seconds' is the round alone.
         double best = 1e300;
         for (std::size_t r = 0; r < reps; ++r) {
           auto trainer = world.experiment.make_sfl();
           const auto start = Clock::now();
           (void)trainer->run_round();
           const std::chrono::duration<double> elapsed =
               Clock::now() - start;
           best = std::min(best, elapsed.count());
           if (threads == 1) serial_model = trainer->global_model();
           if (threads == lane_counts.back() || lane_counts.size() == 1) {
             widest_model = trainer->global_model();
           }
         }
         return best;
       }},
  };

  for (const auto& section : sections) {
    double serial_seconds = 0.0;
    for (const std::size_t threads : lane_counts) {
      gsfl::common::set_global_threads(threads);
      const double seconds = section.run(threads);
      if (threads == 1) serial_seconds = seconds;
      const double speedup = serial_seconds / seconds;
      std::printf("%-24s %8zu %12.4f %8.2fx\n", section.name, threads,
                  seconds, speedup);
      json.add(section.name, threads, seconds, speedup);
    }
  }

  // --- pipelined rounds on the straggler scenario ---------------------------
  // Same round, two schedules, at the widest thread count: the barriered
  // run_round (parallel_map + post-join FedAvg) vs the async-lane pipeline
  // (submit/collect — finished clients fold while the straggler computes).
  // Results must be bitwise identical; only the schedule differs.
  {
    const std::size_t threads = lane_counts.back();
    gsfl::common::set_global_threads(threads);
    const StragglerWorld straggler(seed + 1);
    {
      // Warm-up: spins up the async lane's workers and faults in both
      // paths' scratch before anything is timed.
      auto trainer = straggler.make();
      auto ticket = trainer->submit_round();
      (void)trainer->collect_round(ticket);
    }
    double barriered = 1e300;
    double pipelined = 1e300;
    gsfl::nn::Sequential barriered_model;
    gsfl::nn::Sequential pipelined_model;
    for (std::size_t r = 0; r < reps; ++r) {
      {
        auto trainer = straggler.make();
        const auto start = Clock::now();
        (void)trainer->run_round();
        const std::chrono::duration<double> elapsed = Clock::now() - start;
        barriered = std::min(barriered, elapsed.count());
        barriered_model = trainer->global_model();
      }
      {
        auto trainer = straggler.make();
        const auto start = Clock::now();
        auto ticket = trainer->submit_round();
        (void)trainer->collect_round(ticket);
        const std::chrono::duration<double> elapsed = Clock::now() - start;
        pipelined = std::min(pipelined, elapsed.count());
        pipelined_model = trainer->global_model();
      }
    }
    const double ratio = barriered / pipelined;
    std::printf("%-24s %8zu %12.4f %8.2fx\n", "sfl_straggler barriered",
                threads, barriered, 1.0);
    std::printf("%-24s %8zu %12.4f %8.2fx\n", "sfl_straggler pipelined",
                threads, pipelined, ratio);
    json.add("sfl_round_straggler barriered", threads, barriered, 1.0);
    json.add("sfl_round_straggler pipelined-vs-barriered", threads,
             pipelined, ratio);

    const auto sb = barriered_model.state();
    const auto sp = pipelined_model.state();
    bool same = sb.size() == sp.size() && !sb.empty();
    for (std::size_t i = 0; same && i < sb.size(); ++i) same = sb[i] == sp[i];
    std::printf("determinism: straggler barriered vs pipelined states %s\n",
                same ? "bitwise identical" : "DIFFER");
    if (!same) return 1;
  }
  // --- quorum close on a faulty straggler world -----------------------------
  // Same world, simulated clock instead of wall clock: a 0.67 quorum lets
  // the AP aggregate without waiting for the straggler (who carries ~16×
  // the data and is occasionally slowed further by fault injection). The
  // ratio full-barrier-span / quorum-span is pure simulated arithmetic —
  // deterministic for a fixed seed — so the CI floor guards the scheduling
  // semantics (quorum close + survivor renormalization), not host noise.
  {
    const StragglerWorld straggler(seed + 2);
    const auto simulated_span = [&](double quorum) {
      gsfl::schemes::TrainConfig config;
      config.batch_size = 8;
      config.faults.straggler_rate = 0.3;
      config.faults.straggler_slowdown_min = 2.0;
      config.faults.straggler_slowdown_max = 4.0;
      config.faults.seed = 0xF417;
      config.round_policy.quorum_fraction = quorum;
      gsfl::schemes::SplitFedTrainer trainer(straggler.network,
                                             straggler.datasets,
                                             straggler.model,
                                             /*cut_layer=*/2, config);
      double span = 0.0;
      for (std::size_t round = 0; round < 3; ++round) {
        span += trainer.run_round().latency.total();
      }
      return span;
    };
    const double full_span = simulated_span(1.0);
    const double quorum_span = simulated_span(0.67);
    const double ratio = full_span / quorum_span;
    std::printf("%-24s %8s %12.4f %8.2fx\n", "sfl_straggler full-barrier",
                "(sim)", full_span, 1.0);
    std::printf("%-24s %8s %12.4f %8.2fx\n", "sfl_straggler quorum-0.67",
                "(sim)", quorum_span, ratio);
    json.add("sfl_round_straggler quorum-vs-barrier-sim",
             lane_counts.back(), quorum_span, ratio);
  }
  gsfl::common::set_global_threads(0);

  const auto sa = serial_model.state();
  const auto sb = widest_model.state();
  bool identical = sa.size() == sb.size() && !sa.empty();
  for (std::size_t i = 0; identical && i < sa.size(); ++i) {
    identical = sa[i] == sb[i];
  }
  std::printf("\ndeterminism: threads=1 vs threads=%zu SFL round states %s\n",
              lane_counts.back(), identical ? "bitwise identical" : "DIFFER");

  json.write("BENCH_parallel.json");
  return identical ? 0 : 1;
}
