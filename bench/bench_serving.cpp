// Serving-lane bench: frozen inference vs naive eval under request streams.
//
// Builds the serving CNN preset (three conv blocks, batch norm, dropout),
// freezes one copy (Sequential::freeze — persistent packed panels, BN folded
// into conv epilogues, dropout elided) and pumps concurrent request streams
// through an AsyncLane against a naive-eval twin. Each stream is one lane
// task owning a private model replica; requests run back-to-back inside the
// stream (an InlineRegionGuard keeps each request on its lane worker, so the
// stream count is the concurrency). The naive twin dirties every weight's
// version before each request, reproducing the per-request weight pack the
// eval path ran before persistent panels existed — the pre-PR serving cost.
//
// Before timing anything the bench asserts the serving contract: the frozen
// f32 forward must be bitwise identical to the unfrozen, fusion-disabled
// eval forward at every thread count {1, 4, 8}. A mismatch exits nonzero —
// the perf numbers are meaningless if the lane serves different bits.
//
// BENCH_serving.json conventions (BenchJson rows; the schema only has
// seconds/speedup slots):
//   - "serving p50 s<N>" / "serving p99 s<N>": seconds = that percentile's
//     per-request latency with N streams on the frozen model, speedup =
//     naive latency / frozen latency at the same percentile and stream
//     count.
//   - "serving throughput s<N>": seconds = frozen requests/second (a rate,
//     not a time), speedup = frozen rate / naive rate.
//   - "serving p50|p99|throughput frozen-vs-naive": the guarded summary
//     rows (floors in bench_floors.json) — best ratio across stream counts.
//   - "serving p50 int8-vs-f32 s<N>": speedup = frozen-f32 p50 / frozen-int8
//     p50 (informational; the int8 path only rewrites the dense head here,
//     so the ratio hugs 1 and is not floor-guarded).
//
//   $ ./bench_serving [--requests=N] [--warmup=W]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "gsfl/common/async_lane.hpp"
#include "gsfl/common/cli.hpp"
#include "gsfl/common/rng.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/nn/sequential.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;
using Clock = std::chrono::steady_clock;

Tensor random_batch(std::size_t batch, std::size_t channels,
                    std::size_t image_size, Rng& rng) {
  Tensor t(Shape{batch, channels, image_size, image_size});
  auto d = t.data();
  for (auto& v : d) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) return false;
  const auto ad = a.data();
  const auto bd = b.data();
  return std::memcmp(ad.data(), bd.data(), ad.size() * sizeof(float)) == 0;
}

/// Bump every Dense/Conv2d weight's version so the next forward repacks —
/// the naive stream's per-request pack cost.
void dirty_weights(gsfl::nn::Sequential& model) {
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (auto* dense = dynamic_cast<gsfl::nn::Dense*>(&model.layer(i))) {
      (void)dense->weight().data();
    } else if (auto* conv =
                   dynamic_cast<gsfl::nn::Conv2d*>(&model.layer(i))) {
      (void)conv->weight().data();
    }
  }
}

struct StreamRun {
  std::vector<double> latencies;  ///< per-request seconds, all streams
  double wall_seconds = 0.0;      ///< submit → last stream drained
};

/// Pump `streams` concurrent request streams through a fresh AsyncLane
/// (global_lane() is a fixed-size process singleton, so the concurrency
/// axis needs a local lane per configuration). Each stream task copies the
/// model once — frozen replicas share the packed panels by pointer — and
/// serves its requests sequentially.
StreamRun run_streams(const gsfl::nn::Sequential& model, std::size_t streams,
                      std::size_t requests, std::size_t warmup,
                      const Tensor& input, bool naive_repack) {
  gsfl::common::AsyncLane lane(streams);
  std::vector<gsfl::common::TaskFuture<std::vector<double>>> futures;
  futures.reserve(streams);
  const auto start = Clock::now();
  for (std::size_t s = 0; s < streams; ++s) {
    futures.push_back(lane.submit([&] {
      // Requests are the unit of concurrency: keep each forward on this
      // lane worker instead of re-entering the shared pool.
      gsfl::common::InlineRegionGuard inline_guard;
      gsfl::nn::Sequential replica = model;
      std::vector<double> latencies;
      latencies.reserve(requests);
      for (std::size_t r = 0; r < warmup + requests; ++r) {
        if (naive_repack) dirty_weights(replica);
        const auto t0 = Clock::now();
        const Tensor out = replica.forward(input, /*train=*/false);
        const std::chrono::duration<double> dt = Clock::now() - t0;
        if (out.numel() == 0) std::abort();  // keep the forward observable
        if (r >= warmup) latencies.push_back(dt.count());
      }
      return latencies;
    }));
  }
  auto per_stream = gsfl::common::AsyncLane::when_all(futures);
  const std::chrono::duration<double> wall = Clock::now() - start;
  StreamRun run;
  run.wall_seconds = wall.count();
  for (auto& v : per_stream) {
    run.latencies.insert(run.latencies.end(), v.begin(), v.end());
  }
  std::sort(run.latencies.begin(), run.latencies.end());
  return run;
}

double percentile(const std::vector<double>& sorted, double p) {
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gsfl;
  const common::CliArgs args(argc, argv, {});
  const auto requests =
      static_cast<std::size_t>(args.int_or("requests", 200));
  const auto warmup = static_cast<std::size_t>(args.int_or("warmup", 8));

  Rng rng(0x5e47'11e5u);
  const auto config = nn::serving_cnn_config();
  nn::Sequential trained = nn::make_gtsrb_cnn(config, rng);
  // A few training forwards move the batch-norm running statistics off
  // their init values so the folded epilogue has real work to reproduce.
  for (int step = 0; step < 3; ++step) {
    const Tensor batch =
        random_batch(8, config.in_channels, config.image_size, rng);
    (void)trained.forward(batch, /*train=*/true);
  }

  nn::Sequential frozen = trained;
  frozen.freeze();
  nn::Sequential frozen_q8 = trained;
  frozen_q8.freeze(tensor::GemmPrecision::kInt8);
  nn::Sequential unfused = trained;
  unfused.set_fusion(false);

  // Serving contract first: frozen f32 ≡ unfused eval forward, bitwise, at
  // every thread count the latency table is about to quote.
  const Tensor probe =
      random_batch(8, config.in_channels, config.image_size, rng);
  for (const std::size_t threads : {1, 4, 8}) {
    common::set_global_threads(threads);
    const Tensor want = unfused.forward(probe, /*train=*/false);
    const Tensor got = frozen.forward(probe, /*train=*/false);
    if (!bitwise_equal(want, got)) {
      std::fprintf(stderr,
                   "FAIL: frozen forward diverged from unfused eval "
                   "forward at %zu threads\n",
                   threads);
      return 1;
    }
  }
  common::set_global_threads(0);
  std::printf("frozen == unfused eval (bitwise) at 1/4/8 threads\n\n");

  bench::BenchJson json;
  const Tensor request =
      random_batch(1, config.in_channels, config.image_size, rng);
  const std::size_t total_requests = requests;

  std::printf("%-8s %12s %12s %12s %12s %14s\n", "streams", "frozen p50",
              "frozen p99", "naive p50", "naive p99", "req/s (f/n)");
  double best_p50 = 0.0;
  double best_p99 = 0.0;
  double best_throughput = 0.0;
  for (const std::size_t streams : {1, 4, 8}) {
    const StreamRun frozen_run = run_streams(frozen, streams, total_requests,
                                             warmup, request,
                                             /*naive_repack=*/false);
    const StreamRun naive_run = run_streams(trained, streams, total_requests,
                                            warmup, request,
                                            /*naive_repack=*/true);
    const StreamRun q8_run = run_streams(frozen_q8, streams, total_requests,
                                         warmup, request,
                                         /*naive_repack=*/false);

    const double f_p50 = percentile(frozen_run.latencies, 0.50);
    const double f_p99 = percentile(frozen_run.latencies, 0.99);
    const double n_p50 = percentile(naive_run.latencies, 0.50);
    const double n_p99 = percentile(naive_run.latencies, 0.99);
    const double f_rate = static_cast<double>(frozen_run.latencies.size()) /
                          frozen_run.wall_seconds;
    const double n_rate = static_cast<double>(naive_run.latencies.size()) /
                          naive_run.wall_seconds;
    const double q_p50 = percentile(q8_run.latencies, 0.50);

    best_p50 = std::max(best_p50, n_p50 / f_p50);
    best_p99 = std::max(best_p99, n_p99 / f_p99);
    best_throughput = std::max(best_throughput, f_rate / n_rate);

    const std::string tag = " s" + std::to_string(streams);
    json.add("serving p50" + tag, streams, f_p50, n_p50 / f_p50);
    json.add("serving p99" + tag, streams, f_p99, n_p99 / f_p99);
    json.add("serving throughput" + tag, streams, f_rate, f_rate / n_rate);
    json.add("serving p50 int8-vs-f32" + tag, streams, q_p50, f_p50 / q_p50);
    std::printf("%-8zu %10.0fus %10.0fus %10.0fus %10.0fus %6.0f/%6.0f\n",
                streams, f_p50 * 1e6, f_p99 * 1e6, n_p50 * 1e6, n_p99 * 1e6,
                f_rate, n_rate);
  }

  // Guarded summary rows (floors in bench_floors.json): the frozen lane
  // must beat per-request repacking at some concurrency.
  json.add("serving p50 frozen-vs-naive", 1, 0.0, best_p50);
  json.add("serving p99 frozen-vs-naive", 1, 0.0, best_p99);
  json.add("serving throughput frozen-vs-naive", 1, 0.0, best_throughput);
  std::printf(
      "\nfrozen vs naive: p50 %.2fx, p99 %.2fx, throughput %.2fx (best "
      "across stream counts)\n",
      best_p50, best_p99, best_throughput);

  json.write("BENCH_serving.json");
  return 0;
}
