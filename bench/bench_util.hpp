// Shared plumbing for the experiment benches (E1–E7): configuration from
// the command line, table printing, CSV export, and paper-vs-measured rows.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "gsfl/common/cli.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/core/experiment.hpp"
#include "gsfl/metrics/recorder.hpp"

namespace gsfl::bench {

/// Standard bench flags:
///   --full            paper-scale configuration (32×32, 43 classes)
///   --rounds=N        override the round budget
///   --seed=S          override the master seed
///   --csv=DIR         also write per-run CSV files into DIR
///   --threads=N       host-side parallel lanes (default: GSFL_THREADS env,
///                     then hardware concurrency; results are identical for
///                     every value)
struct BenchOptions {
  core::ExperimentConfig config;
  std::size_t rounds;
  std::optional<std::string> csv_dir;
  std::size_t threads = 0;  ///< 0 ⇒ resolved default

  static BenchOptions parse(int argc, char** argv,
                            std::size_t default_rounds,
                            std::size_t full_rounds) {
    const common::CliArgs args(argc, argv, {"full"});
    BenchOptions options{
        .config = args.has_flag("full") ? core::ExperimentConfig::paper()
                                        : core::ExperimentConfig::scaled(),
        .rounds = static_cast<std::size_t>(args.int_or(
            "rounds", static_cast<std::int64_t>(
                          args.has_flag("full") ? full_rounds
                                                : default_rounds))),
        .csv_dir = args.value("csv"),
        .threads = static_cast<std::size_t>(args.int_or("threads", 0)),
    };
    options.config.seed = static_cast<std::uint64_t>(
        args.int_or("seed", static_cast<std::int64_t>(options.config.seed)));
    if (options.threads > 0) {
      common::set_global_threads(options.threads);
      options.config.train.threads = options.threads;
    }
    return options;
  }
};

inline void print_header(const std::string& title,
                         const core::ExperimentConfig& config) {
  std::cout << "=== " << title << " ===\n"
            << "world: " << config.num_clients << " clients, "
            << config.num_groups << " groups, "
            << config.dataset.num_classes << " classes, "
            << config.dataset.image_size << "x" << config.dataset.image_size
            << " px, cut layer " << config.cut_layer << ", "
            << config.network.total_bandwidth_hz / 1e6 << " MHz band, seed "
            << config.seed << "\n\n";
}

/// "paper: X, measured: Y" comparison row.
inline void print_claim(const std::string& claim, const std::string& paper,
                        const std::string& measured) {
  std::printf("  %-52s paper: %-14s measured: %s\n", claim.c_str(),
              paper.c_str(), measured.c_str());
}

inline std::string format_seconds(std::optional<double> seconds) {
  if (!seconds) return "not reached";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f s", *seconds);
  return buffer;
}

inline std::string format_percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%", fraction * 100.0);
  return buffer;
}

/// Write one run's per-round records to <dir>/<file>.
inline void maybe_write_csv(const std::optional<std::string>& dir,
                            const std::string& file,
                            const metrics::RunRecorder& recorder) {
  if (!dir) return;
  std::filesystem::create_directories(*dir);
  std::ofstream out(*dir + "/" + file);
  recorder.write_csv(out);
  std::cout << "  [csv] " << *dir << "/" << file << "\n";
}

/// Machine-readable bench output: a flat JSON array of measurement rows,
/// one file per bench (e.g. BENCH_parallel.json), so the perf trajectory
/// across PRs can be diffed by tooling instead of scraped from stdout.
class BenchJson {
 public:
  /// One measurement: `section` names the workload, `threads` the lane
  /// count, `seconds` the wall-clock, `speedup` the ratio vs. threads=1.
  void add(const std::string& section, std::size_t threads, double seconds,
           double speedup) {
    std::string escaped;
    for (const char ch : section) {
      if (ch == '"' || ch == '\\') escaped += '\\';
      escaped += ch;
    }
    char numbers[128];
    std::snprintf(numbers, sizeof(numbers),
                  "\"threads\": %zu, \"seconds\": %.6f, \"speedup\": %.3f",
                  threads, seconds, speedup);
    rows_.push_back("  {\"section\": \"" + escaped + "\", " + numbers + "}");
  }

  void write(const std::string& path) const {
    std::ofstream out(path);
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out << "]\n";
    out.flush();
    if (out) {
      std::cout << "  [json] " << path << "\n";
    } else {
      std::cerr << "  [json] FAILED to write " << path << "\n";
    }
  }

 private:
  std::vector<std::string> rows_;
};

}  // namespace gsfl::bench
