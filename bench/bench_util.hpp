// Shared plumbing for the experiment benches (E1–E7): configuration from
// the command line, table printing, CSV export, and paper-vs-measured rows.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "gsfl/common/cli.hpp"
#include "gsfl/core/experiment.hpp"
#include "gsfl/metrics/recorder.hpp"

namespace gsfl::bench {

/// Standard bench flags:
///   --full            paper-scale configuration (32×32, 43 classes)
///   --rounds=N        override the round budget
///   --seed=S          override the master seed
///   --csv=DIR         also write per-run CSV files into DIR
struct BenchOptions {
  core::ExperimentConfig config;
  std::size_t rounds;
  std::optional<std::string> csv_dir;

  static BenchOptions parse(int argc, char** argv,
                            std::size_t default_rounds,
                            std::size_t full_rounds) {
    const common::CliArgs args(argc, argv, {"full"});
    BenchOptions options{
        .config = args.has_flag("full") ? core::ExperimentConfig::paper()
                                        : core::ExperimentConfig::scaled(),
        .rounds = static_cast<std::size_t>(args.int_or(
            "rounds", static_cast<std::int64_t>(
                          args.has_flag("full") ? full_rounds
                                                : default_rounds))),
        .csv_dir = args.value("csv"),
    };
    options.config.seed = static_cast<std::uint64_t>(
        args.int_or("seed", static_cast<std::int64_t>(options.config.seed)));
    return options;
  }
};

inline void print_header(const std::string& title,
                         const core::ExperimentConfig& config) {
  std::cout << "=== " << title << " ===\n"
            << "world: " << config.num_clients << " clients, "
            << config.num_groups << " groups, "
            << config.dataset.num_classes << " classes, "
            << config.dataset.image_size << "x" << config.dataset.image_size
            << " px, cut layer " << config.cut_layer << ", "
            << config.network.total_bandwidth_hz / 1e6 << " MHz band, seed "
            << config.seed << "\n\n";
}

/// "paper: X, measured: Y" comparison row.
inline void print_claim(const std::string& claim, const std::string& paper,
                        const std::string& measured) {
  std::printf("  %-52s paper: %-14s measured: %s\n", claim.c_str(),
              paper.c_str(), measured.c_str());
}

inline std::string format_seconds(std::optional<double> seconds) {
  if (!seconds) return "not reached";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f s", *seconds);
  return buffer;
}

inline std::string format_percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%", fraction * 100.0);
  return buffer;
}

/// Write one run's per-round records to <dir>/<file>.
inline void maybe_write_csv(const std::optional<std::string>& dir,
                            const std::string& file,
                            const metrics::RunRecorder& recorder) {
  if (!dir) return;
  std::filesystem::create_directories(*dir);
  std::ofstream out(*dir + "/" + file);
  recorder.write_csv(out);
  std::cout << "  [csv] " << *dir << "/" << file << "\n";
}

}  // namespace gsfl::bench
