// E1 — Fig. 2(a): accuracy vs. training rounds for CL, SL, GSFL, FL.
//
// Reproduces the paper's per-round convergence comparison on the synthetic
// GTSRB stand-in. Expected shape: CL and SL converge fastest, GSFL needs
// somewhat more rounds (inter-group averaging), FL needs several times more
// ("nearly 500% improvement in convergence speed" for GSFL over FL).
#include <iomanip>
#include <vector>

#include "bench_util.hpp"
#include "gsfl/schemes/trainer.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const auto options = bench::BenchOptions::parse(argc, argv,
                                                  /*default_rounds=*/80,
                                                  /*full_rounds=*/800);
  bench::print_header("E1 / Fig 2(a): accuracy vs training rounds",
                      options.config);

  const core::Experiment experiment(options.config);
  schemes::ExperimentOptions run;
  run.rounds = options.rounds;
  run.eval_every = std::max<std::size_t>(1, options.rounds / 40);

  std::vector<metrics::RunRecorder> runs;
  {
    auto cl = experiment.make_cl();
    runs.push_back(schemes::run_experiment(*cl, experiment.test_set(), run));
    auto sl = experiment.make_sl();
    runs.push_back(schemes::run_experiment(*sl, experiment.test_set(), run));
    auto gsfl_trainer = experiment.make_gsfl();
    runs.push_back(
        schemes::run_experiment(*gsfl_trainer, experiment.test_set(), run));
    auto fl = experiment.make_fl();
    runs.push_back(schemes::run_experiment(*fl, experiment.test_set(), run));
  }

  // Curve table: one row per evaluated round.
  std::cout << "round";
  for (const auto& r : runs) std::cout << '\t' << r.scheme_name() << "_acc%";
  std::cout << '\n';
  const std::size_t points = runs.front().rounds();
  for (std::size_t i = 0; i < points; ++i) {
    std::cout << runs.front().records()[i].round;
    for (const auto& r : runs) {
      std::cout << '\t' << std::fixed << std::setprecision(1)
                << r.records()[i].eval_accuracy * 100.0;
    }
    std::cout << '\n';
  }
  std::cout << '\n';

  // Convergence summary.
  const double target = 0.90;
  std::cout << "rounds to reach " << target * 100 << "% accuracy:\n";
  for (const auto& r : runs) {
    const auto rounds = r.rounds_to_accuracy(target, 2);
    std::cout << "  " << r.scheme_name() << ": "
              << (rounds ? std::to_string(*rounds) : "not reached") << '\n';
  }
  std::cout << '\n';

  const auto gsfl_rounds = runs[2].rounds_to_accuracy(target, 2);
  const auto fl_rounds = runs[3].rounds_to_accuracy(target, 2);
  if (gsfl_rounds && fl_rounds) {
    const double speedup = static_cast<double>(*fl_rounds) /
                           static_cast<double>(*gsfl_rounds);
    char measured[64];
    std::snprintf(measured, sizeof(measured), "%.0f%% (%.1fx in rounds)",
                  (speedup - 1.0) * 100.0, speedup);
    bench::print_claim("GSFL convergence-speed improvement over FL",
                       "~500% (5x)", measured);
  }
  bench::print_claim("CL/SL converge fastest per round; GSFL close; FL last",
                     "yes (Fig 2a)",
                     (runs[0].rounds_to_accuracy(target, 2).value_or(9999) <=
                          gsfl_rounds.value_or(9999) &&
                      gsfl_rounds.value_or(9999) <
                          fl_rounds.value_or(10000))
                         ? "yes"
                         : "NO — ordering broken");

  for (const auto& r : runs) {
    bench::maybe_write_csv(options.csv_dir,
                           "fig2a_" + r.scheme_name() + ".csv", r);
  }
  return 0;
}
