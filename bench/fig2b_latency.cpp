// E2 — Fig. 2(b): accuracy vs. cumulative training latency, GSFL vs SL.
//
// The paper's headline: GSFL reaches target accuracy with ~31.45% less
// delay than vanilla SL, because its M groups train in parallel while SL's
// clients form one long sequential chain.
#include <iomanip>

#include "bench_util.hpp"
#include "gsfl/schemes/trainer.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const auto options = bench::BenchOptions::parse(argc, argv,
                                                  /*default_rounds=*/80,
                                                  /*full_rounds=*/400);
  bench::print_header("E2 / Fig 2(b): accuracy vs training latency",
                      options.config);

  const core::Experiment experiment(options.config);
  schemes::ExperimentOptions run;
  run.rounds = options.rounds;
  run.eval_every = std::max<std::size_t>(1, options.rounds / 40);

  auto gsfl_trainer = experiment.make_gsfl();
  const auto gsfl_run =
      schemes::run_experiment(*gsfl_trainer, experiment.test_set(), run);
  auto sl = experiment.make_sl();
  const auto sl_run =
      schemes::run_experiment(*sl, experiment.test_set(), run);

  // Latency-indexed curves (the figure's x-axis is seconds, not rounds).
  std::cout << "scheme\tlatency_s\taccuracy%\n";
  for (const auto* r : {&gsfl_run, &sl_run}) {
    for (const auto& record : r->records()) {
      std::cout << r->scheme_name() << '\t' << std::fixed
                << std::setprecision(3) << record.sim_seconds << '\t'
                << std::setprecision(1) << record.eval_accuracy * 100.0
                << '\n';
    }
  }
  std::cout << '\n';

  for (const double target : {0.80, 0.90, 0.95}) {
    const auto t_gsfl = gsfl_run.seconds_to_accuracy(target, 2);
    const auto t_sl = sl_run.seconds_to_accuracy(target, 2);
    std::cout << "time to " << target * 100 << "% accuracy: GSFL "
              << bench::format_seconds(t_gsfl) << ", SL "
              << bench::format_seconds(t_sl) << '\n';
    if (target == 0.95 && t_gsfl && t_sl) {
      char measured[48];
      std::snprintf(measured, sizeof(measured), "%.2f%%",
                    (1.0 - *t_gsfl / *t_sl) * 100.0);
      std::cout << '\n';
      bench::print_claim("GSFL delay reduction vs SL at target accuracy",
                         "~31.45%", measured);
    }
  }

  // Per-round latency decomposition of the two schemes.
  std::cout << "\nper-round latency (round 1, seconds):\n";
  {
    auto g2 = experiment.make_gsfl();
    auto s2 = experiment.make_sl();
    const auto g_latency = g2->run_round().latency;
    const auto s_latency = s2->run_round().latency;
    std::cout << "  GSFL " << g_latency.to_string() << '\n'
              << "  SL   " << s_latency.to_string() << '\n';
  }

  bench::maybe_write_csv(options.csv_dir, "fig2b_GSFL.csv", gsfl_run);
  bench::maybe_write_csv(options.csv_dir, "fig2b_SL.csv", sl_run);
  return 0;
}
