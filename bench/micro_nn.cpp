// E8 — substrate microbenchmarks (google-benchmark).
//
// Measures the numeric kernels every experiment rides on: GEMM, im2col
// convolution, dense layers, loss, FedAvg aggregation, and the synthetic
// image renderer. Counters report achieved FLOP/s so the latency model's
// per-device FLOPS knob can be sanity-checked against real silicon.
#include <benchmark/benchmark.h>

#include "gsfl/common/rng.hpp"
#include "gsfl/data/synthetic_gtsrb.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/loss.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/schemes/aggregate.hpp"
#include "gsfl/tensor/gemm.hpp"
#include "gsfl/tensor/im2col.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto a = Tensor::uniform(Shape{n, n}, rng, -1, 1);
  const auto b = Tensor::uniform(Shape{n, n}, rng, -1, 1);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gsfl::tensor::gemm(1.0f, a, gsfl::tensor::Trans::kNo, b,
                       gsfl::tensor::Trans::kNo, 0.0f, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(2.0 * n * n * n * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransposed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto a = Tensor::uniform(Shape{n, n}, rng, -1, 1);
  const auto b = Tensor::uniform(Shape{n, n}, rng, -1, 1);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gsfl::tensor::gemm(1.0f, a, gsfl::tensor::Trans::kYes, b,
                       gsfl::tensor::Trans::kNo, 0.0f, c);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_GemmTransposed)->Arg(64)->Arg(128);

void BM_Im2col(benchmark::State& state) {
  Rng rng(3);
  const auto image = Tensor::uniform(Shape{1, 3, 32, 32}, rng, 0, 1);
  const gsfl::tensor::ConvGeometry geom{.in_channels = 3, .in_h = 32,
                                        .in_w = 32, .kernel = 3,
                                        .stride = 1, .pad = 1};
  for (auto _ : state) {
    auto cols = gsfl::tensor::im2col(image, 0, geom);
    benchmark::DoNotOptimize(cols.data().data());
  }
}
BENCHMARK(BM_Im2col);

void BM_Conv2dForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  gsfl::nn::Conv2d conv(3, 8, 3, 1, 1, rng);
  const auto x = Tensor::uniform(Shape{batch, 3, 32, 32}, rng, 0, 1);
  const auto cost = conv.flops(x.shape());
  for (auto _ : state) {
    auto y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(cost.forward) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(8);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(5);
  gsfl::nn::Conv2d conv(3, 8, 3, 1, 1, rng);
  const auto x = Tensor::uniform(Shape{8, 3, 32, 32}, rng, 0, 1);
  const auto y = conv.forward(x, true);
  const auto grad = Tensor::uniform(y.shape(), rng, -1, 1);
  for (auto _ : state) {
    conv.zero_grad();
    auto gx = conv.backward(grad);
    benchmark::DoNotOptimize(gx.data().data());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_DenseForward(benchmark::State& state) {
  Rng rng(6);
  gsfl::nn::Dense dense(1024, 256, rng);
  const auto x = Tensor::uniform(Shape{16, 1024}, rng, -1, 1);
  for (auto _ : state) {
    auto y = dense.forward(x, true);
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_DenseForward);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  Rng rng(7);
  const auto logits = Tensor::uniform(Shape{64, 43}, rng, -4, 4);
  std::vector<std::int32_t> labels(64);
  for (std::size_t i = 0; i < 64; ++i) {
    labels[i] = static_cast<std::int32_t>(i % 43);
  }
  for (auto _ : state) {
    auto result = gsfl::nn::softmax_cross_entropy(logits, labels);
    benchmark::DoNotOptimize(result.loss);
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy);

void BM_ModelForwardBackward(benchmark::State& state) {
  Rng rng(8);
  gsfl::nn::CnnConfig config;  // paper-scale 32x32x3 → 43 classes
  auto model = gsfl::nn::make_gtsrb_cnn(config, rng);
  const auto x = Tensor::uniform(Shape{16, 3, 32, 32}, rng, 0, 1);
  std::vector<std::int32_t> labels(16, 7);
  const auto cost = model.flops(x.shape());
  for (auto _ : state) {
    model.zero_grad();
    const auto logits = model.forward(x, true);
    const auto loss = gsfl::nn::softmax_cross_entropy(logits, labels);
    auto gx = model.backward(loss.grad_logits);
    benchmark::DoNotOptimize(gx.data().data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(cost.forward + cost.backward) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModelForwardBackward);

void BM_FedAvgAggregation(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  gsfl::nn::CnnConfig config;
  auto model = gsfl::nn::make_gtsrb_cnn(config, rng);
  std::vector<gsfl::nn::StateDict> states(replicas, model.state());
  std::vector<double> weights(replicas, 1.0);
  for (auto _ : state) {
    auto avg = gsfl::schemes::fedavg_states(states, weights);
    benchmark::DoNotOptimize(avg.data());
  }
}
BENCHMARK(BM_FedAvgAggregation)->Arg(6)->Arg(30);

void BM_SyntheticRender(benchmark::State& state) {
  gsfl::data::SyntheticGtsrbConfig config;
  config.image_size = 32;
  config.num_classes = 43;
  config.samples_per_class = 1;
  const gsfl::data::SyntheticGtsrb generator(config);
  Rng rng(10);
  for (auto _ : state) {
    auto ds = generator.generate_class(17, 1, rng);
    benchmark::DoNotOptimize(ds.images().data().data());
  }
}
BENCHMARK(BM_SyntheticRender);

}  // namespace

BENCHMARK_MAIN();
