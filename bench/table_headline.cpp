// E3 — headline-numbers table (§III text): one summary row per scheme,
// with the paper's three claims checked against measured values.
#include <cstdio>

#include "bench_util.hpp"
#include "gsfl/schemes/trainer.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const auto options = bench::BenchOptions::parse(argc, argv,
                                                  /*default_rounds=*/80,
                                                  /*full_rounds=*/600);
  bench::print_header("E3: headline claims (paper §III)", options.config);

  const core::Experiment experiment(options.config);
  schemes::ExperimentOptions run;
  run.rounds = options.rounds;
  run.eval_every = 2;

  struct Row {
    metrics::RunRecorder recorder;
  };
  std::vector<metrics::RunRecorder> runs;
  {
    auto cl = experiment.make_cl();
    runs.push_back(schemes::run_experiment(*cl, experiment.test_set(), run));
    auto sl = experiment.make_sl();
    runs.push_back(schemes::run_experiment(*sl, experiment.test_set(), run));
    auto gsfl_trainer = experiment.make_gsfl();
    runs.push_back(
        schemes::run_experiment(*gsfl_trainer, experiment.test_set(), run));
    auto fl = experiment.make_fl();
    runs.push_back(schemes::run_experiment(*fl, experiment.test_set(), run));
  }

  const double target = 0.90;
  std::printf("%-6s %10s %14s %16s %12s\n", "scheme", "best_acc%",
              "rounds_to_90%", "seconds_to_90%", "final_acc%");
  for (const auto& r : runs) {
    const auto rounds = r.rounds_to_accuracy(target, 2);
    const auto seconds = r.seconds_to_accuracy(target, 2);
    std::printf("%-6s %10.1f %14s %16s %12.1f\n", r.scheme_name().c_str(),
                r.best_accuracy() * 100.0,
                rounds ? std::to_string(*rounds).c_str() : "—",
                seconds ? bench::format_seconds(seconds).c_str() : "—",
                r.final_accuracy() * 100.0);
  }
  std::cout << '\n';

  const auto& sl_run = runs[1];
  const auto& gsfl_run = runs[2];
  const auto& fl_run = runs[3];

  // Claim 1: GSFL accuracy comparable to SL and CL.
  {
    const double gap = sl_run.best_accuracy() - gsfl_run.best_accuracy();
    char measured[64];
    std::snprintf(measured, sizeof(measured), "gap to SL = %.1f pp",
                  gap * 100.0);
    bench::print_claim("GSFL accuracy comparable to SL/CL", "comparable",
                       measured);
  }
  // Claim 2: ~500% convergence-speed improvement over FL.
  {
    const auto g = gsfl_run.rounds_to_accuracy(target, 2);
    const auto f = fl_run.rounds_to_accuracy(target, 2);
    char measured[64];
    if (g && f) {
      std::snprintf(measured, sizeof(measured), "%.1fx in rounds",
                    static_cast<double>(*f) / static_cast<double>(*g));
    } else {
      std::snprintf(measured, sizeof(measured), "target not reached");
    }
    bench::print_claim("GSFL convergence speed vs FL", "~5x", measured);
  }
  // Claim 3: ~31.45% delay reduction vs SL.
  {
    const auto g = gsfl_run.seconds_to_accuracy(target, 2);
    const auto s = sl_run.seconds_to_accuracy(target, 2);
    char measured[64];
    if (g && s) {
      std::snprintf(measured, sizeof(measured), "%.2f%%",
                    (1.0 - *g / *s) * 100.0);
    } else {
      std::snprintf(measured, sizeof(measured), "target not reached");
    }
    bench::print_claim("GSFL delay reduction vs SL", "~31.45%", measured);
  }

  for (const auto& r : runs) {
    bench::maybe_write_csv(options.csv_dir,
                           "headline_" + r.scheme_name() + ".csv", r);
  }
  return 0;
}
