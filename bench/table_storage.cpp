// E6 — server-side storage table (the paper's §I resource argument).
//
// "The simple combination scheme [SplitFed] requires equipping each client
// with a server-side model ... consuming prohibitive storage resources."
// GSFL stores M ≪ N replicas instead. This bench prints storage and one
// round's latency for SL (1 replica), GSFL (M), and SplitFed (N).
#include <cstdio>

#include "bench_util.hpp"
#include "gsfl/schemes/trainer.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const auto options = bench::BenchOptions::parse(argc, argv,
                                                  /*default_rounds=*/1,
                                                  /*full_rounds=*/1);
  bench::print_header("E6: server-side model storage (paper §I)",
                      options.config);

  const core::Experiment experiment(options.config);
  auto sl = experiment.make_sl();
  auto gsfl_trainer = experiment.make_gsfl();
  auto sfl = experiment.make_sfl();

  const std::size_t one_replica = sl->split_model().server_state_bytes();
  const std::size_t gsfl_storage = gsfl_trainer->server_storage_bytes();
  const std::size_t sfl_storage = sfl->server_storage_bytes();

  const double sl_round = sl->run_round().latency.total();
  const double gsfl_round = gsfl_trainer->run_round().latency.total();
  const double sfl_round = sfl->run_round().latency.total();

  std::printf("%-8s %16s %18s %18s\n", "scheme", "server_models",
              "server_storage_kB", "round_latency_s");
  std::printf("%-8s %16zu %18.1f %18.4f\n", "SL", std::size_t{1},
              static_cast<double>(one_replica) / 1024.0, sl_round);
  std::printf("%-8s %16zu %18.1f %18.4f\n", "GSFL",
              gsfl_trainer->num_groups(),
              static_cast<double>(gsfl_storage) / 1024.0, gsfl_round);
  std::printf("%-8s %16zu %18.1f %18.4f\n", "SFL",
              experiment.network().num_clients(),
              static_cast<double>(sfl_storage) / 1024.0, sfl_round);

  std::cout << '\n';
  char measured[64];
  std::snprintf(measured, sizeof(measured), "%.0fx less than SFL (M=%zu vs N=%zu)",
                static_cast<double>(sfl_storage) / gsfl_storage,
                gsfl_trainer->num_groups(),
                experiment.network().num_clients());
  bench::print_claim("GSFL server storage vs per-client replicas",
                     "M/N of SFL", measured);
  bench::print_claim(
      "GSFL keeps most of SFL's parallel speed-up",
      "close to SFL",
      gsfl_round < 0.6 * sl_round ? "yes (see round latency column)"
                                  : "partially — profile-dependent");
  return 0;
}
