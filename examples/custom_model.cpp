// Custom model example: bring your own architecture (and your own data).
//
// Demonstrates the layer-level API directly — no Experiment factory:
//   1. assemble a bespoke Sequential,
//   2. choose a cut and inspect the resulting split,
//   3. run manual split-learning steps against a hand-made dataset,
//   4. checkpoint the trained model and reload it.
//
// Also shows the ingestion path for real image data: the example renders a
// few synthetic signs to PPM files, then loads them back through
// load_image_directory() — exactly what you would do with the actual GTSRB.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "gsfl/data/image_io.hpp"
#include "gsfl/data/sampler.hpp"
#include "gsfl/data/synthetic_gtsrb.hpp"
#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/checkpoint.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/flatten.hpp"
#include "gsfl/nn/loss.hpp"
#include "gsfl/nn/optimizer.hpp"
#include "gsfl/nn/pooling.hpp"
#include "gsfl/nn/split.hpp"

int main() {
  using namespace gsfl;
  common::Rng rng(11);

  // --- 1. a bespoke architecture -----------------------------------------
  nn::Sequential model;
  model.emplace<nn::Conv2d>(3, 6, 3, 1, 1, rng);
  model.emplace<nn::LeakyRelu>(0.05f);
  model.emplace<nn::MaxPool2d>(2);
  model.emplace<nn::Conv2d>(6, 12, 3, 1, 1, rng);
  model.emplace<nn::Tanh>();
  model.emplace<nn::AvgPool2d>(2);
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(12 * 4 * 4, 32, rng);
  model.emplace<nn::Relu>();
  model.emplace<nn::Dense>(32, 5, rng);
  std::cout << model.summary(tensor::Shape{1, 3, 16, 16}) << "\n\n";

  // --- 2. split it after the first block ---------------------------------
  nn::SplitModel split(model, 3);
  const tensor::Shape batch_shape{8, 3, 16, 16};
  std::cout << "cut 3: client holds " << split.client_state_bytes()
            << " B of weights; smashed data is "
            << split.smashed_bytes(batch_shape) << " B per batch of 8\n\n";

  // --- 3. data: synthetic signs, round-tripped through PPM files ---------
  const std::string dir = "custom_model_data";
  std::filesystem::create_directories(dir);
  data::SyntheticGtsrbConfig data_config;
  data_config.image_size = 24;  // deliberately ≠ model input: loader resizes
  data_config.num_classes = 5;
  data_config.samples_per_class = 1;
  const data::SyntheticGtsrb generator(data_config);
  {
    std::ofstream index(dir + "/index.csv");
    auto render_rng = rng.fork(1);
    for (std::size_t c = 0; c < 5; ++c) {
      for (int i = 0; i < 8; ++i) {
        const auto ds = generator.generate_class(c, 1, render_rng);
        const auto image = ds.images().slice0(0, 1).reshape(
            tensor::Shape{3, 24, 24});
        const std::string name =
            "c" + std::to_string(c) + "_" + std::to_string(i) + ".ppm";
        data::write_ppm_file(dir + "/" + name, image);
        index << name << ',' << c << '\n';
      }
    }
  }
  const auto dataset = data::load_image_directory(dir, 5, 16);
  std::cout << "loaded " << dataset.size() << " images from " << dir
            << "/ (resized 24->16)\n";

  // --- 4. manual split-training steps ------------------------------------
  nn::Sgd client_opt(0.1);
  client_opt.attach(split.client().parameters(), split.client().gradients());
  nn::Sgd server_opt(0.1);
  server_opt.attach(split.server().parameters(), split.server().gradients());

  data::BatchSampler sampler(dataset, 8, rng.fork(2));
  for (int step = 1; step <= 40; ++step) {
    const auto batch = sampler.next();
    split.zero_grad();
    const auto smashed = split.client_forward(batch.images, true);
    const auto logits = split.server_forward(smashed, true);
    const auto loss = nn::softmax_cross_entropy(logits, batch.labels);
    const auto grad_smashed = split.server_backward(loss.grad_logits);
    split.client_backward(grad_smashed);
    server_opt.step();
    client_opt.step();
    if (step % 10 == 0) {
      std::cout << "step " << step << ": loss " << loss.loss << ", acc "
                << nn::accuracy(logits, batch.labels) * 100 << "%\n";
    }
  }

  // --- 5. checkpoint the merged model and prove the round trip -----------
  auto merged = split.merged();
  nn::save_checkpoint_file(dir + "/model.ckpt", merged);
  auto restored = model;  // same architecture, stale weights
  nn::load_checkpoint_file(dir + "/model.ckpt", restored);
  const auto probe =
      tensor::Tensor::uniform(tensor::Shape{1, 3, 16, 16}, rng, 0, 1);
  std::cout << "\ncheckpoint round-trip exact: "
            << (merged.forward(probe, false) == restored.forward(probe, false)
                    ? "yes"
                    : "NO")
            << "\nartifacts in " << dir << "/\n";
  return 0;
}
