// Cut-layer study: what each possible split point of the GTSRB CNN costs.
//
// For every legal cut this prints the client-side parameter footprint, the
// smashed-data payload, and the client/server FLOP split — the quantities a
// deployment engineer weighs when choosing where to cut a model for weak
// devices (the paper's first piece of future work).
#include <cstdio>
#include <iostream>

#include "gsfl/common/cli.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/nn/split.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const common::CliArgs args(argc, argv);
  const auto batch = static_cast<std::size_t>(args.int_or("batch", 16));

  nn::CnnConfig config;  // paper-scale: 32x32x3, 43 classes
  common::Rng rng(7);
  const auto model = nn::make_gtsrb_cnn(config, rng);
  const tensor::Shape input{batch, 3, config.image_size, config.image_size};

  auto probe = model;
  std::cout << "model:\n" << probe.summary(input) << "\n\n";
  const auto total = probe.flops(input);

  std::printf("%-4s %-28s %12s %14s %14s %14s\n", "cut", "boundary_layer",
              "client_kB", "smashed_kB", "client_FLOP%", "relay_cost*");
  for (std::size_t cut = 0; cut <= model.size(); ++cut) {
    const nn::SplitModel split(model, cut);
    const auto client = split.client_flops(input);
    const double client_share =
        100.0 * static_cast<double>(client.forward + client.backward) /
        static_cast<double>(total.forward + total.backward);
    // Relay cost proxy: client model bytes shipped N-1 times per round.
    const double relay_kb =
        static_cast<double>(split.client_state_bytes()) / 1024.0 * 29.0;
    std::printf("%-4zu %-28s %12.2f %14.2f %13.1f%% %14.1f\n", cut,
                cut == 0 ? "(input)" : model.layer(cut - 1).name().c_str(),
                static_cast<double>(split.client_state_bytes()) / 1024.0,
                static_cast<double>(split.smashed_bytes(input)) / 1024.0,
                client_share, relay_kb);
  }
  std::cout << "\n* kB relayed per 30-client SL round (client model x 29 "
               "hand-offs)\n";
  std::cout << "\nThe paper cuts after the first conv block (cut "
            << nn::default_cut_layer(config)
            << "): a few kB of client model, moderate smashed data, and "
               "<10% of the FLOPs on the device.\n";
  return 0;
}
