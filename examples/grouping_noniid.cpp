// Grouping under non-IID data: why *how* you group clients matters.
//
// Partitions the synthetic GTSRB data with label-skewed shards (each client
// sees ~2 classes), then compares GSFL under contiguous, random, and
// label-aware grouping: label imbalance of the groups, and accuracy after a
// fixed round budget. Label-aware grouping gives every group a near-global
// label mix, so its per-group models average better.
#include <cstdio>
#include <iostream>

#include "gsfl/common/cli.hpp"
#include "gsfl/core/experiment.hpp"
#include "gsfl/schemes/trainer.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const common::CliArgs args(argc, argv);
  const auto rounds = static_cast<std::size_t>(args.int_or("rounds", 40));

  auto config = core::ExperimentConfig::scaled();
  config.partition = core::PartitionKind::kShards;
  config.shards_per_client = 1;  // extreme label skew: ~1 class per client

  struct Policy {
    const char* name;
    core::GroupingPolicy policy;
  };
  const Policy policies[] = {
      {"contiguous", core::GroupingPolicy::kContiguous},
      {"random", core::GroupingPolicy::kRandom},
      {"label-aware", core::GroupingPolicy::kLabelAware},
  };

  std::printf("%-12s %18s %14s %16s\n", "grouping", "label_imbalance",
              "final_acc%", "rounds_to_80%");
  for (const auto& p : policies) {
    config.grouping = p.policy;
    const core::Experiment experiment(config);
    auto trainer = experiment.make_gsfl();

    const double imbalance = core::grouping_label_imbalance(
        trainer->groups(), experiment.client_data());

    schemes::ExperimentOptions options;
    options.rounds = rounds;
    options.eval_every = 2;
    const auto recorder =
        schemes::run_experiment(*trainer, experiment.test_set(), options);
    const auto r80 = recorder.rounds_to_accuracy(0.80, 2);

    std::printf("%-12s %18.5f %14.1f %16s\n", p.name, imbalance,
                recorder.final_accuracy() * 100.0,
                r80 ? std::to_string(*r80).c_str() : "not reached");
  }

  std::cout << "\nLower imbalance -> each group's pooled data looks closer "
               "to the global distribution,\nwhich is what FedAvg across "
               "groups implicitly assumes. The label-aware greedy strategy\n"
               "(see gsfl/core/grouping.hpp) minimizes exactly the imbalance "
               "metric shown here.\n"
               "At this miniature scale the accuracy column is noisy (one "
               "seed, small test set);\nthe imbalance column is "
               "deterministic and is the quantity the strategy optimizes.\n";
  return 0;
}
