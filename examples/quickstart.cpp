// Quickstart: train a GSFL model end to end in ~30 lines of library calls.
//
//   $ ./quickstart [--rounds=N]
//
// Builds the scaled synthetic-GTSRB world (30 clients, 6 groups), trains
// GSFL for a few rounds, and prints the accuracy/latency trajectory.
#include <iostream>

#include "gsfl/common/cli.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/core/experiment.hpp"
#include "gsfl/schemes/trainer.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const common::CliArgs args(argc, argv);
  const auto rounds = static_cast<std::size_t>(args.int_or("rounds", 20));

  // 1. Describe the world: dataset, clients, wireless network, model.
  auto config = core::ExperimentConfig::scaled();
  // Host-side parallelism (simulated results are identical for any value);
  // default resolves as GSFL_THREADS env, then hardware concurrency.
  config.train.threads =
      static_cast<std::size_t>(args.int_or("threads", 0));
  const core::Experiment experiment(config);
  std::cout << "clients: " << experiment.network().num_clients()
            << ", groups: " << config.num_groups
            << ", train samples: " << [&] {
                 std::size_t n = 0;
                 for (const auto& d : experiment.client_data()) n += d.size();
                 return n;
               }()
            << ", test samples: " << experiment.test_set().size() << "\n";

  auto model = experiment.initial_model();
  std::cout << model.summary(experiment.test_set().batch_shape(1)) << "\n\n";

  // 2. Make the GSFL trainer (model distribution / grouped split training /
  //    FedAvg aggregation all happen inside run_round()).
  auto trainer = experiment.make_gsfl();

  // 3. Train, evaluating each round on the held-out set.
  schemes::ExperimentOptions options;
  options.rounds = rounds;
  options.verbose = true;  // prints one line per round
  const auto recorder =
      schemes::run_experiment(*trainer, experiment.test_set(), options);

  // 4. Summarize.
  std::cout << "\nbest accuracy: " << recorder.best_accuracy() * 100.0
            << "% after " << recorder.rounds() << " rounds, "
            << recorder.last().sim_seconds << " simulated seconds\n";
  if (const auto t90 = recorder.seconds_to_accuracy(0.9, 2)) {
    std::cout << "time to 90%: " << *t90 << " simulated seconds\n";
  }
  return 0;
}
