// Wireless scenario: build a heterogeneous network *explicitly* (instead of
// the Experiment factory) and inspect where a GSFL round spends its time.
//
// Models a small campus deployment: a few phone-class devices near the AP,
// a mid tier, and two far-away IoT-class stragglers. The channel applies
// per-round Rayleigh fading (pass --no-fading for the static channel):
// fade gains are redrawn once per round from a dedicated stream, outside
// the trainer's parallel round, so runs stay bitwise reproducible. Prints
// each group's latency chain and writes a per-round Gantt CSV.
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>

#include "gsfl/common/cli.hpp"
#include "gsfl/core/checkpoint.hpp"
#include "gsfl/core/gsfl.hpp"
#include "gsfl/data/partition.hpp"
#include "gsfl/data/synthetic_gtsrb.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/nn/split.hpp"
#include "gsfl/sim/timeline.hpp"
#include "gsfl/tensor/quantize.hpp"

int main(int argc, char** argv) {
  using namespace gsfl;
  const common::CliArgs args(argc, argv, {"no-fading", "help"});
  if (args.has_flag("help")) {
    std::cout
        << "usage: " << args.program() << " [options]\n"
        << "\n"
        << "Heterogeneous 9-device GSFL scenario with per-round Rayleigh\n"
        << "fading; prints each group's latency chain and writes a Gantt\n"
        << "CSV.\n"
        << "\n"
        << "options:\n"
        << "  --rounds=N     global rounds to simulate (default 5)\n"
        << "  --csv=PATH     timeline CSV output path (default\n"
        << "                 wireless_timeline.csv)\n"
        << "  --no-fading    static channel: skip the per-round Rayleigh\n"
        << "                 fade redraw\n"
        << "  --quant-bits=N quantize cut-layer payloads to N bits in [2,8]\n"
        << "                 (default 0 = raw f32): smashed activations and\n"
        << "                 gradients are priced at the quantized wire\n"
        << "                 bytes and trained through quantize-dequantize\n"
        << "  --fault-rate=P per-round probability each device crashes\n"
        << "                 before computing (default 0; deterministic\n"
        << "                 round-keyed fault plans, see docs/robustness.md)\n"
        << "  --deadline=S   simulated seconds after which the AP aggregates\n"
        << "                 whatever has arrived (default: wait for all)\n"
        << "  --quorum=Q     fraction of groups whose report closes the\n"
        << "                 round, in (0,1] (default 1.0 = full barrier)\n"
        << "  --adaptive=P   per-round cut/bandwidth controller: off, greedy,\n"
        << "                 paper, or bandit (default off). Re-picks the cut\n"
        << "                 layer and re-balances group shares from each\n"
        << "                 round's observed latency (see docs/adaptive.md)\n"
        << "  --checkpoint-dir=DIR\n"
        << "                 write a resumable experiment checkpoint\n"
        << "                 (<scheme>_round_<r>.gsflx) after every round\n"
        << "  --threads=N    host-side parallel lanes (default: GSFL_THREADS\n"
        << "                 env, then hardware concurrency; simulated\n"
        << "                 results are identical for every value)\n"
        << "  --help         this text\n";
    return 0;
  }
  const auto rounds = static_cast<std::size_t>(args.int_or("rounds", 5));
  const bool fading = !args.has_flag("no-fading");
  const auto quant_bits =
      static_cast<std::size_t>(args.int_or("quant-bits", 0));
  const double fault_rate = args.double_or("fault-rate", 0.0);
  const double deadline =
      args.double_or("deadline", std::numeric_limits<double>::infinity());
  const double quorum = args.double_or("quorum", 1.0);
  const std::string adaptive = args.value_or("adaptive", "off");
  const std::string checkpoint_dir = args.value_or("checkpoint-dir", "");

  // --- the fleet: 9 devices in three tiers ---
  std::vector<net::DeviceProfile> devices;
  for (int i = 0; i < 3; ++i) {  // phones near the AP
    devices.push_back({.distance_m = 15.0 + 5.0 * i,
                       .tx_power_dbm = 23.0,
                       .compute_flops = 2e9});
  }
  for (int i = 0; i < 4; ++i) {  // mid-tier tablets
    devices.push_back({.distance_m = 60.0 + 10.0 * i,
                       .tx_power_dbm = 20.0,
                       .compute_flops = 8e8});
  }
  for (int i = 0; i < 2; ++i) {  // far IoT stragglers
    devices.push_back({.distance_m = 150.0 + 30.0 * i,
                       .tx_power_dbm = 17.0,
                       .compute_flops = 1.5e8});
  }
  net::NetworkConfig net_config;
  net_config.total_bandwidth_hz = 20e6;
  net_config.channel.rayleigh_fading = fading;
  net_config.channel.quantizer =
      tensor::QuantizerConfig{.bits = quant_bits, .per_channel = false};
  net::WirelessNetwork network(net_config, devices);

  // --- data: synthetic GTSRB spread IID over the 9 devices ---
  common::Rng rng(2024);
  data::SyntheticGtsrbConfig data_config;
  data_config.image_size = 16;
  data_config.num_classes = 8;
  data_config.samples_per_class = 45;
  const data::SyntheticGtsrb generator(data_config);
  auto data_rng = rng.fork(1);
  const auto train_set = generator.generate(data_rng);
  auto part_rng = rng.fork(2);
  const auto client_data = data::materialize(
      train_set, data::partition_iid(train_set, devices.size(), part_rng));

  // --- model & trainer: 3 groups chosen label-aware ---
  nn::CnnConfig model_config;
  model_config.image_size = 16;
  model_config.classes = 8;
  auto model_rng = rng.fork(3);
  auto model = nn::make_gtsrb_cnn(model_config, model_rng);

  core::GsflConfig gsfl_config;
  gsfl_config.num_groups = 3;
  gsfl_config.cut_layer = nn::default_cut_layer(model_config);
  gsfl_config.grouping = core::GroupingPolicy::kLabelAware;
  gsfl_config.train.threads =
      static_cast<std::size_t>(args.int_or("threads", 0));
  gsfl_config.train.faults.crash_before_rate = fault_rate;
  gsfl_config.train.faults.seed = 0xFA171;
  gsfl_config.train.round_policy.deadline_seconds = deadline;
  gsfl_config.train.round_policy.quorum_fraction = quorum;
  core::GsflTrainer trainer(network, client_data, model, gsfl_config);

  std::shared_ptr<schemes::AdaptiveController> controller;
  if (adaptive != "off") {
    const auto policy = schemes::parse_adaptive_policy(adaptive);
    if (!policy) {
      std::cerr << "unknown --adaptive policy '" << adaptive
                << "' (want off, greedy, paper, or bandit)\n";
      return 1;
    }
    schemes::AdaptiveConfig adaptive_config;
    adaptive_config.policy = *policy;
    controller =
        std::make_shared<schemes::AdaptiveController>(adaptive_config);
    trainer.set_adaptive(controller);
    std::cout << "adaptive controller: " << schemes::to_string(*policy)
              << ", " << controller->candidates().size()
              << " candidate cuts, starting at layer " << trainer.cut_layer()
              << "\n";
  }

  std::cout << "channel: "
            << (fading ? "rayleigh fading, redrawn per round" : "static")
            << "\n";
  // Per-batch cut-layer payload accounting, straight from the model
  // geometry: what one smashed tensor costs on the wire raw vs quantized.
  const nn::SplitModel split_probe(model, gsfl_config.cut_layer);
  const auto batch_shape =
      train_set.batch_shape(gsfl_config.train.batch_size);
  const auto f32_payload = split_probe.smashed_bytes(batch_shape);
  std::size_t quant_payload = f32_payload;
  if (net_config.channel.quantizer.active()) {
    quant_payload = tensor::quantized_wire_bytes(
        split_probe.smashed_shape(batch_shape), net_config.channel.quantizer);
    std::cout << "quantizer: " << quant_bits << "-bit cut-layer payloads, "
              << quant_payload << " B/batch vs " << f32_payload
              << " B f32 ("
              << static_cast<double>(f32_payload) /
                     static_cast<double>(quant_payload)
              << "x smaller)\n";
  }
  if (gsfl_config.train.faults.active() ||
      gsfl_config.train.round_policy.active()) {
    std::cout << "robustness: fault-rate " << fault_rate << ", deadline "
              << deadline << "s, quorum " << quorum << "\n";
  }
  std::cout << "groups (label-aware):\n";
  for (std::size_t g = 0; g < trainer.groups().size(); ++g) {
    std::cout << "  group " << g << ": clients";
    for (const auto c : trainer.groups()[g]) std::cout << ' ' << c;
    std::cout << '\n';
  }

  // --- train and narrate the per-group critical path ---
  // Fades are pre-drawn here, between rounds — outside the trainer's
  // parallel region — which is what keeps faded latencies bitwise identical
  // for any thread count.
  auto fade_rng = rng.fork(4);
  sim::Timeline timeline;
  for (std::size_t round = 1; round <= rounds; ++round) {
    network.redraw_fades(fade_rng);
    const auto result = trainer.run_round();
    timeline.append("round " + std::to_string(round), result.latency);
    std::cout << "\nround " << round << " (loss " << result.train_loss
              << "): " << result.latency.to_string() << '\n';
    if (net_config.channel.quantizer.active()) {
      std::cout << "  cut payload: " << quant_payload << " B/batch ("
                << f32_payload - quant_payload << " B/batch saved vs f32)\n";
    }
    for (const auto& record : result.participation) {
      if (record.fault == sim::FaultKind::kNone) continue;
      std::cout << "  client " << record.client << ": "
                << to_string(record.fault) << '\n';
    }
    if (controller) {
      const auto& decision = controller->last_decision();
      std::cout << "  adaptive: cut " << trainer.cut_layer()
                << (decision.changed ? " (moved)" : " (kept)")
                << (decision.explored ? ", explored" : "") << ", shares";
      for (const double share : trainer.group_shares()) {
        std::cout << ' ' << share;
      }
      std::cout << '\n';
    }
    if (!checkpoint_dir.empty()) {
      core::save_experiment_checkpoint_file(
          core::checkpoint_path(checkpoint_dir, trainer.name(), round),
          trainer, {}, timeline.now_seconds());
    }
    for (std::size_t g = 0; g < trainer.last_group_chains().size(); ++g) {
      const auto& chain = trainer.last_group_chains()[g];
      std::cout << "  group " << g << " chain: " << chain.total() << "s"
                << (chain.total() + result.latency.aggregation >=
                            result.latency.total()
                        ? "  <- critical path"
                        : "")
                << '\n';
    }
  }

  std::cout << "\ntotal simulated time: " << timeline.now_seconds() << "s\n";
  const std::string csv_path = args.value_or("csv", "wireless_timeline.csv");
  std::ofstream csv(csv_path);
  timeline.write_csv(csv);
  std::cout << "timeline written to " << csv_path << '\n';
  return 0;
}
