// Deterministic async task-graph lane.
//
// AsyncLane runs individually submitted tasks on a small pool of persistent
// workers, with explicit dependency edges between tasks — the execution
// substrate for work that *overlaps* instead of fork-joining: pack-ahead
// GEMM packing (pack k slice b+1 while block b sweeps) and pipelined
// federated rounds (fold finished replicas while stragglers still compute).
//
// Determinism contract (the async mirror of parallel_map's outcome slots):
//   - Every task gets a fixed id at submission; ids are assigned in
//     submission order, which is program order — never completion order.
//   - A task writes only state it owns (its future's value, outcome slots
//     owned by its index); anything order-sensitive is merged by a
//     *downstream* task whose dependency edges pin the order, or by
//     when_all, which collects values in submission order. Which worker
//     runs a task, and when, is scheduling noise.
//   - Dependencies only gate *scheduling*. A task body must compute the
//     same value no matter how late it runs.
//
// Help-on-wait: TaskFuture::wait() on a task that is queued but unclaimed
// executes it inline on the waiting thread. Two consequences: waiting can
// never deadlock on a saturated lane (the waiter becomes the worker), and
// submitting from inside a task is always safe.
//
// Lifetime: wait every future (or keep the lane alive) before destroying a
// lane — destruction drains the queue but cannot run tasks whose
// dependencies never completed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <initializer_list>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "gsfl/common/expect.hpp"
#include "gsfl/common/mutex.hpp"
#include "gsfl/common/thread_annotations.hpp"

namespace gsfl::common {

class AsyncLane;

namespace lane_detail {

/// Type-erased task record shared by the queue, dependency edges, and
/// futures. Stage transitions: kBlocked (deps pending) → kReady (queued)
/// → kClaimed (some thread is executing it) → kDone.
struct TaskCore {
  enum class Stage { kBlocked, kReady, kClaimed, kDone };

  std::uint64_t id = 0;
  AsyncLane* lane = nullptr;

  Mutex mutex;
  std::condition_variable cv;
  Stage stage GSFL_GUARDED_BY(mutex) = Stage::kBlocked;
  std::size_t pending_deps GSFL_GUARDED_BY(mutex) = 0;
  /// Moved out at claim time.
  std::function<void()> run GSFL_GUARDED_BY(mutex);
  /// First failed dependency's error.
  std::exception_ptr dep_error GSFL_GUARDED_BY(mutex);
  /// This task's outcome error.
  std::exception_ptr error GSFL_GUARDED_BY(mutex);
  std::vector<std::function<void(const std::exception_ptr&)>> continuations
      GSFL_GUARDED_BY(mutex);

  /// Mark done with `err` (nullptr = success), wake waiters, fire
  /// continuations (outside the lock).
  void complete(std::exception_ptr err);
  /// Register fn to run at completion (immediately if already done).
  void on_complete(std::function<void(const std::exception_ptr&)> fn);
  /// Claim and execute if kReady; no-op otherwise (shared by workers and
  /// helping waiters).
  static void run_if_ready(const std::shared_ptr<TaskCore>& core);
  /// Block until done; rethrow the task's error.
  void wait_done();
};

template <typename T>
struct TaskState : TaskCore {
  /// Deliberately not GSFL_GUARDED_BY(mutex): the producing task writes it
  /// before complete() publishes kDone, and consumers read it only after
  /// observing completion (wait_done or a dependency edge) — ordered by the
  /// mutex hand-off in complete()/on_complete(), never accessed concurrently.
  std::optional<T> value;
};

template <>
struct TaskState<void> : TaskCore {};

}  // namespace lane_detail

/// Type-erased completion handle — a dependency edge. Default-constructed
/// handles are "no dependency" and are skipped by submit_after.
class TaskHandle {
 public:
  TaskHandle() = default;
  [[nodiscard]] bool valid() const { return core_ != nullptr; }
  /// Submission-order task id (0 for an invalid handle).
  [[nodiscard]] std::uint64_t id() const { return core_ ? core_->id : 0; }

 private:
  friend class AsyncLane;
  template <typename T>
  friend class TaskFuture;
  explicit TaskHandle(std::shared_ptr<lane_detail::TaskCore> core)
      : core_(std::move(core)) {}
  std::shared_ptr<lane_detail::TaskCore> core_;
};

/// Typed handle to a submitted task's eventual value.
template <typename T>
class TaskFuture {
 public:
  TaskFuture() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const { return state_ ? state_->id : 0; }
  [[nodiscard]] TaskHandle handle() const { return TaskHandle(state_); }

  /// True once the task completed (successfully or with an error).
  [[nodiscard]] bool ready() const {
    GSFL_EXPECT(state_ != nullptr);
    MutexLock lock(state_->mutex);
    return state_->stage == lane_detail::TaskCore::Stage::kDone;
  }

  /// Block until the task completed; rethrows its exception. If the task is
  /// queued but unclaimed, the waiting thread executes it inline.
  std::add_lvalue_reference_t<T> wait() {
    GSFL_EXPECT(state_ != nullptr);
    lane_detail::TaskCore::run_if_ready(state_);
    state_->wait_done();
    if constexpr (!std::is_void_v<T>) return *state_->value;
  }

 private:
  friend class AsyncLane;
  explicit TaskFuture(std::shared_ptr<lane_detail::TaskState<T>> state)
      : state_(std::move(state)) {}
  std::shared_ptr<lane_detail::TaskState<T>> state_;
};

class AsyncLane {
 public:
  /// A lane with `workers` persistent worker threads (at least 1).
  explicit AsyncLane(std::size_t workers);
  ~AsyncLane();

  AsyncLane(const AsyncLane&) = delete;
  AsyncLane& operator=(const AsyncLane&) = delete;

  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Workers currently parked on an empty queue — a cheap, racy capacity
  /// signal (one relaxed atomic load). Schedulers use it to decide whether
  /// offloading (e.g. pack-ahead GEMM packing) would actually overlap or
  /// merely queue behind busy workers; the answer is advisory, never a
  /// correctness input — a stale read only changes *which* thread does the
  /// work, and lane tasks compute the same values on any thread.
  [[nodiscard]] std::size_t idle_workers() const;

  /// Submit fn() with no dependencies; runs as soon as a worker (or a
  /// helping waiter) picks it up.
  template <typename Fn>
  auto submit(Fn fn) -> TaskFuture<std::invoke_result_t<Fn&>> {
    return submit_after(std::move(fn), {});
  }

  /// Submit fn() gated on every valid handle in `deps`: it becomes runnable
  /// only after all of them completed. If any dependency failed, fn is
  /// skipped and the task completes with that error.
  template <typename Fn>
  auto submit_after(Fn fn, std::span<const TaskHandle> deps)
      -> TaskFuture<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto state = std::make_shared<lane_detail::TaskState<R>>();
    state->id = next_id();
    state->lane = this;
    auto body = [state, fn = std::move(fn)]() mutable {
      std::exception_ptr err;
      {
        MutexLock lock(state->mutex);
        err = state->dep_error;
      }
      if (!err) {
        try {
          if constexpr (std::is_void_v<R>) {
            fn();
          } else {
            state->value.emplace(fn());
          }
        } catch (...) {
          err = std::current_exception();
        }
      }
      state->complete(err);
    };
    {
      // No contention yet (the task is unpublished until attach), but run is
      // guarded state: take the lock so the write is visible to whichever
      // thread claims the task, and provable to the thread-safety analysis.
      MutexLock lock(state->mutex);
      state->run = std::move(body);
    }
    attach(state, deps);
    return TaskFuture<R>(std::move(state));
  }

  template <typename Fn>
  auto submit_after(Fn fn, std::initializer_list<TaskHandle> deps)
      -> TaskFuture<std::invoke_result_t<Fn&>> {
    return submit_after(std::move(fn),
                        std::span<const TaskHandle>(deps.begin(), deps.size()));
  }

  /// Continuation sugar: run fn(dep's value) after dep completes (fn() for
  /// a void dependency).
  template <typename T, typename Fn>
  auto then(TaskFuture<T> dep, Fn fn) {
    GSFL_EXPECT(dep.valid());
    const TaskHandle handle = dep.handle();
    if constexpr (std::is_void_v<T>) {
      return submit_after([fn = std::move(fn)]() mutable { return fn(); },
                          {handle});
    } else {
      return submit_after(
          [dep = std::move(dep), fn = std::move(fn)]() mutable {
            return fn(*dep.state_->value);
          },
          {handle});
    }
  }

  /// The ordered merge: wait every future and collect the values in
  /// submission (index) order, independent of completion order — the async
  /// mirror of parallel_map's outcome slots. Values are moved out.
  template <typename T>
  static std::vector<T> when_all(std::vector<TaskFuture<T>>& futures) {
    std::vector<T> out;
    out.reserve(futures.size());
    for (auto& f : futures) out.push_back(std::move(f.wait()));
    return out;
  }

  static void when_all(std::vector<TaskFuture<void>>& futures) {
    for (auto& f : futures) f.wait();
  }

 private:
  friend struct lane_detail::TaskCore;

  void attach(const std::shared_ptr<lane_detail::TaskCore>& core,
              std::span<const TaskHandle> deps);
  void enqueue(const std::shared_ptr<lane_detail::TaskCore>& core);
  std::uint64_t next_id();
  void worker_main();

  std::size_t workers_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide lane the library's pipelined paths submit to. Created on
/// first use with resolve_threads(0) workers — sized like the global pool,
/// so a pipelined round has one lane worker per hardware lane while the pool
/// serves the fork-join regions the lane tasks issue.
[[nodiscard]] AsyncLane& global_lane();

}  // namespace gsfl::common
