// Tiny command-line parser shared by benches and examples.
//
// Supports "--name=value", "--name value", and boolean "--flag" forms.
// Unknown flags raise errors rather than being silently ignored so that
// experiment scripts fail loudly on typos.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gsfl::common {

class CliArgs {
 public:
  /// Parse argv. `known_flags` lists valid boolean flags; every other
  /// "--name" is treated as a key expecting a value.
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& known_flags = {});

  [[nodiscard]] bool has_flag(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> value(const std::string& name) const;

  [[nodiscard]] std::string value_or(const std::string& name,
                                     const std::string& fallback) const;
  [[nodiscard]] std::int64_t int_or(const std::string& name,
                                    std::int64_t fallback) const;
  [[nodiscard]] double double_or(const std::string& name,
                                 double fallback) const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
};

}  // namespace gsfl::common
