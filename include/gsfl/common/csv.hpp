// CSV emission for experiment results.
//
// Benches write one row per measurement so results can be re-plotted
// without re-running; CsvWriter handles quoting, header consistency, and
// numeric formatting in one place.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace gsfl::common {

/// One CSV cell: text, integer, or floating point.
using CsvCell = std::variant<std::string, std::int64_t, double>;

/// Streams rows of fixed arity to an std::ostream.
///
/// The header is written on construction; every row must match its width.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void row(const std::vector<CsvCell>& cells);
  void row(std::initializer_list<CsvCell> cells) {
    row(std::vector<CsvCell>(cells));
  }

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  /// Escape a single cell per RFC 4180 (quote if it contains , " or \n).
  static std::string escape(const std::string& raw);

 private:
  std::ostream& out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

/// CsvWriter that owns the file it writes to.
class CsvFile {
 public:
  CsvFile(const std::string& path, std::vector<std::string> header);

  CsvWriter& writer() { return writer_; }
  void row(std::initializer_list<CsvCell> cells) { writer_.row(cells); }
  void row(const std::vector<CsvCell>& cells) { writer_.row(cells); }

 private:
  std::ofstream file_;
  CsvWriter writer_;
};

}  // namespace gsfl::common
