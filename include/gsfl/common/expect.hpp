// Contract-checking helpers used across the library.
//
// GSFL_EXPECT guards preconditions (caller bugs) and throws
// std::invalid_argument; GSFL_ENSURE guards internal invariants
// (library bugs) and throws std::logic_error. Both are always on:
// this library drives simulations whose results must not be built
// on silently-violated assumptions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gsfl::common {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "precondition") throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace gsfl::common

#define GSFL_EXPECT(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::gsfl::common::contract_failure("precondition", #cond, __FILE__,       \
                                       __LINE__, "");                         \
  } while (0)

#define GSFL_EXPECT_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond))                                                              \
      ::gsfl::common::contract_failure("precondition", #cond, __FILE__,       \
                                       __LINE__, (msg));                      \
  } while (0)

#define GSFL_ENSURE(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::gsfl::common::contract_failure("invariant", #cond, __FILE__,          \
                                       __LINE__, "");                         \
  } while (0)

#define GSFL_ENSURE_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond))                                                              \
      ::gsfl::common::contract_failure("invariant", #cond, __FILE__,          \
                                       __LINE__, (msg));                      \
  } while (0)
