// Minimal leveled logger.
//
// The library itself logs sparingly (benches and examples narrate their own
// progress); the logger exists so long-running experiments can surface
// per-round status without std::cout plumbing through every API.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace gsfl::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

const char* to_string(LogLevel level);

/// Stream-style log statement: collects the message and emits it (with a
/// level prefix) on destruction, so a statement like
///   LogMessage(LogLevel::kInfo) << "round " << r;
/// produces exactly one line.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() {
    if (level_ >= log_level() && log_level() != LogLevel::kOff) {
      std::clog << '[' << to_string(level_) << "] " << stream_.str() << '\n';
    }
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace gsfl::common

#define GSFL_LOG_DEBUG ::gsfl::common::LogMessage(::gsfl::common::LogLevel::kDebug)
#define GSFL_LOG_INFO ::gsfl::common::LogMessage(::gsfl::common::LogLevel::kInfo)
#define GSFL_LOG_WARN ::gsfl::common::LogMessage(::gsfl::common::LogLevel::kWarn)
#define GSFL_LOG_ERROR ::gsfl::common::LogMessage(::gsfl::common::LogLevel::kError)
