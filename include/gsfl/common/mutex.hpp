// Capability-annotated lock types.
//
// libstdc++'s std::mutex carries no Clang capability attributes, so code
// locking it directly is invisible to -Wthread-safety. Mutex wraps
// std::mutex as a GSFL_CAPABILITY and MutexLock replaces both
// std::lock_guard (plain critical sections) and std::unique_lock
// (condition-variable waits, via wait()), so every critical section in the
// concurrency runtime is a scope the analysis can see. Zero overhead: both
// are inline forwarding shells around exactly the std types they replace.
//
// Condition variables stay std::condition_variable — MutexLock::wait()
// hands it the wrapped std::unique_lock. The analysis treats the capability
// as held across the wait, matching the caller-visible contract (the lock
// is reacquired before wait returns).
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#include "gsfl/common/thread_annotations.hpp"

namespace gsfl::common {

class GSFL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GSFL_ACQUIRE() { mutex_.lock(); }
  void unlock() GSFL_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() GSFL_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class MutexLock;
  std::mutex mutex_;
};

/// RAII critical section over a Mutex; the one lock type the runtime uses
/// for both lock_guard-style sections and condition-variable waits.
class GSFL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) GSFL_ACQUIRE(mutex)
      : lock_(mutex.mutex_) {}
  ~MutexLock() GSFL_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Wait on `cv`, releasing the mutex while parked and reacquiring before
  /// returning — std::condition_variable::wait on the wrapped lock.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

  template <typename Predicate>
  void wait(std::condition_variable& cv, Predicate predicate) {
    cv.wait(lock_, std::move(predicate));
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace gsfl::common
