// Deterministic fork-join map.
//
// parallel_map(n, fn) evaluates fn(i) for every i in [0, n) on the global
// pool and returns the results as a vector with slot i holding fn(i) — the
// "outcome slots + index-ordered merge" pattern every scheme's round loop
// uses, encoded once. The caller folds the returned vector in index order,
// which is what makes any reduction over the outcomes bitwise identical for
// every thread count.
//
// Contract (inherits the parallel runtime's rules — see docs/parallelism.md):
//   - fn is invoked concurrently from multiple lanes: it may freely read
//     shared state but must write only state owned by its index (its
//     sampler, its model replica, its outcome).
//   - fn(i) runs exactly once per index; which lane runs it is scheduling
//     noise. Any RNG fn consumes must be owned by index i or pre-drawn.
//   - The result type must be default-constructible and move-assignable.
//   - Nested calls (fn itself calling parallel_map or parallel_for) run
//     inline on the calling lane.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "gsfl/common/thread_pool.hpp"

namespace gsfl::common {

template <typename Fn>
[[nodiscard]] auto parallel_map(std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using Result = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  // vector<bool> packs slots into shared bytes — adjacent lanes would race.
  static_assert(!std::is_same_v<Result, bool>,
                "parallel_map cannot return bool (vector<bool> slots share "
                "bytes); wrap the flag in a struct");
  std::vector<Result> out(n);
  global_parallel_for(1, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

/// Context overload: slot i holds fn(ctx, i), where ctx is built by
/// make_context() once per *chunk* rather than once per index — for
/// expensive per-task resources (a model replica, a scratch tensor) that
/// fn only mutates as scratch. Because chunk boundaries vary with the lane
/// count, fn(ctx, i) must produce the same result for a freshly made ctx
/// as for one reused from earlier indices — the context is a resource, not
/// an accumulator.
template <typename MakeCtx, typename Fn>
[[nodiscard]] auto parallel_map(std::size_t n, MakeCtx&& make_context,
                                Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<
        Fn&, std::decay_t<std::invoke_result_t<MakeCtx&>>&, std::size_t>>> {
  using Context = std::decay_t<std::invoke_result_t<MakeCtx&>>;
  using Result = std::decay_t<
      std::invoke_result_t<Fn&, Context&, std::size_t>>;
  static_assert(!std::is_same_v<Result, bool>,
                "parallel_map cannot return bool (vector<bool> slots share "
                "bytes); wrap the flag in a struct");
  std::vector<Result> out(n);
  global_parallel_for(1, n, [&](std::size_t begin, std::size_t end) {
    Context context = make_context();
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(context, i);
  });
  return out;
}

}  // namespace gsfl::common
