// Deterministic random number generation.
//
// All stochastic behaviour in the library (weight init, data synthesis,
// batch sampling, channel fading, partitioning) flows through Rng so that
// every experiment is exactly reproducible from a single seed. The engine
// is xoshiro256** seeded via splitmix64, which is fast, well distributed,
// and — unlike std::mt19937 — guaranteed to produce identical streams on
// every platform and standard-library implementation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gsfl/common/expect.hpp"

namespace gsfl::common {

/// splitmix64 step: used to expand a single 64-bit seed into engine state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic, platform-independent PRNG (xoshiro256**).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent child stream; children with distinct tags are
  /// decorrelated from the parent and from each other.
  [[nodiscard]] Rng fork(std::uint64_t tag) {
    const std::uint64_t mixed = next() ^ (tag * 0x9e3779b97f4a7c15ULL);
    std::uint64_t sm = mixed;
    return Rng(splitmix64(sm));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    GSFL_EXPECT(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be positive.
  std::uint64_t uniform_index(std::uint64_t n) {
    GSFL_EXPECT(n > 0);
    // Lemire's debiased multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    GSFL_EXPECT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_index(span));
  }

  /// Standard normal via Box–Muller (no cached spare: keeps streams simple).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate parameter (lambda > 0).
  double exponential(double lambda);

  /// Gamma(shape, 1) via Marsaglia–Tsang; used for Dirichlet partitioning.
  double gamma(double shape);

  /// Draw from a Dirichlet(alpha, ..., alpha) of the given dimension.
  std::vector<double> dirichlet(double alpha, std::size_t dim);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle (deterministic given the stream position).
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(uniform_index(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// The raw engine state, for experiment checkpointing: set_state(state())
  /// resumes the stream at exactly this position.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace gsfl::common
