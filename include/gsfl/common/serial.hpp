// Bounds-checked little binary IO shared by every checkpoint writer/reader.
//
// Readers fail loudly: each primitive read captures the stream offset first
// and throws std::runtime_error naming the field and the byte offset on a
// short or failed read, so a truncated or corrupt checkpoint reports *where*
// it broke instead of silently yielding zeros. (The library only targets
// little-endian hosts; the serialized tensors already bake that in.)
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace gsfl::common::serial {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Read one POD value; `what` names the field in the error message.
template <typename T>
[[nodiscard]] T read_pod(std::istream& in, const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto offset = in.tellg();
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw std::runtime_error(std::string("truncated read of ") + what +
                             " at offset " +
                             std::to_string(static_cast<long long>(offset)));
  }
  return value;
}

inline void write_u64(std::ostream& out, std::uint64_t v) {
  write_pod(out, v);
}
[[nodiscard]] inline std::uint64_t read_u64(std::istream& in,
                                            const char* what) {
  return read_pod<std::uint64_t>(in, what);
}

inline void write_f64(std::ostream& out, double v) { write_pod(out, v); }
[[nodiscard]] inline double read_f64(std::istream& in, const char* what) {
  return read_pod<double>(in, what);
}

inline void write_string(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Read a length-prefixed string; lengths above `max_len` are treated as
/// corruption (no checkpoint field is remotely that long).
[[nodiscard]] inline std::string read_string(std::istream& in,
                                             const char* what,
                                             std::size_t max_len = 4096) {
  const auto len = read_u64(in, what);
  if (len > max_len) {
    throw std::runtime_error(std::string("implausible length for ") + what +
                             ": " + std::to_string(len));
  }
  std::string s(static_cast<std::size_t>(len), '\0');
  const auto offset = in.tellg();
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) {
    throw std::runtime_error(std::string("truncated read of ") + what +
                             " at offset " +
                             std::to_string(static_cast<long long>(offset)));
  }
  return s;
}

}  // namespace gsfl::common::serial
