// Clang Thread Safety Analysis attribute shim.
//
// The macros expand to Clang's capability attributes when the compiler
// supports them (clang with -Wthread-safety) and to nothing everywhere
// else, so GCC builds see plain declarations. They let the compiler prove
// the lock discipline the concurrency headers document in prose: a field
// declared GSFL_GUARDED_BY(mutex) is a compile error to touch without the
// mutex held, a function declared GSFL_REQUIRES(mutex) is a compile error
// to call without it, and a GSFL_SCOPED_CAPABILITY RAII type tells the
// analysis exactly which region holds what.
//
// Names and semantics follow the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); the annotated
// lock types that give these attributes a libstdc++-portable anchor live in
// mutex.hpp. CI builds with -Wthread-safety -Werror (the
// thread-safety-warnings leg), so a violated annotation fails the build.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define GSFL_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define GSFL_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define GSFL_CAPABILITY(x) GSFL_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define GSFL_SCOPED_CAPABILITY \
  GSFL_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define GSFL_GUARDED_BY(x) GSFL_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define GSFL_PT_GUARDED_BY(x) \
  GSFL_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function that may only be called while holding the listed capabilities.
#define GSFL_REQUIRES(...) \
  GSFL_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities and returns holding them.
#define GSFL_ACQUIRE(...) \
  GSFL_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities.
#define GSFL_RELEASE(...) \
  GSFL_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that acquires the capabilities iff it returns `result`.
#define GSFL_TRY_ACQUIRE(result, ...) \
  GSFL_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(result, __VA_ARGS__))

/// Function that must NOT be called while holding the listed capabilities
/// (deadlock guard for self-locking entry points).
#define GSFL_EXCLUDES(...) \
  GSFL_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Documented lock-ordering edge: this capability is acquired after `x`.
#define GSFL_ACQUIRED_AFTER(...) \
  GSFL_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis. Every use must carry a one-line rationale at the site.
#define GSFL_NO_THREAD_SAFETY_ANALYSIS \
  GSFL_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
