// Deterministic parallel runtime.
//
// A fixed-size pool of persistent worker threads with one primitive:
// parallel_for(grain, n, fn), which partitions [0, n) into contiguous
// chunks and runs fn(begin, end) on the pool plus the calling thread.
//
// Determinism contract: chunks are contiguous, disjoint, and cover [0, n)
// exactly once, so any computation whose per-index work is independent (or
// whose reductions are structured over *fixed* chunk boundaries chosen by
// the caller) produces bitwise-identical results for every thread count.
// Which thread executes a chunk is scheduling noise; what each chunk
// computes is not.
//
// Nested calls (fn itself calling parallel_for, directly or through GEMM)
// execute inline on the calling thread — the outer loop already owns the
// pool, and inlining keeps nesting deadlock-free and deterministic.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace gsfl::common {

class ThreadPool {
 public:
  /// Range task: process indices [begin, end).
  using RangeFn = std::function<void(std::size_t begin, std::size_t end)>;

  /// A pool with `lanes` concurrent execution lanes: the calling thread plus
  /// lanes-1 workers. lanes == 1 means everything runs inline.
  explicit ThreadPool(std::size_t lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t lanes() const { return lanes_; }

  /// Run fn over [0, n) in contiguous chunks of at least `grain` indices
  /// (the final chunk may be shorter). Blocks until every chunk finished;
  /// rethrows the first exception any chunk raised. Concurrent calls from
  /// distinct external threads are serialized.
  void parallel_for(std::size_t grain, std::size_t n, const RangeFn& fn);

  /// True while the calling thread is inside a parallel_for chunk (used to
  /// inline nested parallel sections).
  [[nodiscard]] static bool in_parallel_region();

 private:
  struct Job;
  static void run_chunks(Job& job);
  void worker_main();

  std::size_t lanes_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Lane-count resolution: explicit request > GSFL_THREADS env var > hardware
/// concurrency (never less than 1).
[[nodiscard]] std::size_t resolve_threads(std::size_t requested = 0);

/// The process-wide pool all library hot paths submit to. Created on first
/// use with resolve_threads(0) lanes.
[[nodiscard]] ThreadPool& global_pool();

/// Reconfigure the global pool (0 ⇒ resolve_threads default). Must not be
/// called while a parallel_for is in flight; a no-op when the size already
/// matches.
void set_global_threads(std::size_t lanes);

/// Lane count of the global pool (creating it if needed).
[[nodiscard]] std::size_t global_lanes();

/// parallel_for on the global pool — but when the caller is already inside
/// a parallel region it runs fn(0, n) directly, without touching the pool
/// or its mutex. Hot nested paths (per-sample GEMMs under a per-client
/// task) should always submit through this.
void global_parallel_for(std::size_t grain, std::size_t n,
                         const ThreadPool::RangeFn& fn);

/// RAII: marks the calling thread as inside a parallel region for the
/// guard's lifetime, so every nested global_parallel_for / parallel_map
/// runs inline on this thread. Async-lane *compute* tasks (one concurrent
/// client or group each) open one so scheme-level tasks never re-enter the
/// pool — the same inlining a pool chunk gets implicitly. Aggregate-stage
/// tasks deliberately don't, so their entry folds can use the (otherwise
/// idle) pool while compute occupies the lane.
class InlineRegionGuard {
 public:
  InlineRegionGuard();
  ~InlineRegionGuard();
  InlineRegionGuard(const InlineRegionGuard&) = delete;
  InlineRegionGuard& operator=(const InlineRegionGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace gsfl::common
