// Unit helpers for the wireless model.
//
// The net/ and sim/ modules mix quantities whose units are easy to confuse
// (dBm vs. watts, bits vs. bytes, Hz vs. MHz). These helpers keep every
// conversion in one audited place.
#pragma once

#include <cmath>
#include <cstdint>

namespace gsfl::common {

constexpr double kBitsPerByte = 8.0;

/// dBm → watts. 0 dBm == 1 mW.
inline double dbm_to_watts(double dbm) { return 1e-3 * std::pow(10.0, dbm / 10.0); }

/// watts → dBm.
inline double watts_to_dbm(double watts) { return 10.0 * std::log10(watts / 1e-3); }

/// dB ratio → linear ratio.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// linear ratio → dB.
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

constexpr double mhz(double v) { return v * 1e6; }
constexpr double ghz(double v) { return v * 1e9; }
constexpr double kib(double v) { return v * 1024.0; }
constexpr double mib(double v) { return v * 1024.0 * 1024.0; }
constexpr double gflops(double v) { return v * 1e9; }
constexpr double mflops(double v) { return v * 1e6; }

/// Bytes → transmission seconds at `rate_bps` bits/second.
inline double transmit_seconds(double bytes, double rate_bps) {
  return bytes * kBitsPerByte / rate_bps;
}

}  // namespace gsfl::common
