// Per-thread scratch-buffer arena.
//
// Hot loops (GEMM panel packing, conv im2col) need large temporary buffers
// whose sizes repeat every iteration. Workspace hands out grow-only float
// buffers keyed by a small use-site id and owned by the *calling thread*
// (thread_local storage), so:
//   - pool worker threads persist across parallel_for submits and reuse
//     their buffers round after round with zero allocation in steady state;
//   - two lanes can never alias each other's scratch, by construction;
//   - buffer contents are unspecified on entry — every consumer must fully
//     overwrite (im2col and GEMM packing do).
//
// Ownership rules:
//   - A scratch pointer is valid only until the same thread's next floats()
//     call with the same key; don't hold one past that.
//   - Per-lane keys (the GEMM panel a task packs for itself) stay on the
//     thread that fetched them — never hand them to another thread.
//   - Caller-owned shared keys (a packed GEMM operand read by every panel
//     task; the batched im2col matrix written in disjoint per-sample column
//     slices then read by the conv GEMM): the thread *issuing* a
//     parallel_for fetches the buffer before the region, tasks access it
//     under the rule in parentheses, and the issuer reads it after the
//     join. Nothing else may touch that key while the region runs.
//
// Thread-safety analysis: Workspace carries no GSFL_GUARDED_BY annotations
// on purpose. There is no mutex to name — isolation is structural
// (thread_local arenas), and the one cross-thread window, the slice()
// double-buffer handoff to pack-ahead lane tasks, is ordered by the pack
// future's completion (the TaskCore mutex hand-off), which Clang's analysis
// cannot express. The TSan leg (GSFL_SANITIZE=thread) is the checker for
// this handoff; see docs/TSAN.md.
#pragma once

#include <cstddef>
#include <memory>

namespace gsfl::common {

/// 64-byte-aligned grow-only heap buffer: the storage primitive behind the
/// Workspace arenas, exposed publicly so long-lived owners (persistent packed
/// GEMM operands — tensor::PackedOperand — which outlive any single call) can
/// hold panel bytes with the same alignment guarantee the per-call scratch
/// gets. Packed panels are read as full-width vector rows every kernel step;
/// a buffer that straddles cache lines turns every such load into a
/// line-crossing split, hence the line-size alignment. Move-only.
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;
  AlignedBuffer(AlignedBuffer&&) = default;
  AlignedBuffer& operator=(AlignedBuffer&&) = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Grow to hold at least `bytes` bytes (never shrinks). Contents are
  /// unspecified after a growth reallocation.
  void grow_bytes(std::size_t bytes);

  [[nodiscard]] unsigned char* data() noexcept { return data_; }
  [[nodiscard]] const unsigned char* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return size_; }

  /// Heap bytes retained including the alignment slack (leak-tracking
  /// introspection; pairs with Workspace::thread_bytes()).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return size_ == 0 ? 0 : size_ + kAlignment;
  }

  /// The buffer viewed as `count` elements of implicit-lifetime type T,
  /// grown as needed. Unsigned-char storage provides storage for any such
  /// T, so consumers write through the reinterpreted pointer directly.
  template <typename T>
  [[nodiscard]] T* elements(std::size_t count) {
    grow_bytes(count * sizeof(T));
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  [[nodiscard]] const T* elements() const noexcept {
    return reinterpret_cast<const T*>(data_);
  }

 private:
  std::unique_ptr<unsigned char[]> storage_;
  unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

class Workspace {
 public:
  /// Use-site keys. Library-internal consumers are enumerated here so two
  /// call sites never thrash one buffer between different steady-state
  /// sizes; external code should key from kUserBase upward.
  enum Key : std::size_t {
    kGemmPack = 0,    ///< packed op(B) panel (shared when rows split, per-lane
                      ///< when columns split)
    kGemmPackA,       ///< packed op(A) panel (per-lane when rows split,
                      ///< shared when columns split)
    kConvColumns,     ///< batched im2col matrix (caller-owned, lane-sliced)
    kConvDcols,       ///< batched column-space input gradient (caller-owned)
    kConvStage,       ///< channel-major conv GEMM staging: forward output /
                      ///< backward dy (caller-owned, lane-sliced)
    kGemmPackSlice,   ///< interleaved per-k-block B slice (double-buffered,
                      ///< per-lane — see slice())
    kGemmQuantA,      ///< quantized op(A) panel bytes (per-lane when rows
                      ///< split, shared when columns split) — bytes()
    kGemmQuantB,      ///< quantized op(B) panel bytes (shared when rows
                      ///< split, per-lane when columns split) — bytes()
    kGemmQuantComp,   ///< int32 u8-offset compensation per B column — bytes()
    kGemmQuantScaleA, ///< per-row A dequant scales — floats()
    kGemmQuantScaleB, ///< per-column B dequant scales — floats()
    kUserBase = 16,
  };

  /// The calling thread's buffer for `key`, grown (never shrunk) to hold at
  /// least `size` floats. Contents are unspecified.
  [[nodiscard]] static float* floats(std::size_t key, std::size_t size);

  /// Byte-typed sibling of floats() on an independent slot space: the
  /// calling thread's raw buffer for `key`, grown to at least `size` bytes,
  /// 64-byte aligned. Quantized GEMM panels live here (u8/s8 packed bytes,
  /// int32 compensation rows) — unsigned char storage provides storage for
  /// any implicit-lifetime element type, so consumers may write through a
  /// reinterpreted pointer of their element type. Same ownership and
  /// validity rules as floats().
  [[nodiscard]] static unsigned char* bytes(std::size_t key,
                                            std::size_t size);

  /// Double-buffered slice arena: the calling thread's buffer for
  /// (`key`, `parity & 1`) — two independent grow-only buffers per key, both
  /// 64-byte aligned. Interleaved GEMM packing alternates parity per k block
  /// so consecutive packs ping-pong between distinct buffers: the stores of
  /// block b+1's pack never RFO the lines block b's tail reads still own.
  /// Pack-ahead pipelining builds on the same layout under the caller-owned
  /// handoff rule: the *sweeping* thread fetches both parities up front,
  /// hands one to an async-lane pack task (the only writer), and reads it
  /// only after that task's future resolved. Same validity rule as
  /// floats(): a pointer lives until the fetching thread's next slice()
  /// call with the same key and parity.
  [[nodiscard]] static float* slice(std::size_t key, std::size_t size,
                                    std::size_t parity);

  /// Bytes currently retained by the calling thread's arena (introspection
  /// for tests and leak tracking).
  [[nodiscard]] static std::size_t thread_bytes();

  /// Release the calling thread's buffers (tests).
  static void reset_thread();
};

}  // namespace gsfl::common
