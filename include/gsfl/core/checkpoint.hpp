// Experiment checkpointing: crash-recoverable training runs.
//
// Format "GSFX": magic | u32 version | scheme name | u64 completed rounds |
// f64 cumulative simulated seconds | recorded rounds | the trainer's own
// state blob (round counter, models, sampler streams, auxiliary RNG).
//
// The recovery contract (pinned by the Resume* tests): a fresh trainer built
// from the same config/network/data, restored from a checkpoint taken after
// round r, continues **bitwise identically** to the uninterrupted run — same
// models, same batches, same fault plans (those are round-keyed, so they
// need no saved state at all). See docs/robustness.md.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "gsfl/metrics/recorder.hpp"
#include "gsfl/schemes/trainer.hpp"

namespace gsfl::core {

/// What a checkpoint restores besides the trainer itself: where the run was
/// and everything it had recorded, so the driver can splice the remaining
/// rounds onto the same recorder and clock.
struct ExperimentCheckpoint {
  std::size_t round = 0;        ///< completed rounds at save time
  double sim_seconds = 0.0;     ///< cumulative simulated latency
  std::vector<metrics::RoundRecord> records;
};

/// Snapshot `trainer` (no rounds in flight) plus the run's recorded history.
void save_experiment_checkpoint(std::ostream& out,
                                const schemes::Trainer& trainer,
                                std::span<const metrics::RoundRecord> records,
                                double sim_seconds);
void save_experiment_checkpoint_file(
    const std::string& path, const schemes::Trainer& trainer,
    std::span<const metrics::RoundRecord> records, double sim_seconds);

/// Restore `trainer` from a checkpoint and return the run context. Throws
/// std::runtime_error on malformed input, on a scheme-name mismatch, or when
/// the stream has trailing garbage.
ExperimentCheckpoint load_experiment_checkpoint(std::istream& in,
                                                schemes::Trainer& trainer);
ExperimentCheckpoint load_experiment_checkpoint_file(const std::string& path,
                                                     schemes::Trainer& trainer);

/// The canonical snapshot filename: <scheme>_round_<r>.gsflx in `dir`.
[[nodiscard]] std::string checkpoint_path(const std::string& dir,
                                          const std::string& scheme,
                                          std::size_t round);

}  // namespace gsfl::core
