// Experiment: one-stop construction of a complete, *fair* comparison.
//
// Every scheme in a figure must see the same world: identical synthetic
// dataset, identical client partition, identical wireless network, and an
// identical initial model. Experiment derives all of those from a single
// seed and hands out independently constructed trainers that share them.
//
// Two canonical configurations are provided:
//   - paper():  the paper's setup — 30 clients, 6 groups, 43-class 32×32
//     GTSRB-like data (hours of CPU time; use for final runs).
//   - scaled(): a laptop-scale variant (12 classes, 16×16, 30 clients) that
//     preserves every *relative* behaviour the paper reports and finishes
//     in minutes.
#pragma once

#include <memory>

#include "gsfl/core/gsfl.hpp"
#include "gsfl/data/partition.hpp"
#include "gsfl/data/synthetic_gtsrb.hpp"
#include "gsfl/net/network.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/schemes/centralized.hpp"
#include "gsfl/schemes/fedavg.hpp"
#include "gsfl/schemes/split_learning.hpp"
#include "gsfl/schemes/splitfed.hpp"

namespace gsfl::core {

enum class PartitionKind { kIid, kShards, kDirichlet };

struct ExperimentConfig {
  // Data.
  data::SyntheticGtsrbConfig dataset;
  PartitionKind partition = PartitionKind::kShards;
  std::size_t shards_per_client = 2;
  double dirichlet_alpha = 0.5;
  std::size_t test_samples_per_class = 10;

  // Population.
  std::size_t num_clients = 30;
  std::size_t num_groups = 6;

  // Model.
  nn::CnnConfig model;  ///< image_size/classes are overwritten from dataset
  std::size_t cut_layer = 3;

  // Wireless network.
  net::NetworkConfig network;
  double min_distance_m = 20.0;
  double max_distance_m = 120.0;
  double min_device_flops = 5e8;   ///< ~0.5 GFLOP/s (weak IoT class)
  double max_device_flops = 4e9;   ///< ~4 GFLOP/s (phone class)

  // Training.
  schemes::TrainConfig train;
  GroupingPolicy grouping = GroupingPolicy::kRoundRobin;

  // Master seed: everything stochastic derives from this.
  std::uint64_t seed = 42;

  [[nodiscard]] static ExperimentConfig paper();
  [[nodiscard]] static ExperimentConfig scaled();
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const data::Dataset& test_set() const { return test_set_; }
  [[nodiscard]] const std::vector<data::Dataset>& client_data() const {
    return client_data_;
  }
  [[nodiscard]] const net::WirelessNetwork& network() const {
    return network_;
  }

  /// A fresh copy of the shared initial model (identical weights each call).
  [[nodiscard]] nn::Sequential initial_model() const;

  [[nodiscard]] std::unique_ptr<schemes::CentralizedTrainer> make_cl() const;
  [[nodiscard]] std::unique_ptr<schemes::FedAvgTrainer> make_fl() const;
  [[nodiscard]] std::unique_ptr<schemes::SplitLearningTrainer> make_sl() const;
  [[nodiscard]] std::unique_ptr<schemes::SplitFedTrainer> make_sfl() const;
  [[nodiscard]] std::unique_ptr<GsflTrainer> make_gsfl() const;
  /// GSFL with an overridden group count / cut layer (ablation sweeps).
  [[nodiscard]] std::unique_ptr<GsflTrainer> make_gsfl(
      std::size_t num_groups, std::size_t cut_layer) const;

 private:
  ExperimentConfig config_;
  data::Dataset test_set_;
  std::vector<data::Dataset> client_data_;
  net::WirelessNetwork network_;
  nn::Sequential initial_model_;
};

}  // namespace gsfl::core
