// Client grouping strategies for GSFL.
//
// The paper partitions N clients into M groups and trains the groups in
// parallel; *how* clients are grouped is deferred to future work (§IV).
// This module implements the obvious contenders so the grouping ablation
// (bench E5) can quantify the choice:
//   - round-robin: client i → group i mod M (the default; spreads any
//     index-correlated heterogeneity evenly)
//   - contiguous: blocks of N/M
//   - random: a seeded shuffle dealt round-robin
//   - label-aware: greedy balancing so every group's pooled label
//     distribution approximates the global one (helps under non-IID splits,
//     because each group's sequential pass then resembles an IID epoch)
#pragma once

#include <vector>

#include "gsfl/common/rng.hpp"
#include "gsfl/data/dataset.hpp"

namespace gsfl::core {

/// groups[g] = client indices belonging to group g (every client exactly
/// once, no empty groups).
using GroupAssignment = std::vector<std::vector<std::size_t>>;

[[nodiscard]] GroupAssignment group_round_robin(std::size_t num_clients,
                                                std::size_t num_groups);

[[nodiscard]] GroupAssignment group_contiguous(std::size_t num_clients,
                                               std::size_t num_groups);

[[nodiscard]] GroupAssignment group_random(std::size_t num_clients,
                                           std::size_t num_groups,
                                           common::Rng& rng);

/// Greedy label-distribution balancing: clients are assigned (largest
/// dataset first) to the group whose pooled label histogram moves closest
/// to the global histogram, subject to group sizes staying within one
/// client of each other.
[[nodiscard]] GroupAssignment group_label_aware(
    const std::vector<data::Dataset>& client_data, std::size_t num_groups);

/// True iff the assignment covers clients [0, num_clients) exactly once
/// with no empty group.
[[nodiscard]] bool is_valid_grouping(const GroupAssignment& groups,
                                     std::size_t num_clients);

/// Mean squared deviation between each group's pooled label distribution
/// and the global distribution (0 = perfectly balanced groups). The metric
/// the label-aware strategy minimizes greedily.
[[nodiscard]] double grouping_label_imbalance(
    const GroupAssignment& groups,
    const std::vector<data::Dataset>& client_data);

}  // namespace gsfl::core
