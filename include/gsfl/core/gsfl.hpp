// GSFL — group-based split federated learning (the paper's contribution).
//
// Round structure (paper §II):
//   Step 1, model distribution — the AP splits the global model at the cut
//     layer and downlinks the client-side model to the first client of each
//     group. Each group also receives its own server-side replica (local to
//     the AP: no radio cost, M× storage).
//   Step 2, model training — within a group, members train sequentially in
//     split-learning fashion, relaying the client-side model through the AP
//     between members; the M groups run concurrently, splitting the band.
//     The last member of each group uploads its client-side model.
//   Step 3, model aggregation — the AP FedAvg-averages the M client-side
//     and the M server-side models (sample-weighted) into the next round's
//     global model.
//
// Simulated round latency = max over groups of the group's sequential chain
// (distribution + per-member split epochs + relays + final upload), plus
// aggregation compute. With M = 1 this is vanilla SL (plus a trivial
// aggregation); with M = N and singleton groups it is exactly SplitFed.
#pragma once

#include "gsfl/core/grouping.hpp"
#include "gsfl/data/sampler.hpp"
#include "gsfl/nn/split.hpp"
#include "gsfl/schemes/trainer.hpp"

namespace gsfl::core {

enum class GroupingPolicy {
  kRoundRobin,
  kContiguous,
  kRandom,
  kLabelAware,
  kExplicit,  ///< use GsflConfig::explicit_groups as given
};

/// How the shared band is divided among the M concurrently training groups
/// (the paper's §IV "rationally allocating communication bandwidth").
enum class BandwidthPolicy {
  kEqualShare,  ///< every group gets 1/M of the band (the paper's implicit choice)
  kAdaptive,    ///< re-balance shares each round toward equal group radio time
};

struct GsflConfig {
  std::size_t num_groups = 6;
  std::size_t cut_layer = 3;
  GroupingPolicy grouping = GroupingPolicy::kRoundRobin;
  GroupAssignment explicit_groups;      ///< used iff grouping == kExplicit
  std::uint64_t grouping_seed = 7;      ///< for GroupingPolicy::kRandom
  BandwidthPolicy bandwidth = BandwidthPolicy::kEqualShare;

  /// Failure injection: per-round probability that a client is unavailable
  /// (battery, mobility, radio outage). A failed client is skipped — the
  /// client-side model relays past it to the group's next available member;
  /// a fully failed group contributes nothing to aggregation that round.
  double client_failure_rate = 0.0;
  std::uint64_t failure_seed = 99;

  schemes::TrainConfig train;
};

class GsflTrainer final : public schemes::Trainer {
 public:
  GsflTrainer(const net::WirelessNetwork& network,
              std::vector<data::Dataset> client_data,
              nn::Sequential initial_model, GsflConfig config);

  [[nodiscard]] nn::Sequential global_model() const override;

  [[nodiscard]] const GroupAssignment& groups() const { return groups_; }
  [[nodiscard]] std::size_t num_groups() const { return groups_.size(); }
  [[nodiscard]] std::size_t cut_layer() const { return gsfl_config_.cut_layer; }

  /// Server-side model storage at the AP (M replicas — the paper's
  /// resource-efficiency argument vs. SplitFed's N replicas).
  [[nodiscard]] std::size_t server_storage_bytes() const;
  /// Client-side model bytes a device must hold / relay.
  [[nodiscard]] std::size_t client_model_bytes() const;

  /// Latency breakdown of each group's chain in the most recent round
  /// (index-aligned with groups()); empty before the first round.
  [[nodiscard]] const std::vector<sim::LatencyBreakdown>& last_group_chains()
      const {
    return last_group_chains_;
  }

  /// Current per-group bandwidth shares (sum to 1). Fixed at 1/M under
  /// BandwidthPolicy::kEqualShare; re-balanced every round under kAdaptive.
  [[nodiscard]] const std::vector<double>& group_shares() const {
    return group_shares_;
  }

  /// Clients skipped by failure injection in the most recent round.
  [[nodiscard]] const std::vector<std::size_t>& last_round_failures() const {
    return last_round_failures_;
  }

 protected:
  schemes::RoundResult do_round() override;
  [[nodiscard]] common::TaskFuture<schemes::RoundResult> do_submit_round(
      const common::TaskHandle& start,
      const common::TaskHandle& release) override;
  void do_save_state(std::ostream& out) const override;
  void do_load_state(std::istream& in) override;

  /// Adaptive-controller surface (docs/adaptive.md): enumerate the cuts of
  /// the reassembled global model, and apply decisions by re-splitting the
  /// live halves (parameters carry over bitwise) then re-balancing shares
  /// against the new cut's cost vector.
  [[nodiscard]] std::vector<schemes::CutCost> enumerate_cut_costs()
      const override;
  void apply_adaptive_decision(const schemes::AdaptiveDecision& decision)
      override;
  [[nodiscard]] std::size_t adaptive_cut() const override {
    return gsfl_config_.cut_layer;
  }

 private:
  /// Move the live model's cut (no-op when unchanged): concatenate the
  /// halves, split at `cut`, refresh the cached client-model bytes. Runs
  /// only in the post-publish slot (decision task / barriered run_round /
  /// do_load_state), never concurrent with a round's compute.
  void apply_cut(std::size_t cut);
  /// The fault-injected / policy-closed round graph (see docs/robustness.md).
  /// Faults are per client; a broken link anywhere in a group's sequential
  /// relay chain takes the whole group out for the round (kCascade for the
  /// other members), and the deadline/quorum close runs over the M groups.
  [[nodiscard]] common::TaskFuture<schemes::RoundResult> submit_round_faulty(
      const common::TaskHandle& start, const common::TaskHandle& release);

  GsflConfig gsfl_config_;
  GroupAssignment groups_;
  nn::Sequential global_client_;
  nn::Sequential global_server_;
  /// state_bytes() of global_client_, cached at construction. Shapes never
  /// change, and the pipelined submit path must not read the live model: a
  /// previous round's publish task may still be load_state()-ing it (only
  /// the compute tasks are gated on that publish, not submission itself).
  std::size_t client_model_bytes_cached_ = 0;
  std::vector<data::BatchSampler> samplers_;  ///< one per client, persistent
  std::vector<sim::LatencyBreakdown> last_group_chains_;
  std::vector<double> group_shares_;
  common::Rng failure_rng_;
  std::vector<std::size_t> last_round_failures_;

  void rebalance_shares();
};

}  // namespace gsfl::core
