// In-memory labeled image dataset (NCHW float images + integer labels).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gsfl/common/rng.hpp"
#include "gsfl/tensor/tensor.hpp"

namespace gsfl::data {

class Dataset {
 public:
  Dataset() = default;

  /// images: (N, C, H, W); labels: N entries in [0, num_classes).
  Dataset(tensor::Tensor images, std::vector<std::int32_t> labels,
          std::size_t num_classes);

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] bool empty() const { return labels_.empty(); }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }

  [[nodiscard]] const tensor::Tensor& images() const { return images_; }
  [[nodiscard]] std::span<const std::int32_t> labels() const {
    return labels_;
  }
  /// Shape of one sample (C, H, W).
  [[nodiscard]] tensor::Shape sample_shape() const;
  /// Shape of a batch of `n` samples (n, C, H, W).
  [[nodiscard]] tensor::Shape batch_shape(std::size_t n) const;

  /// Gather a batch (copy) of the given sample indices.
  [[nodiscard]] std::pair<tensor::Tensor, std::vector<std::int32_t>> gather(
      std::span<const std::size_t> indices) const;

  /// Gather the contiguous sample range [begin, end) — one block copy, no
  /// index vector needed.
  [[nodiscard]] std::pair<tensor::Tensor, std::vector<std::int32_t>>
  gather_range(std::size_t begin, std::size_t end) const;

  /// New dataset holding copies of the given samples.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Split into (train, test) with `test_fraction` of samples held out,
  /// after a deterministic shuffle.
  [[nodiscard]] std::pair<Dataset, Dataset> split_train_test(
      double test_fraction, common::Rng& rng) const;

  /// Count of samples per class.
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

  /// Raw storage size of the images (the payload CL clients would upload).
  [[nodiscard]] std::size_t image_bytes() const {
    return images_.size_bytes();
  }

  /// Concatenate datasets with identical sample shape and class count —
  /// the "pooled data" view that centralized learning trains on.
  [[nodiscard]] static Dataset concatenate(const std::vector<Dataset>& parts);

 private:
  tensor::Tensor images_;
  std::vector<std::int32_t> labels_;
  std::size_t num_classes_ = 0;
};

}  // namespace gsfl::data
