// Image I/O for plugging the *real* GTSRB into the pipeline.
//
// The repository ships a synthetic GTSRB stand-in, but every consumer of
// Dataset is format-agnostic: anyone holding the actual benchmark (or any
// labeled RGB image set) can convert it to binary PPM (P6) — ImageMagick:
// `mogrify -format ppm *.png` — write an `index.csv` of "file,label" rows,
// and load it with load_image_directory(). Images are resized (nearest
// neighbour) to the square geometry the models expect.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "gsfl/data/dataset.hpp"

namespace gsfl::data {

/// Read one binary P6 PPM (maxval 255) into a (3, H, W) tensor in [0, 1].
[[nodiscard]] tensor::Tensor read_ppm(std::istream& in);
[[nodiscard]] tensor::Tensor read_ppm_file(const std::string& path);

/// Write a (3, H, W) tensor in [0, 1] as binary P6 PPM.
void write_ppm(std::ostream& out, const tensor::Tensor& chw);
void write_ppm_file(const std::string& path, const tensor::Tensor& chw);

/// Nearest-neighbour resize of a (3, H, W) image to (3, size, size).
[[nodiscard]] tensor::Tensor resize_nearest(const tensor::Tensor& chw,
                                            std::size_t size);

/// Load `dir/index.csv` ("relative/path.ppm,label" per line, '#' comments
/// allowed) into a Dataset of `image_size`² images. Labels must lie in
/// [0, num_classes).
[[nodiscard]] Dataset load_image_directory(const std::string& dir,
                                           std::size_t num_classes,
                                           std::size_t image_size);

}  // namespace gsfl::data
