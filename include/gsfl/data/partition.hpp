// Client data partitioners.
//
// A Partition assigns every sample of a dataset to exactly one client.
// Three strategies cover the federated-learning literature's usual spectrum:
//   - IID: a uniform random split.
//   - Shard (label-skew): sort by label, deal out contiguous shards; each
//     client sees only a few classes. This is the classic McMahan et al.
//     non-IID construction and the default for the paper reproduction.
//   - Dirichlet: per-class client proportions drawn from Dir(α); α → ∞
//     approaches IID, small α is highly skewed.
#pragma once

#include <vector>

#include "gsfl/common/rng.hpp"
#include "gsfl/data/dataset.hpp"

namespace gsfl::data {

/// partition[c] = indices (into the source dataset) owned by client c.
using Partition = std::vector<std::vector<std::size_t>>;

/// Uniform random split into `num_clients` near-equal parts.
[[nodiscard]] Partition partition_iid(const Dataset& dataset,
                                      std::size_t num_clients,
                                      common::Rng& rng);

/// Label-sorted shard split: `shards_per_client` shards are dealt to each
/// client, so each client holds at most that many distinct label runs.
[[nodiscard]] Partition partition_shards(const Dataset& dataset,
                                         std::size_t num_clients,
                                         std::size_t shards_per_client,
                                         common::Rng& rng);

/// Dirichlet(α) label-distribution split. Every client is guaranteed at
/// least `min_samples` samples (re-sampled if necessary).
[[nodiscard]] Partition partition_dirichlet(const Dataset& dataset,
                                            std::size_t num_clients,
                                            double alpha, common::Rng& rng,
                                            std::size_t min_samples = 1,
                                            std::size_t max_attempts = 100);

/// Validate that `partition` covers every sample exactly once.
[[nodiscard]] bool is_exact_cover(const Partition& partition,
                                  std::size_t dataset_size);

/// Materialize per-client datasets from a partition.
[[nodiscard]] std::vector<Dataset> materialize(const Dataset& dataset,
                                               const Partition& partition);

}  // namespace gsfl::data
