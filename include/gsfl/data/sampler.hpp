// Mini-batch sampling.
//
// BatchSampler walks a dataset in shuffled order, one epoch at a time,
// yielding index batches. Sampling is driven by a forked Rng stream so two
// schemes handed the same seed visit identical batches — the foundation of
// the library's scheme-equivalence tests.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "gsfl/common/rng.hpp"
#include "gsfl/data/dataset.hpp"

namespace gsfl::data {

struct Batch {
  tensor::Tensor images;             ///< (b, C, H, W)
  std::vector<std::int32_t> labels;  ///< b entries

  [[nodiscard]] std::size_t size() const { return labels.size(); }
};

class BatchSampler {
 public:
  /// `drop_last`: discard a trailing partial batch (keeps batch statistics
  /// homogeneous); if the dataset is smaller than one batch the partial
  /// batch is always kept.
  BatchSampler(const Dataset& dataset, std::size_t batch_size,
               common::Rng rng, bool drop_last = false);

  /// Next batch, reshuffling at epoch boundaries.
  [[nodiscard]] Batch next();

  /// The next batch's sample indices — advances the shuffle/cursor stream
  /// exactly like next(), without gathering the tensors. next() is
  /// next_indices() + dataset().gather(), so interleaving the two forms
  /// draws one identical stream.
  [[nodiscard]] std::vector<std::size_t> next_indices();

  /// Pre-draw one epoch of index batches: batches_per_epoch() consecutive
  /// next_indices() calls. This is the pipelined rounds' RNG pre-draw — the
  /// coordinator drains the stream for a round *at submission*, in round
  /// order, so in-flight rounds never touch the sampler concurrently; the
  /// compute task gathers and trains from the plan.
  [[nodiscard]] std::vector<std::vector<std::size_t>> plan_epoch();

  /// All batches of one fresh epoch, in order.
  [[nodiscard]] std::vector<Batch> epoch();

  /// Batches per epoch under the current settings.
  [[nodiscard]] std::size_t batches_per_epoch() const;

  [[nodiscard]] std::size_t batch_size() const { return batch_size_; }
  [[nodiscard]] const Dataset& dataset() const { return *dataset_; }

  /// Persist the sampling stream (RNG state, shuffle order, cursor) so a
  /// restored sampler yields the exact batch sequence the saved one would
  /// have — the piece of crash recovery that keeps resumed runs bitwise
  /// identical to uninterrupted ones.
  void save_state(std::ostream& out) const;
  /// Restore a stream saved by save_state; the sampler must wrap a dataset
  /// of the same size. Throws std::runtime_error on truncated or corrupt
  /// input.
  void restore_state(std::istream& in);

 private:
  void reshuffle();
  /// Advance the stream by one batch; the returned view into order_ is
  /// valid until the next advance (next() gathers from it zero-copy,
  /// next_indices() copies it out for the pre-draw path).
  [[nodiscard]] std::span<const std::size_t> advance();

  const Dataset* dataset_;  ///< non-owning; caller keeps the dataset alive
  std::size_t batch_size_;
  bool drop_last_;
  common::Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace gsfl::data
