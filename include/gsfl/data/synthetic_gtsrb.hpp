// Synthetic GTSRB-like traffic-sign image generator.
//
// The real German Traffic Sign Recognition Benchmark cannot be bundled, so
// this renderer produces procedurally generated stand-ins with the same
// tensor geometry (3-channel square images, up to 43 classes). Each class is
// a deterministic combination of sign silhouette (circle / triangle / octagon
// / diamond / square), ring hue, and interior glyph; each *sample* randomizes
// position, scale, brightness, background, and pixel noise. Classes are
// separable by a small CNN but only after genuine training — random
// initialization sits at chance accuracy, which is what the paper's
// accuracy-vs-round curves require.
#pragma once

#include <cstdint>

#include "gsfl/common/rng.hpp"
#include "gsfl/data/dataset.hpp"

namespace gsfl::data {

struct SyntheticGtsrbConfig {
  std::size_t image_size = 32;       ///< square images, pixels
  std::size_t num_classes = 43;      ///< ≤ 60 supported
  std::size_t samples_per_class = 50;
  float noise_stddev = 0.08f;        ///< additive Gaussian pixel noise
  float jitter = 0.12f;              ///< max |center offset| as fraction of size
  float min_scale = 0.60f;           ///< sign radius as fraction of half-size
  float max_scale = 0.92f;
};

/// Sign silhouettes; class id selects one via id % 5.
enum class SignShape : std::uint8_t {
  kCircle = 0,
  kTriangle,
  kOctagon,
  kDiamond,
  kSquare,
};

/// Deterministic style for a class id (exposed for tests).
struct SignStyle {
  SignShape shape;
  float hue;        ///< ring hue in [0, 1)
  std::uint8_t glyph;  ///< interior glyph pattern id in [0, 4)
};
[[nodiscard]] SignStyle class_style(std::size_t class_id);

/// HSV→RGB for hue in [0,1), s,v in [0,1] (exposed for tests).
void hsv_to_rgb(float h, float s, float v, float& r, float& g, float& b);

class SyntheticGtsrb {
 public:
  explicit SyntheticGtsrb(SyntheticGtsrbConfig config);

  /// Generate a balanced dataset: samples_per_class images per class.
  /// Different `rng` streams give disjoint-looking draws — use forked
  /// streams for train vs. test.
  [[nodiscard]] Dataset generate(common::Rng& rng) const;

  /// Generate `count` images all of class `class_id`.
  [[nodiscard]] Dataset generate_class(std::size_t class_id,
                                       std::size_t count,
                                       common::Rng& rng) const;

  [[nodiscard]] const SyntheticGtsrbConfig& config() const { return config_; }

 private:
  void render_sample(std::size_t class_id, common::Rng& rng,
                     float* pixels) const;

  SyntheticGtsrbConfig config_;
};

}  // namespace gsfl::data
