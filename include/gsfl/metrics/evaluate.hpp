// Model evaluation on a held-out dataset.
#pragma once

#include "gsfl/data/dataset.hpp"
#include "gsfl/nn/sequential.hpp"

namespace gsfl::metrics {

struct EvalResult {
  double accuracy = 0.0;  ///< fraction of correctly classified samples
  double loss = 0.0;      ///< mean cross-entropy
};

/// Run `model` in evaluation mode over `dataset` in batches.
[[nodiscard]] EvalResult evaluate(nn::Sequential& model,
                                  const data::Dataset& dataset,
                                  std::size_t batch_size = 64);

}  // namespace gsfl::metrics
