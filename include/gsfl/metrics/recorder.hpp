// RunRecorder: the per-round record of one training run, and the
// convergence queries the paper's figures are built from.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace gsfl::metrics {

struct RoundRecord {
  std::size_t round = 0;         ///< 1-based round index
  double sim_seconds = 0.0;      ///< cumulative simulated latency
  double train_loss = 0.0;       ///< mean training loss this round
  double eval_accuracy = 0.0;    ///< held-out accuracy after this round
};

class RunRecorder {
 public:
  explicit RunRecorder(std::string scheme_name)
      : scheme_name_(std::move(scheme_name)) {}

  void record(const RoundRecord& record);

  [[nodiscard]] const std::string& scheme_name() const { return scheme_name_; }
  [[nodiscard]] std::size_t rounds() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] const std::vector<RoundRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const RoundRecord& last() const;

  [[nodiscard]] double best_accuracy() const;
  [[nodiscard]] double final_accuracy() const;

  /// First round whose `window`-round trailing mean accuracy reaches
  /// `target` (smoothed to ignore single-round spikes). nullopt if never.
  [[nodiscard]] std::optional<std::size_t> rounds_to_accuracy(
      double target, std::size_t window = 3) const;

  /// Cumulative simulated seconds at that round. nullopt if never reached.
  [[nodiscard]] std::optional<double> seconds_to_accuracy(
      double target, std::size_t window = 3) const;

  /// Write "scheme,round,sim_seconds,train_loss,eval_accuracy" rows.
  void write_csv(std::ostream& out) const;

 private:
  std::string scheme_name_;
  std::vector<RoundRecord> records_;
};

}  // namespace gsfl::metrics
