// Physical-layer model: log-distance path loss + AWGN Shannon capacity.
//
// The paper evaluates on "resource-limited wireless networks" without
// publishing channel parameters, so this module implements the standard
// textbook chain used by its reference [2] (split learning over wireless):
//
//   Prx[dBm] = Ptx[dBm] − PL(d),  PL(d) = PL(d0) + 10·γ·log10(d/d0)
//   noise[W] = kT·B·NF           (thermal floor −174 dBm/Hz)
//   SNR      = Prx / noise
//   rate     = B · log2(1 + SNR)  bits/s
//
// Everything is deterministic unless a fading draw is requested explicitly.
#pragma once

#include "gsfl/common/rng.hpp"

namespace gsfl::net {

struct PathLossModel {
  double reference_loss_db = 40.0;  ///< PL(d0) at the reference distance
  double reference_distance_m = 1.0;
  double exponent = 3.0;            ///< γ: 2 free space, 3–4 urban

  /// Path loss in dB at distance `distance_m` (clamped to d0).
  [[nodiscard]] double loss_db(double distance_m) const;
};

struct ChannelConfig {
  PathLossModel path_loss;
  double noise_figure_db = 7.0;
  double thermal_noise_dbm_per_hz = -174.0;
};

/// One directional link: transmitter power, distance, bandwidth share.
class ShannonLink {
 public:
  ShannonLink(const ChannelConfig& config, double tx_power_dbm,
              double distance_m);

  /// Linear SNR when the receiver listens over `bandwidth_hz`.
  [[nodiscard]] double snr(double bandwidth_hz) const;

  /// Achievable rate (bits/s) over `bandwidth_hz`.
  [[nodiscard]] double rate_bps(double bandwidth_hz) const;

  /// Rate with an explicit Rayleigh fading power draw (mean 1). Used by the
  /// stochastic latency benches; the deterministic path calls rate_bps().
  [[nodiscard]] double faded_rate_bps(double bandwidth_hz,
                                      common::Rng& rng) const;

  /// Seconds to move `payload_bytes` over `bandwidth_hz`.
  [[nodiscard]] double transmit_seconds(double payload_bytes,
                                        double bandwidth_hz) const;

  [[nodiscard]] double received_power_watts() const {
    return received_power_watts_;
  }

 private:
  double received_power_watts_;
  double noise_density_watts_per_hz_;
};

}  // namespace gsfl::net
