// Physical-layer model: log-distance path loss + AWGN Shannon capacity.
//
// The paper evaluates on "resource-limited wireless networks" without
// publishing channel parameters, so this module implements the standard
// textbook chain used by its reference [2] (split learning over wireless):
//
//   Prx[dBm] = Ptx[dBm] − PL(d),  PL(d) = PL(d0) + 10·γ·log10(d/d0)
//   noise[W] = kT·B·NF           (thermal floor −174 dBm/Hz)
//   SNR      = Prx / noise
//   rate     = B · log2(1 + SNR)  bits/s
//
// Everything is deterministic unless a fading draw is requested explicitly.
#pragma once

#include "gsfl/common/rng.hpp"
#include "gsfl/tensor/quantize.hpp"

namespace gsfl::net {

struct PathLossModel {
  double reference_loss_db = 40.0;  ///< PL(d0) at the reference distance
  double reference_distance_m = 1.0;
  double exponent = 3.0;            ///< γ: 2 free space, 3–4 urban

  /// Path loss in dB at distance `distance_m` (clamped to d0).
  [[nodiscard]] double loss_db(double distance_m) const;
};

/// Link-layer retransmission accounting for lossy transfers (the fault
/// engine — sim::FaultPlan — draws *which* attempt succeeds; this policy
/// prices the failed ones). Every failed attempt costs one full payload
/// airtime at the link's Shannon rate, and attempt k+1 waits k·backoff
/// before transmitting (linear backoff). A transfer that fails all
/// `max_attempts` attempts never lands: the schemes mark the client failed
/// for the round.
struct RetryPolicy {
  std::size_t max_attempts = 3;   ///< transmissions before giving up (≥ 1)
  double backoff_seconds = 0.0;   ///< linear backoff unit between attempts
};

struct ChannelConfig {
  PathLossModel path_loss;
  double noise_figure_db = 7.0;
  double thermal_noise_dbm_per_hz = -174.0;
  RetryPolicy retry;              ///< retransmission cost model
  /// Apply per-round Rayleigh fading on top of the path loss: link SNRs are
  /// multiplied by a power gain |h|² ~ Exp(1) (mean 1, so the no-fading
  /// rate is the expectation's reference). WirelessNetwork pre-draws one
  /// gain per client per direction per round — outside any parallel region,
  /// in fixed client order — so faded runs stay bitwise thread-invariant.
  bool rayleigh_fading = false;
  /// Cut-layer payload quantizer. When active, smashed activations and
  /// gradients crossing the channel are priced at the quantized wire-codec
  /// bytes (tensor::quantized_wire_bytes) instead of raw f32, and the
  /// training schemes fake-quantize those tensors at the cut so the model
  /// trains through exactly the values the receiver reconstructs.
  /// Quantization is a pure elementwise transform, so quantized rounds keep
  /// the bitwise thread/pipeline-depth reproducibility contract.
  tensor::QuantizerConfig quantizer;
};

/// One directional link: transmitter power, distance, bandwidth share.
class ShannonLink {
 public:
  ShannonLink(const ChannelConfig& config, double tx_power_dbm,
              double distance_m);

  /// Linear SNR when the receiver listens over `bandwidth_hz`.
  [[nodiscard]] double snr(double bandwidth_hz) const;

  /// Achievable rate (bits/s) over `bandwidth_hz`.
  [[nodiscard]] double rate_bps(double bandwidth_hz) const;

  /// Rate with an explicit fading power gain |h|² applied to the SNR.
  /// `fade_power` = 1 reproduces rate_bps() bitwise (snr·1.0 is exact), so
  /// the unfaded path and a fade vector of ones are the same arithmetic.
  [[nodiscard]] double rate_bps(double bandwidth_hz, double fade_power) const;

  /// Rate with a fresh Rayleigh fading power draw (|h|² ~ Exp(1), mean 1).
  /// Draw-and-apply convenience over rate_bps(bw, fade): callers inside the
  /// determinism contract pre-draw the fade instead (see
  /// WirelessNetwork::redraw_fades).
  [[nodiscard]] double faded_rate_bps(double bandwidth_hz,
                                      common::Rng& rng) const;

  /// Seconds to move `payload_bytes` over `bandwidth_hz`.
  [[nodiscard]] double transmit_seconds(double payload_bytes,
                                        double bandwidth_hz) const;

  /// transmit_seconds under a fading power gain (1 ⇒ bitwise the unfaded
  /// time).
  [[nodiscard]] double transmit_seconds(double payload_bytes,
                                        double bandwidth_hz,
                                        double fade_power) const;

  [[nodiscard]] double received_power_watts() const {
    return received_power_watts_;
  }

 private:
  double received_power_watts_;
  double noise_density_watts_per_hz_;
};

}  // namespace gsfl::net
