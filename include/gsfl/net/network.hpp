// WirelessNetwork: one access point (with co-located edge server) and N
// client devices, with per-client link rates and compute throughput.
//
// The network answers exactly the questions the training schemes ask:
//   - how long does client c need to compute F flops?
//   - how long does the edge server need?
//   - how long does a payload of B bytes take uplink/downlink for client c,
//     when the client is entitled to a given fraction of the band?
//
// Bandwidth shares encode medium contention: in vanilla SL one client
// transmits at a time (share 1), in GSFL the M concurrently-training groups
// split the band (share 1/M), in FL all N clients upload at once (share 1/N).
#pragma once

#include <cstddef>
#include <vector>

#include "gsfl/common/rng.hpp"
#include "gsfl/net/channel.hpp"

namespace gsfl::net {

/// A client device: radio + compute capabilities.
struct DeviceProfile {
  double distance_m = 50.0;      ///< distance to the AP
  double tx_power_dbm = 20.0;    ///< uplink transmit power (100 mW class)
  double compute_flops = 1e9;    ///< effective device throughput (FLOP/s)
};

/// The access point / edge server.
struct ApProfile {
  double tx_power_dbm = 36.0;    ///< downlink transmit power (4 W class)
  double compute_flops = 1e11;   ///< edge-server throughput (FLOP/s)
};

struct NetworkConfig {
  double total_bandwidth_hz = 10e6;  ///< shared band, split by contention
  ChannelConfig channel;
  ApProfile ap;
};

class WirelessNetwork {
 public:
  WirelessNetwork(NetworkConfig config, std::vector<DeviceProfile> clients);

  /// Deterministically heterogeneous fleet: distances uniform in
  /// [min_distance, max_distance], compute uniform in [min_flops, max_flops].
  [[nodiscard]] static WirelessNetwork make_uniform_random(
      NetworkConfig config, std::size_t num_clients, double min_distance_m,
      double max_distance_m, double min_flops, double max_flops,
      common::Rng& rng);

  [[nodiscard]] std::size_t num_clients() const { return clients_.size(); }
  [[nodiscard]] const DeviceProfile& client(std::size_t index) const;
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Redraw this round's Rayleigh fading power gains — one |h|² ~ Exp(1)
  /// draw per client per direction, consumed in fixed order (client 0's
  /// uplink, client 0's downlink, client 1's uplink, …) so the stream
  /// position after a redraw is independent of how the round's work is
  /// parallelized. Call between rounds, *outside* any parallel region (the
  /// determinism contract pre-draws all RNG); every rate/latency accessor
  /// then applies the drawn gains, so faded runs are bitwise identical for
  /// any thread count. No-op unless config().channel.rayleigh_fading.
  void redraw_fades(common::Rng& rng);

  /// Reset every fade gain to the no-fading reference (1.0 — bitwise the
  /// unfaded rates).
  void clear_fades();

  /// The current fading power gains (1.0 before any redraw / when fading
  /// is disabled).
  [[nodiscard]] double uplink_fade(std::size_t index) const;
  [[nodiscard]] double downlink_fade(std::size_t index) const;

  /// Achievable uplink rate (bits/s) for a client granted `bandwidth_share`
  /// ∈ (0, 1] of the band.
  [[nodiscard]] double uplink_rate_bps(std::size_t client,
                                       double bandwidth_share) const;
  [[nodiscard]] double downlink_rate_bps(std::size_t client,
                                         double bandwidth_share) const;

  /// Transfer latencies in seconds.
  [[nodiscard]] double uplink_seconds(std::size_t client, double payload_bytes,
                                      double bandwidth_share) const;
  [[nodiscard]] double downlink_seconds(std::size_t client,
                                        double payload_bytes,
                                        double bandwidth_share) const;

  /// Transfer latencies with retransmissions: `attempts` transmissions of
  /// the full payload (the first `attempts - 1` were lost) plus the linear
  /// backoff waits between them, per config().channel.retry. attempts = 1
  /// is bitwise the plain transfer (no backoff, one airtime). The fault
  /// engine draws the attempt count; an exhausted transfer (FaultPlan
  /// attempts = 0) is priced by the caller at the full retry cap.
  [[nodiscard]] double uplink_seconds(std::size_t client, double payload_bytes,
                                      double bandwidth_share,
                                      std::size_t attempts) const;
  [[nodiscard]] double downlink_seconds(std::size_t client,
                                        double payload_bytes,
                                        double bandwidth_share,
                                        std::size_t attempts) const;

  /// Total backoff wait before the `attempts`-th transmission lands:
  /// Σ_{k=1}^{attempts-1} k · backoff_seconds.
  [[nodiscard]] double retry_backoff_seconds(std::size_t attempts) const;

  /// Compute latencies in seconds.
  [[nodiscard]] double client_compute_seconds(std::size_t client,
                                              double flops) const;
  [[nodiscard]] double server_compute_seconds(double flops) const;

  /// AP-relayed hand-off of a payload from one client to another
  /// (uplink from `from`, then downlink to `to`).
  [[nodiscard]] double relay_seconds(std::size_t from, std::size_t to,
                                     double payload_bytes,
                                     double bandwidth_share) const;

 private:
  NetworkConfig config_;
  std::vector<DeviceProfile> clients_;
  std::vector<ShannonLink> uplinks_;
  std::vector<ShannonLink> downlinks_;
  std::vector<double> uplink_fades_;    ///< |h|² per client, 1.0 ⇒ unfaded
  std::vector<double> downlink_fades_;
};

}  // namespace gsfl::net
