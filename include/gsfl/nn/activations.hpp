// Elementwise activation layers: ReLU, LeakyReLU, Tanh, Sigmoid.
#pragma once

#include "gsfl/nn/layer.hpp"

namespace gsfl::nn {

/// dy masked by the relu gate: out[i] = y[i] > 0 ? dy[i] : 0, where y is a
/// relu *output*. Since y = max(x, 0), y > 0 ⇔ x > 0, so this equals the
/// standalone Relu layer's derivative bitwise — the backward half of the
/// fused dense→relu / conv→relu pairs.
[[nodiscard]] Tensor relu_mask(const Tensor& grad_output, const Tensor& y);

/// Common base for stateless elementwise activations; derived classes
/// provide the scalar function and its derivative in terms of the cached
/// forward input/output.
class Activation : public Layer {
 public:
  [[nodiscard]] Tensor forward(const Tensor& input, bool train) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    return input;
  }
  [[nodiscard]] FlopCount flops(const Shape& input) const override {
    const std::uint64_t n = input.numel();
    return FlopCount{n, n};
  }

 protected:
  [[nodiscard]] virtual float apply(float x) const = 0;
  /// Derivative given the input x and the output y = apply(x).
  [[nodiscard]] virtual float derivative(float x, float y) const = 0;

  Tensor cached_input_;
  Tensor cached_output_;
};

class Relu final : public Activation {
 public:
  [[nodiscard]] std::string name() const override { return "relu"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Relu>(*this);
  }

 protected:
  [[nodiscard]] float apply(float x) const override { return x > 0 ? x : 0; }
  [[nodiscard]] float derivative(float x, float /*y*/) const override {
    return x > 0 ? 1.0f : 0.0f;
  }
};

class LeakyRelu final : public Activation {
 public:
  explicit LeakyRelu(float slope = 0.01f) : slope_(slope) {}
  [[nodiscard]] std::string name() const override { return "leaky_relu"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<LeakyRelu>(*this);
  }

 protected:
  [[nodiscard]] float apply(float x) const override {
    return x > 0 ? x : slope_ * x;
  }
  [[nodiscard]] float derivative(float x, float /*y*/) const override {
    return x > 0 ? 1.0f : slope_;
  }

 private:
  float slope_;
};

class Tanh final : public Activation {
 public:
  [[nodiscard]] std::string name() const override { return "tanh"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Tanh>(*this);
  }

 protected:
  [[nodiscard]] float apply(float x) const override;
  [[nodiscard]] float derivative(float x, float y) const override {
    (void)x;
    return 1.0f - y * y;
  }
};

class Sigmoid final : public Activation {
 public:
  [[nodiscard]] std::string name() const override { return "sigmoid"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Sigmoid>(*this);
  }

 protected:
  [[nodiscard]] float apply(float x) const override;
  [[nodiscard]] float derivative(float x, float y) const override {
    (void)x;
    return y * (1.0f - y);
  }
};

}  // namespace gsfl::nn
