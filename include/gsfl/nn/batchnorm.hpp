// Batch normalization over NCHW batches (per-channel statistics).
//
// Training uses batch statistics and maintains running estimates; evaluation
// normalizes with the running estimates. The running statistics are exposed
// as buffers() so model aggregation (FedAvg) can average them alongside the
// trainable parameters — without this FL/GSFL evaluation would normalize
// with whichever replica's statistics happened to survive.
#pragma once

#include "gsfl/nn/layer.hpp"

namespace gsfl::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float momentum = 0.1f,
                       float epsilon = 1e-5f);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& input, bool train) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::vector<Tensor*> parameters() override {
    return {&gamma_, &beta_};
  }
  [[nodiscard]] std::vector<Tensor*> gradients() override {
    return {&grad_gamma_, &grad_beta_};
  }
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] FlopCount flops(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<BatchNorm2d>(*this);
  }

  /// Non-trainable state that still travels with the model (running stats).
  [[nodiscard]] std::vector<Tensor*> buffers() override {
    return {&running_mean_, &running_var_};
  }

  /// Frozen-statistics accessors for Sequential::freeze(): the eval affine
  /// is γ·(x − running_mean)·rsqrt(running_var + ε) + β, which
  /// Conv2d::fold_batchnorm absorbs into the preceding conv's epilogue.
  [[nodiscard]] std::size_t channels() const { return channels_; }
  [[nodiscard]] float epsilon() const { return epsilon_; }
  [[nodiscard]] const Tensor& gamma() const { return gamma_; }
  [[nodiscard]] const Tensor& shift() const { return beta_; }
  [[nodiscard]] const Tensor& running_mean() const { return running_mean_; }
  [[nodiscard]] const Tensor& running_var() const { return running_var_; }

 private:
  std::size_t channels_;
  float momentum_;
  float epsilon_;
  Tensor gamma_;         ///< per-channel scale, init 1
  Tensor beta_;          ///< per-channel shift, init 0
  Tensor grad_gamma_;
  Tensor grad_beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Forward caches (training mode) for backward.
  Tensor cached_input_;
  Tensor cached_normalized_;
  std::vector<float> cached_mean_;
  std::vector<float> cached_inv_std_;
};

}  // namespace gsfl::nn
