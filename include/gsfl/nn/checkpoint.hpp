// Model checkpointing: persist a model's StateDict to a binary stream/file.
//
// Format: magic "GSFC" | u32 version | u64 entry count | serialized tensors.
// A checkpoint can be loaded into any architecturally identical model — the
// same index-alignment contract that powers FedAvg aggregation.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "gsfl/nn/sequential.hpp"

namespace gsfl::nn {

/// Write `model`'s parameters + buffers.
void save_checkpoint(std::ostream& out, const Sequential& model);
void save_checkpoint_file(const std::string& path, const Sequential& model);

/// Read a checkpoint into `model`; throws std::runtime_error on malformed
/// input and std::invalid_argument on architecture mismatch.
void load_checkpoint(std::istream& in, Sequential& model);
void load_checkpoint_file(const std::string& path, Sequential& model);

/// Read a checkpoint's raw state without a model (for inspection/averaging).
[[nodiscard]] StateDict read_checkpoint_state(std::istream& in);

/// Bare state-dict block (u64 entry count | serialized tensors), without the
/// file magic/version — the building block experiment checkpoints embed once
/// per model half. Errors carry the entry index and byte offset.
void write_state_dict(std::ostream& out, const StateDict& state);
[[nodiscard]] StateDict read_state_dict(std::istream& in);

}  // namespace gsfl::nn
