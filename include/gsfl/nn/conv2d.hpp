// 2-D convolution over NCHW batches, implemented as im2col + GEMM.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gsfl/common/rng.hpp"
#include "gsfl/nn/layer.hpp"
#include "gsfl/tensor/gemm.hpp"
#include "gsfl/tensor/im2col.hpp"

namespace gsfl::nn {

class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t pad,
         common::Rng& rng);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& input, bool train) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] bool can_fuse_relu() const override { return true; }
  [[nodiscard]] Tensor forward_fused_relu(const Tensor& input,
                                          bool train) override;
  [[nodiscard]] Tensor backward_fused_relu(const Tensor& grad_output) override;
  [[nodiscard]] std::vector<Tensor*> parameters() override;
  [[nodiscard]] std::vector<Tensor*> gradients() override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] FlopCount flops(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] std::size_t in_channels() const { return in_channels_; }
  [[nodiscard]] std::size_t out_channels() const { return out_channels_; }
  [[nodiscard]] Tensor& weight() { return weight_; }
  [[nodiscard]] Tensor& bias() { return bias_; }

  /// Rebuild the persistent packed weight panel if the weight mutated since
  /// the last pack (see Layer::prepack).
  void prepack() override;

  /// Fold a trailing BatchNorm2d's frozen statistics into this conv's
  /// write-back epilogue: every output element runs
  /// γ_c·((conv + bias) − μ_c)·inv_σ_c + β_c during the GEMM finalize, with
  /// inv_σ_c precomputed here as 1/sqrt(var_c + eps) — the exact expression
  /// BatchNorm2d's own eval pass computes (micro::bn_affine is shared), so
  /// the folded forward is bitwise identical to conv → BN as two layers.
  /// The conv's weights and bias are untouched (state()/checkpoints stay
  /// valid); training forwards are rejected while folded.
  void fold_batchnorm(std::span<const float> gamma,
                      std::span<const float> shift,
                      std::span<const float> mean, std::span<const float> var,
                      float epsilon);
  [[nodiscard]] bool batchnorm_folded() const { return bn_folded_; }

 private:
  [[nodiscard]] tensor::ConvGeometry geometry(const Shape& input) const;
  /// Shared forward core: batched GEMM with the per-channel bias (and
  /// optionally ReLU) folded into the write-back epilogue.
  [[nodiscard]] Tensor forward_impl(const Tensor& input, bool train,
                                    bool fuse_relu);
  /// Shared backward core. `relu_y` (nullable) is the fused forward's
  /// output: when set, the Relu derivative masks dy inside the dx panel
  /// pack and the dW/db restage copy — no masked-dy tensor, no extra dy
  /// sweep.
  [[nodiscard]] Tensor backward_impl(const Tensor& grad_output,
                                     const float* relu_y);
  /// The packed weight panel (MR strips), rebuilt copy-on-write when
  /// weight_.version() moved.
  [[nodiscard]] const tensor::PackedOperand& ensure_packed();

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t pad_;
  Tensor weight_;      ///< (out_c, in_c·k·k) — GEMM-ready layout
  Tensor bias_;        ///< (out_c)
  Tensor grad_weight_;
  Tensor grad_bias_;

  // Forward cache for backward: the input itself. The im2col matrices are
  // recomputed into per-thread scratch during backward — the input is k²×
  // smaller than the unfolded columns, so this trades a cheap re-unfold for
  // dropping the per-sample column allocations entirely.
  Tensor cached_input_;
  Tensor cached_fused_output_;  ///< relu output of the last fused forward
  bool last_forward_fused_ = false;

  /// Persistent packed weight panel, keyed on weight_.version(); shared
  /// (read-only) with clones until either side's weight mutates.
  std::shared_ptr<const tensor::PackedOperand> packed_weight_;
  std::uint64_t packed_version_ = 0;

  /// Frozen batch-norm epilogue operands (fold_batchnorm), indexed per
  /// output channel. Empty until folded.
  bool bn_folded_ = false;
  std::vector<float> bn_gamma_;
  std::vector<float> bn_shift_;
  std::vector<float> bn_mean_;
  std::vector<float> bn_inv_std_;
};

}  // namespace gsfl::nn
