// Fully-connected layer: y = x·Wᵀ + b.
#pragma once

#include <cstdint>
#include <memory>

#include "gsfl/common/rng.hpp"
#include "gsfl/nn/layer.hpp"
#include "gsfl/tensor/gemm.hpp"

namespace gsfl::nn {

class Dense final : public Layer {
 public:
  /// Weights are He-initialized from `rng`; bias starts at zero.
  Dense(std::size_t in_features, std::size_t out_features, common::Rng& rng);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& input, bool train) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] bool can_fuse_relu() const override { return true; }
  [[nodiscard]] Tensor forward_fused_relu(const Tensor& input,
                                          bool train) override;
  [[nodiscard]] Tensor backward_fused_relu(const Tensor& grad_output) override;
  [[nodiscard]] std::vector<Tensor*> parameters() override;
  [[nodiscard]] std::vector<Tensor*> gradients() override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] FlopCount flops(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] std::size_t in_features() const { return in_features_; }
  [[nodiscard]] std::size_t out_features() const { return out_features_; }

  /// Direct parameter access for tests.
  [[nodiscard]] Tensor& weight() { return weight_; }
  [[nodiscard]] Tensor& bias() { return bias_; }

  /// Arithmetic the forward GEMM runs in (default kF32). kInt8 is the
  /// opt-in quantize-on-pack path for serving/eval: the forward quantizes
  /// x per row and W per output feature during panel packing and
  /// dequantizes in the epilogue (see tensor::GemmPrecision). Backward
  /// always runs f32 — training gradients keep full precision. The knob is
  /// per-layer and survives clone().
  void set_forward_precision(tensor::GemmPrecision precision) {
    forward_precision_ = precision;
  }
  [[nodiscard]] tensor::GemmPrecision forward_precision() const {
    return forward_precision_;
  }

  /// Rebuild the persistent packed weight panel if the weight mutated since
  /// the last pack (see Layer::prepack). The forward calls this lazily;
  /// callers that fan a model out across threads (metrics::evaluate,
  /// Sequential::freeze) call it up front so every replica shares one panel.
  void prepack() override;

 private:
  /// Shared forward core: one GEMM off the persistent packed weight with
  /// the bias (and optionally ReLU) folded into the write-back epilogue.
  [[nodiscard]] Tensor forward_impl(const Tensor& input, bool train,
                                    bool fuse_relu);
  /// The packed Wᵀ panel, rebuilt copy-on-write when weight_.version()
  /// moved (clones sharing the pointer are never perturbed).
  [[nodiscard]] const tensor::PackedOperand& ensure_packed();
  /// Shared backward core. `relu_y` (nullable) is the fused forward's
  /// output: when set, the Relu derivative masks dy inside the dW/dx panel
  /// packing and the db fold — no masked-dy tensor, no extra dy sweep.
  [[nodiscard]] Tensor backward_impl(const Tensor& grad_output,
                                     const float* relu_y);

  std::size_t in_features_;
  std::size_t out_features_;
  Tensor weight_;       ///< (out, in)
  Tensor bias_;         ///< (out)
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_; ///< (batch, in) from the last *training* forward
  Tensor cached_fused_output_;  ///< relu output of the last fused forward
  bool last_forward_fused_ = false;
  tensor::GemmPrecision forward_precision_ = tensor::GemmPrecision::kF32;
  /// Persistent packed Wᵀ (+ optional int8 sibling), keyed on
  /// weight_.version(). Shared (read-only) with clones until either side's
  /// weight mutates, at which point that side repacks a fresh panel.
  std::shared_ptr<const tensor::PackedOperand> packed_weight_;
  std::uint64_t packed_version_ = 0;
};

}  // namespace gsfl::nn
