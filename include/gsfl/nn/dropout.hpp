// Inverted dropout.
//
// During training each unit is zeroed with probability p and survivors are
// scaled by 1/(1-p) so the expected activation is unchanged; at evaluation
// time the layer is the identity. The layer owns a forked RNG so cloned
// models draw identical masks — a requirement for the library's
// scheme-equivalence tests.
#pragma once

#include "gsfl/common/rng.hpp"
#include "gsfl/nn/layer.hpp"

namespace gsfl::nn {

class Dropout final : public Layer {
 public:
  Dropout(float drop_probability, common::Rng& rng);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& input, bool train) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    return input;
  }
  [[nodiscard]] FlopCount flops(const Shape& input) const override {
    const std::uint64_t n = input.numel();
    return FlopCount{n, n};
  }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dropout>(*this);
  }

 private:
  float drop_probability_;
  common::Rng rng_;
  Tensor cached_mask_;  ///< scale factors applied in the last training pass
  bool last_was_train_ = false;
};

}  // namespace gsfl::nn
