// Flatten: collapse every non-batch axis into one, (N, C, H, W) → (N, CHW).
#pragma once

#include "gsfl/nn/layer.hpp"

namespace gsfl::nn {

class Flatten final : public Layer {
 public:
  [[nodiscard]] std::string name() const override { return "flatten"; }

  [[nodiscard]] Tensor forward(const Tensor& input, bool train) override {
    GSFL_EXPECT(input.shape().rank() >= 2);
    // Backward only needs the input shape; eval forwards clear it so
    // backward-after-eval fails loudly.
    cached_input_shape_ = train ? input.shape() : Shape();
    return input.reshape(output_shape(input.shape()));
  }

  [[nodiscard]] Tensor backward(const Tensor& grad_output) override {
    GSFL_EXPECT_MSG(cached_input_shape_.rank() >= 2,
                    "backward() requires a prior training-mode forward()");
    GSFL_EXPECT(grad_output.numel() == cached_input_shape_.numel());
    return grad_output.reshape(cached_input_shape_);
  }

  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    GSFL_EXPECT(input.rank() >= 2);
    return Shape{input[0], input.numel() / input[0]};
  }

  [[nodiscard]] FlopCount flops(const Shape& /*input*/) const override {
    return FlopCount{0, 0};
  }

  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }

 private:
  Shape cached_input_shape_;
};

}  // namespace gsfl::nn
