// Weight initializers.
//
// Kept separate from the layers so tests can exercise initial-distribution
// properties and so every layer draws from the experiment's single seeded
// RNG (reproducibility across schemes requires identical initial weights).
#pragma once

#include "gsfl/common/rng.hpp"
#include "gsfl/tensor/tensor.hpp"

namespace gsfl::nn {

/// He (Kaiming) normal: stddev = sqrt(2 / fan_in). Standard for ReLU nets.
void he_normal(tensor::Tensor& weights, std::size_t fan_in,
               common::Rng& rng);

/// Xavier/Glorot uniform: limit = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(tensor::Tensor& weights, std::size_t fan_in,
                    std::size_t fan_out, common::Rng& rng);

}  // namespace gsfl::nn
