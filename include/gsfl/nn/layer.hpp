// Layer: the unit of composition for neural models.
//
// A Layer owns its parameters and gradients, caches whatever it needs from
// the last forward() to run backward(), and reports its compute cost (FLOPs)
// and parameter footprint so the wireless latency model can price client-side
// and server-side work without executing it.
//
// Layers are deliberately stateful and not thread-safe: one Layer instance
// belongs to one model replica. Replication (per-group models in GSFL,
// per-client models in FL) goes through clone().
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gsfl/tensor/shape.hpp"
#include "gsfl/tensor/tensor.hpp"

namespace gsfl::nn {

using tensor::Shape;
using tensor::Tensor;

/// Forward / backward floating-point operation counts for one pass over a
/// given input shape (batch dimension included).
struct FlopCount {
  std::uint64_t forward = 0;
  std::uint64_t backward = 0;

  FlopCount& operator+=(const FlopCount& other) {
    forward += other.forward;
    backward += other.backward;
    return *this;
  }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer description, e.g. "conv2d(3->8,k3,s1,p1)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Run the layer on `input`; `train` selects training behaviour
  /// (dropout masks, batch statistics). Caches activations for backward().
  [[nodiscard]] virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Given d(loss)/d(output), accumulate parameter gradients and return
  /// d(loss)/d(input). Must follow a forward() on the same instance.
  [[nodiscard]] virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Fusion peephole support (see docs/compute.md). A layer that can absorb
  /// an immediately following Relu into its GEMM write-back epilogue
  /// overrides all three: forward_fused_relu computes relu(layer(x)) in one
  /// pass, and backward_fused_relu takes d(loss)/d(relu output), applies the
  /// relu mask from the fused forward, and continues the layer's own
  /// backward. Sequential pairs the calls; mixing a fused forward with a
  /// plain backward (or vice versa) on the same instance is a usage error.
  [[nodiscard]] virtual bool can_fuse_relu() const { return false; }
  [[nodiscard]] virtual Tensor forward_fused_relu(const Tensor& input,
                                                  bool train) {
    (void)input;
    (void)train;
    GSFL_EXPECT_MSG(false, name() + " does not support relu fusion");
    return {};
  }
  [[nodiscard]] virtual Tensor backward_fused_relu(const Tensor& grad_output) {
    (void)grad_output;
    GSFL_EXPECT_MSG(false, name() + " does not support relu fusion");
    return {};
  }

  /// Build any persistent packed form of the layer's parameters ahead of
  /// time (e.g. the GEMM panel layout of a Dense/Conv2d weight). Forward
  /// paths build these lazily anyway; calling prepack() moves the one-time
  /// cost out of the first request so serving latency percentiles are not
  /// polluted by it. Stateless layers keep the default no-op.
  virtual void prepack() {}

  /// Trainable parameters and their gradient buffers, in matching order.
  /// Stateless layers return empty vectors.
  [[nodiscard]] virtual std::vector<Tensor*> parameters() { return {}; }
  [[nodiscard]] virtual std::vector<Tensor*> gradients() { return {}; }

  /// Non-trainable state that still belongs to the model (e.g. batch-norm
  /// running statistics). Included in state dicts and model aggregation but
  /// never touched by optimizers.
  [[nodiscard]] virtual std::vector<Tensor*> buffers() { return {}; }

  /// Shape this layer produces for the given input shape (batch included).
  [[nodiscard]] virtual Shape output_shape(const Shape& input) const = 0;

  /// FLOPs for one forward/backward on the given input shape.
  [[nodiscard]] virtual FlopCount flops(const Shape& input) const = 0;

  /// Deep copy, including parameter values and any RNG state, so that a
  /// clone and its source evolve identically given identical inputs.
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  /// Zero all gradient buffers.
  void zero_grad() {
    for (Tensor* g : gradients()) g->fill(0.0f);
  }

  /// Total trainable scalar parameters.
  [[nodiscard]] std::size_t parameter_count() {
    std::size_t n = 0;
    for (const Tensor* p : parameters()) n += p->numel();
    return n;
  }

 protected:
  Layer() = default;
  Layer(const Layer&) = default;
  Layer& operator=(const Layer&) = default;
};

}  // namespace gsfl::nn
