// Softmax cross-entropy loss over integer class labels.
//
// Computed jointly (log-sum-exp form) for numerical stability; the gradient
// with respect to the logits is the familiar (softmax − one-hot) / batch.
#pragma once

#include <cstdint>
#include <span>

#include "gsfl/tensor/tensor.hpp"

namespace gsfl::nn {

struct LossResult {
  double loss = 0.0;              ///< mean cross-entropy over the batch
  tensor::Tensor grad_logits;     ///< d(loss)/d(logits), shape (batch, classes)
  tensor::Tensor probabilities;   ///< softmax outputs, shape (batch, classes)
};

/// logits: (batch, classes); labels: one class id per batch row.
[[nodiscard]] LossResult softmax_cross_entropy(
    const tensor::Tensor& logits, std::span<const std::int32_t> labels);

/// Row-wise softmax of a (batch, classes) tensor (inference helper).
[[nodiscard]] tensor::Tensor softmax(const tensor::Tensor& logits);

/// Fraction of rows whose argmax equals the label.
[[nodiscard]] double accuracy(const tensor::Tensor& logits,
                              std::span<const std::int32_t> labels);

}  // namespace gsfl::nn
