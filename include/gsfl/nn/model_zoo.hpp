// Canonical model architectures used across examples, tests, and benches.
#pragma once

#include "gsfl/common/rng.hpp"
#include "gsfl/nn/sequential.hpp"

namespace gsfl::nn {

struct CnnConfig {
  std::size_t in_channels = 3;
  std::size_t image_size = 32;     ///< square input images
  std::size_t classes = 43;        ///< GTSRB has 43 traffic-sign classes
  std::size_t conv1_filters = 8;
  std::size_t conv2_filters = 16;
  std::size_t conv3_filters = 0;   ///< 0 ⇒ two conv blocks; >0 ⇒ a third
                                   ///< block (image_size must divide by 8)
  std::size_t hidden = 64;
  bool batch_norm = false;
  float dropout = 0.0f;
};

/// The DeepThin-inspired lightweight traffic-sign CNN used throughout the
/// paper reproduction:
///   conv3x3 (pad 1) → [bn] → relu → maxpool2      (× 2 or 3 blocks)
///   flatten → dense(hidden) → relu → [dropout] → dense(classes)
[[nodiscard]] Sequential make_gtsrb_cnn(const CnnConfig& config,
                                        common::Rng& rng);

/// Three-block variant preset (closer to DeepThin's full depth [ref 4 of
/// the paper]); ~4× the FLOPs of the default two-block model.
[[nodiscard]] CnnConfig deep_cnn_config(std::size_t image_size = 32,
                                        std::size_t classes = 43);

/// Serving preset: the deep three-block model with batch norm and dropout
/// enabled — every layer class Sequential::freeze() rewrites (BN folding,
/// dropout elision, persistent packs) appears at least once. Used by
/// bench_serving and the freeze tests.
[[nodiscard]] CnnConfig serving_cnn_config(std::size_t image_size = 32,
                                           std::size_t classes = 43);

/// Layer index after the first conv block — the paper's natural cut point
/// (small client-side model, moderate smashed data).
[[nodiscard]] std::size_t default_cut_layer(const CnnConfig& config);

/// Number of distinct cut points (0..size inclusive is legal; this returns
/// the model depth for sweep bounds).
[[nodiscard]] std::size_t cut_layer_count(const CnnConfig& config);

/// A plain MLP for fast unit tests: dense(h) → relu, repeated, → dense(out).
[[nodiscard]] Sequential make_mlp(std::size_t in_features,
                                  std::vector<std::size_t> hidden,
                                  std::size_t out_features, common::Rng& rng);

}  // namespace gsfl::nn
