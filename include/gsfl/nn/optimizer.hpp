// First-order optimizers.
//
// An Optimizer binds to a fixed list of (parameter, gradient) pairs — in
// practice a model's parameters()/gradients() — and advances them on each
// step(). Per-parameter state (momentum, Adam moments) is keyed by position,
// so the binding must not change between steps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gsfl/tensor/tensor.hpp"

namespace gsfl::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Bind to parameters and matching gradients (same order, same shapes).
  void attach(std::vector<tensor::Tensor*> params,
              std::vector<tensor::Tensor*> grads);

  /// Apply one update using the currently accumulated gradients.
  void step();

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}

  /// Called once at the start of each step(), before any update().
  virtual void begin_step() {}

  /// Update one parameter tensor from its gradient; `slot` identifies the
  /// parameter for optimizers with per-parameter state.
  virtual void update(std::size_t slot, tensor::Tensor& param,
                      const tensor::Tensor& grad) = 0;

  double lr_;
  std::vector<tensor::Tensor*> params_;
  std::vector<tensor::Tensor*> grads_;
};

/// Plain SGD with optional L2 weight decay: w ← w − lr · (g + λw).
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double weight_decay = 0.0);
  [[nodiscard]] std::string name() const override { return "sgd"; }

 protected:
  void update(std::size_t slot, tensor::Tensor& param,
              const tensor::Tensor& grad) override;

 private:
  double weight_decay_;
};

/// SGD with classical momentum: v ← μv + g; w ← w − lr·v.
class MomentumSgd final : public Optimizer {
 public:
  MomentumSgd(double lr, double momentum, double weight_decay = 0.0);
  [[nodiscard]] std::string name() const override { return "momentum"; }

 protected:
  void update(std::size_t slot, tensor::Tensor& param,
              const tensor::Tensor& grad) override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);
  [[nodiscard]] std::string name() const override { return "adam"; }

 protected:
  void begin_step() override { ++t_; }
  void update(std::size_t slot, tensor::Tensor& param,
              const tensor::Tensor& grad) override;

 private:
  double beta1_, beta2_, epsilon_;
  std::uint64_t t_ = 0;
  std::vector<tensor::Tensor> m_, v_;
};

}  // namespace gsfl::nn
