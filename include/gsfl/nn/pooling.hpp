// Spatial pooling layers over NCHW batches.
#pragma once

#include "gsfl/nn/layer.hpp"

namespace gsfl::nn {

/// Max pooling with a square window; remembers argmax positions so backward
/// routes each gradient to exactly the winning input element.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window, std::size_t stride = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& input, bool train) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] FlopCount flops(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t window_;
  std::size_t stride_;
  Shape cached_input_shape_;
  std::vector<std::size_t> cached_argmax_;  ///< flat input index per output
};

/// Average pooling with a square window.
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::size_t window, std::size_t stride = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& input, bool train) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] FlopCount flops(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t window_;
  std::size_t stride_;
  Shape cached_input_shape_;
};

}  // namespace gsfl::nn
