// Sequential: an ordered stack of layers with a shared forward/backward
// contract, plus the state-dict machinery that model distribution and
// aggregation are built on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gsfl/nn/layer.hpp"
#include "gsfl/tensor/gemm.hpp"

namespace gsfl::nn {

/// A model's full state: parameters followed by buffers, layer by layer.
/// Two models built from the same architecture have index-aligned states,
/// which is exactly the property FedAvg aggregation relies on.
using StateDict = std::vector<Tensor>;

class Sequential {
 public:
  Sequential() = default;

  /// Deep copy (clones every layer, including parameter values).
  Sequential(const Sequential& other);
  Sequential& operator=(const Sequential& other);
  Sequential(Sequential&&) noexcept = default;
  Sequential& operator=(Sequential&&) noexcept = default;

  /// Append a layer; returns *this for builder-style chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] bool empty() const { return layers_.empty(); }
  [[nodiscard]] Layer& layer(std::size_t i);
  [[nodiscard]] const Layer& layer(std::size_t i) const;

  /// Forward through every layer in order. When fusion is enabled (the
  /// default) a peephole pass pairs each fusable layer (Dense, Conv2d) with
  /// an immediately following Relu and runs the pair as one fused call —
  /// the Relu layer stays in the stack (indices, cut points, and state
  /// dicts are unchanged; it is stateless) but its forward/backward and
  /// activation copies are skipped. Fused results are bitwise identical to
  /// the unfused sequence.
  [[nodiscard]] Tensor forward(const Tensor& input, bool train);

  /// Backward through every layer in reverse; returns d(loss)/d(input).
  /// Mirrors the fusion plan of the last forward.
  [[nodiscard]] Tensor backward(const Tensor& grad_output);

  /// Enable/disable the relu-fusion peephole (on by default; tests compare
  /// both paths).
  void set_fusion(bool enabled) { fusion_enabled_ = enabled; }
  [[nodiscard]] bool fusion_enabled() const { return fusion_enabled_; }

  void zero_grad();

  [[nodiscard]] std::vector<Tensor*> parameters();
  [[nodiscard]] std::vector<Tensor*> gradients();
  [[nodiscard]] std::vector<Tensor*> buffers();

  /// Copy of all parameters + buffers (the unit of model exchange).
  [[nodiscard]] StateDict state() const;
  /// Load a state produced by an architecturally identical model.
  void load_state(const StateDict& state);

  [[nodiscard]] std::size_t parameter_count() const;
  /// Bytes needed to transmit the model (parameters + buffers, float32).
  [[nodiscard]] std::size_t state_bytes() const;

  [[nodiscard]] Shape output_shape(const Shape& input) const;
  [[nodiscard]] FlopCount flops(const Shape& input) const;
  /// Per-layer output shapes for the given input (index i = after layer i).
  [[nodiscard]] std::vector<Shape> layer_output_shapes(const Shape& input) const;

  [[nodiscard]] std::string summary(const Shape& input) const;

  /// Freeze the model for inference-only serving. Irreversible on this
  /// instance (copies made *before* the call stay trainable):
  ///   - every Dense/Conv2d weight is pre-packed into its persistent GEMM
  ///     panel layout (Layer::prepack), so no request pays pack cost;
  ///   - each BatchNorm2d directly following a Conv2d is folded into that
  ///     conv's write-back epilogue (Conv2d::fold_batchnorm) and skipped;
  ///   - Dropout layers are skipped (identity at eval);
  ///   - with `precision == kInt8`, Dense forwards switch to the quantized
  ///     GEMM path off the frozen weight scales.
  /// Skipped layers stay in the stack — indices, state dicts, and summaries
  /// are unchanged — they are simply not executed. At kF32 a frozen
  /// forward(x, /*train=*/false) is bitwise identical to the unfrozen eval
  /// forward (see docs/serving.md). Training forwards, backward(), and
  /// load_state() are rejected while frozen.
  void freeze(tensor::GemmPrecision precision = tensor::GemmPrecision::kF32);
  [[nodiscard]] bool frozen() const { return frozen_; }

  /// Pre-pack every layer's persistent GEMM panels (Layer::prepack) without
  /// freezing. Used by metrics::evaluate before fanning a model out across
  /// threads so every replica shares one panel instead of racing to build
  /// thread-local copies.
  void prepack();

  /// Split into [0, cut) and [cut, size) deep copies — the primitive beneath
  /// SplitModel. `cut` may be 0 or size() (one side empty).
  [[nodiscard]] std::pair<Sequential, Sequential> split(std::size_t cut) const;

  /// Concatenate: layers of `head` followed by layers of `tail` (deep copies).
  [[nodiscard]] static Sequential concatenate(const Sequential& head,
                                              const Sequential& tail);

 private:
  /// Recompute fused_: fused_[i] == 1 ⇔ layer i absorbs the next executed
  /// layer, which is a Relu. On a frozen model the pair may straddle skipped
  /// layers (conv → folded BN → relu fuses conv+relu).
  void refresh_fusion_plan();
  [[nodiscard]] bool is_skipped(std::size_t i) const {
    return i < skipped_.size() && skipped_[i] != 0;
  }

  std::vector<std::unique_ptr<Layer>> layers_;
  bool fusion_enabled_ = true;
  /// Fusion plan of the last forward (backward mirrors it). Not part of the
  /// model's value: copies rebuild it on their next forward.
  std::vector<unsigned char> fused_;
  /// Serving plan (freeze()): skipped_[i] == 1 ⇔ layer i is elided from
  /// execution (folded BatchNorm2d, Dropout). Copies carry it.
  bool frozen_ = false;
  std::vector<unsigned char> skipped_;
};

}  // namespace gsfl::nn
