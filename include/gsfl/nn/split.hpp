// SplitModel: a model divided at a cut layer into a client-side prefix and a
// server-side suffix — the central object of split learning.
//
// The forward pass crosses the wireless link once (client → server, carrying
// the "smashed data" activation) and the backward pass crosses it once more
// (server → client, carrying the smashed-data gradient). SplitModel exposes
// exactly those four half-passes plus the payload sizes each exchange puts
// on the air, so training schemes and the latency model stay in lock-step.
#pragma once

#include <cstddef>

#include "gsfl/nn/sequential.hpp"

namespace gsfl::nn {

class SplitModel {
 public:
  /// Split `full` before layer `cut_layer` (0 ⇒ empty client side,
  /// full.size() ⇒ empty server side; both extremes are legal and degrade
  /// to centralized-on-server / centralized-on-client respectively).
  SplitModel(const Sequential& full, std::size_t cut_layer);

  /// Assemble directly from the two halves.
  SplitModel(Sequential client_side, Sequential server_side);

  [[nodiscard]] std::size_t cut_layer() const { return cut_; }

  [[nodiscard]] Sequential& client() { return client_; }
  [[nodiscard]] const Sequential& client() const { return client_; }
  [[nodiscard]] Sequential& server() { return server_; }
  [[nodiscard]] const Sequential& server() const { return server_; }

  /// Client half-pass: local data in, smashed data out.
  [[nodiscard]] Tensor client_forward(const Tensor& input, bool train);
  /// Server half-pass: smashed data in, logits out.
  [[nodiscard]] Tensor server_forward(const Tensor& smashed, bool train);
  /// Server backward: logits gradient in, smashed-data gradient out.
  [[nodiscard]] Tensor server_backward(const Tensor& grad_logits);
  /// Client backward: consumes the smashed-data gradient.
  void client_backward(const Tensor& grad_smashed);

  /// Whole-model convenience forward (evaluation path).
  [[nodiscard]] Tensor forward(const Tensor& input, bool train);

  void zero_grad();

  /// Reassembled full model (deep copy) — used for evaluation/aggregation.
  [[nodiscard]] Sequential merged() const;

  /// Shape of the smashed data for a given input shape.
  [[nodiscard]] Shape smashed_shape(const Shape& input) const;
  /// Bytes on the air for one smashed-data (or gradient) exchange.
  [[nodiscard]] std::size_t smashed_bytes(const Shape& input) const;
  /// Bytes on the air to move the client-side (resp. server-side) model.
  [[nodiscard]] std::size_t client_state_bytes() const;
  [[nodiscard]] std::size_t server_state_bytes() const;

  /// FLOP counts per side for one batch of the given input shape.
  [[nodiscard]] FlopCount client_flops(const Shape& input) const;
  [[nodiscard]] FlopCount server_flops(const Shape& input) const;

 private:
  std::size_t cut_ = 0;
  Sequential client_;
  Sequential server_;
};

}  // namespace gsfl::nn
