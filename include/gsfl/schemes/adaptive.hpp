// AdaptiveController: online cut-layer and bandwidth-share decisions.
//
// The paper picks the split point and the per-group resource shares *per
// deployment*; follow-up work (ASFL, Xu et al. — see PAPERS.md) re-picks
// both *per round* from observed timings. This controller is that loop: a
// trainer hands it one observation per round — the published round's
// LatencyBreakdown plus the cut it trained at — and gets back a decision:
// which cut the next round should train at and whether to re-balance the
// bandwidth shares.
//
// Determinism contract (pinned by the Adaptive* property tests): decide()
// is a pure function of (config, candidate table, observation history).
// Its only random ingredient — the bandit's ε-exploration — is drawn from
// a fresh round-keyed stream, Rng(seed).fork(round + 1), never from a
// persistent engine, so a decision replayed after checkpoint/resume, at
// any pipeline depth, or on any thread is bitwise the one the barriered
// loop makes. Trainers call decide() exactly once per round, in round
// order, from the round's publish chain.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gsfl/nn/split.hpp"
#include "gsfl/sim/breakdown.hpp"

namespace gsfl::schemes {

enum class AdaptivePolicy {
  kGreedy,  ///< rate-model argmin over enumerated cuts, every round
  kPaper,   ///< the paper's heuristic: min wire bytes under a device-flops cap
  kBandit,  ///< ε-greedy over cuts, reward = −round latency
};

[[nodiscard]] const char* to_string(AdaptivePolicy policy);
/// Parse "greedy" / "paper" / "bandit" (as spelled by --adaptive=).
[[nodiscard]] std::optional<AdaptivePolicy> parse_adaptive_policy(
    std::string_view name);

/// Per-batch cost profile of one candidate cut, from nn::SplitModel
/// enumeration (flops are forward + backward).
struct CutCost {
  std::size_t cut = 0;
  double client_flops = 0.0;
  double server_flops = 0.0;
  double smashed_bytes = 0.0;       ///< one cut-layer exchange on the air
  double client_state_bytes = 0.0;  ///< client-side model on the air
};

struct AdaptiveConfig {
  AdaptivePolicy policy = AdaptivePolicy::kGreedy;
  /// Seeds the round-keyed exploration stream (bandit only).
  std::uint64_t seed = 0xADA7;
  /// Bandit exploration probability, in [0, 1).
  double epsilon = 0.1;
  /// Candidate cuts outside [min_cut, max_cut] are dropped from the table.
  std::size_t min_cut = 1;
  std::size_t max_cut = std::numeric_limits<std::size_t>::max();
  /// kPaper: device-side flops cap as a fraction of the full model's flops.
  double paper_compute_budget = 0.25;
};

/// What a trainer reports after a round publishes: the latency the round
/// actually cost and the cut it trained at.
struct AdaptiveObservation {
  std::size_t round = 0;  ///< 0-based index of the round observed
  std::size_t cut = 0;
  sim::LatencyBreakdown latency;
};

struct AdaptiveDecision {
  std::size_t cut = 0;      ///< cut the next round should train at
  bool changed = false;     ///< cut differs from the observed round's
  bool rebalance = false;   ///< re-balance bandwidth shares now
  bool explored = false;    ///< bandit ε-exploration round
};

class AdaptiveController {
 public:
  explicit AdaptiveController(AdaptiveConfig config = {});

  /// Install the scheme's enumerated cut-cost table (Trainer::set_adaptive
  /// does this). Cuts outside [min_cut, max_cut] are filtered out; an empty
  /// table (e.g. FL has no cut) pins every decision to "keep".
  void set_candidates(std::vector<CutCost> table);
  [[nodiscard]] const std::vector<CutCost>& candidates() const {
    return candidates_;
  }
  [[nodiscard]] const AdaptiveConfig& config() const { return config_; }

  /// Consume round `obs.round`'s outcome and decide for the next round.
  /// Must be called once per round, in round order (the bandit's arm
  /// statistics advance here).
  [[nodiscard]] AdaptiveDecision decide(const AdaptiveObservation& obs);

  /// Most recent decision (default-constructed before the first decide).
  [[nodiscard]] const AdaptiveDecision& last_decision() const { return last_; }

  /// Rounds observed so far (== bandit updates applied).
  [[nodiscard]] std::size_t rounds_observed() const { return observed_; }

  /// The greedy policy's latency model for one candidate, given the
  /// observed round: per-unit rates are fitted to the observed cut's cost
  /// row and extrapolated to `candidate`. Exposed so tests can pin the
  /// argmin independently.
  [[nodiscard]] double score_cut(const CutCost& candidate,
                                 const AdaptiveObservation& obs) const;

  /// Mutable decision state (bandit arm statistics + observation counter),
  /// for trainer checkpoints. Greedy/paper carry no state but still
  /// round-trip the counter.
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

 private:
  [[nodiscard]] const CutCost* cost_for(std::size_t cut) const;
  [[nodiscard]] AdaptiveDecision decide_greedy(const AdaptiveObservation& obs);
  [[nodiscard]] AdaptiveDecision decide_paper(const AdaptiveObservation& obs);
  [[nodiscard]] AdaptiveDecision decide_bandit(const AdaptiveObservation& obs);

  AdaptiveConfig config_;
  std::vector<CutCost> candidates_;  ///< filtered, ascending by cut
  std::vector<CutCost> all_costs_;   ///< unfiltered (rates need the live cut)
  std::vector<std::uint64_t> arm_pulls_;  ///< bandit: per-candidate
  std::vector<double> arm_mean_;          ///< bandit: mean observed latency
  std::size_t observed_ = 0;
  AdaptiveDecision last_;
};

/// Enumerate every cut of `full` where both halves carry parameters (the
/// client must have a model to relay, the server a side to train) and price
/// it for one batch of `batch_shape`.
[[nodiscard]] std::vector<CutCost> enumerate_split_cut_costs(
    const nn::Sequential& full, const tensor::Shape& batch_shape);

/// Re-split a live (client, server) half pair at `new_cut`, carrying every
/// parameter over bitwise (concatenate + split are deep copies).
void resplit_halves(nn::Sequential& client, nn::Sequential& server,
                    std::size_t new_cut);

}  // namespace gsfl::schemes
