// FedAvg aggregation of model state dicts.
//
// Both the FL baseline and GSFL's step-3 aggregation reduce K replicas to a
// sample-weighted average, tensor by tensor — a parallel weighted reduction
// over state entries (bitwise identical for every thread count). The FLOP
// model (2·K·P + K for K replicas of P scalars, counting the per-replica
// weight-normalization divide) lets the latency simulation price
// aggregation at the edge server.
#pragma once

#include <span>
#include <vector>

#include "gsfl/nn/sequential.hpp"

namespace gsfl::schemes {

/// Sample-weighted average of state dicts. Weights are normalized
/// internally; all states must be index-aligned (same architecture).
/// Entries are folded in parallel on the global pool; each entry's
/// ascending-replica fold runs on one lane, so results are bitwise
/// identical for every thread count.
[[nodiscard]] nn::StateDict fedavg_states(
    std::span<const nn::StateDict> states, std::span<const double> weights);

/// Convenience: aggregate models in place of states.
[[nodiscard]] nn::StateDict fedavg_models(
    std::span<const nn::Sequential* const> models,
    std::span<const double> weights);

/// FLOPs to average `replicas` state dicts of `scalars` parameters each:
/// 2·scalars·replicas for the normalized-weight multiply-adds plus one
/// normalization divide per replica.
[[nodiscard]] double aggregation_flops(std::size_t scalars,
                                       std::size_t replicas);

}  // namespace gsfl::schemes
