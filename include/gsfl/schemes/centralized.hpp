// Centralized learning (CL): the accuracy upper-bound baseline.
//
// All client data is pooled at the edge server and trained with ordinary
// mini-batch SGD. One "round" processes the pooled data once (the same
// number of samples every other scheme touches per round, keeping
// accuracy-vs-round curves comparable). The latency model charges the
// one-time raw-data upload on the first round — the very cost FL/SL/GSFL
// exist to avoid — and server compute thereafter.
#pragma once

#include "gsfl/data/sampler.hpp"
#include "gsfl/schemes/trainer.hpp"

namespace gsfl::schemes {

class CentralizedTrainer final : public Trainer {
 public:
  CentralizedTrainer(const net::WirelessNetwork& network,
                     std::vector<data::Dataset> client_data,
                     nn::Sequential initial_model, TrainConfig config);

  [[nodiscard]] nn::Sequential global_model() const override { return model_; }

 protected:
  RoundResult do_round() override;

 private:
  nn::Sequential model_;
  data::Dataset pooled_;
  data::BatchSampler sampler_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  bool data_uploaded_ = false;
};

}  // namespace gsfl::schemes
