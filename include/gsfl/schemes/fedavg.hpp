// Federated learning (FL) with FedAvg — McMahan et al. (2017).
//
// Each round every client downloads the full global model, trains
// `local_epochs` passes over its local data on-device, and uploads the full
// model; the AP averages (sample-weighted). All clients work concurrently,
// so the round's span is the slowest client's download+train+upload chain,
// with the N clients splitting the band while transmitting. The large
// full-model payloads over weak uplinks are exactly the communication
// bottleneck the paper's Fig. 2(a) holds against FL.
#pragma once

#include "gsfl/data/sampler.hpp"
#include "gsfl/schemes/trainer.hpp"

namespace gsfl::schemes {

class FedAvgTrainer final : public Trainer {
 public:
  FedAvgTrainer(const net::WirelessNetwork& network,
                std::vector<data::Dataset> client_data,
                nn::Sequential initial_model, TrainConfig config);

  [[nodiscard]] nn::Sequential global_model() const override {
    return global_;
  }

 protected:
  RoundResult do_round() override;
  [[nodiscard]] common::TaskFuture<RoundResult> do_submit_round(
      const common::TaskHandle& start,
      const common::TaskHandle& release) override;
  void do_save_state(std::ostream& out) const override;
  void do_load_state(std::istream& in) override;

 private:
  /// The fault-injected / policy-closed round graph (see docs/robustness.md).
  [[nodiscard]] common::TaskFuture<RoundResult> submit_round_faulty(
      const common::TaskHandle& start, const common::TaskHandle& release);

  nn::Sequential global_;
  /// state_bytes() of global_, cached at construction. Shapes never change,
  /// and the pipelined submit path must not read the live model: a previous
  /// round's publish task may still be load_state()-ing it (only the compute
  /// tasks are gated on that publish, not submission itself).
  std::size_t model_bytes_ = 0;
  std::vector<data::BatchSampler> samplers_;  ///< one per client, persistent
};

}  // namespace gsfl::schemes
