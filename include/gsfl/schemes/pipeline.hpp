// Pipelined round execution: the submit/aggregate stage split on the async
// lane.
//
// A barriered round is parallel_map(compute) → join → aggregate. The
// pipelined round wires the same work as a task graph instead:
//
//   start ──► compute(0) ─┬─► fold(0) ─► fold(2) ─► … ─► publish ─► result
//       ├──► compute(1) ─┤   (ascending over contributing indices,
//       ├──► compute(2) ─┘    each gated on its compute + the previous fold)
//       └──► …                publish additionally waits every compute and
//                             the optional `release` gate
//
// so aggregation of finished replicas overlaps the stragglers' forward /
// backward instead of idling behind a barrier, and — because `start` is the
// previous round's publish — a driver can keep several rounds' graphs in
// flight (the next round's compute fires the instant the model lands).
//
// Determinism: compute(i) writes only outcome slot i; folds run in ascending
// index order enforced by dependency edges (never completion order); publish
// walks the slots in index order. Together with OrderedStateFold reusing
// fedavg's exact per-replica arithmetic, a pipelined round is bitwise
// identical to its barriered form for any thread count, lane width, or
// pipeline depth — machine-checked by tests/schemes/pipeline_test.cpp over
// the property harness's thread × depth matrix.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "gsfl/common/async_lane.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/nn/sequential.hpp"
#include "gsfl/schemes/trainer.hpp"
#include "gsfl/tensor/tensor.hpp"

namespace gsfl::schemes {

/// Incremental FedAvg: the eager counterpart of fedavg_states. Weights for
/// *all* contributing replicas are fixed at construction (normalized once,
/// with fedavg_states' formula); replicas are then folded one at a time in
/// ascending order as they finish. Every step runs through
/// tensor::weighted_accumulate — the same routine fedavg_states' fold uses —
/// so take() is bitwise identical to fedavg_states over the full list.
class OrderedStateFold {
 public:
  explicit OrderedStateFold(const std::vector<double>& weights) {
    GSFL_EXPECT(!weights.empty());
    double sum = 0.0;
    for (const double w : weights) {
      GSFL_EXPECT_MSG(w >= 0.0, "aggregation weights must be non-negative");
      sum += w;
    }
    GSFL_EXPECT_MSG(sum > 0.0, "aggregation weights sum to zero");
    normalized_.reserve(weights.size());
    for (const double w : weights) normalized_.push_back(w / sum);
  }

  /// Fold the next replica (callers must fold in ascending replica order —
  /// the pipeline's fold chain enforces this with dependency edges).
  void fold(const nn::StateDict& state) {
    GSFL_EXPECT_MSG(next_ < normalized_.size(),
                    "more folds than declared weights");
    if (next_ == 0) {
      acc_.reserve(state.size());
      for (const auto& t : state) acc_.emplace_back(t.shape());  // zeros
    }
    GSFL_EXPECT_MSG(state.size() == acc_.size(),
                    "state dicts disagree on entry count");
    for (std::size_t e = 0; e < state.size(); ++e) {
      tensor::weighted_accumulate(acc_[e], state[e], normalized_[next_]);
    }
    ++next_;
  }

  /// The folded average; valid once every declared replica was folded.
  [[nodiscard]] nn::StateDict take() {
    GSFL_EXPECT_MSG(next_ == normalized_.size(),
                    "take() before every replica folded");
    return std::move(acc_);
  }

 private:
  std::vector<double> normalized_;
  std::size_t next_ = 0;
  nn::StateDict acc_;
};

/// Wire one round's submit/aggregate stages onto `lane` and return the
/// publish task's future.
///
///   - compute(i) runs for every i in [0, n), gated on `start`, inside an
///     InlineRegionGuard (one concurrent client/group per task, nested
///     library parallelism inlined — exactly a parallel_map chunk's view);
///     its return value lands in outcome slot i.
///   - fold(i, outcome_i) runs for each i with contributes[i] != 0, in
///     ascending i order, as soon as slot i and all earlier contributors
///     folded — the eager aggregation. Folds do *not* take the guard, so
///     their entry loops may use the pool the computes vacated.
///   - publish(outcomes) runs once after every compute, the last fold, and
///     the optional `release` handle (a reader of the previous model that
///     must finish before this round overwrites it); its return value is
///     the round's result.
template <typename Outcome, typename Compute, typename Fold, typename Publish>
[[nodiscard]] common::TaskFuture<RoundResult> submit_round_graph(
    common::AsyncLane& lane, std::size_t n, std::vector<char> contributes,
    const common::TaskHandle& start, const common::TaskHandle& release,
    Compute compute, Fold fold, Publish publish) {
  GSFL_EXPECT(contributes.size() == n);
  auto slots = std::make_shared<std::vector<Outcome>>(n);
  std::vector<common::TaskHandle> publish_deps;
  publish_deps.reserve(n + 2);
  common::TaskHandle prev_fold;
  for (std::size_t i = 0; i < n; ++i) {
    auto computed = lane.submit_after(
        [slots, compute, i] {
          common::InlineRegionGuard guard;
          (*slots)[i] = compute(i);
        },
        {start});
    if (contributes[i] != 0) {
      auto folded = lane.submit_after(
          [slots, fold, i] { fold(i, (*slots)[i]); },
          {computed.handle(), prev_fold});
      prev_fold = folded.handle();
    }
    publish_deps.push_back(computed.handle());
  }
  publish_deps.push_back(prev_fold);
  publish_deps.push_back(release);
  return lane.submit_after(
      [slots, publish]() -> RoundResult { return publish(*slots); },
      std::span<const common::TaskHandle>(publish_deps));
}

}  // namespace gsfl::schemes
