// Shared robustness plumbing for the schemes' fault-injected rounds:
// classifying a client's scripted faults into a round disposition, and
// closing a round under a RoundPolicy (deadline / quorum).
//
// Everything here is plain index-ordered arithmetic on data the submission
// stage fixed — no RNG, no shared mutable state — so the schemes can call it
// from a publish task and stay inside the bitwise determinism contract.
#pragma once

#include <span>
#include <vector>

#include "gsfl/schemes/trainer.hpp"
#include "gsfl/sim/fault.hpp"

namespace gsfl::schemes {

/// What a client's ClientFault means for the round, decided entirely at
/// submission time (every fault except lateness is scripted in the plan).
struct ClientDisposition {
  bool computes = false;  ///< local training happens (sampler stream advances)
  bool reports = false;   ///< its result reaches the AP
  sim::FaultKind fault = sim::FaultKind::kNone;  ///< kNone/kLate resolve later
};

/// crash-before and downlink exhaustion stop compute; crash-after and uplink
/// exhaustion let the device train but lose the result.
[[nodiscard]] ClientDisposition classify(const sim::ClientFault& fault);

/// A closed round: which reporters made the cut, and when the AP stopped
/// waiting.
struct RoundClose {
  /// Simulated time the AP closes the round and starts aggregating: the
  /// quorum-filling report, the deadline, or (policy inactive / quorum
  /// unreachable) the last report. 0 when nobody ever reports.
  double close_seconds = 0.0;
  /// included[i] ⇒ cohort unit i reported at or before close_seconds and
  /// folds into the aggregate. Aligned with `reported`.
  std::vector<char> included;
};

/// Close a round over a cohort of `reported.size()` units (clients for
/// FL/SFL, groups for GSFL). `reported[i]` says unit i's result reaches the
/// AP at `report_seconds[i]`. Deterministic: pure index-ordered arithmetic,
/// ties broken by including every reporter at exactly the close time.
///
/// Policy resolution: quorum K = ⌈quorum_fraction · cohort⌉ (clamped to
/// [1, cohort]). The round closes at the K-th earliest report within the
/// deadline; if fewer than K reports land by a finite deadline it closes at
/// the deadline with whoever made it; if the quorum is unreachable with no
/// deadline it closes at the last report.
[[nodiscard]] RoundClose close_round(const RoundPolicy& policy,
                                     std::span<const char> reported,
                                     std::span<const double> report_seconds);

}  // namespace gsfl::schemes
