// The split-training inner loop shared by vanilla SL, SplitFed, and GSFL.
//
// One call trains a single client's full local pass through a SplitModel and
// accounts every latency component of the split-learning exchange:
//
//   client forward  → smashed-data uplink (+labels) → server forward
//   server backward → smashed-gradient downlink     → client backward
//
// Charging happens per mini-batch so partial batches are priced exactly.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "gsfl/data/sampler.hpp"
#include "gsfl/net/network.hpp"
#include "gsfl/nn/optimizer.hpp"
#include "gsfl/nn/split.hpp"
#include "gsfl/sim/breakdown.hpp"

namespace gsfl::schemes {

struct SplitEpochResult {
  double loss_sum = 0.0;        ///< sum of per-batch mean losses
  std::size_t batches = 0;
  std::size_t samples = 0;
  sim::LatencyBreakdown latency;
};

/// Train one epoch of `sampler`'s dataset through `model`, updating both
/// sides with the given optimizers (which must already be attached).
/// `client_optimizer` may be null when the client side has no trainable
/// parameters (cut layer 0 or an all-stateless prefix). `bandwidth_share`
/// is the fraction of the band this client may use while transmitting
/// (1 for vanilla SL, 1/M for GSFL, 1/N for SplitFed).
[[nodiscard]] SplitEpochResult run_split_epoch(
    nn::SplitModel& model, nn::Optimizer* client_optimizer,
    nn::Optimizer& server_optimizer, data::BatchSampler& sampler,
    const net::WirelessNetwork& network, std::size_t client_id,
    double bandwidth_share);

/// Plan-driven variant for the pipelined rounds: the batch indices were
/// pre-drawn on the coordinator (BatchSampler::plan_epoch) and the compute
/// task gathers each batch from `dataset` as it trains. Bitwise identical
/// to run_split_epoch over a sampler whose next() calls would return the
/// same index batches — both drive the one shared epoch loop.
[[nodiscard]] SplitEpochResult run_split_epoch_planned(
    nn::SplitModel& model, nn::Optimizer* client_optimizer,
    nn::Optimizer& server_optimizer, const data::Dataset& dataset,
    std::span<const std::vector<std::size_t>> plan,
    const net::WirelessNetwork& network, std::size_t client_id,
    double bandwidth_share);

/// Attach a fresh optimizer to a model half; returns null when the half has
/// no trainable parameters.
[[nodiscard]] std::unique_ptr<nn::Optimizer> attach_optimizer(
    nn::Sequential& half, const std::function<std::unique_ptr<nn::Optimizer>()>&
                              factory);

}  // namespace gsfl::schemes
