// Vanilla split learning (SL) — Gupta & Raskar (2018).
//
// One client-side model travels from client to client through the AP; one
// server-side model lives at the edge server and updates continuously.
// Clients train strictly sequentially, each running one split pass over its
// local data per round; per-round this is mathematically plain SGD over the
// union of client data, which is why SL tracks CL's accuracy curve — but
// the sequential span across N clients makes each round slow, the weakness
// GSFL attacks.
#pragma once

#include "gsfl/data/sampler.hpp"
#include "gsfl/nn/split.hpp"
#include "gsfl/schemes/trainer.hpp"

namespace gsfl::schemes {

class SplitLearningTrainer final : public Trainer {
 public:
  /// `cut_layer` splits `initial_model` into client/server sides.
  SplitLearningTrainer(const net::WirelessNetwork& network,
                       std::vector<data::Dataset> client_data,
                       nn::Sequential initial_model, std::size_t cut_layer,
                       TrainConfig config);

  [[nodiscard]] nn::Sequential global_model() const override {
    return model_.merged();
  }

  [[nodiscard]] const nn::SplitModel& split_model() const { return model_; }

 protected:
  RoundResult do_round() override;

 private:
  nn::SplitModel model_;
  std::vector<data::BatchSampler> samplers_;
  std::unique_ptr<nn::Optimizer> client_optimizer_;
  std::unique_ptr<nn::Optimizer> server_optimizer_;
  bool distributed_ = false;  ///< initial client-model download done?
};

}  // namespace gsfl::schemes
