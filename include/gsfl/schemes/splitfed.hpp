// SplitFed learning (SFL) — Thapa et al. (2022), the hybrid the paper's
// introduction critiques.
//
// Every client trains in parallel against its *own* server-side model
// replica (N replicas at the edge server — the storage cost the paper calls
// prohibitive), then both halves are FedAvg-aggregated. Included as the
// natural upper-parallelism/upper-storage reference point for GSFL's
// grouping trade-off (GSFL with M = N groups of one client degenerates to
// exactly this scheme).
#pragma once

#include "gsfl/data/sampler.hpp"
#include "gsfl/nn/split.hpp"
#include "gsfl/schemes/trainer.hpp"

namespace gsfl::schemes {

class SplitFedTrainer final : public Trainer {
 public:
  SplitFedTrainer(const net::WirelessNetwork& network,
                  std::vector<data::Dataset> client_data,
                  nn::Sequential initial_model, std::size_t cut_layer,
                  TrainConfig config);

  [[nodiscard]] nn::Sequential global_model() const override;

  [[nodiscard]] std::size_t cut_layer() const { return cut_layer_; }

  /// Bytes of server-side model storage this scheme needs at the AP.
  [[nodiscard]] std::size_t server_storage_bytes() const;

 protected:
  RoundResult do_round() override;
  [[nodiscard]] common::TaskFuture<RoundResult> do_submit_round(
      const common::TaskHandle& start,
      const common::TaskHandle& release) override;
  void do_save_state(std::ostream& out) const override;
  void do_load_state(std::istream& in) override;

  /// Adaptive-controller surface (docs/adaptive.md). SFL has no bandwidth
  /// shares (every client gets 1/N), so only the cut moves.
  [[nodiscard]] std::vector<CutCost> enumerate_cut_costs() const override;
  void apply_adaptive_decision(const AdaptiveDecision& decision) override;
  [[nodiscard]] std::size_t adaptive_cut() const override {
    return cut_layer_;
  }

 private:
  /// The fault-injected / policy-closed round graph (see docs/robustness.md).
  [[nodiscard]] common::TaskFuture<RoundResult> submit_round_faulty(
      const common::TaskHandle& start, const common::TaskHandle& release);

  /// Move the live model's cut (no-op when unchanged); post-publish only.
  void apply_cut(std::size_t cut);

  std::size_t cut_layer_;
  nn::Sequential global_client_;  ///< aggregated client-side model
  nn::Sequential global_server_;  ///< aggregated server-side model
  /// state_bytes() of global_client_, cached at construction. Shapes never
  /// change, and the pipelined submit path must not read the live model: a
  /// previous round's publish task may still be load_state()-ing it (only
  /// the compute tasks are gated on that publish, not submission itself).
  std::size_t client_model_bytes_ = 0;
  std::vector<data::BatchSampler> samplers_;
};

}  // namespace gsfl::schemes
