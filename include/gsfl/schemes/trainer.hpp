// Trainer: the common contract for every distributed-learning scheme.
//
// A Trainer owns the scheme's model replicas and per-client samplers and
// advances one *global round* at a time, returning the round's mean training
// loss and its simulated latency. The experiment driver layered on top
// evaluates the global model between rounds and fills a RunRecorder — one
// per scheme — from which every figure in the paper is plotted.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gsfl/common/rng.hpp"
#include "gsfl/data/dataset.hpp"
#include "gsfl/metrics/recorder.hpp"
#include "gsfl/net/network.hpp"
#include "gsfl/nn/optimizer.hpp"
#include "gsfl/nn/sequential.hpp"
#include "gsfl/sim/breakdown.hpp"
#include "gsfl/sim/timeline.hpp"

namespace gsfl::schemes {

/// Hyperparameters shared by all schemes.
struct TrainConfig {
  double learning_rate = 0.05;
  double momentum = 0.0;        ///< 0 ⇒ plain SGD
  double weight_decay = 0.0;
  std::size_t batch_size = 16;
  std::size_t local_epochs = 1; ///< FL-style local passes per round
  std::uint64_t seed = 1;       ///< drives batch sampling (per-client forks)
  /// Host-side parallel lanes for the round's per-client/per-group work
  /// (simulated latencies are unaffected, and results are bitwise identical
  /// for any value). 0 ⇒ keep the global default, which resolves as
  /// --threads / GSFL_THREADS env / hardware concurrency.
  std::size_t threads = 0;
};

struct RoundResult {
  double train_loss = 0.0;          ///< sample-weighted mean over the round
  sim::LatencyBreakdown latency;    ///< simulated cost of the round
};

class Trainer {
 public:
  Trainer(std::string name, const net::WirelessNetwork& network,
          std::vector<data::Dataset> client_data, TrainConfig config);
  virtual ~Trainer() = default;

  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_clients() const {
    return client_data_.size();
  }
  [[nodiscard]] const TrainConfig& config() const { return config_; }
  [[nodiscard]] const net::WirelessNetwork& network() const {
    return *network_;
  }
  [[nodiscard]] const data::Dataset& client_dataset(std::size_t c) const;
  /// Completed global rounds.
  [[nodiscard]] std::size_t rounds_completed() const { return rounds_; }

  /// Execute the next global round.
  RoundResult run_round();

  /// Snapshot of the current global model (for evaluation).
  [[nodiscard]] virtual nn::Sequential global_model() const = 0;

 protected:
  /// Scheme-specific round body.
  virtual RoundResult do_round() = 0;

  /// The canonical per-client sampling stream: every scheme that touches
  /// client c's data in round-robin fashion uses this stream, which is what
  /// makes cross-scheme equivalence tests exact.
  [[nodiscard]] common::Rng client_sampler_rng(std::size_t client) const {
    common::Rng root(config_.seed);
    return root.fork(client + 1);
  }

  /// Make a fresh optimizer from the shared hyperparameters.
  [[nodiscard]] std::unique_ptr<nn::Optimizer> make_optimizer() const;

  [[nodiscard]] std::size_t total_samples() const;

 private:
  std::string name_;
  const net::WirelessNetwork* network_;  ///< non-owning

 protected:
  std::vector<data::Dataset> client_data_;
  TrainConfig config_;

 private:
  std::size_t rounds_ = 0;
};

/// Options for the round-loop driver.
struct ExperimentOptions {
  std::size_t rounds = 100;              ///< hard round budget
  std::size_t eval_every = 1;            ///< evaluate every k rounds
  std::size_t eval_batch_size = 64;
  std::optional<double> stop_at_accuracy;    ///< early stop once reached
  std::optional<double> stop_after_seconds;  ///< simulated-time budget
  bool verbose = false;                  ///< per-eval stdout progress line
};

/// Run `trainer` for up to `options.rounds` rounds, evaluating on `test_set`,
/// and return the per-round record.
[[nodiscard]] metrics::RunRecorder run_experiment(
    Trainer& trainer, const data::Dataset& test_set,
    const ExperimentOptions& options);

}  // namespace gsfl::schemes
