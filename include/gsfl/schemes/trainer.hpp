// Trainer: the common contract for every distributed-learning scheme.
//
// A Trainer owns the scheme's model replicas and per-client samplers and
// advances one *global round* at a time, returning the round's mean training
// loss and its simulated latency. The experiment driver layered on top
// evaluates the global model between rounds and fills a RunRecorder — one
// per scheme — from which every figure in the paper is plotted.
#pragma once

#include <cmath>
#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gsfl/common/async_lane.hpp"
#include "gsfl/common/rng.hpp"
#include "gsfl/schemes/adaptive.hpp"
#include "gsfl/data/dataset.hpp"
#include "gsfl/metrics/recorder.hpp"
#include "gsfl/net/network.hpp"
#include "gsfl/nn/optimizer.hpp"
#include "gsfl/nn/sequential.hpp"
#include "gsfl/sim/breakdown.hpp"
#include "gsfl/sim/fault.hpp"
#include "gsfl/sim/timeline.hpp"

namespace gsfl::schemes {

/// Round-completion policy: when does the AP stop waiting and aggregate?
/// The default — infinite deadline, full quorum — reproduces the classic
/// barrier (every reporter folds). A quorum_fraction q < 1 closes the round
/// the moment ⌈q·cohort⌉ cohort units have reported (cohort = clients for
/// FL/SFL, groups for GSFL); a finite deadline closes it at that simulated
/// time regardless. Reporters that miss the close are excluded from the
/// FedAvg fold (FaultKind::kLate) and the surviving weights are
/// renormalized — deterministically, in index order, for any thread count
/// or pipeline depth.
struct RoundPolicy {
  double deadline_seconds = std::numeric_limits<double>::infinity();
  double quorum_fraction = 1.0;  ///< in (0, 1]

  [[nodiscard]] bool active() const {
    return std::isfinite(deadline_seconds) || quorum_fraction < 1.0;
  }
};

/// Hyperparameters shared by all schemes.
struct TrainConfig {
  double learning_rate = 0.05;
  double momentum = 0.0;        ///< 0 ⇒ plain SGD
  double weight_decay = 0.0;
  std::size_t batch_size = 16;
  std::size_t local_epochs = 1; ///< FL-style local passes per round
  std::uint64_t seed = 1;       ///< drives batch sampling (per-client forks)
  /// Host-side parallel lanes for the round's per-client/per-group work
  /// (simulated latencies are unaffected, and results are bitwise identical
  /// for any value). 0 ⇒ keep the global default, which resolves as
  /// --threads / GSFL_THREADS env / hardware concurrency.
  std::size_t threads = 0;
  /// Deterministic per-round fault injection (crashes, lost transmissions,
  /// stragglers); all-zero rates ⇒ off. Plans are keyed by round index, so
  /// fault-injected rounds stay bitwise identical across the thread ×
  /// pipeline-depth × pack-strategy matrix and across crash-resume.
  sim::FaultConfig faults;
  /// Deadline / quorum round completion; default = classic full barrier.
  RoundPolicy round_policy;
};

/// One client's fate in a round, for RoundResult::participation.
struct ParticipationRecord {
  std::size_t client = 0;
  /// kNone ⇒ this client's contribution was folded into the aggregate.
  sim::FaultKind fault = sim::FaultKind::kNone;
  /// Simulated time its result reached the AP (0 if it never did).
  double report_seconds = 0.0;
};

struct RoundResult {
  double train_loss = 0.0;          ///< sample-weighted mean over the round
  sim::LatencyBreakdown latency;    ///< simulated cost of the round
  /// Who participated, who failed, and why — one record per client, in
  /// client order. Populated when fault injection or a round policy is
  /// configured; empty on the untouched fault-free paths.
  std::vector<ParticipationRecord> participation;
};

/// A round in flight on the async lane (see Trainer::submit_round). The
/// `done` future resolves — to the same RoundResult the barriered loop
/// would produce — once the round is fully computed, aggregated, and
/// published into the trainer's global model.
struct RoundTicket {
  common::TaskFuture<RoundResult> done;
};

class Trainer {
 public:
  Trainer(std::string name, const net::WirelessNetwork& network,
          std::vector<data::Dataset> client_data, TrainConfig config);
  virtual ~Trainer() = default;

  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_clients() const {
    return client_data_.size();
  }
  [[nodiscard]] const TrainConfig& config() const { return config_; }
  [[nodiscard]] const net::WirelessNetwork& network() const {
    return *network_;
  }
  [[nodiscard]] const data::Dataset& client_dataset(std::size_t c) const;
  /// Completed global rounds.
  [[nodiscard]] std::size_t rounds_completed() const { return rounds_; }

  /// Execute the next global round (barriered: returns when the round is
  /// fully aggregated). Must not be mixed with rounds still in flight from
  /// submit_round.
  RoundResult run_round();

  /// Pipelined rounds API (see docs/parallelism.md): enqueue the next
  /// round's submit/aggregate stages on the global async lane and return
  /// immediately. All of the round's RNG — failure draws, batch index
  /// plans — is drawn *here*, on the calling thread, in round order, which
  /// is what lets several rounds be in flight at once without any task ever
  /// touching a sampler concurrently. The round's compute is gated on the
  /// previous submitted round's publish, so results are bitwise identical
  /// to calling run_round in a loop for any thread count or depth.
  ///
  /// `model_release`: optional handle to a task still *reading* the current
  /// global model (e.g. an overlapped evaluation); this round's publish
  /// stage will not overwrite the model before it completes.
  ///
  /// The trainer must stay alive, and every ticket must be collected,
  /// before it is destroyed or run_round is called again.
  [[nodiscard]] RoundTicket submit_round(
      const common::TaskHandle& model_release = {});

  /// Block until `ticket`'s round published; returns its result (rethrows
  /// the first error any of its stages raised). Tickets must be collected
  /// in submission order.
  RoundResult collect_round(RoundTicket& ticket);

  /// Rounds submitted but not yet collected.
  [[nodiscard]] std::size_t rounds_in_flight() const { return in_flight_; }

  /// Attach a per-round adaptive controller (docs/adaptive.md): after every
  /// published round the trainer feeds it the round's LatencyBreakdown and
  /// applies its cut/share decision before the next round's compute starts.
  /// In the pipelined API the decision runs as a lane task chained onto the
  /// round's publish — the same post-publish, pre-next-compute slot the
  /// barriered loop uses — so results stay bitwise identical across depths.
  /// Attach before the first round; pass nullptr to detach. A checkpoint
  /// saved with a controller attached must be restored with one attached.
  void set_adaptive(std::shared_ptr<AdaptiveController> controller);
  [[nodiscard]] AdaptiveController* adaptive() const {
    return controller_.get();
  }

  /// Snapshot of the current global model (for evaluation).
  [[nodiscard]] virtual nn::Sequential global_model() const = 0;

  /// Serialize every piece of mutable training state — the round counter
  /// plus the scheme's models, sampler streams, and auxiliary RNG — such
  /// that a fresh trainer built from the *same* config/network/data,
  /// restored with load_state, continues bitwise identically to this one.
  /// Must not be called with rounds in flight. Schemes without a
  /// do_save_state override throw std::logic_error.
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

 protected:
  /// Scheme-specific round body.
  virtual RoundResult do_round() = 0;

  /// Scheme-specific pipelined round graph: submit this round's stages,
  /// gating compute on `start` (the previous round's publish; invalid for
  /// the first round) and the publish stage additionally on `release`.
  /// The default wraps do_round() in a single aggregate-stage task — every
  /// scheme pipelines correctly, schemes with a real submit/aggregate
  /// decomposition (SFL, FL, GSFL) override for intra-round overlap.
  [[nodiscard]] virtual common::TaskFuture<RoundResult> do_submit_round(
      const common::TaskHandle& start, const common::TaskHandle& release);

  /// The canonical per-client sampling stream: every scheme that touches
  /// client c's data in round-robin fashion uses this stream, which is what
  /// makes cross-scheme equivalence tests exact.
  [[nodiscard]] common::Rng client_sampler_rng(std::size_t client) const {
    common::Rng root(config_.seed);
    return root.fork(client + 1);
  }

  /// Make a fresh optimizer from the shared hyperparameters.
  [[nodiscard]] std::unique_ptr<nn::Optimizer> make_optimizer() const;

  [[nodiscard]] std::size_t total_samples() const;

  /// True when fault injection or a non-default round policy is configured —
  /// the schemes' robustness paths key off this.
  [[nodiscard]] bool robustness_active() const {
    return config_.faults.active() || config_.round_policy.active();
  }

  /// The 0-based index of the round being submitted/run right now: completed
  /// rounds plus rounds already in flight. This is the fault plan's round
  /// key; a failed (collected-with-error) round does not advance it, so a
  /// retry replays the same plan.
  [[nodiscard]] std::size_t next_round_index() const {
    return rounds_ + in_flight_;
  }

  /// Scheme-specific checkpoint payload; the base save_state/load_state
  /// frame the round counter around these. Default: unsupported.
  virtual void do_save_state(std::ostream& out) const;
  virtual void do_load_state(std::istream& in);

  /// Adaptive-controller surface. Split schemes (GSFL, SFL) override all
  /// three; the defaults make cut-less schemes (FL) controller-safe no-ops:
  /// an empty candidate table pins every decision to "keep".
  [[nodiscard]] virtual std::vector<CutCost> enumerate_cut_costs() const {
    return {};
  }
  /// Apply a decision to the live model/shares. Runs post-publish with the
  /// next round's compute gated behind it — never concurrent with training.
  virtual void apply_adaptive_decision(const AdaptiveDecision& /*decision*/) {}
  /// The cut layer the scheme is currently training at (0 if cut-less).
  [[nodiscard]] virtual std::size_t adaptive_cut() const { return 0; }

 private:
  std::string name_;
  const net::WirelessNetwork* network_;  ///< non-owning

 protected:
  std::vector<data::Dataset> client_data_;
  TrainConfig config_;

 private:
  /// Feed the controller round `round`'s published outcome and apply the
  /// decision (no-op without a controller).
  void apply_adaptive(std::size_t round, const RoundResult& result);

  std::size_t rounds_ = 0;
  std::size_t in_flight_ = 0;         ///< submitted, not yet collected
  common::TaskHandle last_publish_;   ///< gate for the next submission
  std::shared_ptr<AdaptiveController> controller_;
};

/// Options for the round-loop driver.
struct ExperimentOptions {
  std::size_t rounds = 100;              ///< hard round budget
  std::size_t eval_every = 1;            ///< evaluate every k rounds
  std::size_t eval_batch_size = 64;
  std::optional<double> stop_at_accuracy;    ///< early stop once reached
  std::optional<double> stop_after_seconds;  ///< simulated-time budget
  bool verbose = false;                  ///< per-eval stdout progress line
  /// Rounds kept in flight on the async lane. 1 (default) is the barriered
  /// loop. ≥ 2 pipelines: round r's evaluation and aggregation tail overlap
  /// round r+1's client compute; records and final model are bitwise
  /// identical to depth 1. Early stopping is inherently a per-round barrier,
  /// so when either stop option is set the driver runs at depth 1 — as does
  /// checkpoint_every (a snapshot must capture a fully published round).
  std::size_t pipeline_depth = 1;
  /// Crash recovery: save a core::ExperimentCheckpoint every k rounds
  /// (0 ⇒ off) into checkpoint_dir, named <scheme>_round_<r>.gsflx.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_dir = ".";
  /// Restore trainer + recorder + simulated clock from this checkpoint
  /// before the first round; the run then continues bitwise identically to
  /// the uninterrupted run from that round. The trainer must be freshly
  /// constructed from the same config/network/data as the saved one.
  std::optional<std::string> resume_from;
};

/// Run `trainer` for up to `options.rounds` rounds, evaluating on `test_set`,
/// and return the per-round record.
[[nodiscard]] metrics::RunRecorder run_experiment(
    Trainer& trainer, const data::Dataset& test_set,
    const ExperimentOptions& options);

/// Drive `rounds` rounds with up to `depth` rounds in flight (depth 1 ⇒ a
/// plain run_round loop) and return every round's result, in order. The
/// test harness's pipeline-depth axis drives this.
[[nodiscard]] std::vector<RoundResult> run_rounds_pipelined(
    Trainer& trainer, std::size_t rounds, std::size_t depth);

}  // namespace gsfl::schemes
