// Latency accounting in simulated seconds.
//
// Every training scheme reports per-round cost as a LatencyBreakdown so
// benches can show not just who is faster but where the time goes (compute
// vs. uplink vs. model relay). Simulated time is completely decoupled from
// host wall-clock time.
#pragma once

#include <span>
#include <string>

namespace gsfl::sim {

struct LatencyBreakdown {
  double client_compute = 0.0;  ///< forward+backward on devices
  double server_compute = 0.0;  ///< forward+backward on the edge server
  double uplink = 0.0;          ///< smashed data / model uploads
  double downlink = 0.0;        ///< gradients / model downloads
  double relay = 0.0;           ///< client→AP→client model hand-offs
  double aggregation = 0.0;     ///< FedAvg compute at the AP

  [[nodiscard]] double total() const {
    return client_compute + server_compute + uplink + downlink + relay +
           aggregation;
  }

  /// Compute vs. communication split — the feedback signal the adaptive
  /// controller fits its per-unit rates to (docs/adaptive.md).
  [[nodiscard]] double compute() const { return client_compute + server_compute; }
  [[nodiscard]] double comm() const { return uplink + downlink + relay; }

  LatencyBreakdown& operator+=(const LatencyBreakdown& other);
  [[nodiscard]] LatencyBreakdown operator+(const LatencyBreakdown& other) const;
  [[nodiscard]] LatencyBreakdown scaled(double factor) const;

  [[nodiscard]] std::string to_string() const;
};

/// Sum of spans executed one after another.
[[nodiscard]] double span_sequential(std::span<const double> spans);

/// Span of tasks executed concurrently (the slowest dominates).
[[nodiscard]] double span_parallel(std::span<const double> spans);

/// Breakdown of the critical path among parallel branches: the branch with
/// the largest total. (Attribution follows the branch that determines the
/// wall-clock span.)
[[nodiscard]] LatencyBreakdown critical_branch(
    std::span<const LatencyBreakdown> branches);

}  // namespace gsfl::sim
