// Deterministic fault injection: the per-round script of everything that
// goes wrong.
//
// The paper's setting — resource-limited wireless networks — makes client
// failure the rule, not the exception: devices die mid-round (battery,
// mobility), transmissions drop, and stragglers stretch the round. This
// module turns those events into a *plan*: a FaultPlan is drawn from a
// round-keyed RNG stream (`Rng(seed).fork(round_index + 1)`), so the plan is
// a pure function of (seed, round index) — independent of thread count,
// pipeline depth, pack strategy, and of whether the round is drawn at
// submission (pipelined) or execution (barriered). That is what lets
// fault-injected rounds stay inside the library's bitwise determinism
// contract, and what lets a crash-resumed experiment replay the exact same
// faults without persisting any fault-RNG state.
//
// Taxonomy (see docs/robustness.md):
//   crash-before-compute  the device never comes up this round
//   downlink failure      the model never reaches the device (capped retries)
//   crash-after-compute   local training finishes, the device dies before
//                         reporting
//   uplink failure        the result never reaches the AP (capped retries)
//   straggler slowdown    device compute stretched by a drawn factor ≥ 1
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gsfl::sim {

/// Per-round fault probabilities. All rates are per-client (loss rates are
/// per *attempt*; the retry cap comes from net::RetryPolicy). Every rate at
/// its zero default ⇒ inactive() and the schemes run their fault-free paths
/// untouched.
struct FaultConfig {
  double crash_before_rate = 0.0;  ///< P(device never starts the round)
  double crash_after_rate = 0.0;   ///< P(device dies after local compute)
  double downlink_loss_rate = 0.0; ///< per-attempt P(model download lost)
  double uplink_loss_rate = 0.0;   ///< per-attempt P(result upload lost)
  double straggler_rate = 0.0;     ///< P(device is a straggler this round)
  /// Straggler compute-stretch factor, drawn uniform in [min, max].
  double straggler_slowdown_min = 2.0;
  double straggler_slowdown_max = 8.0;
  std::uint64_t seed = 0xFA017;    ///< root of the round-keyed plan stream

  [[nodiscard]] bool active() const {
    return crash_before_rate > 0.0 || crash_after_rate > 0.0 ||
           downlink_loss_rate > 0.0 || uplink_loss_rate > 0.0 ||
           straggler_rate > 0.0;
  }
};

/// Why a client's contribution was excluded from (or included in) a round.
enum class FaultKind : std::uint8_t {
  kNone,               ///< participated; folded into the aggregate
  kCrashBeforeCompute, ///< never started the round
  kDownlinkFailed,     ///< model download lost after the retry cap
  kCrashAfterCompute,  ///< trained, died before reporting
  kUplinkFailed,       ///< result upload lost after the retry cap
  kLate,               ///< reported after the round closed (deadline/quorum)
  kCascade,            ///< excluded because its group's chain broke elsewhere
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One client's scripted faults for one round. `*_attempts` counts the
/// transmissions until the first success, 1 ⇒ clean first try; 0 ⇒ every
/// attempt up to the cap failed and the transfer never lands.
struct ClientFault {
  bool crash_before = false;
  bool crash_after = false;
  double slowdown = 1.0;                ///< compute stretch, ≥ 1
  std::uint32_t downlink_attempts = 1;
  std::uint32_t uplink_attempts = 1;
};

/// The round's full script: one ClientFault per client, drawn in ascending
/// client order from the round-keyed stream.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Draw round `round_index`'s plan (0-based). `max_attempts` is the retry
  /// cap per transmission (net::RetryPolicy::max_attempts). Deterministic:
  /// the same (config, max_attempts, round_index, num_clients) always
  /// yields the same plan, on any thread, at any time.
  [[nodiscard]] static FaultPlan draw(const FaultConfig& config,
                                      std::size_t max_attempts,
                                      std::uint64_t round_index,
                                      std::size_t num_clients);

  [[nodiscard]] std::size_t size() const { return clients_.size(); }
  [[nodiscard]] const ClientFault& client(std::size_t c) const;

 private:
  std::vector<ClientFault> clients_;
};

}  // namespace gsfl::sim
