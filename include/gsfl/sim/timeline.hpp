// Timeline: a record of named spans in simulated time.
//
// Schemes append one entry per round; benches and the convergence detector
// read cumulative time off the back. The timeline also doubles as a Gantt
// export (CSV) for debugging latency models.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "gsfl/sim/breakdown.hpp"

namespace gsfl::sim {

struct TimelineEntry {
  std::string label;          ///< e.g. "round 12"
  double start_seconds = 0.0;
  LatencyBreakdown cost;

  [[nodiscard]] double end_seconds() const {
    return start_seconds + cost.total();
  }
};

class Timeline {
 public:
  /// Append a span starting at the current end of the timeline.
  void append(std::string label, const LatencyBreakdown& cost);

  [[nodiscard]] double now_seconds() const { return now_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const TimelineEntry& entry(std::size_t i) const;
  [[nodiscard]] const std::vector<TimelineEntry>& entries() const {
    return entries_;
  }

  /// Aggregate cost across all entries.
  [[nodiscard]] LatencyBreakdown total_cost() const;

  /// Write "label,start,end,total,client,server,up,down,relay,agg" rows.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<TimelineEntry> entries_;
  double now_ = 0.0;
};

}  // namespace gsfl::sim
