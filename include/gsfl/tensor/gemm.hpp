// Single-precision matrix multiply.
//
// All heavy math in the NN substrate (dense layers, im2col convolutions)
// funnels through this one routine, so it is the only place that needs
// cache-aware tuning. The kernel is the register-blocked microkernel of
// microkernel.hpp driven over packed panels — not BLAS-fast, but within a
// small factor on the matrix sizes this library uses, and entirely
// deterministic. Transposed operands are consumed by transposing during
// panel *packing*, so no variant materializes an intermediate matrix.
#pragma once

#include <cstdint>

#include "gsfl/common/workspace.hpp"
#include "gsfl/tensor/microkernel.hpp"
#include "gsfl/tensor/tensor.hpp"

namespace gsfl::tensor {

/// Whether an operand is used as stored or transposed.
enum class Trans { kNo, kYes };

/// When the B operand's panel is packed relative to the k-block sweep.
///
/// - kAuto (production default): pack a KC slice of op(B) immediately
///   before its k block sweeps — cache-hot interleaved packing — whenever
///   the sweep k-blocks and the row split runs as a single task (the serial
///   cutoff, a one-lane pool, or a GEMM nested inside a parallel region:
///   the steady-state training hot path). Multi-task row splits keep the
///   shared up-front pack: every panel task reads the same packed B, so
///   packing it once beats each task re-packing every slice.
/// - kUpfront: always pack the full panel before the sweep (the PR-3
///   schedule; the bench freezes this as the interleaved baseline).
/// - kInterleaved: always pack per slice, even when row tasks then each
///   pack their own copy — the test matrix uses this to drive the
///   interleaved path under every thread count.
/// - kPackAhead: interleaved, but slice b+1 is packed on the async lane
///   (common::global_lane) *while* block b sweeps, ping-ponging the two
///   halves of the double-buffered slice arena. Packing is a pure read of B
///   into a buffer the sweep only consumes after the pack's future resolves,
///   so which thread packs is scheduling noise. When every lane worker is
///   busy (the saturated per-client hot path) the sweep's wait executes the
///   pack inline — help-on-wait — and the schedule degenerates to plain
///   interleaving.
///
/// The packed values are identical under every strategy, and the per-element
/// fold is the same block sequence, so results are bitwise invariant in the
/// strategy (machine-checked by the property harness's pack-strategy axis).
enum class PackStrategy { kAuto, kUpfront, kInterleaved, kPackAhead };

/// Process-wide pack-strategy override (tests and benches; thread-safe).
void set_pack_strategy(PackStrategy strategy);
[[nodiscard]] PackStrategy pack_strategy();

/// Arithmetic the GEMM core runs in.
///
/// - kF32: the default single-precision path.
/// - kInt8: quantize-on-pack — operands are symmetrically quantized to 8-bit
///   integers during panel packing (one scale per logical A row / B column,
///   round-to-nearest-even), accumulated exactly in int32 on the VNNI /
///   maddubs / scalar kernel tiers, and dequantized in the write-back
///   epilogue (see micro::q8). Opt-in and approximate: results differ from
///   kF32 by the quantization error, but are bitwise reproducible across
///   thread count, KC, and pack strategy — exact integer accumulation makes
///   the fold order irrelevant, so the determinism contract holds per
///   binary. The int8 path always packs the full-k panels up front (there
///   is no KC parking: accumulators never leave registers), so PackStrategy
///   does not affect it.
enum class GemmPrecision { kF32, kInt8 };

/// C = alpha * op(A) · op(B) + beta * C.
///
/// A is (m × k) after op, B is (k × n) after op, C is (m × n). All matrices
/// are dense row-major 2-D tensors; shapes are validated.
void gemm(float alpha, const Tensor& a, Trans trans_a, const Tensor& b,
          Trans trans_b, float beta, Tensor& c);

/// Convenience: returns op(A) · op(B) as a fresh tensor.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b,
                            Trans trans_a = Trans::kNo,
                            Trans trans_b = Trans::kNo);

/// Raw row-major core: C(m×n) = alpha·A(m×k)·B(k×n) + beta·C, no transposes,
/// no shape objects. This is the allocation-free entry point the nn layers
/// drive with scratch buffers. Parallelized over row or column panels of C
/// on the global thread pool; results are bitwise identical for any lane
/// count. A, B, and C must not alias.
void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c);

/// General raw core: C(m×n) = alpha·op(A)·op(B) + beta·C. `a` is stored
/// row-major (m×k) when trans_a is kNo, (k×m) when kYes; likewise `b` is
/// (k×n) or (n×k). Transposition happens inside panel packing — no operand
/// copy is ever materialized.
void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* b, Trans trans_b,
              float beta, float* c);

/// Epilogue variant: additionally applies `epilogue` (bias add and optional
/// ReLU clamp — see micro::Epilogue) during the C write-back, fusing the
/// nn layers' bias/activation passes into the GEMM. `epilogue.bias` indexes
/// the full C: bias[i] over m rows when per_row, bias[j] over n columns
/// otherwise; the parallel split offsets it per panel internally. With
/// alpha == 1 the fused write-back is bitwise identical to the unfused
/// GEMM followed by a bias loop and a ReLU pass.
void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* b, Trans trans_b,
              float beta, float* c, const micro::Epilogue& epilogue);

/// Precision variant: run the epilogue GEMM in the requested arithmetic.
/// kF32 is exactly the overload above; kInt8 takes the quantize-on-pack
/// integer path (see GemmPrecision). Parallel split and epilogue semantics
/// are identical in both.
void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* b, Trans trans_b,
              float beta, float* c, const micro::Epilogue& epilogue,
              GemmPrecision precision);

/// A GEMM operand packed once into persistent panel layout and reused across
/// calls — the serving-lane primitive. Every gemm_raw call re-packs its
/// operands into per-thread Workspace scratch; for weights that never change
/// between forwards (a frozen model, or training-side evaluation between
/// optimizer steps) that O(k·n) pass is pure waste. A PackedOperand owns the
/// panel in a 64-byte-aligned buffer (common::AlignedBuffer) outside the
/// scratch arenas, so it survives across calls and threads; consumers key it
/// on Tensor::version() to decide when to re-pack.
///
/// Packed bytes are identical to what gemm_raw's internal packers produce
/// (the same micro::pack_* / micro::q8::pack_* routines run), so driving the
/// kernel off a PackedOperand is bitwise identical to the re-pack-every-call
/// path. Sharing across threads is safe after packing completes: all
/// consumers read only.
///
/// Roles:
///  - pack_b: op(B) in NR strips — the Dense weight (Wᵀ) side, consumed by
///    gemm_packed.
///  - pack_b_q8: additionally quantize-on-pack the int8 sibling (packed s8
///    bytes + per-logical-column dequant scales + u8-offset compensation),
///    enabling GemmPrecision::kInt8 off frozen scales.
///  - pack_a: op(A) in MR strips — the Conv2d weight side, consumed by
///    micro::macrokernel directly (strip stride k·kMR).
class PackedOperand {
 public:
  PackedOperand() = default;
  PackedOperand(PackedOperand&&) = default;
  PackedOperand& operator=(PackedOperand&&) = default;
  PackedOperand(const PackedOperand&) = delete;
  PackedOperand& operator=(const PackedOperand&) = delete;

  /// Pack op(B) (k×cols after op) into the persistent f32 panel.
  void pack_b(const float* b, Trans trans, std::size_t k, std::size_t cols);

  /// Quantize-on-pack the int8 panel of op(B) alongside (callable only
  /// after/with pack_b dims; idempotent per call).
  void pack_b_q8(const float* b, Trans trans, std::size_t k,
                 std::size_t cols);

  /// Pack op(A) (rows×k after op) into the persistent f32 panel.
  void pack_a(const float* a, Trans trans, std::size_t rows, std::size_t k);

  [[nodiscard]] bool has_f32() const { return has_f32_; }
  [[nodiscard]] bool has_q8() const { return has_q8_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] const float* panel_f32() const {
    return f32_.elements<float>();
  }
  [[nodiscard]] const std::int8_t* panel_q8() const {
    return q8_.elements<std::int8_t>();
  }
  [[nodiscard]] const float* q8_scales() const {
    return q8_scale_.elements<float>();
  }
  [[nodiscard]] const std::int32_t* q8_comp() const {
    return q8_comp_.elements<std::int32_t>();
  }

  /// Heap bytes held across calls (docs/tests: the persistent-panel cost).
  [[nodiscard]] std::size_t footprint_bytes() const {
    return f32_.capacity_bytes() + q8_.capacity_bytes() +
           q8_scale_.capacity_bytes() + q8_comp_.capacity_bytes();
  }

 private:
  common::AlignedBuffer f32_;
  common::AlignedBuffer q8_;
  common::AlignedBuffer q8_scale_;
  common::AlignedBuffer q8_comp_;
  std::size_t rows_ = 0;
  std::size_t k_ = 0;
  std::size_t cols_ = 0;
  bool has_f32_ = false;
  bool has_q8_ = false;
};

/// gemm_raw with a persistent pre-packed op(B): C(m×n) = alpha·op(A)·B + β·C
/// where `b` was packed via PackedOperand::pack_b (and pack_b_q8 for kInt8)
/// with matching k and cols == n. The parallel split mirrors gemm_raw's —
/// row panels share the packed B read-only; column panels index into it at
/// strip-group granularity — and the per-element fold is the same block
/// sequence, so results are bitwise identical to the equivalent gemm_raw
/// call for every thread count and split.
void gemm_packed(std::size_t m, std::size_t k, std::size_t n, float alpha,
                 const float* a, Trans trans_a, const PackedOperand& b,
                 float beta, float* c, const micro::Epilogue& epilogue,
                 GemmPrecision precision = GemmPrecision::kF32);

/// Masked-A variant: `a_mask` (nullable; same storage layout and leading
/// dimension as `a`) folds the Relu derivative into op(A)'s panel packing —
/// element (i, p) enters the GEMM as `a_mask > 0 ? a : 0`. This is the
/// backward half of relu fusion: the dW / dx GEMMs consume dy masked by the
/// fused forward's output without materializing a masked copy or making any
/// extra sweep over dy, and the result is bitwise identical to running the
/// unmasked GEMM on a relu_mask()-materialized operand.
void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* a_mask,
              const float* b, Trans trans_b, float beta, float* c,
              const micro::Epilogue& epilogue);

/// Out-of-place 2-D transpose (cache-blocked).
[[nodiscard]] Tensor transpose(const Tensor& a);

/// Raw tiled transpose core: dst(cols×rows) = src(rows×cols)ᵀ.
void transpose_raw(const float* src, std::size_t rows, std::size_t cols,
                   float* dst);

}  // namespace gsfl::tensor
