// Single-precision matrix multiply.
//
// All heavy math in the NN substrate (dense layers, im2col convolutions)
// funnels through this one routine, so it is the only place that needs
// cache-aware tuning. The kernel is the register-blocked microkernel of
// microkernel.hpp driven over packed panels — not BLAS-fast, but within a
// small factor on the matrix sizes this library uses, and entirely
// deterministic. Transposed operands are consumed by transposing during
// panel *packing*, so no variant materializes an intermediate matrix.
#pragma once

#include "gsfl/tensor/microkernel.hpp"
#include "gsfl/tensor/tensor.hpp"

namespace gsfl::tensor {

/// Whether an operand is used as stored or transposed.
enum class Trans { kNo, kYes };

/// C = alpha * op(A) · op(B) + beta * C.
///
/// A is (m × k) after op, B is (k × n) after op, C is (m × n). All matrices
/// are dense row-major 2-D tensors; shapes are validated.
void gemm(float alpha, const Tensor& a, Trans trans_a, const Tensor& b,
          Trans trans_b, float beta, Tensor& c);

/// Convenience: returns op(A) · op(B) as a fresh tensor.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b,
                            Trans trans_a = Trans::kNo,
                            Trans trans_b = Trans::kNo);

/// Raw row-major core: C(m×n) = alpha·A(m×k)·B(k×n) + beta·C, no transposes,
/// no shape objects. This is the allocation-free entry point the nn layers
/// drive with scratch buffers. Parallelized over row or column panels of C
/// on the global thread pool; results are bitwise identical for any lane
/// count. A, B, and C must not alias.
void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c);

/// General raw core: C(m×n) = alpha·op(A)·op(B) + beta·C. `a` is stored
/// row-major (m×k) when trans_a is kNo, (k×m) when kYes; likewise `b` is
/// (k×n) or (n×k). Transposition happens inside panel packing — no operand
/// copy is ever materialized.
void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* b, Trans trans_b,
              float beta, float* c);

/// Epilogue variant: additionally applies `epilogue` (bias add and optional
/// ReLU clamp — see micro::Epilogue) during the C write-back, fusing the
/// nn layers' bias/activation passes into the GEMM. `epilogue.bias` indexes
/// the full C: bias[i] over m rows when per_row, bias[j] over n columns
/// otherwise; the parallel split offsets it per panel internally. With
/// alpha == 1 the fused write-back is bitwise identical to the unfused
/// GEMM followed by a bias loop and a ReLU pass.
void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* b, Trans trans_b,
              float beta, float* c, const micro::Epilogue& epilogue);

/// Out-of-place 2-D transpose (cache-blocked).
[[nodiscard]] Tensor transpose(const Tensor& a);

/// Raw tiled transpose core: dst(cols×rows) = src(rows×cols)ᵀ.
void transpose_raw(const float* src, std::size_t rows, std::size_t cols,
                   float* dst);

}  // namespace gsfl::tensor
