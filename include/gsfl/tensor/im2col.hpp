// im2col / col2im: the bridge between convolution and GEMM.
//
// im2col unfolds every convolution receptive field of an NCHW image batch
// into a column of a matrix, so conv2d forward becomes one GEMM; col2im is
// its adjoint, scattering column gradients back into image layout for the
// backward pass.
#pragma once

#include "gsfl/tensor/tensor.hpp"

namespace gsfl::tensor {

struct ConvGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;   ///< square kernel size
  std::size_t stride = 1;
  std::size_t pad = 0;      ///< symmetric zero padding

  [[nodiscard]] std::size_t out_h() const {
    GSFL_EXPECT(in_h + 2 * pad >= kernel);
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const {
    GSFL_EXPECT(in_w + 2 * pad >= kernel);
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  /// Rows of the im2col matrix: C·K·K.
  [[nodiscard]] std::size_t patch_size() const {
    return in_channels * kernel * kernel;
  }
  /// Columns of the im2col matrix per image: out_h·out_w.
  [[nodiscard]] std::size_t out_positions() const { return out_h() * out_w(); }
};

/// Unfold one image (C×H×W slice of an NCHW tensor, at batch index n) into a
/// (patch_size × out_positions) matrix.
[[nodiscard]] Tensor im2col(const Tensor& input, std::size_t batch_index,
                            const ConvGeometry& geom);

/// Raw core of im2col: unfold the contiguous C×H×W image at `image` into the
/// (patch_size × out_positions) block at `columns`, whose rows are
/// `col_stride` floats apart — so one image can be written as a column slice
/// of a batched (patch_size × batch·out_positions) matrix. Fully overwrites
/// the block (padding positions included) — safe to drive with reused
/// scratch. `col_stride` must be ≥ out_positions.
void im2col_into(const float* image, const ConvGeometry& geom, float* columns,
                 std::size_t col_stride);

/// Contiguous convenience overload: col_stride == out_positions.
void im2col_into(const float* image, const ConvGeometry& geom,
                 float* columns);

/// Adjoint of im2col: accumulate a (patch_size × out_positions) matrix back
/// into the C×H×W image at batch index n of `grad_input` (+=, not =).
void col2im_accumulate(const Tensor& columns, const ConvGeometry& geom,
                       Tensor& grad_input, std::size_t batch_index);

/// Raw core of col2im: accumulate the (patch_size × out_positions) block at
/// `columns` (rows `col_stride` floats apart, mirroring im2col_into) into
/// the contiguous C×H×W image at `image` (+=, not =).
void col2im_accumulate_into(const float* columns, const ConvGeometry& geom,
                            float* image, std::size_t col_stride);

/// Contiguous convenience overload: col_stride == out_positions.
void col2im_accumulate_into(const float* columns, const ConvGeometry& geom,
                            float* image);

}  // namespace gsfl::tensor
