// Register-blocked GEMM panel kernels.
//
// The microkernel computes one MR×NR tile of C = alpha·A·B + beta·C from
// *packed* operand panels, keeping the whole accumulator tile in registers
// across the full k loop. Everything here is header-only and free of
// allocation and threading so the panel logic is testable in isolation;
// src/tensor/gemm.cpp layers packing-buffer management and the deterministic
// parallel split on top.
//
// Packed layouts (both zero-padded to the register-block multiple):
//   A panel — MR-row strips, k-major: strip s holds rows [s·MR, s·MR+MR) as
//     pa[s·MR·k + p·MR + i] = A[s·MR + i, p], so the kernel reads one MR-long
//     column of the strip per k step, contiguously.
//   B panel — NR-column strips, k-major: strip s holds columns
//     [s·NR, s·NR+NR) as pb[s·NR·k + p·NR + j] = B[p, s·NR + j], so the
//     kernel reads one NR-long row of the strip per k step, contiguously.
//
// Determinism: every C element is produced by the same arithmetic sequence —
// a single accumulator folded over k in ascending order, then one
// `alpha·acc (+ beta·c)` write — no matter which strip, panel, or thread
// computes it, and no matter where panel boundaries fall. That is what lets
// gemm.cpp split work by rows *or* columns at any grain and still return
// bitwise-identical results for every lane count. Padding lanes accumulate
// zeros into accumulators that are never written back, so they cannot
// perturb valid elements.
//
// KC k-blocking keeps that contract. When k exceeds one cache strip the
// macrokernel sweeps the panels in KC-length k-slices with the k-block loop
// outermost, parking each tile's *raw* accumulator in C between slices and
// reloading it as the next slice's starting value. A float32 store/reload
// is lossless, so the per-element fold is the identical ascending-k
// sequence for every block length — results are bitwise invariant in KC,
// not merely close. β≠0 calls run as a single k block (the raw partials
// would clobber the accumuland C).
//
// Epilogues fold the layer-level write-back (bias add, ReLU clamp) into the
// tile store of the *final* k block, so dense→relu / conv→relu pairs cost
// one pass over C instead of three. With α==1 — the only value the nn
// layers use — the fused sequence `v = acc; v += bias; v = max(v, 0)` is
// bitwise identical to the unfused store + bias loop + relu pass.
//
// Interleaved (per-k-block) packing. Packing the whole B panel up front
// streams k·NR-float strips through the cache hierarchy before a single
// kernel read; by the time the first KC slice sweeps, its lines have been
// evicted by the pack of the later ones. The per-slice entry points
// (`pack_b_slice` / `pack_b_trans_slice`) pack one KC-length k slice in
// slice-major strip layout, and `macrokernel_block` sweeps exactly one k
// block with independent A/B strip strides — so a driver can pack each B
// slice immediately before its block sweeps it, cache-hot. The packed
// *values* are identical under either schedule (a slice of the full panel
// and a freshly packed slice hold the same floats in the same strip order),
// and the per-element fold is the block sequence either way, so results are
// bitwise invariant in the pack strategy.
//
// Masked packs. The backward pass of a fused layer→relu pair multiplies dy
// by the Relu derivative (y > 0). The `*_mask` pack variants fold that mask
// into the packing read — entries pack as `mask > 0 ? src : 0`, exactly the
// values a materialized relu_mask() tensor would hold — so the fused
// backward GEMMs (dW, dx) make zero extra sweeps over dy and stay bitwise
// identical to the two-pass mask-then-pack sequence.
#pragma once

#include <algorithm>
#include <cstddef>

namespace gsfl::tensor::micro {

// Register-block geometry, chosen from the SIMD width the compiler targets
// so the accumulator tile fills (but does not spill) the vector register
// file: MR×NR/width accumulators + NR/width B lanes + 1 broadcast lane.
#if defined(__AVX512F__)
inline constexpr std::size_t kSimdWidth = 16;  ///< floats per vector lane
#elif defined(__AVX__)
inline constexpr std::size_t kSimdWidth = 8;
#else
inline constexpr std::size_t kSimdWidth = 4;   ///< baseline x86-64 / NEON-ish
#endif

/// Rows per A strip (accumulator tile height).
inline constexpr std::size_t kMR = kSimdWidth >= 8 ? 6 : 4;
/// Columns per B strip (accumulator tile width): two vectors wide.
inline constexpr std::size_t kNR = 2 * kSimdWidth;

/// k-slice length for cache blocking: an A strip slice (MR·KC floats, ~6 KB)
/// stays L1-resident across every column strip of a k block, and a B strip
/// slice (NR·KC floats, ≤32 KB) sits in L2 across every row strip — where
/// the unblocked sweep streams k·NR floats (256 KB for the dense1 k=2048
/// shape) through the cache hierarchy once per row strip.
inline constexpr std::size_t kKC = 256;

/// x rounded up to a multiple of r.
[[nodiscard]] inline constexpr std::size_t round_up(std::size_t x,
                                                    std::size_t r) {
  return (x + r - 1) / r * r;
}

/// Floats needed for a packed A panel of `rows` rows × k.
[[nodiscard]] inline constexpr std::size_t packed_a_floats(std::size_t rows,
                                                           std::size_t k) {
  return round_up(rows, kMR) * k;
}

/// Floats needed for a packed B panel of k × `cols`.
[[nodiscard]] inline constexpr std::size_t packed_b_floats(std::size_t k,
                                                           std::size_t cols) {
  return round_up(cols, kNR) * k;
}

/// Floats needed for one slice-packed B block of kc × `cols` (the layout a
/// per-k-block interleaved driver hands to macrokernel_block: strip stride
/// kc·NR instead of the full panel's k·NR).
[[nodiscard]] inline constexpr std::size_t packed_b_slice_floats(
    std::size_t kc, std::size_t cols) {
  return round_up(cols, kNR) * kc;
}

/// Strip-count bound below which pack_b's single-row-sweep order applies.
inline constexpr std::size_t kPackSweepMaxStrips = 16;

namespace detail {

/// Element sources for packing, addressed by flat offset into the caller's
/// row-major storage. MaskedSrc folds the Relu derivative into the read:
/// `mask > 0` passes the element, else it packs +0.0f — exactly the values a
/// materialized relu_mask() tensor holds, so masked packs keep every
/// downstream fold bitwise identical to the mask-pass-then-pack sequence.
struct PlainSrc {
  const float* src;
  float operator()(std::size_t i) const { return src[i]; }
};
struct MaskedSrc {
  const float* src;
  const float* mask;
  float operator()(std::size_t i) const {
    return mask[i] > 0.0f ? src[i] : 0.0f;
  }
};

template <typename Src>
inline void pack_a_impl(Src at, std::size_t lda, std::size_t rows,
                        std::size_t k, float* pa) {
  for (std::size_t s = 0; s < rows; s += kMR) {
    const std::size_t mr = std::min(kMR, rows - s);
    for (std::size_t p = 0; p < k; ++p) {
      std::size_t i = 0;
      for (; i < mr; ++i) pa[p * kMR + i] = at((s + i) * lda + p);
      for (; i < kMR; ++i) pa[p * kMR + i] = 0.0f;
    }
    pa += kMR * k;
  }
}

template <typename Src>
inline void pack_a_trans_impl(Src at, std::size_t lda, std::size_t rows,
                              std::size_t k, float* pa) {
  for (std::size_t s = 0; s < rows; s += kMR) {
    const std::size_t mr = std::min(kMR, rows - s);
    for (std::size_t p = 0; p < k; ++p) {
      const std::size_t src = p * lda + s;
      std::size_t i = 0;
      for (; i < mr; ++i) pa[p * kMR + i] = at(src + i);
      for (; i < kMR; ++i) pa[p * kMR + i] = 0.0f;
    }
    pa += kMR * k;
  }
}

template <typename Src>
inline void pack_b_slice_impl(Src at, std::size_t ldb, std::size_t kc,
                              std::size_t cols, float* pb) {
  // Two loop orders produce the identical slice; the shape picks the faster:
  // - Few strips (deep panels like dense1's 2048×128): a single sweep over
  //   the source rows, each read once contiguously and scattered to the
  //   per-strip cursors (every strip's k-major layout advances contiguously
  //   too) — the strip-outer order would re-stream the whole slice from L2
  //   once per kNR columns.
  // - Many strips (wide conv panels): strip-outer, writing one strip at a
  //   time — the row sweep would fan out to hundreds of write streams, past
  //   what store buffers keep coalesced.
  if (cols <= kPackSweepMaxStrips * kNR) {
    const std::size_t full = cols / kNR * kNR;
    for (std::size_t p = 0; p < kc; ++p) {
      const std::size_t src = p * ldb;
      float* dst = pb + p * kNR;
      std::size_t s = 0;
      for (; s < full; s += kNR, dst += kNR * kc) {
        for (std::size_t j = 0; j < kNR; ++j) dst[j] = at(src + s + j);
      }
      if (s < cols) {
        const std::size_t nr = cols - s;
        std::size_t j = 0;
        for (; j < nr; ++j) dst[j] = at(src + s + j);
        for (; j < kNR; ++j) dst[j] = 0.0f;
      }
    }
    return;
  }
  for (std::size_t s = 0; s < cols; s += kNR) {
    const std::size_t nr = std::min(kNR, cols - s);
    for (std::size_t p = 0; p < kc; ++p) {
      const std::size_t src = p * ldb + s;
      std::size_t j = 0;
      for (; j < nr; ++j) pb[p * kNR + j] = at(src + j);
      for (; j < kNR; ++j) pb[p * kNR + j] = 0.0f;
    }
    pb += kNR * kc;
  }
}

}  // namespace detail

/// Pack `rows`×k of A into MR strips. `a` points at the panel's first row in
/// a row-major matrix with leading dimension `lda` (≥ k).
inline void pack_a(const float* a, std::size_t lda, std::size_t rows,
                   std::size_t k, float* pa) {
  detail::pack_a_impl(detail::PlainSrc{a}, lda, rows, k, pa);
}

/// pack_a with the Relu-derivative mask folded in: element (i, p) packs as
/// `mask[(i, p)] > 0 ? a[(i, p)] : 0`. `mask` shares a's layout and lda
/// (callers pass the fused forward's y, offset like a).
inline void pack_a_mask(const float* a, const float* mask, std::size_t lda,
                        std::size_t rows, std::size_t k, float* pa) {
  detail::pack_a_impl(detail::MaskedSrc{a, mask}, lda, rows, k, pa);
}

/// Pack `rows`×k of Aᵀ into MR strips: the logical panel is the transpose of
/// a row-major source, so logical A[i, p] = src[p·lda + i]. `a` points at the
/// panel's first logical row, i.e. column offset into the source. Reads are
/// contiguous per k step — transposed A packs cheaper than untransposed.
inline void pack_a_trans(const float* a, std::size_t lda, std::size_t rows,
                         std::size_t k, float* pa) {
  detail::pack_a_trans_impl(detail::PlainSrc{a}, lda, rows, k, pa);
}

/// pack_a_trans with the Relu-derivative mask folded in (mask shares the
/// source's layout and lda).
inline void pack_a_trans_mask(const float* a, const float* mask,
                              std::size_t lda, std::size_t rows,
                              std::size_t k, float* pa) {
  detail::pack_a_trans_impl(detail::MaskedSrc{a, mask}, lda, rows, k, pa);
}

/// Pack one kc-length k slice of B into NR strips with strip stride kc·NR
/// (slice-major). `b` points at the slice's first source row — callers
/// packing rows [p0, p0+kc) of a k×n matrix pass `b + p0·ldb`. With kc == k
/// this is exactly the full-panel layout, which is how pack_b is defined.
inline void pack_b_slice(const float* b, std::size_t ldb, std::size_t kc,
                         std::size_t cols, float* pb) {
  detail::pack_b_slice_impl(detail::PlainSrc{b}, ldb, kc, cols, pb);
}

/// Pack k×`cols` of B into NR strips. `b` points at the panel's first column
/// in a row-major matrix with leading dimension `ldb` (≥ cols overall).
/// The shape-adaptive loop orders live in the per-slice entry point;
/// the full panel is the kc == k slice.
inline void pack_b(const float* b, std::size_t ldb, std::size_t k,
                   std::size_t cols, float* pb) {
  pack_b_slice(b, ldb, k, cols, pb);
}

/// pack_b with the Relu-derivative mask folded in (mask shares the source's
/// layout and ldb). Conv's fused backward packs each sample's dy block with
/// this — the dx GEMM consumes masked dy without a separate mask pass.
inline void pack_b_mask(const float* b, const float* mask, std::size_t ldb,
                        std::size_t k, std::size_t cols, float* pb) {
  detail::pack_b_slice_impl(detail::MaskedSrc{b, mask}, ldb, k, cols, pb);
}

/// Pack one kc-length k slice of Bᵀ into NR strips with strip stride kc·NR:
/// logical B[p, j] = src[j·ldb + p], source row-major (cols_total × k).
/// `b` points at the slice's first logical element — callers packing logical
/// rows [p0, p0+kc) of columns [c0, …) pass `b + c0·ldb + p0`.
inline void pack_b_trans_slice(const float* b, std::size_t ldb,
                               std::size_t kc, std::size_t cols, float* pb) {
  for (std::size_t s = 0; s < cols; s += kNR) {
    const std::size_t nr = std::min(kNR, cols - s);
    for (std::size_t j = 0; j < nr; ++j) {
      const float* src = b + (s + j) * ldb;
      for (std::size_t p = 0; p < kc; ++p) pb[p * kNR + j] = src[p];
    }
    for (std::size_t j = nr; j < kNR; ++j) {
      for (std::size_t p = 0; p < kc; ++p) pb[p * kNR + j] = 0.0f;
    }
    pb += kNR * kc;
  }
}

/// Pack k×`cols` of Bᵀ into NR strips: the full panel is the kc == k slice.
inline void pack_b_trans(const float* b, std::size_t ldb, std::size_t k,
                         std::size_t cols, float* pb) {
  pack_b_trans_slice(b, ldb, k, cols, pb);
}

/// Write-back transform applied when a tile is *finalized* (last k block).
/// `bias` is indexed relative to the block the macrokernel writes — callers
/// that hand the macrokernel a sub-block of C offset the pointer themselves.
struct Epilogue {
  enum class Kind : unsigned char {
    kNone,      ///< c = alpha·acc + beta·c
    kBias,      ///< … + bias[row] or bias[col]
    kBiasRelu,  ///< … then max(·, 0)
  };
  Kind kind = Kind::kNone;
  bool per_row = true;  ///< bias[i] per C row when true, bias[j] per column
  const float* bias = nullptr;
};

namespace detail {

/// Tile height of the reduced register tile used for short edge strips:
/// a GEMM whose tail strip holds ≤ kSmallMR rows (the paper's batch-16
/// dense layers end in one) skips the padded rows' FMA issue entirely.
inline constexpr std::size_t kSmallMR = 4;

/// The register tile: acc[i][j] = Σ_p pa[p·MR+i] · pb[p·NR+j], folded in
/// ascending p with one accumulator per element. The constant trip counts
/// let the compiler fully unroll i, vectorize j, and keep acc in registers.
/// Rows is the accumulator height (kMR, or kSmallMR for short tail strips —
/// the packed stride stays kMR either way); each element's fold sequence is
/// identical under both, so the tile height is invisible in the result.
template <std::size_t Rows>
inline void accumulate(std::size_t kc, const float* pa, const float* pb,
                       float acc[Rows][kNR]) {
  for (std::size_t p = 0; p < kc; ++p, pa += kMR, pb += kNR) {
    for (std::size_t i = 0; i < Rows; ++i) {
      const float a = pa[i];
      for (std::size_t j = 0; j < kNR; ++j) acc[i][j] += a * pb[j];
    }
  }
}

/// Resume a parked fold: seed the valid mr×nr corner of the accumulator
/// tile from the raw partial sums a previous k block stored in C. Padding
/// lanes stay zero (their strips are zero-padded, so they fold zeros).
/// Interior tiles take the constant-bound loops so the compiler emits
/// full-width vector moves; edge tiles mask to the valid corner.
template <std::size_t Rows>
inline void load_partial(const float* c, std::size_t ldc, std::size_t mr,
                         std::size_t nr, float acc[Rows][kNR]) {
  if (mr == Rows && nr == kNR) {
    for (std::size_t i = 0; i < Rows; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) acc[i][j] = c[i * ldc + j];
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) acc[i][j] = c[i * ldc + j];
  }
}

/// Park the fold: store the raw accumulators (no alpha/beta/epilogue) so the
/// next k block can continue the exact per-element sequence — a float32
/// store/reload is lossless.
template <std::size_t Rows>
inline void store_partial(const float acc[Rows][kNR], float* c,
                          std::size_t ldc, std::size_t mr, std::size_t nr) {
  if (mr == Rows && nr == kNR) {
    for (std::size_t i = 0; i < Rows; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) c[i * ldc + j] = acc[i][j];
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] = acc[i][j];
  }
}

/// Final write-back element: one `alpha·acc (+ beta·c)`, then the epilogue.
inline float finalize_element(float acc, float alpha, float beta,
                              const float* c_elem, const Epilogue& ep,
                              std::size_t bias_index) {
  float v = alpha * acc;
  if (beta != 0.0f) v += beta * *c_elem;
  if (ep.kind != Epilogue::Kind::kNone) {
    v += ep.bias[bias_index];
    if (ep.kind == Epilogue::Kind::kBiasRelu && !(v > 0.0f)) v = 0.0f;
  }
  return v;
}

/// Final write-back for the tile. `row0`/`col0` locate the tile inside the
/// macrokernel's block for bias indexing. Interior tiles run constant-bound
/// loops (the beta/epilogue branches are loop-invariant and unswitch).
template <std::size_t Rows>
inline void store_final(const float acc[Rows][kNR], float alpha, float beta,
                        float* c, std::size_t ldc, std::size_t mr,
                        std::size_t nr, const Epilogue& ep, std::size_t row0,
                        std::size_t col0) {
  if (mr == Rows && nr == kNR) {
    for (std::size_t i = 0; i < Rows; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) {
        c[i * ldc + j] =
            finalize_element(acc[i][j], alpha, beta, &c[i * ldc + j], ep,
                             ep.per_row ? row0 + i : col0 + j);
      }
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) {
      c[i * ldc + j] =
          finalize_element(acc[i][j], alpha, beta, &c[i * ldc + j], ep,
                           ep.per_row ? row0 + i : col0 + j);
    }
  }
}

template <std::size_t Rows>
inline void tile_kernel(std::size_t kc, float alpha, const float* pa,
                        const float* pb, float beta, float* c,
                        std::size_t ldc, std::size_t mr, std::size_t nr,
                        bool resume, bool finalize, const Epilogue& ep,
                        std::size_t row0, std::size_t col0) {
  float acc[Rows][kNR] = {};
  if (resume) load_partial<Rows>(c, ldc, mr, nr, acc);
  accumulate<Rows>(kc, pa, pb, acc);
  if (finalize) {
    store_final<Rows>(acc, alpha, beta, c, ldc, mr, nr, ep, row0, col0);
  } else {
    store_partial<Rows>(acc, c, ldc, mr, nr);
  }
}

}  // namespace detail

/// Microkernel over one k slice of a tile: accumulate kc steps (resuming
/// from raw partials in C when `resume`), then either park the fold
/// (`finalize == false`) or apply alpha/beta and the epilogue. Write-back is
/// masked to the valid mr×nr corner; the accumulation arithmetic is
/// identical for interior and edge tiles, and a short tail strip (mr ≤
/// kSmallMR) runs on a reduced accumulator tile — same per-element fold,
/// no FMA issue spent on padded rows. beta != 0 requires a single-block
/// sweep (resume == false && finalize == true) — the partial-parking scheme
/// uses C as scratch and would clobber the accumuland.
inline void kernel(std::size_t kc, float alpha, const float* pa,
                   const float* pb, float beta, float* c, std::size_t ldc,
                   std::size_t mr, std::size_t nr, bool resume, bool finalize,
                   const Epilogue& ep, std::size_t row0, std::size_t col0) {
  if (kMR > detail::kSmallMR && mr <= detail::kSmallMR) {
    detail::tile_kernel<detail::kSmallMR>(kc, alpha, pa, pb, beta, c, ldc,
                                          mr, nr, resume, finalize, ep, row0,
                                          col0);
  } else {
    detail::tile_kernel<kMR>(kc, alpha, pa, pb, beta, c, ldc, mr, nr, resume,
                             finalize, ep, row0, col0);
  }
}

/// One k block of the macrokernel sweep: kc accumulation steps over every
/// tile of the rows×cols C block, with independent A/B strip strides so the
/// operands may be full panels *or* freshly packed slices. `pa` points at
/// strip 0's first element of this slice (a full-panel caller passes
/// `pa_full + p0·kMR`); strip s sits at `pa + s·kMR·a_stride`, so a full
/// panel passes a_stride = k and a slice-packed operand a_stride = kc.
/// Likewise `pb` / `b_stride` with kNR strips. Within the block, column
/// strips are the outer loop so one B strip slice is reused across every row
/// strip before the next is touched. resume/finalize park or finalize the
/// per-tile fold exactly as in kernel(); beta != 0 requires the single-block
/// form (resume == false && finalize == true).
inline void macrokernel_block(std::size_t rows, std::size_t cols,
                              std::size_t kc, float alpha, const float* pa,
                              std::size_t a_stride, const float* pb,
                              std::size_t b_stride, float beta, float* c,
                              std::size_t ldc, bool resume, bool finalize,
                              const Epilogue& ep = {}) {
  for (std::size_t jr = 0; jr < cols; jr += kNR) {
    const std::size_t nr = std::min(kNR, cols - jr);
    const float* b_strip = pb + jr * b_stride;
    for (std::size_t ir = 0; ir < rows; ir += kMR) {
      const std::size_t mr = std::min(kMR, rows - ir);
      const float* a_strip = pa + ir * a_stride;
      kernel(kc, alpha, a_strip, b_strip, beta, c + ir * ldc + jr, ldc, mr,
             nr, resume, finalize, ep, ir, jr);
    }
  }
}

/// Macrokernel: sweep a packed A panel (`rows` logical rows) against a packed
/// B panel (`cols` logical columns), writing the rows×cols block of C at `c`
/// (row stride ldc), in KC-length k blocks. The k-block loop is outermost so
/// one block's A strip slices (MR·kc floats each) stay L1-resident across
/// every column strip and a B strip slice (NR·kc floats) is reused from L2
/// across every row strip — the unblocked sweep instead streamed full k·NR
/// strips per row strip.
///
/// Tile order is irrelevant to the result (tiles are disjoint) and the block
/// length is irrelevant too: blocks park raw per-element partials in C and
/// resume them, reproducing the single ascending-k fold bitwise for every
/// `kc_block` (sweepable by tests; gemm.cpp always passes the kKC default).
/// beta != 0 forces a single block — C is the accumuland, not scratch.
/// Interleaved drivers instead call macrokernel_block per slice, packing
/// each B slice just before its sweep — same fold, bitwise-equal result.
inline void macrokernel(std::size_t rows, std::size_t cols, std::size_t k,
                        float alpha, const float* pa, const float* pb,
                        float beta, float* c, std::size_t ldc,
                        const Epilogue& ep = {},
                        std::size_t kc_block = kKC) {
  const std::size_t kc_eff =
      (beta != 0.0f || kc_block == 0) ? std::max<std::size_t>(k, 1)
                                      : kc_block;
  const std::size_t blocks = k == 0 ? 1 : (k + kc_eff - 1) / kc_eff;
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t p0 = blk * kc_eff;
    const std::size_t p1 = std::min(p0 + kc_eff, k);
    // Strip index · kNR·k locates a strip; p0·kNR the k slice within it.
    macrokernel_block(rows, cols, p1 - p0, alpha, pa + p0 * kMR, k,
                      pb + p0 * kNR, k, beta, c, ldc, blk > 0,
                      blk + 1 == blocks, ep);
  }
}

}  // namespace gsfl::tensor::micro
