// Register-blocked GEMM panel kernels.
//
// The microkernel computes one MR×NR tile of C = alpha·A·B + beta·C from
// *packed* operand panels, keeping the whole accumulator tile in registers
// across the full k loop. Everything here is header-only and free of
// allocation and threading so the panel logic is testable in isolation;
// src/tensor/gemm.cpp layers packing-buffer management and the deterministic
// parallel split on top.
//
// Packed layouts (both zero-padded to the register-block multiple):
//   A panel — MR-row strips, k-major: strip s holds rows [s·MR, s·MR+MR) as
//     pa[s·MR·k + p·MR + i] = A[s·MR + i, p], so the kernel reads one MR-long
//     column of the strip per k step, contiguously.
//   B panel — NR-column strips, k-major: strip s holds columns
//     [s·NR, s·NR+NR) as pb[s·NR·k + p·NR + j] = B[p, s·NR + j], so the
//     kernel reads one NR-long row of the strip per k step, contiguously.
//
// Determinism: every C element is produced by the same arithmetic sequence —
// a single accumulator folded over k in ascending order, then one
// `alpha·acc (+ beta·c)` write — no matter which strip, panel, or thread
// computes it, and no matter where panel boundaries fall. That is what lets
// gemm.cpp split work by rows *or* columns at any grain and still return
// bitwise-identical results for every lane count. Padding lanes accumulate
// zeros into accumulators that are never written back, so they cannot
// perturb valid elements.
#pragma once

#include <algorithm>
#include <cstddef>

namespace gsfl::tensor::micro {

// Register-block geometry, chosen from the SIMD width the compiler targets
// so the accumulator tile fills (but does not spill) the vector register
// file: MR×NR/width accumulators + NR/width B lanes + 1 broadcast lane.
#if defined(__AVX512F__)
inline constexpr std::size_t kSimdWidth = 16;  ///< floats per vector lane
#elif defined(__AVX__)
inline constexpr std::size_t kSimdWidth = 8;
#else
inline constexpr std::size_t kSimdWidth = 4;   ///< baseline x86-64 / NEON-ish
#endif

/// Rows per A strip (accumulator tile height).
inline constexpr std::size_t kMR = kSimdWidth >= 8 ? 6 : 4;
/// Columns per B strip (accumulator tile width): two vectors wide.
inline constexpr std::size_t kNR = 2 * kSimdWidth;

/// x rounded up to a multiple of r.
[[nodiscard]] inline constexpr std::size_t round_up(std::size_t x,
                                                    std::size_t r) {
  return (x + r - 1) / r * r;
}

/// Floats needed for a packed A panel of `rows` rows × k.
[[nodiscard]] inline constexpr std::size_t packed_a_floats(std::size_t rows,
                                                           std::size_t k) {
  return round_up(rows, kMR) * k;
}

/// Floats needed for a packed B panel of k × `cols`.
[[nodiscard]] inline constexpr std::size_t packed_b_floats(std::size_t k,
                                                           std::size_t cols) {
  return round_up(cols, kNR) * k;
}

/// Pack `rows`×k of A into MR strips. `a` points at the panel's first row in
/// a row-major matrix with leading dimension `lda` (≥ k).
inline void pack_a(const float* a, std::size_t lda, std::size_t rows,
                   std::size_t k, float* pa) {
  for (std::size_t s = 0; s < rows; s += kMR) {
    const std::size_t mr = std::min(kMR, rows - s);
    for (std::size_t p = 0; p < k; ++p) {
      std::size_t i = 0;
      for (; i < mr; ++i) pa[p * kMR + i] = a[(s + i) * lda + p];
      for (; i < kMR; ++i) pa[p * kMR + i] = 0.0f;
    }
    pa += kMR * k;
  }
}

/// Pack `rows`×k of Aᵀ into MR strips: the logical panel is the transpose of
/// a row-major source, so logical A[i, p] = src[p·lda + i]. `a` points at the
/// panel's first logical row, i.e. column offset into the source. Reads are
/// contiguous per k step — transposed A packs cheaper than untransposed.
inline void pack_a_trans(const float* a, std::size_t lda, std::size_t rows,
                         std::size_t k, float* pa) {
  for (std::size_t s = 0; s < rows; s += kMR) {
    const std::size_t mr = std::min(kMR, rows - s);
    for (std::size_t p = 0; p < k; ++p) {
      const float* src = a + p * lda + s;
      std::size_t i = 0;
      for (; i < mr; ++i) pa[p * kMR + i] = src[i];
      for (; i < kMR; ++i) pa[p * kMR + i] = 0.0f;
    }
    pa += kMR * k;
  }
}

/// Pack k×`cols` of B into NR strips. `b` points at the panel's first column
/// in a row-major matrix with leading dimension `ldb` (≥ cols overall).
inline void pack_b(const float* b, std::size_t ldb, std::size_t k,
                   std::size_t cols, float* pb) {
  for (std::size_t s = 0; s < cols; s += kNR) {
    const std::size_t nr = std::min(kNR, cols - s);
    for (std::size_t p = 0; p < k; ++p) {
      const float* src = b + p * ldb + s;
      std::size_t j = 0;
      for (; j < nr; ++j) pb[p * kNR + j] = src[j];
      for (; j < kNR; ++j) pb[p * kNR + j] = 0.0f;
    }
    pb += kNR * k;
  }
}

/// Pack k×`cols` of Bᵀ into NR strips: logical B[p, j] = src[j·ldb + p],
/// where the source is row-major (cols_total × k). `b` points at the panel's
/// first logical column, i.e. row offset into the source.
inline void pack_b_trans(const float* b, std::size_t ldb, std::size_t k,
                         std::size_t cols, float* pb) {
  for (std::size_t s = 0; s < cols; s += kNR) {
    const std::size_t nr = std::min(kNR, cols - s);
    for (std::size_t j = 0; j < nr; ++j) {
      const float* src = b + (s + j) * ldb;
      for (std::size_t p = 0; p < k; ++p) pb[p * kNR + j] = src[p];
    }
    for (std::size_t j = nr; j < kNR; ++j) {
      for (std::size_t p = 0; p < k; ++p) pb[p * kNR + j] = 0.0f;
    }
    pb += kNR * k;
  }
}

namespace detail {

/// The register tile: acc[i][j] = Σ_p pa[p·MR+i] · pb[p·NR+j], folded in
/// ascending p with one accumulator per element. The constant trip counts
/// let the compiler fully unroll i, vectorize j, and keep acc in registers.
inline void accumulate(std::size_t kc, const float* pa, const float* pb,
                       float acc[kMR][kNR]) {
  for (std::size_t p = 0; p < kc; ++p, pa += kMR, pb += kNR) {
    for (std::size_t i = 0; i < kMR; ++i) {
      const float a = pa[i];
      for (std::size_t j = 0; j < kNR; ++j) acc[i][j] += a * pb[j];
    }
  }
}

}  // namespace detail

/// Full-tile microkernel: C tile (MR×NR, row stride ldc) =
/// alpha·(A strip · B strip) + beta·C tile. beta == 0 never reads C.
inline void kernel_full(std::size_t kc, float alpha, const float* pa,
                        const float* pb, float beta, float* c,
                        std::size_t ldc) {
  float acc[kMR][kNR] = {};
  detail::accumulate(kc, pa, pb, acc);
  if (beta == 0.0f) {
    for (std::size_t i = 0; i < kMR; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) c[i * ldc + j] = alpha * acc[i][j];
    }
  } else {
    for (std::size_t i = 0; i < kMR; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) {
        c[i * ldc + j] = alpha * acc[i][j] + beta * c[i * ldc + j];
      }
    }
  }
}

/// Edge microkernel: identical accumulation over the zero-padded strips,
/// write-back masked to the valid mr×nr corner — so edge elements get the
/// exact same arithmetic as interior ones.
inline void kernel_edge(std::size_t kc, float alpha, const float* pa,
                        const float* pb, float beta, float* c, std::size_t ldc,
                        std::size_t mr, std::size_t nr) {
  float acc[kMR][kNR] = {};
  detail::accumulate(kc, pa, pb, acc);
  if (beta == 0.0f) {
    for (std::size_t i = 0; i < mr; ++i) {
      for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] = alpha * acc[i][j];
    }
  } else {
    for (std::size_t i = 0; i < mr; ++i) {
      for (std::size_t j = 0; j < nr; ++j) {
        c[i * ldc + j] = alpha * acc[i][j] + beta * c[i * ldc + j];
      }
    }
  }
}

/// Macrokernel: sweep a packed A panel (`rows` logical rows) against a packed
/// B panel (`cols` logical columns), writing the rows×cols block of C at `c`
/// (row stride ldc). Column strips are the outer loop so one B strip (k·NR
/// floats — L1-resident for the k this library sees) is reused across every
/// row strip before the next is touched; the whole packed B streams through
/// cache once per call instead of once per row strip. The order is irrelevant
/// to the result — tiles are disjoint.
inline void macrokernel(std::size_t rows, std::size_t cols, std::size_t k,
                        float alpha, const float* pa, const float* pb,
                        float beta, float* c, std::size_t ldc) {
  for (std::size_t jr = 0; jr < cols; jr += kNR) {
    const std::size_t nr = std::min(kNR, cols - jr);
    const float* b_strip = pb + jr * k;  // strip index · kNR·k
    for (std::size_t ir = 0; ir < rows; ir += kMR) {
      const std::size_t mr = std::min(kMR, rows - ir);
      const float* a_strip = pa + ir * k;  // strip index · kMR·k
      float* ct = c + ir * ldc + jr;
      if (mr == kMR && nr == kNR) {
        kernel_full(k, alpha, a_strip, b_strip, beta, ct, ldc);
      } else {
        kernel_edge(k, alpha, a_strip, b_strip, beta, ct, ldc, mr, nr);
      }
    }
  }
}

}  // namespace gsfl::tensor::micro
