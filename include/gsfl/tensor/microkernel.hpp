// Register-blocked GEMM panel kernels.
//
// The microkernel computes one MR×NR tile of C = alpha·A·B + beta·C from
// *packed* operand panels, keeping the whole accumulator tile in registers
// across the full k loop. Everything here is header-only and free of
// allocation and threading so the panel logic is testable in isolation;
// src/tensor/gemm.cpp layers packing-buffer management and the deterministic
// parallel split on top.
//
// Packed layouts (both zero-padded to the register-block multiple):
//   A panel — MR-row strips, k-major: strip s holds rows [s·MR, s·MR+MR) as
//     pa[s·MR·k + p·MR + i] = A[s·MR + i, p], so the kernel reads one MR-long
//     column of the strip per k step, contiguously.
//   B panel — NR-column strips, k-major: strip s holds columns
//     [s·NR, s·NR+NR) as pb[s·NR·k + p·NR + j] = B[p, s·NR + j], so the
//     kernel reads one NR-long row of the strip per k step, contiguously.
//
// Determinism: every C element is produced by the same arithmetic sequence —
// a single accumulator folded over k in ascending order, then one
// `alpha·acc (+ beta·c)` write — no matter which strip, panel, or thread
// computes it, and no matter where panel boundaries fall. That is what lets
// gemm.cpp split work by rows *or* columns at any grain and still return
// bitwise-identical results for every lane count. Padding lanes accumulate
// zeros into accumulators that are never written back, so they cannot
// perturb valid elements.
//
// KC k-blocking keeps that contract. When k exceeds one cache strip the
// macrokernel sweeps the panels in KC-length k-slices with the k-block loop
// outermost, parking each tile's *raw* accumulator in C between slices and
// reloading it as the next slice's starting value. A float32 store/reload
// is lossless, so the per-element fold is the identical ascending-k
// sequence for every block length — results are bitwise invariant in KC,
// not merely close. β≠0 calls run as a single k block (the raw partials
// would clobber the accumuland C).
//
// Epilogues fold the layer-level write-back (bias add, ReLU clamp) into the
// tile store of the *final* k block, so dense→relu / conv→relu pairs cost
// one pass over C instead of three. With α==1 — the only value the nn
// layers use — the fused sequence `v = acc; v += bias; v = max(v, 0)` is
// bitwise identical to the unfused store + bias loop + relu pass.
//
// Interleaved (per-k-block) packing. Packing the whole B panel up front
// streams k·NR-float strips through the cache hierarchy before a single
// kernel read; by the time the first KC slice sweeps, its lines have been
// evicted by the pack of the later ones. The per-slice entry points
// (`pack_b_slice` / `pack_b_trans_slice`) pack one KC-length k slice in
// slice-major strip layout, and `macrokernel_block` sweeps exactly one k
// block with independent A/B strip strides — so a driver can pack each B
// slice immediately before its block sweeps it, cache-hot. The packed
// *values* are identical under either schedule (a slice of the full panel
// and a freshly packed slice hold the same floats in the same strip order),
// and the per-element fold is the block sequence either way, so results are
// bitwise invariant in the pack strategy.
//
// Masked packs. The backward pass of a fused layer→relu pair multiplies dy
// by the Relu derivative (y > 0). The `*_mask` pack variants fold that mask
// into the packing read — entries pack as `mask > 0 ? src : 0`, exactly the
// values a materialized relu_mask() tensor would hold — so the fused
// backward GEMMs (dW, dx) make zero extra sweeps over dy and stay bitwise
// identical to the two-pass mask-then-pack sequence.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace gsfl::tensor::micro {

// Register-block geometry, chosen from the SIMD width the compiler targets
// so the accumulator tile fills (but does not spill) the vector register
// file: MR×NR/width accumulators + NR/width B lanes + 1 broadcast lane.
#if defined(__AVX512F__)
inline constexpr std::size_t kSimdWidth = 16;  ///< floats per vector lane
#elif defined(__AVX__)
inline constexpr std::size_t kSimdWidth = 8;
#else
inline constexpr std::size_t kSimdWidth = 4;   ///< baseline x86-64 / NEON-ish
#endif

/// Rows per A strip (accumulator tile height).
inline constexpr std::size_t kMR = kSimdWidth >= 8 ? 6 : 4;
/// Columns per B strip (accumulator tile width): two vectors wide.
inline constexpr std::size_t kNR = 2 * kSimdWidth;

/// k-slice length for cache blocking: an A strip slice (MR·KC floats, ~6 KB)
/// stays L1-resident across every column strip of a k block, and a B strip
/// slice (NR·KC floats, ≤32 KB) sits in L2 across every row strip — where
/// the unblocked sweep streams k·NR floats (256 KB for the dense1 k=2048
/// shape) through the cache hierarchy once per row strip.
inline constexpr std::size_t kKC = 256;

/// x rounded up to a multiple of r.
[[nodiscard]] inline constexpr std::size_t round_up(std::size_t x,
                                                    std::size_t r) {
  return (x + r - 1) / r * r;
}

/// Floats needed for a packed A panel of `rows` rows × k.
[[nodiscard]] inline constexpr std::size_t packed_a_floats(std::size_t rows,
                                                           std::size_t k) {
  return round_up(rows, kMR) * k;
}

/// Floats needed for a packed B panel of k × `cols`.
[[nodiscard]] inline constexpr std::size_t packed_b_floats(std::size_t k,
                                                           std::size_t cols) {
  return round_up(cols, kNR) * k;
}

/// Floats needed for one slice-packed B block of kc × `cols` (the layout a
/// per-k-block interleaved driver hands to macrokernel_block: strip stride
/// kc·NR instead of the full panel's k·NR).
[[nodiscard]] inline constexpr std::size_t packed_b_slice_floats(
    std::size_t kc, std::size_t cols) {
  return round_up(cols, kNR) * kc;
}

/// Strip-count bound below which pack_b's single-row-sweep order applies.
inline constexpr std::size_t kPackSweepMaxStrips = 16;

namespace detail {

/// Element sources for packing, addressed by flat offset into the caller's
/// row-major storage. MaskedSrc folds the Relu derivative into the read:
/// `mask > 0` passes the element, else it packs +0.0f — exactly the values a
/// materialized relu_mask() tensor holds, so masked packs keep every
/// downstream fold bitwise identical to the mask-pass-then-pack sequence.
struct PlainSrc {
  const float* src;
  float operator()(std::size_t i) const { return src[i]; }
};
struct MaskedSrc {
  const float* src;
  const float* mask;
  float operator()(std::size_t i) const {
    return mask[i] > 0.0f ? src[i] : 0.0f;
  }
};

template <typename Src>
inline void pack_a_impl(Src at, std::size_t lda, std::size_t rows,
                        std::size_t k, float* pa) {
  for (std::size_t s = 0; s < rows; s += kMR) {
    const std::size_t mr = std::min(kMR, rows - s);
    for (std::size_t p = 0; p < k; ++p) {
      std::size_t i = 0;
      for (; i < mr; ++i) pa[p * kMR + i] = at((s + i) * lda + p);
      for (; i < kMR; ++i) pa[p * kMR + i] = 0.0f;
    }
    pa += kMR * k;
  }
}

template <typename Src>
inline void pack_a_trans_impl(Src at, std::size_t lda, std::size_t rows,
                              std::size_t k, float* pa) {
  for (std::size_t s = 0; s < rows; s += kMR) {
    const std::size_t mr = std::min(kMR, rows - s);
    for (std::size_t p = 0; p < k; ++p) {
      const std::size_t src = p * lda + s;
      std::size_t i = 0;
      for (; i < mr; ++i) pa[p * kMR + i] = at(src + i);
      for (; i < kMR; ++i) pa[p * kMR + i] = 0.0f;
    }
    pa += kMR * k;
  }
}

template <typename Src>
inline void pack_b_slice_impl(Src at, std::size_t ldb, std::size_t kc,
                              std::size_t cols, float* pb) {
  // Two loop orders produce the identical slice; the shape picks the faster:
  // - Few strips (deep panels like dense1's 2048×128): a single sweep over
  //   the source rows, each read once contiguously and scattered to the
  //   per-strip cursors (every strip's k-major layout advances contiguously
  //   too) — the strip-outer order would re-stream the whole slice from L2
  //   once per kNR columns.
  // - Many strips (wide conv panels): strip-outer, writing one strip at a
  //   time — the row sweep would fan out to hundreds of write streams, past
  //   what store buffers keep coalesced.
  if (cols <= kPackSweepMaxStrips * kNR) {
    const std::size_t full = cols / kNR * kNR;
    for (std::size_t p = 0; p < kc; ++p) {
      const std::size_t src = p * ldb;
      float* dst = pb + p * kNR;
      std::size_t s = 0;
      for (; s < full; s += kNR, dst += kNR * kc) {
        for (std::size_t j = 0; j < kNR; ++j) dst[j] = at(src + s + j);
      }
      if (s < cols) {
        const std::size_t nr = cols - s;
        std::size_t j = 0;
        for (; j < nr; ++j) dst[j] = at(src + s + j);
        for (; j < kNR; ++j) dst[j] = 0.0f;
      }
    }
    return;
  }
  for (std::size_t s = 0; s < cols; s += kNR) {
    const std::size_t nr = std::min(kNR, cols - s);
    for (std::size_t p = 0; p < kc; ++p) {
      const std::size_t src = p * ldb + s;
      std::size_t j = 0;
      for (; j < nr; ++j) pb[p * kNR + j] = at(src + j);
      for (; j < kNR; ++j) pb[p * kNR + j] = 0.0f;
    }
    pb += kNR * kc;
  }
}

}  // namespace detail

/// Pack `rows`×k of A into MR strips. `a` points at the panel's first row in
/// a row-major matrix with leading dimension `lda` (≥ k).
inline void pack_a(const float* a, std::size_t lda, std::size_t rows,
                   std::size_t k, float* pa) {
  detail::pack_a_impl(detail::PlainSrc{a}, lda, rows, k, pa);
}

/// pack_a with the Relu-derivative mask folded in: element (i, p) packs as
/// `mask[(i, p)] > 0 ? a[(i, p)] : 0`. `mask` shares a's layout and lda
/// (callers pass the fused forward's y, offset like a).
inline void pack_a_mask(const float* a, const float* mask, std::size_t lda,
                        std::size_t rows, std::size_t k, float* pa) {
  detail::pack_a_impl(detail::MaskedSrc{a, mask}, lda, rows, k, pa);
}

/// Pack `rows`×k of Aᵀ into MR strips: the logical panel is the transpose of
/// a row-major source, so logical A[i, p] = src[p·lda + i]. `a` points at the
/// panel's first logical row, i.e. column offset into the source. Reads are
/// contiguous per k step — transposed A packs cheaper than untransposed.
inline void pack_a_trans(const float* a, std::size_t lda, std::size_t rows,
                         std::size_t k, float* pa) {
  detail::pack_a_trans_impl(detail::PlainSrc{a}, lda, rows, k, pa);
}

/// pack_a_trans with the Relu-derivative mask folded in (mask shares the
/// source's layout and lda).
inline void pack_a_trans_mask(const float* a, const float* mask,
                              std::size_t lda, std::size_t rows,
                              std::size_t k, float* pa) {
  detail::pack_a_trans_impl(detail::MaskedSrc{a, mask}, lda, rows, k, pa);
}

/// Pack one kc-length k slice of B into NR strips with strip stride kc·NR
/// (slice-major). `b` points at the slice's first source row — callers
/// packing rows [p0, p0+kc) of a k×n matrix pass `b + p0·ldb`. With kc == k
/// this is exactly the full-panel layout, which is how pack_b is defined.
inline void pack_b_slice(const float* b, std::size_t ldb, std::size_t kc,
                         std::size_t cols, float* pb) {
  detail::pack_b_slice_impl(detail::PlainSrc{b}, ldb, kc, cols, pb);
}

/// Pack k×`cols` of B into NR strips. `b` points at the panel's first column
/// in a row-major matrix with leading dimension `ldb` (≥ cols overall).
/// The shape-adaptive loop orders live in the per-slice entry point;
/// the full panel is the kc == k slice.
inline void pack_b(const float* b, std::size_t ldb, std::size_t k,
                   std::size_t cols, float* pb) {
  pack_b_slice(b, ldb, k, cols, pb);
}

/// pack_b with the Relu-derivative mask folded in (mask shares the source's
/// layout and ldb). Conv's fused backward packs each sample's dy block with
/// this — the dx GEMM consumes masked dy without a separate mask pass.
inline void pack_b_mask(const float* b, const float* mask, std::size_t ldb,
                        std::size_t k, std::size_t cols, float* pb) {
  detail::pack_b_slice_impl(detail::MaskedSrc{b, mask}, ldb, k, cols, pb);
}

/// Pack one kc-length k slice of Bᵀ into NR strips with strip stride kc·NR:
/// logical B[p, j] = src[j·ldb + p], source row-major (cols_total × k).
/// `b` points at the slice's first logical element — callers packing logical
/// rows [p0, p0+kc) of columns [c0, …) pass `b + c0·ldb + p0`.
inline void pack_b_trans_slice(const float* b, std::size_t ldb,
                               std::size_t kc, std::size_t cols, float* pb) {
  for (std::size_t s = 0; s < cols; s += kNR) {
    const std::size_t nr = std::min(kNR, cols - s);
    for (std::size_t j = 0; j < nr; ++j) {
      const float* src = b + (s + j) * ldb;
      for (std::size_t p = 0; p < kc; ++p) pb[p * kNR + j] = src[p];
    }
    for (std::size_t j = nr; j < kNR; ++j) {
      for (std::size_t p = 0; p < kc; ++p) pb[p * kNR + j] = 0.0f;
    }
    pb += kNR * kc;
  }
}

/// Pack k×`cols` of Bᵀ into NR strips: the full panel is the kc == k slice.
inline void pack_b_trans(const float* b, std::size_t ldb, std::size_t k,
                         std::size_t cols, float* pb) {
  pack_b_trans_slice(b, ldb, k, cols, pb);
}

/// The batch-norm eval affine, factored so the GEMM epilogue fold and
/// BatchNorm2d's own eval loop run the *same expression tree* — identical
/// FMA contraction, hence bitwise-identical results whether BN runs as its
/// own layer pass or fused into the conv write-back.
inline float bn_affine(float v, float gamma, float mean, float inv_std,
                       float shift) {
  return gamma * (v - mean) * inv_std + shift;
}

/// Write-back transform applied when a tile is *finalized* (last k block).
/// `bias` (and the bn_* arrays) are indexed relative to the block the
/// macrokernel writes — callers handing the macrokernel a sub-block of C
/// offset the pointers themselves via shifted().
struct Epilogue {
  enum class Kind : unsigned char {
    kNone,        ///< c = alpha·acc + beta·c
    kBias,        ///< … + bias[row] or bias[col]
    kBiasRelu,    ///< … then max(·, 0)
    kBiasBn,      ///< … + bias, then the frozen batch-norm affine
    kBiasBnRelu,  ///< … + bias, bn affine, then max(·, 0)
  };
  Kind kind = Kind::kNone;
  bool per_row = true;  ///< bias[i] per C row when true, bias[j] per column
  const float* bias = nullptr;
  /// Frozen batch-norm operands (kBiasBn/kBiasBnRelu only), indexed like
  /// bias: v ← bn_gamma[i]·(v − bn_mean[i])·bn_inv_std[i] + bn_shift[i].
  /// inv_std is precomputed as 1/sqrt(running_var + eps) at freeze time so
  /// the fold matches BatchNorm2d's eval arithmetic exactly (see bn_affine).
  const float* bn_gamma = nullptr;
  const float* bn_mean = nullptr;
  const float* bn_inv_std = nullptr;
  const float* bn_shift = nullptr;

  /// The same epilogue re-based for a sub-block starting `offset` rows
  /// (per_row) or columns (!per_row) into the parent block: every active
  /// per-element array advances together.
  [[nodiscard]] Epilogue shifted(std::size_t offset) const {
    Epilogue ep = *this;
    if (ep.kind == Kind::kNone || offset == 0) return ep;
    ep.bias += offset;
    if (ep.bn_gamma != nullptr) {
      ep.bn_gamma += offset;
      ep.bn_mean += offset;
      ep.bn_inv_std += offset;
      ep.bn_shift += offset;
    }
    return ep;
  }
};

namespace detail {

/// Tile height of the reduced register tile used for short edge strips:
/// a GEMM whose tail strip holds ≤ kSmallMR rows (the paper's batch-16
/// dense layers end in one) skips the padded rows' FMA issue entirely.
inline constexpr std::size_t kSmallMR = 4;

/// The register tile: acc[i][j] = Σ_p pa[p·MR+i] · pb[p·NR+j], folded in
/// ascending p with one accumulator per element. The constant trip counts
/// let the compiler fully unroll i, vectorize j, and keep acc in registers.
/// Rows is the accumulator height (kMR, or kSmallMR for short tail strips —
/// the packed stride stays kMR either way); each element's fold sequence is
/// identical under both, so the tile height is invisible in the result.
template <std::size_t Rows>
inline void accumulate(std::size_t kc, const float* pa, const float* pb,
                       float acc[Rows][kNR]) {
  for (std::size_t p = 0; p < kc; ++p, pa += kMR, pb += kNR) {
    for (std::size_t i = 0; i < Rows; ++i) {
      const float a = pa[i];
      for (std::size_t j = 0; j < kNR; ++j) acc[i][j] += a * pb[j];
    }
  }
}

/// Resume a parked fold: seed the valid mr×nr corner of the accumulator
/// tile from the raw partial sums a previous k block stored in C. Padding
/// lanes stay zero (their strips are zero-padded, so they fold zeros).
/// Interior tiles take the constant-bound loops so the compiler emits
/// full-width vector moves; edge tiles mask to the valid corner.
template <std::size_t Rows>
inline void load_partial(const float* c, std::size_t ldc, std::size_t mr,
                         std::size_t nr, float acc[Rows][kNR]) {
  if (mr == Rows && nr == kNR) {
    for (std::size_t i = 0; i < Rows; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) acc[i][j] = c[i * ldc + j];
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) acc[i][j] = c[i * ldc + j];
  }
}

/// Park the fold: store the raw accumulators (no alpha/beta/epilogue) so the
/// next k block can continue the exact per-element sequence — a float32
/// store/reload is lossless.
template <std::size_t Rows>
inline void store_partial(const float acc[Rows][kNR], float* c,
                          std::size_t ldc, std::size_t mr, std::size_t nr) {
  if (mr == Rows && nr == kNR) {
    for (std::size_t i = 0; i < Rows; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) c[i * ldc + j] = acc[i][j];
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] = acc[i][j];
  }
}

/// Final write-back element: one `alpha·acc (+ beta·c)`, then the epilogue.
inline float finalize_element(float acc, float alpha, float beta,
                              const float* c_elem, const Epilogue& ep,
                              std::size_t bias_index) {
  float v = alpha * acc;
  if (beta != 0.0f) v += beta * *c_elem;
  if (ep.kind != Epilogue::Kind::kNone) {
    v += ep.bias[bias_index];
    if (ep.kind == Epilogue::Kind::kBiasBn ||
        ep.kind == Epilogue::Kind::kBiasBnRelu) {
      v = bn_affine(v, ep.bn_gamma[bias_index], ep.bn_mean[bias_index],
                    ep.bn_inv_std[bias_index], ep.bn_shift[bias_index]);
    }
    const bool relu = ep.kind == Epilogue::Kind::kBiasRelu ||
                      ep.kind == Epilogue::Kind::kBiasBnRelu;
    if (relu && !(v > 0.0f)) v = 0.0f;
  }
  return v;
}

/// Final write-back for the tile. `row0`/`col0` locate the tile inside the
/// macrokernel's block for bias indexing. Interior tiles run constant-bound
/// loops (the beta/epilogue branches are loop-invariant and unswitch).
template <std::size_t Rows>
inline void store_final(const float acc[Rows][kNR], float alpha, float beta,
                        float* c, std::size_t ldc, std::size_t mr,
                        std::size_t nr, const Epilogue& ep, std::size_t row0,
                        std::size_t col0) {
  if (mr == Rows && nr == kNR) {
    for (std::size_t i = 0; i < Rows; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) {
        c[i * ldc + j] =
            finalize_element(acc[i][j], alpha, beta, &c[i * ldc + j], ep,
                             ep.per_row ? row0 + i : col0 + j);
      }
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    for (std::size_t j = 0; j < nr; ++j) {
      c[i * ldc + j] =
          finalize_element(acc[i][j], alpha, beta, &c[i * ldc + j], ep,
                           ep.per_row ? row0 + i : col0 + j);
    }
  }
}

template <std::size_t Rows>
inline void tile_kernel(std::size_t kc, float alpha, const float* pa,
                        const float* pb, float beta, float* c,
                        std::size_t ldc, std::size_t mr, std::size_t nr,
                        bool resume, bool finalize, const Epilogue& ep,
                        std::size_t row0, std::size_t col0) {
  float acc[Rows][kNR] = {};
  if (resume) load_partial<Rows>(c, ldc, mr, nr, acc);
  accumulate<Rows>(kc, pa, pb, acc);
  if (finalize) {
    store_final<Rows>(acc, alpha, beta, c, ldc, mr, nr, ep, row0, col0);
  } else {
    store_partial<Rows>(acc, c, ldc, mr, nr);
  }
}

}  // namespace detail

/// Microkernel over one k slice of a tile: accumulate kc steps (resuming
/// from raw partials in C when `resume`), then either park the fold
/// (`finalize == false`) or apply alpha/beta and the epilogue. Write-back is
/// masked to the valid mr×nr corner; the accumulation arithmetic is
/// identical for interior and edge tiles, and a short tail strip (mr ≤
/// kSmallMR) runs on a reduced accumulator tile — same per-element fold,
/// no FMA issue spent on padded rows. beta != 0 requires a single-block
/// sweep (resume == false && finalize == true) — the partial-parking scheme
/// uses C as scratch and would clobber the accumuland.
inline void kernel(std::size_t kc, float alpha, const float* pa,
                   const float* pb, float beta, float* c, std::size_t ldc,
                   std::size_t mr, std::size_t nr, bool resume, bool finalize,
                   const Epilogue& ep, std::size_t row0, std::size_t col0) {
  if (kMR > detail::kSmallMR && mr <= detail::kSmallMR) {
    detail::tile_kernel<detail::kSmallMR>(kc, alpha, pa, pb, beta, c, ldc,
                                          mr, nr, resume, finalize, ep, row0,
                                          col0);
  } else {
    detail::tile_kernel<kMR>(kc, alpha, pa, pb, beta, c, ldc, mr, nr, resume,
                             finalize, ep, row0, col0);
  }
}

/// One k block of the macrokernel sweep: kc accumulation steps over every
/// tile of the rows×cols C block, with independent A/B strip strides so the
/// operands may be full panels *or* freshly packed slices. `pa` points at
/// strip 0's first element of this slice (a full-panel caller passes
/// `pa_full + p0·kMR`); strip s sits at `pa + s·kMR·a_stride`, so a full
/// panel passes a_stride = k and a slice-packed operand a_stride = kc.
/// Likewise `pb` / `b_stride` with kNR strips. Within the block, column
/// strips are the outer loop so one B strip slice is reused across every row
/// strip before the next is touched. resume/finalize park or finalize the
/// per-tile fold exactly as in kernel(); beta != 0 requires the single-block
/// form (resume == false && finalize == true).
inline void macrokernel_block(std::size_t rows, std::size_t cols,
                              std::size_t kc, float alpha, const float* pa,
                              std::size_t a_stride, const float* pb,
                              std::size_t b_stride, float beta, float* c,
                              std::size_t ldc, bool resume, bool finalize,
                              const Epilogue& ep = {}) {
  for (std::size_t jr = 0; jr < cols; jr += kNR) {
    const std::size_t nr = std::min(kNR, cols - jr);
    const float* b_strip = pb + jr * b_stride;
    for (std::size_t ir = 0; ir < rows; ir += kMR) {
      const std::size_t mr = std::min(kMR, rows - ir);
      const float* a_strip = pa + ir * a_stride;
      kernel(kc, alpha, a_strip, b_strip, beta, c + ir * ldc + jr, ldc, mr,
             nr, resume, finalize, ep, ir, jr);
    }
  }
}

/// Macrokernel: sweep a packed A panel (`rows` logical rows) against a packed
/// B panel (`cols` logical columns), writing the rows×cols block of C at `c`
/// (row stride ldc), in KC-length k blocks. The k-block loop is outermost so
/// one block's A strip slices (MR·kc floats each) stay L1-resident across
/// every column strip and a B strip slice (NR·kc floats) is reused from L2
/// across every row strip — the unblocked sweep instead streamed full k·NR
/// strips per row strip.
///
/// Tile order is irrelevant to the result (tiles are disjoint) and the block
/// length is irrelevant too: blocks park raw per-element partials in C and
/// resume them, reproducing the single ascending-k fold bitwise for every
/// `kc_block` (sweepable by tests; gemm.cpp always passes the kKC default).
/// beta != 0 forces a single block — C is the accumuland, not scratch.
/// Interleaved drivers instead call macrokernel_block per slice, packing
/// each B slice just before its sweep — same fold, bitwise-equal result.
inline void macrokernel(std::size_t rows, std::size_t cols, std::size_t k,
                        float alpha, const float* pa, const float* pb,
                        float beta, float* c, std::size_t ldc,
                        const Epilogue& ep = {},
                        std::size_t kc_block = kKC) {
  const std::size_t kc_eff =
      (beta != 0.0f || kc_block == 0) ? std::max<std::size_t>(k, 1)
                                      : kc_block;
  const std::size_t blocks = k == 0 ? 1 : (k + kc_eff - 1) / kc_eff;
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t p0 = blk * kc_eff;
    const std::size_t p1 = std::min(p0 + kc_eff, k);
    // Strip index · kNR·k locates a strip; p0·kNR the k slice within it.
    macrokernel_block(rows, cols, p1 - p0, alpha, pa + p0 * kMR, k,
                      pb + p0 * kNR, k, beta, c, ldc, blk > 0,
                      blk + 1 == blocks, ep);
  }
}

// ---------------------------------------------------------------------------
// Int8 quantized sibling (quantize-on-pack).
//
// The q8 kernels reuse the f32 panel geometry (kMR×kNR tiles) but carry the
// operands as symmetrically quantized integers: A packs as offset-binary u8
// (stored byte = q + 128, q ∈ [-127, 127], one scale per *logical* row) and
// B packs as s8 (q ∈ [-kQmaxB, kQmaxB], one scale per *logical* column).
// Scales are pure functions of the logical operand rows/columns — never of
// panel boundaries — so any row/column split packs the identical bytes and
// the determinism contract holds for free.
//
// The accumulation is exact int32 arithmetic (no rounding anywhere between
// quantize and dequantize), so the fold order is irrelevant to the result:
// bitwise invariance across thread count, KC, and pack strategy is a property
// of the number system, not of a carefully pinned fold sequence. The u8
// offset is compensated at write-back: with stored a' = q_a + 128,
//   Σ a'·q_b = Σ q_a·q_b + 128·Σ q_b = Σ q_a·q_b + comp[j],
// where comp[j] = 128·Σ_p q_b[p][j] is computed during pack_b. Dequant +
// alpha/beta + bias(+relu) fuse into the tile store:
//   v = alpha · (scale_a[i]·scale_b[j]) · float(acc − comp[j])  [+ beta·c]
//   [+ bias; relu]
//
// Quantization rounds to nearest-even (std::nearbyintf under the default
// FE_TONEAREST mode — pinned by the property harness), then clamps to the
// symmetric range.
//
// kernels consume k in groups of kKU = 4 (the VPDPBUSD granularity); panels
// round k up to a multiple of 4 and pad with q = 0 (byte 128 for A, 0 for B
// — both dequantize to exact zero contributions). ISA tiers:
//   AVX-512-VNNI  _mm512_dpbusd_epi32 (non-saturating — exact; the
//                 saturating dpbusds variant would clip long accumulations)
//   AVX-512-BW /  maddubs+madd: the u8·s8 pair sum saturates s16 at
//   AVX2          255·127·2 > 32767, so these tiers quantize B to ±63
//                 (255·63·2 = 32130 fits) — exactness is preserved and the
//                 determinism contract is per-binary, so an ISA-dependent
//                 qmax is fine.
//   scalar        plain integer loops, exact everywhere.
// ---------------------------------------------------------------------------

namespace q8 {

/// k-group width: kernels consume k in groups of 4 bytes per operand lane
/// (the VPDPBUSD granularity); packed panels round k up to this.
inline constexpr std::size_t kKU = 4;

/// Symmetric quantization bound for A rows (stored offset-binary as u8).
inline constexpr int kQmaxA = 127;

/// Symmetric quantization bound for B columns — reduced to ±63 on the
/// maddubs tiers so the s16 pair sum cannot saturate (see header comment).
#if defined(__AVX512VNNI__)
inline constexpr int kQmaxB = 127;
#elif defined(__AVX512BW__) || defined(__AVX2__)
inline constexpr int kQmaxB = 63;
#else
inline constexpr int kQmaxB = 127;
#endif

/// k rounded up to the kernel's 4-byte group width.
[[nodiscard]] inline constexpr std::size_t padded_k(std::size_t k) {
  return round_up(k, kKU);
}

/// Bytes needed for a packed quantized A panel of `rows` rows × k.
[[nodiscard]] inline constexpr std::size_t packed_a_bytes(std::size_t rows,
                                                          std::size_t k) {
  return round_up(rows, kMR) * padded_k(k);
}

/// Bytes needed for a packed quantized B panel of k × `cols`.
[[nodiscard]] inline constexpr std::size_t packed_b_bytes(std::size_t k,
                                                          std::size_t cols) {
  return round_up(cols, kNR) * padded_k(k);
}

/// Symmetric scale for a max-abs bound: dequant = scale·q, q ∈ [-qmax, qmax].
/// An all-zero row/column gets scale 1 (every element quantizes to 0).
[[nodiscard]] inline float scale_for(float max_abs, int qmax) {
  return max_abs > 0.0f ? max_abs / static_cast<float>(qmax) : 1.0f;
}

/// Round-to-nearest-even quantize against a precomputed reciprocal scale.
/// std::nearbyintf honours the ambient rounding mode; the library never
/// changes it from the C++ default FE_TONEAREST, and the property harness
/// pins the tie behaviour (x.5 → even).
[[nodiscard]] inline int quantize(float x, float inv_scale, int qmax) {
  const int q = static_cast<int>(std::nearbyintf(x * inv_scale));
  return std::clamp(q, -qmax, qmax);
}

namespace detail {

/// Pack + quantize a logical rows×k A operand into MR strips of kKU-grouped
/// offset-binary bytes: strip s, k group g holds
///   pa[s·MR·kp + g·MR + i·kKU + u] = u8(q(A[s·MR+i, g+u]) + 128)
/// with kp = padded_k(k). Row scales land in scale_a[0..rows). `at(i, p)`
/// reads logical A — scales depend only on it, never on strip boundaries.
template <typename At>
inline void pack_a_quant_impl(At at, std::size_t rows, std::size_t k,
                              std::uint8_t* pa, float* scale_a) {
  const std::size_t kp = padded_k(k);
  for (std::size_t s = 0; s < rows; s += kMR) {
    const std::size_t mr = std::min(kMR, rows - s);
    std::uint8_t* dst = pa + s * kp;
    float inv[kMR] = {};
    for (std::size_t i = 0; i < mr; ++i) {
      float m = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        m = std::max(m, std::fabs(at(s + i, p)));
      }
      const float sc = scale_for(m, kQmaxA);
      scale_a[s + i] = sc;
      inv[i] = 1.0f / sc;
    }
    for (std::size_t g = 0; g < kp; g += kKU) {
      for (std::size_t i = 0; i < kMR; ++i) {
        for (std::size_t u = 0; u < kKU; ++u) {
          const std::size_t p = g + u;
          const int q = (i < mr && p < k) ? quantize(at(s + i, p), inv[i],
                                                     kQmaxA)
                                          : 0;
          dst[g * kMR + i * kKU + u] = static_cast<std::uint8_t>(q + 128);
        }
      }
    }
  }
}

/// Pack + quantize a logical k×cols B operand into NR strips of kKU-grouped
/// s8 bytes: strip s, k group g holds
///   pb[s·NR·kp + g·NR + j·kKU + u] = s8(q(B[g+u, s·NR+j]))
/// Column scales land in scale_b[0..cols) and the u8-offset compensation
/// comp[j] = 128·Σ_p q_b[p][j] in comp[0..cols).
template <typename Bt>
inline void pack_b_quant_impl(Bt bt, std::size_t k, std::size_t cols,
                              std::int8_t* pb, float* scale_b,
                              std::int32_t* comp) {
  const std::size_t kp = padded_k(k);
  for (std::size_t s = 0; s < cols; s += kNR) {
    const std::size_t nr = std::min(kNR, cols - s);
    std::int8_t* dst = pb + s * kp;
    float inv[kNR] = {};
    for (std::size_t j = 0; j < nr; ++j) {
      float m = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        m = std::max(m, std::fabs(bt(p, s + j)));
      }
      const float sc = scale_for(m, kQmaxB);
      scale_b[s + j] = sc;
      inv[j] = 1.0f / sc;
    }
    std::int32_t sum[kNR] = {};
    for (std::size_t g = 0; g < kp; g += kKU) {
      for (std::size_t j = 0; j < kNR; ++j) {
        for (std::size_t u = 0; u < kKU; ++u) {
          const std::size_t p = g + u;
          const int q = (j < nr && p < k) ? quantize(bt(p, s + j), inv[j],
                                                     kQmaxB)
                                          : 0;
          dst[g * kNR + j * kKU + u] = static_cast<std::int8_t>(q);
          sum[j] += q;
        }
      }
    }
    for (std::size_t j = 0; j < nr; ++j) comp[s + j] = 128 * sum[j];
  }
}

#if defined(__AVX512F__)

/// Vectorized row-major (Trans::kNo) sibling of pack_a_quant_impl. The
/// scalar impl spends a libm nearbyintf call per element — ~20× the cost of
/// the integer kernel it feeds — so the contiguous layout gets a SIMD pass:
/// byte-for-byte the same panel, because max (exact, order-free) gives the
/// same scales, `_mm512_cvtps_epi32` rounds per the never-changed MXCSR
/// nearest-even mode (the same rule std::nearbyintf follows), and the clamp
/// bounds are identical. Transposed operands (strided reads) keep the
/// generic path.
inline void pack_a_quant_rowmajor(const float* a, std::size_t lda,
                                  std::size_t rows, std::size_t k,
                                  std::uint8_t* pa, float* scale_a) {
  const std::size_t kp = padded_k(k);
  const __m512i lo = _mm512_set1_epi32(-kQmaxA);
  const __m512i hi = _mm512_set1_epi32(kQmaxA);
  const __m512i off = _mm512_set1_epi32(128);
  for (std::size_t s = 0; s < rows; s += kMR) {
    const std::size_t mr = std::min(kMR, rows - s);
    std::uint8_t* dst = pa + s * kp;
    // Pad rows (i ≥ mr) and the k-pad groups all hold q = 0, byte 128.
    std::memset(dst, 0x80, kMR * kp);
    for (std::size_t i = 0; i < mr; ++i) {
      const float* src = a + (s + i) * lda;
      __m512 vm = _mm512_setzero_ps();
      std::size_t p = 0;
      for (; p + 16 <= k; p += 16) {
        vm = _mm512_max_ps(vm, _mm512_abs_ps(_mm512_loadu_ps(src + p)));
      }
      float m = _mm512_reduce_max_ps(vm);
      for (; p < k; ++p) m = std::max(m, std::fabs(src[p]));
      const float sc = scale_for(m, kQmaxA);
      scale_a[s + i] = sc;
      const float inv = 1.0f / sc;
      const __m512 vinv = _mm512_set1_ps(inv);
      std::uint8_t* row_dst = dst + i * kKU;
      for (p = 0; p + 16 <= k; p += 16) {
        __m512i q =
            _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(src + p), vinv));
        q = _mm512_add_epi32(_mm512_max_epi32(lo, _mm512_min_epi32(hi, q)),
                             off);
        alignas(16) std::uint32_t words[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(words),
                        _mm512_cvtepi32_epi8(q));
        std::uint8_t* group = row_dst + (p / kKU) * kMR * kKU;
        for (std::size_t t = 0; t < 4; ++t) {
          std::memcpy(group + t * kMR * kKU, &words[t], sizeof words[t]);
        }
      }
      for (; p < k; ++p) {
        const int q = quantize(src[p], inv, kQmaxA);
        row_dst[(p / kKU) * kMR * kKU + (p % kKU)] =
            static_cast<std::uint8_t>(q + 128);
      }
    }
  }
}

/// Vectorized row-major (Trans::kNo) sibling of pack_b_quant_impl: the k
/// rows of a kNR-column strip are contiguous loads, per-column lanes carry
/// max-abs / quantize / compensation sums, and each kKU group's bytes are
/// assembled in-register (byte u of column j's int32 word is exactly panel
/// byte g·kNR + j·kKU + u). Same byte-for-byte argument as pack_a's fast
/// path; partial tail strips fall back to the generic impl.
inline void pack_b_quant_rowmajor(const float* b, std::size_t ldb,
                                  std::size_t k, std::size_t cols,
                                  std::int8_t* pb, float* scale_b,
                                  std::int32_t* comp) {
  static_assert(kNR == 32, "fast B pack assumes two zmm lanes per strip");
  const std::size_t kp = padded_k(k);
  const __m512i lo = _mm512_set1_epi32(-kQmaxB);
  const __m512i hi = _mm512_set1_epi32(kQmaxB);
  const __m512i byte_mask = _mm512_set1_epi32(0xFF);
  std::size_t s = 0;
  for (; s + kNR <= cols; s += kNR) {
    std::int8_t* dst = pb + s * kp;
    const float* base = b + s;
    __m512 vm0 = _mm512_setzero_ps();
    __m512 vm1 = _mm512_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
      const float* row = base + p * ldb;
      vm0 = _mm512_max_ps(vm0, _mm512_abs_ps(_mm512_loadu_ps(row)));
      vm1 = _mm512_max_ps(vm1, _mm512_abs_ps(_mm512_loadu_ps(row + 16)));
    }
    alignas(64) float max_abs[kNR];
    _mm512_store_ps(max_abs, vm0);
    _mm512_store_ps(max_abs + 16, vm1);
    alignas(64) float invs[kNR];
    for (std::size_t j = 0; j < kNR; ++j) {
      const float sc = scale_for(max_abs[j], kQmaxB);
      scale_b[s + j] = sc;
      invs[j] = 1.0f / sc;
    }
    const __m512 vinv0 = _mm512_load_ps(invs);
    const __m512 vinv1 = _mm512_load_ps(invs + 16);
    __m512i vsum0 = _mm512_setzero_si512();
    __m512i vsum1 = _mm512_setzero_si512();
    for (std::size_t g = 0; g < kp; g += kKU) {
      __m512i w0 = _mm512_setzero_si512();
      __m512i w1 = _mm512_setzero_si512();
      for (std::size_t u = 0; u < kKU && g + u < k; ++u) {
        const float* row = base + (g + u) * ldb;
        __m512i q0 = _mm512_cvtps_epi32(
            _mm512_mul_ps(_mm512_loadu_ps(row), vinv0));
        __m512i q1 = _mm512_cvtps_epi32(
            _mm512_mul_ps(_mm512_loadu_ps(row + 16), vinv1));
        q0 = _mm512_max_epi32(lo, _mm512_min_epi32(hi, q0));
        q1 = _mm512_max_epi32(lo, _mm512_min_epi32(hi, q1));
        vsum0 = _mm512_add_epi32(vsum0, q0);
        vsum1 = _mm512_add_epi32(vsum1, q1);
        const auto shift = static_cast<unsigned>(8 * u);
        w0 = _mm512_or_si512(
            w0, _mm512_slli_epi32(_mm512_and_si512(q0, byte_mask), shift));
        w1 = _mm512_or_si512(
            w1, _mm512_slli_epi32(_mm512_and_si512(q1, byte_mask), shift));
      }
      _mm512_storeu_si512(dst + g * kNR, w0);
      _mm512_storeu_si512(dst + g * kNR + 64, w1);
    }
    alignas(64) std::int32_t sums[kNR];
    _mm512_store_si512(sums, vsum0);
    _mm512_store_si512(sums + 16, vsum1);
    for (std::size_t j = 0; j < kNR; ++j) comp[s + j] = 128 * sums[j];
  }
  if (s < cols) {
    pack_b_quant_impl(
        [b, ldb, s](std::size_t p, std::size_t j) {
          return b[p * ldb + (s + j)];
        },
        k, cols - s, pb + s * kp, scale_b + s, comp + s);
  }
}

/// Vectorized Bᵀ sibling (logical B[p, j] = src[j·ldb + p]): each logical
/// *column* j is a contiguous source row, so this is pack_a's fast path
/// with signed bytes, a kNR·kKU inter-group stride, and per-column
/// compensation sums (int32 lane adds are exact, so the reduce order
/// cannot change comp). This is the Dense-forward (y = x·Wᵀ) operand.
inline void pack_b_trans_quant_rowmajor(const float* b, std::size_t ldb,
                                        std::size_t k, std::size_t cols,
                                        std::int8_t* pb, float* scale_b,
                                        std::int32_t* comp) {
  const std::size_t kp = padded_k(k);
  const __m512i lo = _mm512_set1_epi32(-kQmaxB);
  const __m512i hi = _mm512_set1_epi32(kQmaxB);
  for (std::size_t s = 0; s < cols; s += kNR) {
    const std::size_t nr = std::min(kNR, cols - s);
    std::int8_t* dst = pb + s * kp;
    std::memset(dst, 0, kNR * kp);  // pad columns and pad k-groups hold q = 0
    for (std::size_t j = 0; j < nr; ++j) {
      const float* src = b + (s + j) * ldb;
      __m512 vm = _mm512_setzero_ps();
      std::size_t p = 0;
      for (; p + 16 <= k; p += 16) {
        vm = _mm512_max_ps(vm, _mm512_abs_ps(_mm512_loadu_ps(src + p)));
      }
      float m = _mm512_reduce_max_ps(vm);
      for (; p < k; ++p) m = std::max(m, std::fabs(src[p]));
      const float sc = scale_for(m, kQmaxB);
      scale_b[s + j] = sc;
      const float inv = 1.0f / sc;
      const __m512 vinv = _mm512_set1_ps(inv);
      std::int8_t* col_dst = dst + j * kKU;
      std::int32_t sum = 0;
      for (p = 0; p + 16 <= k; p += 16) {
        __m512i q =
            _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(src + p), vinv));
        q = _mm512_max_epi32(lo, _mm512_min_epi32(hi, q));
        sum += _mm512_reduce_add_epi32(q);
        alignas(16) std::uint32_t words[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(words),
                        _mm512_cvtepi32_epi8(q));
        std::int8_t* group = col_dst + (p / kKU) * kNR * kKU;
        for (std::size_t t = 0; t < 4; ++t) {
          std::memcpy(group + t * kNR * kKU, &words[t], sizeof words[t]);
        }
      }
      for (; p < k; ++p) {
        const int q = quantize(src[p], inv, kQmaxB);
        sum += q;
        col_dst[(p / kKU) * kNR * kKU + (p % kKU)] =
            static_cast<std::int8_t>(q);
      }
      comp[s + j] = 128 * sum;
    }
  }
}

#endif  // __AVX512F__

/// The integer register tile: acc[i][j] accumulates the exact int32 dot of
/// strip row i's u8 bytes against strip column j's s8 bytes over the whole
/// padded k. Exact integer arithmetic makes the fold order irrelevant — the
/// ISA tiers below are free to reassociate without breaking bitwise
/// reproducibility (the contract is per-binary).
template <std::size_t Rows>
inline void accumulate_q(std::size_t kp, const std::uint8_t* pa,
                         const std::int8_t* pb, std::int32_t acc[Rows][kNR]) {
#if defined(__AVX512VNNI__)
  static_assert(kNR == 32, "VNNI tier assumes two zmm accumulators per row");
  __m512i vacc[Rows][2];
  for (std::size_t i = 0; i < Rows; ++i) {
    vacc[i][0] = _mm512_setzero_si512();
    vacc[i][1] = _mm512_setzero_si512();
  }
  for (std::size_t g = 0; g < kp; g += kKU, pa += kMR * kKU,
                   pb += kNR * kKU) {
    const __m512i b0 = _mm512_loadu_si512(pb);
    const __m512i b1 = _mm512_loadu_si512(pb + 64);
    for (std::size_t i = 0; i < Rows; ++i) {
      std::int32_t a4;
      std::memcpy(&a4, pa + i * kKU, sizeof a4);
      const __m512i av = _mm512_set1_epi32(a4);
      vacc[i][0] = _mm512_dpbusd_epi32(vacc[i][0], av, b0);
      vacc[i][1] = _mm512_dpbusd_epi32(vacc[i][1], av, b1);
    }
  }
  for (std::size_t i = 0; i < Rows; ++i) {
    _mm512_storeu_si512(&acc[i][0], vacc[i][0]);
    _mm512_storeu_si512(&acc[i][16], vacc[i][1]);
  }
#elif defined(__AVX512BW__)
  static_assert(kNR == 32, "BW tier assumes two zmm accumulators per row");
  const __m512i ones = _mm512_set1_epi16(1);
  __m512i vacc[Rows][2];
  for (std::size_t i = 0; i < Rows; ++i) {
    vacc[i][0] = _mm512_setzero_si512();
    vacc[i][1] = _mm512_setzero_si512();
  }
  for (std::size_t g = 0; g < kp; g += kKU, pa += kMR * kKU,
                   pb += kNR * kKU) {
    const __m512i b0 = _mm512_loadu_si512(pb);
    const __m512i b1 = _mm512_loadu_si512(pb + 64);
    for (std::size_t i = 0; i < Rows; ++i) {
      std::int32_t a4;
      std::memcpy(&a4, pa + i * kKU, sizeof a4);
      const __m512i av = _mm512_set1_epi32(a4);
      vacc[i][0] = _mm512_add_epi32(
          vacc[i][0],
          _mm512_madd_epi16(_mm512_maddubs_epi16(av, b0), ones));
      vacc[i][1] = _mm512_add_epi32(
          vacc[i][1],
          _mm512_madd_epi16(_mm512_maddubs_epi16(av, b1), ones));
    }
  }
  for (std::size_t i = 0; i < Rows; ++i) {
    _mm512_storeu_si512(&acc[i][0], vacc[i][0]);
    _mm512_storeu_si512(&acc[i][16], vacc[i][1]);
  }
#elif defined(__AVX2__)
  static_assert(kNR == 16, "AVX2 tier assumes two ymm accumulators per row");
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i vacc[Rows][2];
  for (std::size_t i = 0; i < Rows; ++i) {
    vacc[i][0] = _mm256_setzero_si256();
    vacc[i][1] = _mm256_setzero_si256();
  }
  for (std::size_t g = 0; g < kp; g += kKU, pa += kMR * kKU,
                   pb += kNR * kKU) {
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + 32));
    for (std::size_t i = 0; i < Rows; ++i) {
      std::int32_t a4;
      std::memcpy(&a4, pa + i * kKU, sizeof a4);
      const __m256i av = _mm256_set1_epi32(a4);
      vacc[i][0] = _mm256_add_epi32(
          vacc[i][0],
          _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
      vacc[i][1] = _mm256_add_epi32(
          vacc[i][1],
          _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
    }
  }
  for (std::size_t i = 0; i < Rows; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&acc[i][0]), vacc[i][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&acc[i][8]), vacc[i][1]);
  }
#else
  for (std::size_t g = 0; g < kp; g += kKU, pa += kMR * kKU,
                   pb += kNR * kKU) {
    for (std::size_t i = 0; i < Rows; ++i) {
      for (std::size_t j = 0; j < kNR; ++j) {
        std::int32_t dot = 0;
        for (std::size_t u = 0; u < kKU; ++u) {
          dot += static_cast<std::int32_t>(pa[i * kKU + u]) *
                 static_cast<std::int32_t>(pb[j * kKU + u]);
        }
        acc[i][j] += dot;
      }
    }
  }
#endif
}

/// Dequantized final write-back: subtract the u8-offset compensation, scale
/// by the row·column scale product, then the shared alpha/beta/epilogue
/// element transform. scale_a/scale_b/comp are tile-relative (callers offset
/// by ir/jr like the bias pointer).
template <std::size_t Rows>
inline void store_final_q(const std::int32_t acc[Rows][kNR], float alpha,
                          float beta, float* c, std::size_t ldc,
                          std::size_t mr, std::size_t nr,
                          const float* scale_a, const float* scale_b,
                          const std::int32_t* comp, const Epilogue& ep,
                          std::size_t row0, std::size_t col0) {
  for (std::size_t i = 0; i < mr; ++i) {
    const float sa = scale_a[i];
    for (std::size_t j = 0; j < nr; ++j) {
      const float deq =
          sa * scale_b[j] * static_cast<float>(acc[i][j] - comp[j]);
      c[i * ldc + j] =
          micro::detail::finalize_element(deq, alpha, beta, &c[i * ldc + j],
                                          ep, ep.per_row ? row0 + i
                                                         : col0 + j);
    }
  }
}

template <std::size_t Rows>
inline void tile_kernel_q(std::size_t kp, float alpha,
                          const std::uint8_t* pa, const std::int8_t* pb,
                          float beta, float* c, std::size_t ldc,
                          std::size_t mr, std::size_t nr,
                          const float* scale_a, const float* scale_b,
                          const std::int32_t* comp, const Epilogue& ep,
                          std::size_t row0, std::size_t col0) {
  std::int32_t acc[Rows][kNR] = {};
  accumulate_q<Rows>(kp, pa, pb, acc);
  store_final_q<Rows>(acc, alpha, beta, c, ldc, mr, nr, scale_a, scale_b,
                      comp, ep, row0, col0);
}

}  // namespace detail

/// Pack + quantize `rows`×k of A (row-major, leading dimension lda ≥ k).
inline void pack_a(const float* a, std::size_t lda, std::size_t rows,
                   std::size_t k, std::uint8_t* pa, float* scale_a) {
#if defined(__AVX512F__)
  detail::pack_a_quant_rowmajor(a, lda, rows, k, pa, scale_a);
#else
  detail::pack_a_quant_impl(
      [a, lda](std::size_t i, std::size_t p) { return a[i * lda + p]; },
      rows, k, pa, scale_a);
#endif
}

/// Pack + quantize `rows`×k of Aᵀ: logical A[i, p] = src[p·lda + i].
inline void pack_a_trans(const float* a, std::size_t lda, std::size_t rows,
                         std::size_t k, std::uint8_t* pa, float* scale_a) {
  detail::pack_a_quant_impl(
      [a, lda](std::size_t i, std::size_t p) { return a[p * lda + i]; },
      rows, k, pa, scale_a);
}

/// Pack + quantize k×`cols` of B (row-major, leading dimension ldb ≥ cols).
inline void pack_b(const float* b, std::size_t ldb, std::size_t k,
                   std::size_t cols, std::int8_t* pb, float* scale_b,
                   std::int32_t* comp) {
#if defined(__AVX512F__)
  detail::pack_b_quant_rowmajor(b, ldb, k, cols, pb, scale_b, comp);
#else
  detail::pack_b_quant_impl(
      [b, ldb](std::size_t p, std::size_t j) { return b[p * ldb + j]; }, k,
      cols, pb, scale_b, comp);
#endif
}

/// Pack + quantize k×`cols` of Bᵀ: logical B[p, j] = src[j·ldb + p].
inline void pack_b_trans(const float* b, std::size_t ldb, std::size_t k,
                         std::size_t cols, std::int8_t* pb, float* scale_b,
                         std::int32_t* comp) {
#if defined(__AVX512F__)
  detail::pack_b_trans_quant_rowmajor(b, ldb, k, cols, pb, scale_b, comp);
#else
  detail::pack_b_quant_impl(
      [b, ldb](std::size_t p, std::size_t j) { return b[j * ldb + p]; }, k,
      cols, pb, scale_b, comp);
#endif
}

/// Quantized macrokernel: sweep a packed quantized A panel against a packed
/// quantized B panel, writing the rows×cols block of C at `c`. Always a
/// single k block — the int32 accumulators are exact, so there is nothing a
/// KC sweep could change (and no raw-partial parking: the accumulator never
/// leaves registers). scale_a has one entry per panel row, scale_b and comp
/// one per panel column; the epilogue bias is block-relative as in the f32
/// macrokernel.
inline void macrokernel(std::size_t rows, std::size_t cols, std::size_t k,
                        float alpha, const std::uint8_t* pa,
                        const std::int8_t* pb, const float* scale_a,
                        const float* scale_b, const std::int32_t* comp,
                        float beta, float* c, std::size_t ldc,
                        const Epilogue& ep = {}) {
  const std::size_t kp = padded_k(k);
  for (std::size_t jr = 0; jr < cols; jr += kNR) {
    const std::size_t nr = std::min(kNR, cols - jr);
    const std::int8_t* b_strip = pb + jr * kp;
    for (std::size_t ir = 0; ir < rows; ir += kMR) {
      const std::size_t mr = std::min(kMR, rows - ir);
      const std::uint8_t* a_strip = pa + ir * kp;
      if (kMR > micro::detail::kSmallMR && mr <= micro::detail::kSmallMR) {
        detail::tile_kernel_q<micro::detail::kSmallMR>(
            kp, alpha, a_strip, b_strip, beta, c + ir * ldc + jr, ldc, mr,
            nr, scale_a + ir, scale_b + jr, comp + jr, ep, ir, jr);
      } else {
        detail::tile_kernel_q<kMR>(kp, alpha, a_strip, b_strip, beta,
                                   c + ir * ldc + jr, ldc, mr, nr,
                                   scale_a + ir, scale_b + jr, comp + jr, ep,
                                   ir, jr);
      }
    }
  }
}

}  // namespace q8

}  // namespace gsfl::tensor::micro
