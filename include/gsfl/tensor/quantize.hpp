// Payload quantizer for tensors crossing the wireless channel.
//
// QuantizerConfig describes the symmetric b-bit quantization the channel
// applies to smashed activations and gradients at the cut layer: each scale
// group (the whole tensor, or one leading-dimension slice when per_channel)
// is scaled by max|x| / qmax with qmax = 2^(b−1) − 1, rounded to nearest
// even, and clamped to [−qmax, qmax]. The wire format (serialize.hpp's
// write_quantized/read_quantized) carries the scale table plus bit-packed
// offset-binary ints; fake_quantize applies the identical quantize →
// dequantize transform in memory, so a training scheme can both *price* the
// payload at quantized bytes and *train through* exactly the values the
// receiver reconstructs.
//
// Determinism: quantization is a pure elementwise function of the tensor
// (scales depend only on the group's max-abs; rounding is nearest-even via
// std::nearbyintf under the never-changed default FE_TONEAREST mode, with
// tie behaviour pinned by the property harness), so quantized rounds stay
// bitwise reproducible across the thread × pipeline-depth matrices.
#pragma once

#include <cstddef>

#include "gsfl/tensor/tensor.hpp"

namespace gsfl::tensor {

/// Channel payload quantizer settings.
struct QuantizerConfig {
  /// Payload bit width. 0 disables quantization (f32 payloads); active
  /// widths are [2, 8] — 1 bit cannot carry a symmetric signed range, and
  /// beyond 8 the codec stops paying on the wire.
  std::size_t bits = 0;
  /// One scale per leading-dimension slice (per sample of a smashed batch)
  /// instead of one scale for the whole tensor.
  bool per_channel = false;

  [[nodiscard]] bool active() const { return bits != 0; }
};

/// Largest representable magnitude at `bits`: 2^(bits−1) − 1.
[[nodiscard]] int quantizer_qmax(std::size_t bits);

/// In-place quantize→dequantize ("fake quantize"): every element becomes
/// the value a receiver reconstructs from the wire codec at the configured
/// bits — scale · clamp(rne(x/scale), −qmax, qmax). No-op when
/// !config.active(); throws via GSFL_EXPECT when bits is outside [2, 8].
void fake_quantize(Tensor& t, const QuantizerConfig& config);

/// Serialized size in bytes of the quantized wire format for a tensor of
/// `shape` (header + scale table + bit-packed payload) — what the channel
/// prices transfers at. Requires config.active().
[[nodiscard]] std::size_t quantized_wire_bytes(const Shape& shape,
                                               const QuantizerConfig& config);

}  // namespace gsfl::tensor
