// Binary tensor serialization.
//
// Used for model checkpointing and, in the wireless model, to size the
// payloads that clients and the AP exchange (client-side models, smashed
// data, gradients). The f32 format is a fixed little-endian layout:
//   magic "GSFT" | u32 rank | u64 dims[rank] | f32 data[numel]
//
// The quantized codec carries the channel quantizer's compressed payloads
// (see quantize.hpp for the quantization rule):
//   magic "GSQT" | u32 rank | u64 dims[rank] | u8 bits | u8 per_channel |
//   u32 num_scales | f32 scales[num_scales] | bit-packed ints
// Ints are stored offset-binary (u = q + qmax) and packed LSB-first into
// ceil(numel·bits/8) bytes. Readers fail loudly with the field name and
// byte offset on any malformed input (common/serial.hpp idiom).
#pragma once

#include <istream>
#include <ostream>

#include "gsfl/tensor/quantize.hpp"
#include "gsfl/tensor/tensor.hpp"

namespace gsfl::tensor {

/// Write one tensor; throws std::runtime_error on stream failure.
void write_tensor(std::ostream& out, const Tensor& t);

/// Read one tensor; throws std::runtime_error on malformed input.
[[nodiscard]] Tensor read_tensor(std::istream& in);

/// Serialized size in bytes (header + payload) without writing.
[[nodiscard]] std::size_t serialized_size(const Tensor& t);

/// Write one tensor through the quantized codec at config's bit width.
/// Requires config.active(); throws std::runtime_error on stream failure.
void write_quantized(std::ostream& out, const Tensor& t,
                     const QuantizerConfig& config);

/// Read one quantized tensor and dequantize: the result is bitwise the
/// fake_quantize() of the written tensor (exact round-trip at the chosen
/// bits). Throws std::runtime_error with field + offset context on
/// malformed input: truncated scale table, bits outside [2, 8], payload
/// length not matching the shape, and the f32 codec's shape checks.
[[nodiscard]] Tensor read_quantized(std::istream& in);

}  // namespace gsfl::tensor
