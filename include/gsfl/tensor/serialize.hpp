// Binary tensor serialization.
//
// Used for model checkpointing and, in the wireless model, to size the
// payloads that clients and the AP exchange (client-side models, smashed
// data, gradients). The format is a fixed little-endian layout:
//   magic "GSFT" | u32 rank | u64 dims[rank] | f32 data[numel]
#pragma once

#include <istream>
#include <ostream>

#include "gsfl/tensor/tensor.hpp"

namespace gsfl::tensor {

/// Write one tensor; throws std::runtime_error on stream failure.
void write_tensor(std::ostream& out, const Tensor& t);

/// Read one tensor; throws std::runtime_error on malformed input.
[[nodiscard]] Tensor read_tensor(std::istream& in);

/// Serialized size in bytes (header + payload) without writing.
[[nodiscard]] std::size_t serialized_size(const Tensor& t);

}  // namespace gsfl::tensor
