// Tensor shapes.
//
// A Shape is an ordered list of dimension extents (row-major layout is
// implied throughout the library). Shapes are small value types; copying
// them is cheap and they are compared element-wise.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "gsfl/common/expect.hpp"

namespace gsfl::tensor {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  [[nodiscard]] std::size_t rank() const { return dims_.size(); }

  [[nodiscard]] std::size_t dim(std::size_t axis) const {
    GSFL_EXPECT(axis < dims_.size());
    return dims_[axis];
  }

  [[nodiscard]] std::size_t operator[](std::size_t axis) const {
    return dim(axis);
  }

  /// Total number of elements. The empty (rank-0) shape has one element,
  /// matching the scalar convention.
  [[nodiscard]] std::size_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(),
                           static_cast<std::size_t>(1),
                           std::multiplies<>());
  }

  [[nodiscard]] const std::vector<std::size_t>& dims() const { return dims_; }

  /// Row-major strides (in elements) for this shape.
  [[nodiscard]] std::vector<std::size_t> strides() const {
    std::vector<std::size_t> s(dims_.size(), 1);
    for (std::size_t i = dims_.size(); i-- > 1;) {
      s[i - 1] = s[i] * dims_[i];
    }
    return s;
  }

  /// Shape with axis 0 replaced (batch re-sizing).
  [[nodiscard]] Shape with_dim0(std::size_t d0) const {
    GSFL_EXPECT(!dims_.empty());
    auto dims = dims_;
    dims[0] = d0;
    return Shape(std::move(dims));
  }

  [[nodiscard]] std::string to_string() const {
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(dims_[i]);
    }
    out += "]";
    return out;
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dims_ == b.dims_;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  std::vector<std::size_t> dims_;
};

}  // namespace gsfl::tensor
