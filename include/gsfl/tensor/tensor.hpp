// Dense float32 tensor, row-major, owning its storage.
//
// This is the numeric workhorse of the library: activations, gradients,
// parameters, smashed data, and synthetic images are all Tensors. The type
// is a regular value (copyable, movable, equality-comparable) per the Core
// Guidelines; views are intentionally not provided — the workloads here are
// small enough that explicit copies are clearer and still fast.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gsfl/common/rng.hpp"
#include "gsfl/tensor/shape.hpp"

namespace gsfl::tensor {

class Tensor {
 public:
  /// Empty (rank-0, one-element) tensor holding a single zero.
  Tensor() : shape_(), data_(1, 0.0f) {}

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_.numel(), 0.0f) {}

  /// Tensor with explicit contents; data size must match the shape.
  Tensor(Shape shape, std::vector<float> data);

  Tensor(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  /// Assignment bumps the destination's version (see version()) — the
  /// destination's contents changed, whatever the source's counter said.
  Tensor& operator=(const Tensor& other) {
    shape_ = other.shape_;
    data_ = other.data_;
    ++version_;
    return *this;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
    ++version_;
    return *this;
  }

  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  [[nodiscard]] static Tensor full(Shape shape, float value);
  [[nodiscard]] static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// i.i.d. uniform entries in [lo, hi).
  [[nodiscard]] static Tensor uniform(Shape shape, common::Rng& rng,
                                      float lo = 0.0f, float hi = 1.0f);
  /// i.i.d. normal entries.
  [[nodiscard]] static Tensor normal(Shape shape, common::Rng& rng,
                                     float mean = 0.0f, float stddev = 1.0f);
  /// 1-D tensor [0, 1, ..., n-1]; handy in tests.
  [[nodiscard]] static Tensor arange(std::size_t n);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] std::size_t size_bytes() const {
    return data_.size() * sizeof(float);
  }

  [[nodiscard]] std::span<float> data() {
    ++version_;
    return data_;
  }
  [[nodiscard]] std::span<const float> data() const { return data_; }

  /// Monotonic mutation counter: bumped by every non-const element access,
  /// in-place mutator, and assignment (conservatively — handing out a
  /// mutable span counts as a write). Consumers that cache derived state
  /// keyed on a tensor's contents (the persistent packed GEMM panels in
  /// nn::Dense / nn::Conv2d) compare this to decide whether to rebuild.
  /// Copies/moves carry the source counter; a mutation through a span
  /// retained across calls is observed at the *next* non-const access.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  [[nodiscard]] float& at(std::size_t flat_index);
  [[nodiscard]] float at(std::size_t flat_index) const;

  /// 2-D element access (row-major).
  [[nodiscard]] float& at2(std::size_t i, std::size_t j);
  [[nodiscard]] float at2(std::size_t i, std::size_t j) const;

  /// 4-D element access (NCHW).
  [[nodiscard]] float& at4(std::size_t n, std::size_t c, std::size_t h,
                           std::size_t w);
  [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w) const;

  /// Same storage reinterpreted under a new shape with equal numel.
  [[nodiscard]] Tensor reshape(Shape new_shape) const;

  /// Copy of rows [begin, end) along axis 0.
  [[nodiscard]] Tensor slice0(std::size_t begin, std::size_t end) const;

  /// In-place mutators (return *this for chaining).
  Tensor& fill(float value);
  Tensor& add_(const Tensor& other);           ///< this += other
  Tensor& sub_(const Tensor& other);           ///< this -= other
  Tensor& mul_(const Tensor& other);           ///< this *= other (elementwise)
  Tensor& scale_(float factor);                ///< this *= factor
  Tensor& axpy_(float alpha, const Tensor& x); ///< this += alpha * x

  /// Reductions.
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] float max() const;
  [[nodiscard]] float min() const;
  /// Index of the max element in row i of a 2-D tensor (argmax over classes).
  [[nodiscard]] std::size_t argmax_row(std::size_t row) const;
  /// Squared L2 norm of all entries.
  [[nodiscard]] double squared_norm() const;

  /// Exact elementwise equality (useful for determinism tests).
  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }
  friend bool operator!=(const Tensor& a, const Tensor& b) { return !(a == b); }

  /// Max |a-b| over all entries; shapes must match.
  [[nodiscard]] static double max_abs_diff(const Tensor& a, const Tensor& b);

 private:
  Shape shape_;
  std::vector<float> data_;
  std::uint64_t version_ = 0;
};

/// Out-of-place arithmetic.
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor scale(const Tensor& a, float factor);

/// Weighted sum Σ w_i · t_i — the primitive beneath FedAvg. Weights need not
/// be normalized; shapes must all agree and at least one tensor is required.
[[nodiscard]] Tensor weighted_sum(std::span<const Tensor* const> tensors,
                                  std::span<const double> weights);

/// One replica step of weighted_sum's ascending fold: acc += w · src,
/// elementwise. Exported (and shared by weighted_sum itself) so incremental
/// aggregation — the pipelined rounds' eager fold, which consumes replicas
/// one at a time as they finish — runs the exact same machine arithmetic as
/// the all-at-once fold and stays bitwise identical to it.
void weighted_accumulate(Tensor& acc, const Tensor& src, double weight);

}  // namespace gsfl::tensor
