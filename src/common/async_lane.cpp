#include "gsfl/common/async_lane.hpp"

#include <atomic>
#include <deque>
#include <thread>

#include "gsfl/common/mutex.hpp"
#include "gsfl/common/thread_annotations.hpp"
#include "gsfl/common/thread_pool.hpp"

namespace gsfl::common {

namespace lane_detail {

void TaskCore::complete(std::exception_ptr err) {
  std::vector<std::function<void(const std::exception_ptr&)>> fire;
  {
    MutexLock lock(mutex);
    stage = Stage::kDone;
    error = err;
    fire = std::move(continuations);
    continuations.clear();
  }
  cv.notify_all();
  // Continuations run outside the lock: they typically decrement a
  // dependent task's counter and enqueue it, which takes other locks.
  for (auto& fn : fire) fn(err);
}

void TaskCore::on_complete(std::function<void(const std::exception_ptr&)> fn) {
  std::exception_ptr err;
  {
    MutexLock lock(mutex);
    if (stage != Stage::kDone) {
      continuations.push_back(std::move(fn));
      return;
    }
    err = error;
  }
  fn(err);
}

void TaskCore::run_if_ready(const std::shared_ptr<TaskCore>& core) {
  std::function<void()> local;
  {
    MutexLock lock(core->mutex);
    if (core->stage != Stage::kReady) return;
    core->stage = Stage::kClaimed;
    // Moving the closure out breaks the state→run→state ownership cycle
    // and lets it destroy cleanly after execution.
    local = std::move(core->run);
    core->run = nullptr;
  }
  local();
}

void TaskCore::wait_done() {
  std::exception_ptr err;
  {
    MutexLock lock(mutex);
    while (stage != Stage::kDone) lock.wait(cv);
    // Copy the outcome out under the lock: rethrowing after release reads
    // nothing another completer could touch.
    err = error;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace lane_detail

struct AsyncLane::Impl {
  Mutex mutex;
  std::condition_variable cv;
  std::deque<std::shared_ptr<lane_detail::TaskCore>> queue
      GSFL_GUARDED_BY(mutex);
  std::uint64_t next_id GSFL_GUARDED_BY(mutex) = 1;
  bool stop GSFL_GUARDED_BY(mutex) = false;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> idle{0};  ///< workers parked on an empty queue
};

AsyncLane::AsyncLane(std::size_t workers)
    : workers_(std::max<std::size_t>(workers, 1)),
      impl_(std::make_unique<Impl>()) {
  impl_->threads.reserve(workers_);
  try {
    for (std::size_t i = 0; i < workers_; ++i) {
      impl_->threads.emplace_back([this] { worker_main(); });
    }
  } catch (...) {
    {
      MutexLock lock(impl_->mutex);
      impl_->stop = true;
    }
    impl_->cv.notify_all();
    for (auto& t : impl_->threads) t.join();
    throw;
  }
}

AsyncLane::~AsyncLane() {
  {
    MutexLock lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  // Workers drain the queue before exiting; tasks still blocked on
  // never-completing dependencies are the caller's bug (see header).
  for (auto& t : impl_->threads) t.join();
}

std::uint64_t AsyncLane::next_id() {
  MutexLock lock(impl_->mutex);
  return impl_->next_id++;
}

void AsyncLane::attach(const std::shared_ptr<lane_detail::TaskCore>& core,
                       std::span<const TaskHandle> deps) {
  std::size_t real = 0;
  for (const auto& dep : deps) real += dep.valid() ? 1 : 0;
  if (real == 0) {
    {
      MutexLock lock(core->mutex);
      core->stage = lane_detail::TaskCore::Stage::kReady;
    }
    enqueue(core);
    return;
  }
  {
    // Unpublished until the on_complete hooks below register, but
    // pending_deps is guarded state — write it as such.
    MutexLock lock(core->mutex);
    core->pending_deps = real;
  }
  for (const auto& dep : deps) {
    if (!dep.valid()) continue;
    dep.core_->on_complete([core](const std::exception_ptr& err) {
      bool ready = false;
      {
        MutexLock lock(core->mutex);
        if (err && !core->dep_error) core->dep_error = err;
        ready = --core->pending_deps == 0;
        if (ready) core->stage = lane_detail::TaskCore::Stage::kReady;
      }
      if (ready) core->lane->enqueue(core);
    });
  }
}

void AsyncLane::enqueue(const std::shared_ptr<lane_detail::TaskCore>& core) {
  {
    MutexLock lock(impl_->mutex);
    impl_->queue.push_back(core);
  }
  impl_->cv.notify_one();
}

std::size_t AsyncLane::idle_workers() const {
  return impl_->idle.load(std::memory_order_relaxed);
}

void AsyncLane::worker_main() {
  for (;;) {
    std::shared_ptr<lane_detail::TaskCore> core;
    {
      MutexLock lock(impl_->mutex);
      // The idle count brackets only the parked wait: a worker holding a
      // task (or racing for the lock) reads as busy, which errs toward
      // keeping work on the caller — the cheap failure mode.
      impl_->idle.fetch_add(1, std::memory_order_relaxed);
      while (!impl_->stop && impl_->queue.empty()) lock.wait(impl_->cv);
      impl_->idle.fetch_sub(1, std::memory_order_relaxed);
      if (impl_->queue.empty()) return;  // stop && drained
      core = std::move(impl_->queue.front());
      impl_->queue.pop_front();
    }
    lane_detail::TaskCore::run_if_ready(core);
  }
}

namespace {

Mutex g_lane_mutex;
std::unique_ptr<AsyncLane> g_lane  // NOLINT: intentional process singleton
    GSFL_GUARDED_BY(g_lane_mutex);

}  // namespace

AsyncLane& global_lane() {
  MutexLock lock(g_lane_mutex);
  if (!g_lane) g_lane = std::make_unique<AsyncLane>(resolve_threads(0));
  return *g_lane;
}

}  // namespace gsfl::common
