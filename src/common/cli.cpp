#include "gsfl/common/cli.hpp"

#include <algorithm>
#include <stdexcept>

#include "gsfl/common/expect.hpp"

namespace gsfl::common {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& known_flags) {
  GSFL_EXPECT(argc >= 1);
  program_ = argv[0];
  const auto is_flag = [&](const std::string& name) {
    return std::find(known_flags.begin(), known_flags.end(), name) !=
           known_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (is_flag(arg)) {
      flags_[arg] = true;
      continue;
    }
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
      continue;
    }
    throw std::invalid_argument("flag --" + arg +
                                " expects a value (use --" + arg + "=V)");
  }
}

bool CliArgs::has_flag(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second;
}

std::optional<std::string> CliArgs::value(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::value_or(const std::string& name,
                              const std::string& fallback) const {
  return value(name).value_or(fallback);
}

std::int64_t CliArgs::int_or(const std::string& name,
                             std::int64_t fallback) const {
  const auto v = value(name);
  if (!v) return fallback;
  return std::stoll(*v);
}

double CliArgs::double_or(const std::string& name, double fallback) const {
  const auto v = value(name);
  if (!v) return fallback;
  return std::stod(*v);
}

}  // namespace gsfl::common
