#include "gsfl/common/csv.hpp"

#include <iomanip>
#include <sstream>

#include "gsfl/common/expect.hpp"

namespace gsfl::common {

namespace {

std::string format_cell(const CsvCell& cell) {
  struct Visitor {
    std::string operator()(const std::string& s) const {
      return CsvWriter::escape(s);
    }
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const {
      std::ostringstream os;
      os << std::setprecision(10) << v;
      return os.str();
    }
  };
  return std::visit(Visitor{}, cell);
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), width_(header.size()) {
  GSFL_EXPECT_MSG(!header.empty(), "CSV header must name at least one column");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<CsvCell>& cells) {
  GSFL_EXPECT_MSG(cells.size() == width_,
                  "CSV row width must match the header");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << format_cell(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& raw) {
  const bool needs_quotes =
      raw.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return raw;
  std::string quoted = "\"";
  for (const char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

CsvFile::CsvFile(const std::string& path, std::vector<std::string> header)
    : file_(path), writer_(file_, std::move(header)) {
  GSFL_EXPECT_MSG(file_.is_open(), "cannot open CSV output file: " + path);
}

}  // namespace gsfl::common
