#include "gsfl/common/logging.hpp"

#include <atomic>

namespace gsfl::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace gsfl::common
