#include "gsfl/common/rng.hpp"

#include <cmath>
#include <numbers>

namespace gsfl::common {

double Rng::normal() {
  // Box–Muller; u1 is kept away from zero so log() is finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double lambda) {
  GSFL_EXPECT(lambda > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

double Rng::gamma(double shape) {
  GSFL_EXPECT(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang section 6).
    const double g = gamma(shape + 1.0);
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return g * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

std::vector<double> Rng::dirichlet(double alpha, std::size_t dim) {
  GSFL_EXPECT(alpha > 0.0);
  GSFL_EXPECT(dim > 0);
  std::vector<double> draw(dim);
  double sum = 0.0;
  for (auto& value : draw) {
    value = gamma(alpha);
    sum += value;
  }
  if (sum <= 0.0) {
    // Pathologically small alpha can underflow every gamma draw; fall back
    // to a single random vertex of the simplex, which is the alpha→0 limit.
    std::vector<double> vertex(dim, 0.0);
    vertex[static_cast<std::size_t>(uniform_index(dim))] = 1.0;
    return vertex;
  }
  for (auto& value : draw) value /= sum;
  return draw;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  shuffle(perm);
  return perm;
}

}  // namespace gsfl::common
