#include "gsfl/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "gsfl/common/expect.hpp"
#include "gsfl/common/mutex.hpp"
#include "gsfl/common/thread_annotations.hpp"

namespace gsfl::common {

namespace {

// Set while the current thread executes a parallel_for chunk; nested
// parallel_for calls observe it and run inline.
thread_local bool tl_in_parallel = false;

// Oversubscription factor: more chunks than lanes lets fast lanes steal the
// tail of slow ones without changing what any chunk computes.
constexpr std::size_t kChunksPerLane = 4;

// Sanity ceiling on lane counts: catches negative CLI values wrapped through
// size_t before they turn into an opaque allocation failure.
constexpr std::size_t kMaxLanes = 4096;

}  // namespace

struct ThreadPool::Job {
  const RangeFn* fn = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 0;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> abort{false};
  Mutex error_mutex;
  std::exception_ptr error GSFL_GUARDED_BY(error_mutex);
  Mutex done_mutex;
  std::condition_variable done_cv;
  bool done GSFL_GUARDED_BY(done_mutex) = false;

  /// The first chunk exception, readable once every chunk finished.
  [[nodiscard]] std::exception_ptr take_error() {
    MutexLock lock(error_mutex);
    return error;
  }
};

struct ThreadPool::Impl {
  Mutex wake_mutex;
  std::condition_variable wake_cv;
  std::shared_ptr<Job> current_job GSFL_GUARDED_BY(wake_mutex);
  std::uint64_t generation GSFL_GUARDED_BY(wake_mutex) = 0;
  bool stop GSFL_GUARDED_BY(wake_mutex) = false;
  Mutex submit_mutex;  ///< serializes external parallel_for callers
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(std::size_t lanes)
    : lanes_(std::max<std::size_t>(lanes, 1)),
      impl_(std::make_unique<Impl>()) {
  GSFL_EXPECT_MSG(lanes <= kMaxLanes,
                  "thread count out of range (negative --threads value?)");
  impl_->workers.reserve(lanes_ - 1);
  try {
    for (std::size_t i = 0; i + 1 < lanes_; ++i) {
      impl_->workers.emplace_back([this] { worker_main(); });
    }
  } catch (...) {
    // Spawn failed partway (thread limits): stop and join the workers that
    // did start, then surface the error — leaving joinable threads behind
    // would turn a resource error into std::terminate.
    {
      MutexLock lock(impl_->wake_mutex);
      impl_->stop = true;
    }
    impl_->wake_cv.notify_all();
    for (auto& worker : impl_->workers) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->wake_mutex);
    impl_->stop = true;
  }
  impl_->wake_cv.notify_all();
  for (auto& worker : impl_->workers) worker.join();
}

bool ThreadPool::in_parallel_region() { return tl_in_parallel; }

InlineRegionGuard::InlineRegionGuard() : previous_(tl_in_parallel) {
  tl_in_parallel = true;
}

InlineRegionGuard::~InlineRegionGuard() { tl_in_parallel = previous_; }

void ThreadPool::run_chunks(Job& job) {
  const bool was_in_parallel = tl_in_parallel;
  tl_in_parallel = true;
  for (;;) {
    const std::size_t index =
        job.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= job.num_chunks) break;
    if (!job.abort.load(std::memory_order_relaxed)) {
      const std::size_t begin = index * job.chunk;
      const std::size_t end = std::min(begin + job.chunk, job.n);
      try {
        (*job.fn)(begin, end);
      } catch (...) {
        {
          MutexLock lock(job.error_mutex);
          if (!job.error) job.error = std::current_exception();
        }
        job.abort.store(true, std::memory_order_relaxed);
      }
    }
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      MutexLock lock(job.done_mutex);
      job.done = true;
      job.done_cv.notify_all();
    }
  }
  tl_in_parallel = was_in_parallel;
}

void ThreadPool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(impl_->wake_mutex);
      while (!impl_->stop && impl_->generation == seen) {
        lock.wait(impl_->wake_cv);
      }
      if (impl_->stop) return;
      seen = impl_->generation;
      job = impl_->current_job;
    }
    // A stale wake-up after the job drained is harmless: every chunk fetch
    // past num_chunks is a no-op and the shared_ptr keeps the Job alive.
    if (job) run_chunks(*job);
  }
}

void ThreadPool::parallel_for(std::size_t grain, std::size_t n,
                              const RangeFn& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  if (tl_in_parallel || lanes_ == 1 || n <= grain) {
    fn(0, n);
    return;
  }
  const std::size_t chunk =
      std::max(grain, (n + lanes_ * kChunksPerLane - 1) /
                          (lanes_ * kChunksPerLane));
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  if (num_chunks == 1) {
    fn(0, n);
    return;
  }

  MutexLock submit_lock(impl_->submit_mutex);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->chunk = chunk;
  job->num_chunks = num_chunks;
  {
    MutexLock lock(impl_->wake_mutex);
    impl_->current_job = job;
    ++impl_->generation;
  }
  impl_->wake_cv.notify_all();

  run_chunks(*job);  // the calling thread is a lane too

  {
    MutexLock lock(job->done_mutex);
    while (!job->done) lock.wait(job->done_cv);
  }
  {
    // Drop the pool's reference: job->fn points at the caller's stack and
    // must not outlive this call through impl_->current_job.
    MutexLock lock(impl_->wake_mutex);
    if (impl_->current_job == job) impl_->current_job.reset();
  }
  if (auto error = job->take_error()) std::rethrow_exception(error);
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("GSFL_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

namespace {

Mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool  // NOLINT: intentional process singleton
    GSFL_GUARDED_BY(g_pool_mutex);

}  // namespace

ThreadPool& global_pool() {
  MutexLock lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(resolve_threads(0));
  return *g_pool;
}

void set_global_threads(std::size_t lanes) {
  const std::size_t resolved = resolve_threads(lanes);
  MutexLock lock(g_pool_mutex);
  if (g_pool && g_pool->lanes() == resolved) return;
  GSFL_EXPECT_MSG(!ThreadPool::in_parallel_region(),
                  "cannot resize the global pool from inside parallel_for");
  g_pool = std::make_unique<ThreadPool>(resolved);
}

std::size_t global_lanes() { return global_pool().lanes(); }

void global_parallel_for(std::size_t grain, std::size_t n,
                         const ThreadPool::RangeFn& fn) {
  GSFL_EXPECT_MSG(static_cast<bool>(fn),
                  "global_parallel_for requires a callable body");
  if (n == 0) return;
  if (tl_in_parallel) {
    fn(0, n);
    return;
  }
  global_pool().parallel_for(grain, n, fn);
}

}  // namespace gsfl::common
