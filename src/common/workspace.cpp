#include "gsfl/common/workspace.hpp"

#include <cstddef>
#include <memory>
#include <vector>

namespace gsfl::common {

namespace {

// Packed GEMM panels are read as full-width vector rows every kernel step;
// a buffer that straddles cache lines turns every one of those loads into a
// line-crossing split. Align each arena buffer to the line size.
constexpr std::size_t kAlignBytes = 64;

struct AlignedBuffer {
  std::unique_ptr<float[]> storage;
  float* data = nullptr;
  std::size_t size = 0;

  void grow(std::size_t floats) {
    if (size >= floats) return;
    storage = std::make_unique<float[]>(floats + kAlignBytes / sizeof(float));
    void* raw = storage.get();
    std::size_t space = (floats + kAlignBytes / sizeof(float)) * sizeof(float);
    data = static_cast<float*>(std::align(kAlignBytes, floats * sizeof(float),
                                          raw, space));
    size = floats;
  }
};

// One arena per thread: slot index == key. Pool workers live for the whole
// process, so steady-state training rounds allocate nothing here.
thread_local std::vector<AlignedBuffer> tl_arena;

}  // namespace

float* Workspace::floats(std::size_t key, std::size_t size) {
  if (tl_arena.size() <= key) tl_arena.resize(key + 1);
  auto& buffer = tl_arena[key];
  buffer.grow(size);
  return buffer.data;
}

std::size_t Workspace::thread_bytes() {
  std::size_t bytes = 0;
  for (const auto& buffer : tl_arena) {
    if (buffer.size > 0) {
      bytes += (buffer.size + kAlignBytes / sizeof(float)) * sizeof(float);
    }
  }
  return bytes;
}

void Workspace::reset_thread() {
  tl_arena.clear();
  tl_arena.shrink_to_fit();
}

}  // namespace gsfl::common
