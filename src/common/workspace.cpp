#include "gsfl/common/workspace.hpp"

#include <vector>

namespace gsfl::common {

namespace {

// One arena per thread: slot index == key. Pool workers live for the whole
// process, so steady-state training rounds allocate nothing here.
thread_local std::vector<std::vector<float>> tl_arena;

}  // namespace

float* Workspace::floats(std::size_t key, std::size_t size) {
  if (tl_arena.size() <= key) tl_arena.resize(key + 1);
  auto& buffer = tl_arena[key];
  if (buffer.size() < size) buffer.resize(size);
  return buffer.data();
}

std::size_t Workspace::thread_bytes() {
  std::size_t bytes = 0;
  for (const auto& buffer : tl_arena) bytes += buffer.capacity() * sizeof(float);
  return bytes;
}

void Workspace::reset_thread() {
  tl_arena.clear();
  tl_arena.shrink_to_fit();
}

}  // namespace gsfl::common
