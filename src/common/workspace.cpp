#include "gsfl/common/workspace.hpp"

#include <cstddef>
#include <memory>
#include <vector>

namespace gsfl::common {

void AlignedBuffer::grow_bytes(std::size_t bytes) {
  if (size_ >= bytes) return;
  storage_ = std::make_unique<unsigned char[]>(bytes + kAlignment);
  void* raw = storage_.get();
  std::size_t space = bytes + kAlignment;
  data_ = static_cast<unsigned char*>(std::align(kAlignment, bytes, raw,
                                                 space));
  size_ = bytes;
}

namespace {

// One arena per thread: slot index == key. Pool workers live for the whole
// process, so steady-state training rounds allocate nothing here.
thread_local std::vector<AlignedBuffer> tl_arena;

// Byte-typed arena (quantized GEMM panels); independent slot space.
thread_local std::vector<AlignedBuffer> tl_byte_arena;

// Double-buffered slice arena: slot index == key·2 + parity. Kept separate
// from the flat arena so a slice key never collides with a plain key, and
// both parities of a key grow independently (interleaved packing alternates
// them per k block).
thread_local std::vector<AlignedBuffer> tl_slice_arena;

std::size_t arena_bytes(const std::vector<AlignedBuffer>& arena) {
  std::size_t bytes = 0;
  for (const auto& buffer : arena) bytes += buffer.capacity_bytes();
  return bytes;
}

}  // namespace

float* Workspace::floats(std::size_t key, std::size_t size) {
  if (tl_arena.size() <= key) tl_arena.resize(key + 1);
  return tl_arena[key].elements<float>(size);
}

unsigned char* Workspace::bytes(std::size_t key, std::size_t size) {
  if (tl_byte_arena.size() <= key) tl_byte_arena.resize(key + 1);
  return tl_byte_arena[key].elements<unsigned char>(size);
}

float* Workspace::slice(std::size_t key, std::size_t size,
                        std::size_t parity) {
  const std::size_t slot = key * 2 + (parity & 1);
  if (tl_slice_arena.size() <= slot) tl_slice_arena.resize(slot + 1);
  return tl_slice_arena[slot].elements<float>(size);
}

std::size_t Workspace::thread_bytes() {
  return arena_bytes(tl_arena) + arena_bytes(tl_slice_arena) +
         arena_bytes(tl_byte_arena);
}

void Workspace::reset_thread() {
  tl_arena.clear();
  tl_arena.shrink_to_fit();
  tl_slice_arena.clear();
  tl_slice_arena.shrink_to_fit();
  tl_byte_arena.clear();
  tl_byte_arena.shrink_to_fit();
}

}  // namespace gsfl::common
