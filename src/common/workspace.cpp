#include "gsfl/common/workspace.hpp"

#include <cstddef>
#include <memory>
#include <vector>

namespace gsfl::common {

namespace {

// Packed GEMM panels are read as full-width vector rows every kernel step;
// a buffer that straddles cache lines turns every one of those loads into a
// line-crossing split. Align each arena buffer to the line size.
constexpr std::size_t kAlignBytes = 64;

struct AlignedBuffer {
  std::unique_ptr<float[]> storage;
  float* data = nullptr;
  std::size_t size = 0;

  void grow(std::size_t floats) {
    if (size >= floats) return;
    storage = std::make_unique<float[]>(floats + kAlignBytes / sizeof(float));
    void* raw = storage.get();
    std::size_t space = (floats + kAlignBytes / sizeof(float)) * sizeof(float);
    data = static_cast<float*>(std::align(kAlignBytes, floats * sizeof(float),
                                          raw, space));
    size = floats;
  }
};

struct AlignedByteBuffer {
  std::unique_ptr<unsigned char[]> storage;
  unsigned char* data = nullptr;
  std::size_t size = 0;

  void grow(std::size_t bytes) {
    if (size >= bytes) return;
    storage = std::make_unique<unsigned char[]>(bytes + kAlignBytes);
    void* raw = storage.get();
    std::size_t space = bytes + kAlignBytes;
    data = static_cast<unsigned char*>(
        std::align(kAlignBytes, bytes, raw, space));
    size = bytes;
  }
};

// One arena per thread: slot index == key. Pool workers live for the whole
// process, so steady-state training rounds allocate nothing here.
thread_local std::vector<AlignedBuffer> tl_arena;

// Byte-typed arena (quantized GEMM panels); independent slot space.
thread_local std::vector<AlignedByteBuffer> tl_byte_arena;

// Double-buffered slice arena: slot index == key·2 + parity. Kept separate
// from the flat arena so a slice key never collides with a plain key, and
// both parities of a key grow independently (interleaved packing alternates
// them per k block).
thread_local std::vector<AlignedBuffer> tl_slice_arena;

std::size_t arena_bytes(const std::vector<AlignedBuffer>& arena) {
  std::size_t bytes = 0;
  for (const auto& buffer : arena) {
    if (buffer.size > 0) {
      bytes += (buffer.size + kAlignBytes / sizeof(float)) * sizeof(float);
    }
  }
  return bytes;
}

}  // namespace

float* Workspace::floats(std::size_t key, std::size_t size) {
  if (tl_arena.size() <= key) tl_arena.resize(key + 1);
  auto& buffer = tl_arena[key];
  buffer.grow(size);
  return buffer.data;
}

unsigned char* Workspace::bytes(std::size_t key, std::size_t size) {
  if (tl_byte_arena.size() <= key) tl_byte_arena.resize(key + 1);
  auto& buffer = tl_byte_arena[key];
  buffer.grow(size);
  return buffer.data;
}

float* Workspace::slice(std::size_t key, std::size_t size,
                        std::size_t parity) {
  const std::size_t slot = key * 2 + (parity & 1);
  if (tl_slice_arena.size() <= slot) tl_slice_arena.resize(slot + 1);
  auto& buffer = tl_slice_arena[slot];
  buffer.grow(size);
  return buffer.data;
}

std::size_t Workspace::thread_bytes() {
  std::size_t byte_arena = 0;
  for (const auto& buffer : tl_byte_arena) {
    if (buffer.size > 0) byte_arena += buffer.size + kAlignBytes;
  }
  return arena_bytes(tl_arena) + arena_bytes(tl_slice_arena) + byte_arena;
}

void Workspace::reset_thread() {
  tl_arena.clear();
  tl_arena.shrink_to_fit();
  tl_slice_arena.clear();
  tl_slice_arena.shrink_to_fit();
  tl_byte_arena.clear();
  tl_byte_arena.shrink_to_fit();
}

}  // namespace gsfl::common
