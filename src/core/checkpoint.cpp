#include "gsfl/core/checkpoint.hpp"

#include <array>
#include <fstream>
#include <stdexcept>

#include "gsfl/common/serial.hpp"

namespace gsfl::core {

namespace {

constexpr std::array<char, 4> kMagic = {'G', 'S', 'F', 'X'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_experiment_checkpoint(std::ostream& out,
                                const schemes::Trainer& trainer,
                                std::span<const metrics::RoundRecord> records,
                                double sim_seconds) {
  namespace serial = common::serial;
  out.write(kMagic.data(), kMagic.size());
  serial::write_pod(out, kVersion);
  serial::write_string(out, trainer.name());
  serial::write_u64(out, trainer.rounds_completed());
  serial::write_f64(out, sim_seconds);
  serial::write_u64(out, records.size());
  for (const auto& record : records) {
    serial::write_u64(out, record.round);
    serial::write_f64(out, record.sim_seconds);
    serial::write_f64(out, record.train_loss);
    serial::write_f64(out, record.eval_accuracy);
  }
  trainer.save_state(out);
  if (!out) throw std::runtime_error("experiment checkpoint write failed");
}

void save_experiment_checkpoint_file(
    const std::string& path, const schemes::Trainer& trainer,
    std::span<const metrics::RoundRecord> records, double sim_seconds) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open experiment checkpoint file: " + path);
  }
  save_experiment_checkpoint(out, trainer, records, sim_seconds);
}

ExperimentCheckpoint load_experiment_checkpoint(std::istream& in,
                                                schemes::Trainer& trainer) {
  namespace serial = common::serial;
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("experiment checkpoint: bad magic");
  }
  const auto version = serial::read_pod<std::uint32_t>(in, "version");
  if (version != kVersion) {
    throw std::runtime_error("experiment checkpoint: unsupported version " +
                             std::to_string(version));
  }
  const std::string scheme = serial::read_string(in, "scheme name");
  if (scheme != trainer.name()) {
    throw std::runtime_error("experiment checkpoint is for scheme '" + scheme +
                             "', trainer is '" + trainer.name() + "'");
  }

  ExperimentCheckpoint ckpt;
  ckpt.round = serial::read_u64(in, "completed rounds");
  ckpt.sim_seconds = serial::read_f64(in, "simulated seconds");
  const std::uint64_t count = serial::read_u64(in, "record count");
  if (count > (1ULL << 32)) {
    throw std::runtime_error("experiment checkpoint: implausible record count");
  }
  ckpt.records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    metrics::RoundRecord record;
    record.round = serial::read_u64(in, "record round");
    record.sim_seconds = serial::read_f64(in, "record sim seconds");
    record.train_loss = serial::read_f64(in, "record train loss");
    record.eval_accuracy = serial::read_f64(in, "record eval accuracy");
    ckpt.records.push_back(record);
  }

  trainer.load_state(in);
  if (trainer.rounds_completed() != ckpt.round) {
    throw std::runtime_error(
        "experiment checkpoint: round header says " +
        std::to_string(ckpt.round) + " but trainer state holds " +
        std::to_string(trainer.rounds_completed()));
  }
  if (in.peek() != std::istream::traits_type::eof()) {
    throw std::runtime_error(
        "experiment checkpoint: trailing garbage at offset " +
        std::to_string(static_cast<long long>(in.tellg())));
  }
  return ckpt;
}

ExperimentCheckpoint load_experiment_checkpoint_file(const std::string& path,
                                                     schemes::Trainer& trainer) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open experiment checkpoint file: " + path);
  }
  return load_experiment_checkpoint(in, trainer);
}

std::string checkpoint_path(const std::string& dir, const std::string& scheme,
                            std::size_t round) {
  return dir + "/" + scheme + "_round_" + std::to_string(round) + ".gsflx";
}

}  // namespace gsfl::core
