#include "gsfl/core/experiment.hpp"

namespace gsfl::core {

namespace {

// Fork tags for the master seed; distinct constants keep streams independent.
constexpr std::uint64_t kTrainDataTag = 1;
constexpr std::uint64_t kTestDataTag = 2;
constexpr std::uint64_t kPartitionTag = 3;
constexpr std::uint64_t kNetworkTag = 4;
constexpr std::uint64_t kModelTag = 5;

struct BuiltWorld {
  data::Dataset test_set;
  std::vector<data::Dataset> client_data;
  net::WirelessNetwork network;
  nn::Sequential initial_model;
};

BuiltWorld build_world(ExperimentConfig& config) {
  GSFL_EXPECT(config.num_clients >= 1);
  GSFL_EXPECT(config.num_groups >= 1 &&
              config.num_groups <= config.num_clients);

  // Keep the model architecture consistent with the data geometry.
  config.model.image_size = config.dataset.image_size;
  config.model.classes = config.dataset.num_classes;

  common::Rng master(config.seed);
  auto train_rng = master.fork(kTrainDataTag);
  auto test_rng = master.fork(kTestDataTag);
  auto partition_rng = master.fork(kPartitionTag);
  auto network_rng = master.fork(kNetworkTag);
  auto model_rng = master.fork(kModelTag);

  const data::SyntheticGtsrb generator(config.dataset);
  const data::Dataset train_set = generator.generate(train_rng);

  auto test_config = config.dataset;
  test_config.samples_per_class = config.test_samples_per_class;
  const data::SyntheticGtsrb test_generator(test_config);
  data::Dataset test_set = test_generator.generate(test_rng);

  data::Partition partition;
  switch (config.partition) {
    case PartitionKind::kIid:
      partition =
          data::partition_iid(train_set, config.num_clients, partition_rng);
      break;
    case PartitionKind::kShards:
      partition = data::partition_shards(train_set, config.num_clients,
                                         config.shards_per_client,
                                         partition_rng);
      break;
    case PartitionKind::kDirichlet:
      partition = data::partition_dirichlet(train_set, config.num_clients,
                                            config.dirichlet_alpha,
                                            partition_rng);
      break;
  }
  auto client_data = data::materialize(train_set, partition);

  auto network = net::WirelessNetwork::make_uniform_random(
      config.network, config.num_clients, config.min_distance_m,
      config.max_distance_m, config.min_device_flops,
      config.max_device_flops, network_rng);

  auto initial_model = nn::make_gtsrb_cnn(config.model, model_rng);

  return BuiltWorld{std::move(test_set), std::move(client_data),
                    std::move(network), std::move(initial_model)};
}

}  // namespace

ExperimentConfig ExperimentConfig::paper() {
  ExperimentConfig config;
  config.dataset.image_size = 32;
  config.dataset.num_classes = 43;
  config.dataset.samples_per_class = 70;  // ≈ 3010 train samples
  config.test_samples_per_class = 12;
  config.num_clients = 30;
  config.num_groups = 6;
  config.partition = PartitionKind::kIid;  // GTSRB randomly spread on clients
  config.cut_layer = 3;  // after conv1→relu→pool, per the framework figure
  // Resource-limited wireless profile (the paper's premise): IoT/phone-class
  // devices far below the edge server's throughput, on a 20 MHz band.
  config.network.total_bandwidth_hz = 20e6;
  config.min_device_flops = 2e8;
  config.max_device_flops = 1.2e9;
  config.train.learning_rate = 0.05;
  config.train.batch_size = 16;
  config.seed = 42;
  return config;
}

ExperimentConfig ExperimentConfig::scaled() {
  ExperimentConfig config;
  config.dataset.image_size = 16;
  config.dataset.num_classes = 12;
  config.dataset.samples_per_class = 60;  // 720 train samples
  config.test_samples_per_class = 15;
  config.num_clients = 30;
  config.num_groups = 6;
  config.partition = PartitionKind::kIid;
  config.cut_layer = 3;
  config.model.conv1_filters = 8;
  config.model.conv2_filters = 16;
  config.model.hidden = 48;
  // Same resource-limited wireless profile as paper(), scaled data only.
  config.network.total_bandwidth_hz = 20e6;
  config.min_device_flops = 2e8;
  config.max_device_flops = 1.2e9;
  config.train.learning_rate = 0.08;
  config.train.batch_size = 8;
  config.seed = 42;
  return config;
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)),
      test_set_(),
      client_data_(),
      network_(net::NetworkConfig{}, {net::DeviceProfile{}}),
      initial_model_() {
  BuiltWorld world = build_world(config_);
  test_set_ = std::move(world.test_set);
  client_data_ = std::move(world.client_data);
  network_ = std::move(world.network);
  initial_model_ = std::move(world.initial_model);
}

nn::Sequential Experiment::initial_model() const { return initial_model_; }

std::unique_ptr<schemes::CentralizedTrainer> Experiment::make_cl() const {
  return std::make_unique<schemes::CentralizedTrainer>(
      network_, client_data_, initial_model(), config_.train);
}

std::unique_ptr<schemes::FedAvgTrainer> Experiment::make_fl() const {
  return std::make_unique<schemes::FedAvgTrainer>(
      network_, client_data_, initial_model(), config_.train);
}

std::unique_ptr<schemes::SplitLearningTrainer> Experiment::make_sl() const {
  return std::make_unique<schemes::SplitLearningTrainer>(
      network_, client_data_, initial_model(), config_.cut_layer,
      config_.train);
}

std::unique_ptr<schemes::SplitFedTrainer> Experiment::make_sfl() const {
  return std::make_unique<schemes::SplitFedTrainer>(
      network_, client_data_, initial_model(), config_.cut_layer,
      config_.train);
}

std::unique_ptr<GsflTrainer> Experiment::make_gsfl() const {
  return make_gsfl(config_.num_groups, config_.cut_layer);
}

std::unique_ptr<GsflTrainer> Experiment::make_gsfl(
    std::size_t num_groups, std::size_t cut_layer) const {
  GsflConfig gsfl_config;
  gsfl_config.num_groups = num_groups;
  gsfl_config.cut_layer = cut_layer;
  gsfl_config.grouping = config_.grouping;
  gsfl_config.train = config_.train;
  return std::make_unique<GsflTrainer>(network_, client_data_,
                                       initial_model(), gsfl_config);
}

}  // namespace gsfl::core
