#include "gsfl/core/grouping.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "gsfl/common/expect.hpp"

namespace gsfl::core {

namespace {

void check_counts(std::size_t num_clients, std::size_t num_groups) {
  GSFL_EXPECT(num_groups >= 1);
  GSFL_EXPECT_MSG(num_groups <= num_clients,
                  "cannot have more groups than clients");
}

/// Normalized label histogram of a set of per-class counts.
std::vector<double> normalize(const std::vector<std::size_t>& counts) {
  const auto total = static_cast<double>(
      std::accumulate(counts.begin(), counts.end(), std::size_t{0}));
  std::vector<double> out(counts.size(), 0.0);
  if (total == 0.0) return out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<double>(counts[i]) / total;
  }
  return out;
}

double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

GroupAssignment group_round_robin(std::size_t num_clients,
                                  std::size_t num_groups) {
  check_counts(num_clients, num_groups);
  GroupAssignment groups(num_groups);
  for (std::size_t c = 0; c < num_clients; ++c) {
    groups[c % num_groups].push_back(c);
  }
  return groups;
}

GroupAssignment group_contiguous(std::size_t num_clients,
                                 std::size_t num_groups) {
  check_counts(num_clients, num_groups);
  GroupAssignment groups(num_groups);
  const std::size_t base = num_clients / num_groups;
  const std::size_t remainder = num_clients % num_groups;
  std::size_t cursor = 0;
  for (std::size_t g = 0; g < num_groups; ++g) {
    const std::size_t len = base + (g < remainder ? 1 : 0);
    for (std::size_t j = 0; j < len; ++j) groups[g].push_back(cursor++);
  }
  GSFL_ENSURE(cursor == num_clients);
  return groups;
}

GroupAssignment group_random(std::size_t num_clients, std::size_t num_groups,
                             common::Rng& rng) {
  check_counts(num_clients, num_groups);
  auto perm = rng.permutation(num_clients);
  GroupAssignment groups(num_groups);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    groups[i % num_groups].push_back(perm[i]);
  }
  return groups;
}

GroupAssignment group_label_aware(
    const std::vector<data::Dataset>& client_data, std::size_t num_groups) {
  const std::size_t num_clients = client_data.size();
  check_counts(num_clients, num_groups);
  const std::size_t classes = client_data.front().num_classes();

  // Global target distribution.
  std::vector<std::size_t> global_counts(classes, 0);
  std::vector<std::vector<std::size_t>> client_hists;
  client_hists.reserve(num_clients);
  for (const auto& d : client_data) {
    GSFL_EXPECT(d.num_classes() == classes);
    client_hists.push_back(d.class_histogram());
    for (std::size_t k = 0; k < classes; ++k) {
      global_counts[k] += client_hists.back()[k];
    }
  }
  const auto target = normalize(global_counts);

  // Largest clients first: big histograms constrain groups the most.
  std::vector<std::size_t> order(num_clients);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return client_data[a].size() > client_data[b].size();
                   });

  GroupAssignment groups(num_groups);
  std::vector<std::vector<std::size_t>> group_counts(
      num_groups, std::vector<std::size_t>(classes, 0));

  // Balanced greedy: every client goes to one of the currently *smallest*
  // groups (keeping sizes within one of each other and guaranteeing no
  // group stays empty), choosing among those the group whose pooled label
  // histogram lands closest to the global distribution. Restricting the
  // candidates to minimum-size groups is what prevents the classic greedy
  // failure mode of perfecting one group at a time.
  for (const std::size_t c : order) {
    std::size_t min_size = std::numeric_limits<std::size_t>::max();
    for (const auto& g : groups) min_size = std::min(min_size, g.size());

    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best_group = 0;
    for (std::size_t g = 0; g < num_groups; ++g) {
      if (groups[g].size() != min_size) continue;
      auto candidate = group_counts[g];
      for (std::size_t k = 0; k < classes; ++k) {
        candidate[k] += client_hists[c][k];
      }
      const double score = squared_distance(normalize(candidate), target);
      if (score < best_score) {
        best_score = score;
        best_group = g;
      }
    }
    groups[best_group].push_back(c);
    for (std::size_t k = 0; k < classes; ++k) {
      group_counts[best_group][k] += client_hists[c][k];
    }
  }

  GSFL_ENSURE(is_valid_grouping(groups, num_clients));
  return groups;
}

bool is_valid_grouping(const GroupAssignment& groups,
                       std::size_t num_clients) {
  std::vector<bool> seen(num_clients, false);
  std::size_t count = 0;
  for (const auto& g : groups) {
    if (g.empty()) return false;
    for (const std::size_t c : g) {
      if (c >= num_clients || seen[c]) return false;
      seen[c] = true;
      ++count;
    }
  }
  return count == num_clients;
}

double grouping_label_imbalance(
    const GroupAssignment& groups,
    const std::vector<data::Dataset>& client_data) {
  GSFL_EXPECT(!groups.empty());
  GSFL_EXPECT(!client_data.empty());
  const std::size_t classes = client_data.front().num_classes();

  std::vector<std::size_t> global_counts(classes, 0);
  for (const auto& d : client_data) {
    const auto h = d.class_histogram();
    for (std::size_t k = 0; k < classes; ++k) global_counts[k] += h[k];
  }
  const auto target = normalize(global_counts);

  double sum = 0.0;
  for (const auto& g : groups) {
    std::vector<std::size_t> counts(classes, 0);
    for (const std::size_t c : g) {
      GSFL_EXPECT(c < client_data.size());
      const auto h = client_data[c].class_histogram();
      for (std::size_t k = 0; k < classes; ++k) counts[k] += h[k];
    }
    sum += squared_distance(normalize(counts), target);
  }
  return sum / static_cast<double>(groups.size());
}

}  // namespace gsfl::core
