#include "gsfl/core/gsfl.hpp"

#include <array>
#include <optional>
#include <stdexcept>

#include "gsfl/common/expect.hpp"
#include "gsfl/common/parallel_map.hpp"
#include "gsfl/common/serial.hpp"
#include "gsfl/nn/checkpoint.hpp"
#include "gsfl/schemes/aggregate.hpp"
#include "gsfl/schemes/pipeline.hpp"
#include "gsfl/schemes/robustness.hpp"
#include "gsfl/schemes/split_common.hpp"

namespace gsfl::core {

namespace {

// One group's round contribution; slot g of both the barriered parallel_map
// and the pipelined round graph.
struct GroupOutcome {
  sim::LatencyBreakdown chain;
  bool trained = false;
  nn::StateDict client_state;
  nn::StateDict server_state;
  double loss_sum = 0.0;
  std::size_t batches = 0;
  std::size_t samples = 0;
};

GroupAssignment build_groups(const GsflConfig& config,
                             const std::vector<data::Dataset>& client_data) {
  const std::size_t n = client_data.size();
  switch (config.grouping) {
    case GroupingPolicy::kRoundRobin:
      return group_round_robin(n, config.num_groups);
    case GroupingPolicy::kContiguous:
      return group_contiguous(n, config.num_groups);
    case GroupingPolicy::kRandom: {
      common::Rng rng(config.grouping_seed);
      return group_random(n, config.num_groups, rng);
    }
    case GroupingPolicy::kLabelAware:
      return group_label_aware(client_data, config.num_groups);
    case GroupingPolicy::kExplicit:
      GSFL_EXPECT_MSG(is_valid_grouping(config.explicit_groups, n),
                      "explicit grouping must cover every client exactly "
                      "once with no empty group");
      return config.explicit_groups;
  }
  throw std::invalid_argument("unknown grouping policy");
}

}  // namespace

GsflTrainer::GsflTrainer(const net::WirelessNetwork& network,
                         std::vector<data::Dataset> client_data,
                         nn::Sequential initial_model, GsflConfig config)
    : Trainer("GSFL", network, std::move(client_data), config.train),
      gsfl_config_(std::move(config)),
      failure_rng_(gsfl_config_.failure_seed) {
  GSFL_EXPECT(gsfl_config_.client_failure_rate >= 0.0 &&
              gsfl_config_.client_failure_rate < 1.0);
  groups_ = build_groups(gsfl_config_, client_data_);
  auto [head, tail] = initial_model.split(gsfl_config_.cut_layer);
  global_client_ = std::move(head);
  global_server_ = std::move(tail);
  GSFL_EXPECT_MSG(!global_server_.parameters().empty(),
                  "GSFL requires a trainable server side (raise cut_layer)");
  client_model_bytes_cached_ = global_client_.state_bytes();
  samplers_.reserve(client_data_.size());
  for (std::size_t c = 0; c < client_data_.size(); ++c) {
    samplers_.emplace_back(client_data_[c], gsfl_config_.train.batch_size,
                           client_sampler_rng(c));
  }
  group_shares_.assign(groups_.size(), 1.0 / static_cast<double>(groups_.size()));
}

nn::Sequential GsflTrainer::global_model() const {
  return nn::Sequential::concatenate(global_client_, global_server_);
}

std::size_t GsflTrainer::server_storage_bytes() const {
  return global_server_.state_bytes() * groups_.size();
}

std::size_t GsflTrainer::client_model_bytes() const {
  return client_model_bytes_cached_;
}

schemes::RoundResult GsflTrainer::do_round() {
  if (robustness_active()) {
    // The barriered fault/quorum round is the pipelined graph submitted
    // ungated and waited inline — one implementation, bitwise equal across
    // depths by construction.
    auto done = submit_round_faulty({}, {});
    return done.wait();
  }
  schemes::RoundResult result;
  const double client_model_bytes =
      static_cast<double>(client_model_bytes_cached_);

  std::vector<nn::StateDict> client_states;
  std::vector<nn::StateDict> server_states;
  std::vector<double> weights;
  client_states.reserve(groups_.size());
  server_states.reserve(groups_.size());
  weights.reserve(groups_.size());
  last_group_chains_.assign(groups_.size(), {});

  double loss_sum = 0.0;
  std::size_t batches = 0;

  // Failure injection: draw this round's unavailable clients up front so
  // the draw order is independent of group iteration order.
  last_round_failures_.clear();
  std::vector<bool> failed(client_data_.size(), false);
  if (gsfl_config_.client_failure_rate > 0.0) {
    for (std::size_t c = 0; c < client_data_.size(); ++c) {
      if (failure_rng_.bernoulli(gsfl_config_.client_failure_rate)) {
        failed[c] = true;
        last_round_failures_.push_back(c);
      }
    }
  }

  // The M groups train concurrently in the scheme — and in the simulator:
  // one parallel_map index per group, each owning its replica pair,
  // optimizers, and its members' samplers (groups partition the clients, so
  // samplers never cross indices). The returned slots are folded in group
  // order below, keeping the round bitwise identical for any lane count.
  GSFL_EXPECT_MSG(!groups_.empty() && group_shares_.size() == groups_.size(),
                  "group share table must cover every group before the "
                  "parallel round");
  auto outcomes = common::parallel_map(groups_.size(), [&](std::size_t g) {
    GroupOutcome out;
    const auto& members = groups_[g];
    // The M groups train concurrently and split the band per the policy.
    const double share = group_shares_[g];
    sim::LatencyBreakdown& chain = out.chain;

    std::vector<std::size_t> available;
    for (const std::size_t c : members) {
      if (!failed[c]) available.push_back(c);
    }
    if (available.empty()) {
      // The whole group is offline: it trains nothing and is excluded from
      // aggregation this round (weight 0 would poison fedavg_states, so we
      // simply skip pushing its states).
      return out;
    }

    // Step 1 for this group: fresh replicas of both halves; the client-side
    // model is downlinked to the group's first *available* client.
    nn::SplitModel replica(global_client_, global_server_);
    auto client_opt = schemes::attach_optimizer(
        replica.client(), [this] { return make_optimizer(); });
    auto server_opt = schemes::attach_optimizer(
        replica.server(), [this] { return make_optimizer(); });
    chain.downlink += network().downlink_seconds(
        available.front(), client_model_bytes, share);

    // Step 2: sequential split training across the available members, with
    // AP-relayed client-model hand-offs in between (failed members are
    // bypassed entirely).
    for (std::size_t j = 0; j < available.size(); ++j) {
      const std::size_t c = available[j];
      if (j > 0) {
        chain.relay += network().relay_seconds(available[j - 1], c,
                                               client_model_bytes, share);
      }
      const auto epoch = schemes::run_split_epoch(
          replica, client_opt.get(), *server_opt, samplers_[c], network(), c,
          share);
      chain += epoch.latency;
      out.loss_sum += epoch.loss_sum;
      out.batches += epoch.batches;
      out.samples += epoch.samples;
    }

    // Last-trained client ships the group's client-side model to the AP.
    chain.uplink += network().uplink_seconds(available.back(),
                                             client_model_bytes, share);

    out.trained = true;
    out.client_state = replica.client().state();
    out.server_state = replica.server().state();
    return out;
  });

  for (std::size_t g = 0; g < groups_.size(); ++g) {
    GroupOutcome& out = outcomes[g];
    last_group_chains_[g] = out.chain;
    loss_sum += out.loss_sum;
    batches += out.batches;
    if (!out.trained) continue;
    client_states.push_back(std::move(out.client_state));
    server_states.push_back(std::move(out.server_state));
    weights.push_back(static_cast<double>(out.samples));
  }

  // Groups ran in parallel: the round's span is the critical group.
  result.latency = sim::critical_branch(last_group_chains_);

  if (!client_states.empty()) {
    // Step 3: FedAvg both halves at the AP.
    global_client_.load_state(schemes::fedavg_states(client_states, weights));
    global_server_.load_state(schemes::fedavg_states(server_states, weights));
    result.latency.aggregation += network().server_compute_seconds(
        schemes::aggregation_flops(global_client_.parameter_count() +
                                       global_server_.parameter_count(),
                                   client_states.size()));
  }

  result.train_loss =
      batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;

  if (gsfl_config_.bandwidth == BandwidthPolicy::kAdaptive) {
    rebalance_shares();
  }
  return result;
}

common::TaskFuture<schemes::RoundResult> GsflTrainer::do_submit_round(
    const common::TaskHandle& start, const common::TaskHandle& release) {
  if (robustness_active()) return submit_round_faulty(start, release);
  const std::size_t m = groups_.size();

  // Submit stage (this thread, round order): the round's entire RNG — the
  // failure draws and every available member's batch plan — is drained
  // here, exactly as the barriered round would consume it, so in-flight
  // rounds never touch failure_rng_ or a sampler concurrently. Group
  // weights (= the round's trained sample counts) follow from the plans, so
  // the eager fold can normalize before any group finishes computing.
  struct Prep {
    std::vector<std::vector<std::size_t>> available;  ///< per group
    std::vector<std::vector<std::vector<std::size_t>>> plans;  ///< per client
    std::optional<schemes::OrderedStateFold> client_fold;
    std::optional<schemes::OrderedStateFold> server_fold;
  };
  auto prep = std::make_shared<Prep>();
  prep->plans.resize(client_data_.size());

  last_round_failures_.clear();
  std::vector<bool> failed(client_data_.size(), false);
  if (gsfl_config_.client_failure_rate > 0.0) {
    for (std::size_t c = 0; c < client_data_.size(); ++c) {
      if (failure_rng_.bernoulli(gsfl_config_.client_failure_rate)) {
        failed[c] = true;
        last_round_failures_.push_back(c);
      }
    }
  }

  std::vector<char> contributes(m, 0);
  std::vector<double> weights;  // one entry per *trained* group, in order
  prep->available.resize(m);
  for (std::size_t g = 0; g < m; ++g) {
    for (const std::size_t c : groups_[g]) {
      if (!failed[c]) prep->available[g].push_back(c);
    }
    if (prep->available[g].empty()) continue;
    contributes[g] = 1;
    double samples = 0.0;
    for (const std::size_t c : prep->available[g]) {
      prep->plans[c] = samplers_[c].plan_epoch();
      for (const auto& batch : prep->plans[c]) {
        samples += static_cast<double>(batch.size());
      }
    }
    weights.push_back(samples);
  }
  if (!weights.empty()) {
    prep->client_fold.emplace(weights);
    prep->server_fold.emplace(weights);
  }

  // Compute stage: one task per group, identical arithmetic to do_round's
  // parallel_map body with the plan-driven epoch.
  auto compute = [this, prep](std::size_t g) -> GroupOutcome {
    GroupOutcome out;
    // Read shares and model bytes live, not as submission-time snapshots:
    // compute is gated on the previous round's publish chain, so under an
    // adaptive controller this sees that round's re-cut model and
    // re-balanced shares — exactly what the barriered round reads.
    const double client_model_bytes =
        static_cast<double>(client_model_bytes_cached_);
    const double share = group_shares_[g];
    sim::LatencyBreakdown& chain = out.chain;
    const auto& available = prep->available[g];
    if (available.empty()) return out;

    nn::SplitModel replica(global_client_, global_server_);
    auto client_opt = schemes::attach_optimizer(
        replica.client(), [this] { return make_optimizer(); });
    auto server_opt = schemes::attach_optimizer(
        replica.server(), [this] { return make_optimizer(); });
    chain.downlink += network().downlink_seconds(
        available.front(), client_model_bytes, share);

    for (std::size_t j = 0; j < available.size(); ++j) {
      const std::size_t c = available[j];
      if (j > 0) {
        chain.relay += network().relay_seconds(available[j - 1], c,
                                               client_model_bytes, share);
      }
      const auto epoch = schemes::run_split_epoch_planned(
          replica, client_opt.get(), *server_opt, client_dataset(c),
          prep->plans[c], network(), c, share);
      chain += epoch.latency;
      out.loss_sum += epoch.loss_sum;
      out.batches += epoch.batches;
      out.samples += epoch.samples;
    }

    chain.uplink += network().uplink_seconds(available.back(),
                                             client_model_bytes, share);
    out.trained = true;
    out.client_state = replica.client().state();
    out.server_state = replica.server().state();
    return out;
  };

  // Aggregate stage: trained groups fold eagerly in group order while
  // stragglers still compute; publish reproduces the barriered merge tail.
  auto fold = [prep](std::size_t, GroupOutcome& out) {
    prep->client_fold->fold(out.client_state);
    prep->server_fold->fold(out.server_state);
  };
  auto publish = [this,
                  prep](std::vector<GroupOutcome>& outcomes) -> schemes::RoundResult {
    schemes::RoundResult result;
    double loss_sum = 0.0;
    std::size_t batches = 0;
    std::size_t trained_groups = 0;
    last_group_chains_.assign(groups_.size(), {});
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      GroupOutcome& out = outcomes[g];
      last_group_chains_[g] = out.chain;
      loss_sum += out.loss_sum;
      batches += out.batches;
      if (out.trained) ++trained_groups;
    }
    result.latency = sim::critical_branch(last_group_chains_);
    if (trained_groups > 0) {
      global_client_.load_state(prep->client_fold->take());
      global_server_.load_state(prep->server_fold->take());
      result.latency.aggregation += network().server_compute_seconds(
          schemes::aggregation_flops(global_client_.parameter_count() +
                                         global_server_.parameter_count(),
                                     trained_groups));
    }
    result.train_loss =
        batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    if (gsfl_config_.bandwidth == BandwidthPolicy::kAdaptive) {
      rebalance_shares();
    }
    return result;
  };

  return schemes::submit_round_graph<GroupOutcome>(
      common::global_lane(), m, std::move(contributes), start, release,
      std::move(compute), std::move(fold), std::move(publish));
}

common::TaskFuture<schemes::RoundResult> GsflTrainer::submit_round_faulty(
    const common::TaskHandle& start, const common::TaskHandle& release) {
  const std::size_t m = groups_.size();
  const std::size_t n = client_data_.size();
  const std::size_t retry_cap = network().config().channel.retry.max_attempts;

  // Submit stage: the round's entire RNG — legacy failure draws, the fault
  // plan, and every training member's batch plan — drains here in round
  // order. A group's relay chain is sequential, so one broken link breaks
  // the whole group: whether each group reports is decidable now, before
  // any compute runs. Survivor weights renormalize at publish (lateness is
  // only known from the simulated chains), so the eager fold stays off.
  struct Prep {
    sim::FaultPlan plan;
    std::vector<std::vector<std::size_t>> available;           ///< per group
    std::vector<char> reports;                                 ///< per group
    std::vector<sim::FaultKind> client_fault;                  ///< per client
    std::vector<std::size_t> group_of;                         ///< per client
    std::vector<std::vector<std::vector<std::size_t>>> plans;  ///< per client
  };
  auto prep = std::make_shared<Prep>();
  prep->plan =
      sim::FaultPlan::draw(config().faults, retry_cap, next_round_index(), n);
  prep->available.resize(m);
  prep->reports.assign(m, 0);
  prep->client_fault.assign(n, sim::FaultKind::kNone);
  prep->group_of.assign(n, 0);
  prep->plans.resize(n);

  // Legacy GSFL failure injection composes with the fault engine: both are
  // crash-before-compute, and both draw here in client order.
  last_round_failures_.clear();
  std::vector<bool> down(n, false);
  if (gsfl_config_.client_failure_rate > 0.0) {
    for (std::size_t c = 0; c < n; ++c) {
      if (failure_rng_.bernoulli(gsfl_config_.client_failure_rate)) {
        down[c] = true;
      }
    }
  }
  for (std::size_t c = 0; c < n; ++c) {
    if (prep->plan.client(c).crash_before) down[c] = true;
    if (down[c]) {
      prep->client_fault[c] = sim::FaultKind::kCrashBeforeCompute;
      last_round_failures_.push_back(c);
    }
  }

  for (std::size_t g = 0; g < m; ++g) {
    auto& avail = prep->available[g];
    for (const std::size_t c : groups_[g]) {
      prep->group_of[c] = g;
      if (!down[c]) avail.push_back(c);
    }
    if (avail.empty()) continue;  // whole group offline this round
    if (prep->plan.client(avail.front()).downlink_attempts == 0) {
      // The model never reaches the group's entry point: nobody trains.
      prep->client_fault[avail.front()] = sim::FaultKind::kDownlinkFailed;
      for (std::size_t j = 1; j < avail.size(); ++j) {
        prep->client_fault[avail[j]] = sim::FaultKind::kCascade;
      }
      continue;
    }
    // Members train in relay order until (and including) the first
    // crash-after member; only those members' sampler streams advance.
    bool crashed = false;
    for (const std::size_t c : avail) {
      prep->plans[c] = samplers_[c].plan_epoch();
      if (prep->plan.client(c).crash_after) {
        prep->client_fault[c] = sim::FaultKind::kCrashAfterCompute;
        crashed = true;
        break;
      }
    }
    if (crashed) {
      for (const std::size_t c : avail) {
        if (prep->client_fault[c] == sim::FaultKind::kNone) {
          prep->client_fault[c] = sim::FaultKind::kCascade;
        }
      }
      continue;
    }
    if (prep->plan.client(avail.back()).uplink_attempts == 0) {
      prep->client_fault[avail.back()] = sim::FaultKind::kUplinkFailed;
      for (std::size_t j = 0; j + 1 < avail.size(); ++j) {
        prep->client_fault[avail[j]] = sim::FaultKind::kCascade;
      }
      continue;
    }
    prep->reports[g] = 1;
  }

  // Compute stage: reporting groups run the full relay chain (retry-priced
  // entry downlink and exit uplink; AP-local relays carry no retry model);
  // non-reporting groups only charge the airtime that was actually spent
  // before the chain broke — their training result is unobservable at the
  // AP, so the host skips it.
  auto compute = [this, prep, retry_cap](std::size_t g) -> GroupOutcome {
    GroupOutcome out;
    const auto& avail = prep->available[g];
    if (avail.empty()) return out;
    // Read the live share and model bytes, not submission-time snapshots:
    // compute is gated on the previous round's publish chain, so under
    // kAdaptive (or an adaptive controller) this sees that round's
    // rebalanced/re-cut values — exactly what the barriered round reads.
    const double client_model_bytes =
        static_cast<double>(client_model_bytes_cached_);
    const double share = group_shares_[g];
    sim::LatencyBreakdown& chain = out.chain;

    const auto& first = prep->plan.client(avail.front());
    const std::size_t dl =
        first.downlink_attempts > 0 ? first.downlink_attempts : retry_cap;
    chain.downlink += network().downlink_seconds(avail.front(),
                                                 client_model_bytes, share, dl);
    if (prep->reports[g] == 0) return out;

    nn::SplitModel replica(global_client_, global_server_);
    auto client_opt = schemes::attach_optimizer(
        replica.client(), [this] { return make_optimizer(); });
    auto server_opt = schemes::attach_optimizer(
        replica.server(), [this] { return make_optimizer(); });

    for (std::size_t j = 0; j < avail.size(); ++j) {
      const std::size_t c = avail[j];
      if (j > 0) {
        chain.relay += network().relay_seconds(avail[j - 1], c,
                                               client_model_bytes, share);
      }
      const auto epoch = schemes::run_split_epoch_planned(
          replica, client_opt.get(), *server_opt, client_dataset(c),
          prep->plans[c], network(), c, share);
      auto latency = epoch.latency;
      latency.client_compute *= prep->plan.client(c).slowdown;
      chain += latency;
      out.loss_sum += epoch.loss_sum;
      out.batches += epoch.batches;
      out.samples += epoch.samples;
    }

    chain.uplink +=
        network().uplink_seconds(avail.back(), client_model_bytes, share,
                                 prep->plan.client(avail.back()).uplink_attempts);
    out.trained = true;
    out.client_state = replica.client().state();
    out.server_state = replica.server().state();
    return out;
  };

  auto fold = [](std::size_t, GroupOutcome&) {};
  auto publish = [this, prep](
                     std::vector<GroupOutcome>& outcomes) -> schemes::RoundResult {
    const std::size_t m = outcomes.size();
    std::vector<char> reported(m, 0);
    std::vector<double> times(m, 0.0);
    for (std::size_t g = 0; g < m; ++g) {
      if (prep->reports[g] == 0) continue;
      reported[g] = 1;
      times[g] = outcomes[g].chain.total();
    }
    const schemes::RoundClose close =
        schemes::close_round(config().round_policy, reported, times);

    schemes::RoundResult result;
    for (std::size_t c = 0; c < prep->client_fault.size(); ++c) {
      const std::size_t g = prep->group_of[c];
      auto& record = result.participation.emplace_back();
      record.client = c;
      record.fault = prep->client_fault[c];
      record.report_seconds = reported[g] != 0 ? times[g] : 0.0;
      if (reported[g] != 0 && close.included[g] == 0 &&
          record.fault == sim::FaultKind::kNone) {
        record.fault = sim::FaultKind::kLate;
      }
    }

    std::vector<nn::StateDict> client_states;
    std::vector<nn::StateDict> server_states;
    std::vector<double> weights;
    double loss_sum = 0.0;
    std::size_t batches = 0;
    sim::LatencyBreakdown critical;
    last_group_chains_.assign(m, {});
    for (std::size_t g = 0; g < m; ++g) {
      GroupOutcome& out = outcomes[g];
      last_group_chains_[g] = out.chain;
      if (close.included[g] == 0) continue;
      loss_sum += out.loss_sum;
      batches += out.batches;
      if (out.chain.total() > critical.total()) critical = out.chain;
      client_states.push_back(std::move(out.client_state));
      server_states.push_back(std::move(out.server_state));
      weights.push_back(static_cast<double>(out.samples));
    }
    result.latency = critical;
    if (close.close_seconds > result.latency.total()) {
      // Deadline idle time at the AP, charged to aggregation.
      result.latency.aggregation +=
          close.close_seconds - result.latency.total();
    }
    if (!client_states.empty()) {
      global_client_.load_state(schemes::fedavg_states(client_states, weights));
      global_server_.load_state(schemes::fedavg_states(server_states, weights));
      result.latency.aggregation += network().server_compute_seconds(
          schemes::aggregation_flops(global_client_.parameter_count() +
                                         global_server_.parameter_count(),
                                     client_states.size()));
    }
    result.train_loss =
        batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    if (gsfl_config_.bandwidth == BandwidthPolicy::kAdaptive) {
      rebalance_shares();
    }
    return result;
  };

  return schemes::submit_round_graph<GroupOutcome>(
      common::global_lane(), m, std::vector<char>(m, 0), start, release,
      std::move(compute), std::move(fold), std::move(publish));
}

std::vector<schemes::CutCost> GsflTrainer::enumerate_cut_costs() const {
  return schemes::enumerate_split_cut_costs(
      global_model(), client_dataset(0).batch_shape(config().batch_size));
}

void GsflTrainer::apply_cut(std::size_t cut) {
  if (cut == gsfl_config_.cut_layer) return;
  schemes::resplit_halves(global_client_, global_server_, cut);
  client_model_bytes_cached_ = global_client_.state_bytes();
  gsfl_config_.cut_layer = cut;
}

void GsflTrainer::apply_adaptive_decision(
    const schemes::AdaptiveDecision& decision) {
  if (decision.changed) apply_cut(decision.cut);
  // The controller's share re-balance composes with — and defers to — the
  // kAdaptive bandwidth policy, which already re-balanced at publish
  // (rebalance_shares is not idempotent: running it twice would price the
  // chains against the freshly rewritten shares).
  if (decision.rebalance &&
      gsfl_config_.bandwidth != BandwidthPolicy::kAdaptive &&
      last_group_chains_.size() == group_shares_.size() &&
      !last_group_chains_.empty()) {
    rebalance_shares();
  }
}

void GsflTrainer::do_save_state(std::ostream& out) const {
  // Cut first: an adaptively re-cut trainer must re-split its halves before
  // their state dicts can load (per-half entry counts follow the cut).
  common::serial::write_u64(out, gsfl_config_.cut_layer);
  nn::write_state_dict(out, global_client_.state());
  nn::write_state_dict(out, global_server_.state());
  for (const auto& sampler : samplers_) sampler.save_state(out);
  for (const std::uint64_t word : failure_rng_.state()) {
    common::serial::write_pod(out, word);
  }
  common::serial::write_u64(out, group_shares_.size());
  for (const double share : group_shares_) {
    common::serial::write_f64(out, share);
  }
}

void GsflTrainer::do_load_state(std::istream& in) {
  apply_cut(static_cast<std::size_t>(
      common::serial::read_u64(in, "gsfl cut layer")));
  global_client_.load_state(nn::read_state_dict(in));
  global_server_.load_state(nn::read_state_dict(in));
  for (auto& sampler : samplers_) sampler.restore_state(in);
  std::array<std::uint64_t, 4> rng_state{};
  for (auto& word : rng_state) {
    word = common::serial::read_pod<std::uint64_t>(in, "failure rng word");
  }
  failure_rng_.set_state(rng_state);
  const std::uint64_t count = common::serial::read_u64(in, "group share count");
  if (count != group_shares_.size()) {
    throw std::runtime_error(
        "experiment checkpoint group count mismatch: checkpoint has " +
        std::to_string(count) + ", trainer has " +
        std::to_string(group_shares_.size()));
  }
  for (auto& share : group_shares_) {
    share = common::serial::read_f64(in, "group share");
  }
}

void GsflTrainer::rebalance_shares() {
  // A group's radio time scales ≈ inversely with its bandwidth share, so the
  // share-invariant "radio work" of group g is w_g = radio_time_g · share_g,
  // and equalizing radio time across groups needs share'_g ∝ w_g. Compute
  // and non-radio time are unaffected by the split, so this is a makespan
  // heuristic, not an exact optimum — see the allocation ablation bench.
  GSFL_ENSURE(last_group_chains_.size() == group_shares_.size());
  std::vector<double> work(group_shares_.size());
  double total = 0.0;
  for (std::size_t g = 0; g < group_shares_.size(); ++g) {
    const auto& chain = last_group_chains_[g];
    const double radio = chain.uplink + chain.downlink + chain.relay;
    work[g] = radio * group_shares_[g];
    total += work[g];
  }
  if (total <= 0.0) return;  // nothing transmitted: keep current shares
  // Floor each share so no group starves (Shannon rate → 0 as share → 0).
  // Clamp-and-renormalize: clamping before a global renormalize would push
  // the floored shares back *below* the floor whenever the clamps add mass
  // (one group carrying ~all the work with M = 10 leaves the other nine at
  // floor/1.045 < floor). Instead, pin floored groups exactly at the floor
  // and split only the remaining mass over the rest ∝ work; since that
  // redistribution can push further groups under the floor, iterate until
  // the clamped set is stable — it only grows, so ≤ M passes. M·floor =
  // 0.05 < 1 guarantees the unclamped mass stays positive and at least one
  // group stays unclamped.
  const std::size_t m = group_shares_.size();
  const double floor = 0.05 / static_cast<double>(m);
  std::vector<bool> clamped(m, false);
  for (bool changed = true; changed;) {
    changed = false;
    double remaining = 1.0;   // mass left for the unclamped groups
    double free_work = 0.0;   // their total work
    std::size_t unclamped = 0;
    for (std::size_t g = 0; g < m; ++g) {
      if (clamped[g]) {
        remaining -= floor;
      } else {
        free_work += work[g];
        ++unclamped;
      }
    }
    // Assign as we detect: a pass that clamps anything re-runs and
    // overwrites every share, so the stable final pass is the one whose
    // assignments stand — one copy of the redistribution formula.
    for (std::size_t g = 0; g < m; ++g) {
      if (clamped[g]) {
        group_shares_[g] = floor;
        continue;
      }
      const double share =
          free_work > 0.0
              ? remaining * (work[g] / free_work)
              : remaining / static_cast<double>(unclamped);
      if (share < floor) {
        clamped[g] = true;
        changed = true;
      } else {
        group_shares_[g] = share;
      }
    }
  }
}

}  // namespace gsfl::core
