#include "gsfl/data/dataset.hpp"

#include <algorithm>

namespace gsfl::data {

using tensor::Shape;
using tensor::Tensor;

Dataset::Dataset(Tensor images, std::vector<std::int32_t> labels,
                 std::size_t num_classes)
    : images_(std::move(images)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  GSFL_EXPECT_MSG(images_.shape().rank() == 4, "images must be NCHW");
  GSFL_EXPECT_MSG(images_.shape()[0] == labels_.size(),
                  "one label per image required");
  GSFL_EXPECT(num_classes_ >= 2);
  for (const auto label : labels_) {
    GSFL_EXPECT_MSG(label >= 0 &&
                        static_cast<std::size_t>(label) < num_classes_,
                    "label out of range");
  }
}

Shape Dataset::sample_shape() const {
  GSFL_EXPECT(!empty());
  return Shape{images_.shape()[1], images_.shape()[2], images_.shape()[3]};
}

Shape Dataset::batch_shape(std::size_t n) const {
  GSFL_EXPECT(!empty());
  return Shape{n, images_.shape()[1], images_.shape()[2], images_.shape()[3]};
}

std::pair<Tensor, std::vector<std::int32_t>> Dataset::gather(
    std::span<const std::size_t> indices) const {
  GSFL_EXPECT(!indices.empty());
  const std::size_t sample_elems = images_.numel() / size();
  Tensor batch(batch_shape(indices.size()));
  std::vector<std::int32_t> batch_labels(indices.size());
  const auto src = images_.data();
  auto dst = batch.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t idx = indices[i];
    GSFL_EXPECT_MSG(idx < size(), "sample index out of range");
    std::copy_n(src.data() + idx * sample_elems, sample_elems,
                dst.data() + i * sample_elems);
    batch_labels[i] = labels_[idx];
  }
  return {std::move(batch), std::move(batch_labels)};
}

std::pair<Tensor, std::vector<std::int32_t>> Dataset::gather_range(
    std::size_t begin, std::size_t end) const {
  GSFL_EXPECT_MSG(begin < end && end <= size(),
                  "sample range out of bounds");
  const std::size_t sample_elems = images_.numel() / size();
  const std::size_t count = end - begin;
  Tensor batch(batch_shape(count));
  std::copy_n(images_.data().data() + begin * sample_elems,
              count * sample_elems, batch.data().data());
  return {std::move(batch),
          std::vector<std::int32_t>(labels_.begin() + begin,
                                    labels_.begin() + end)};
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  auto [images, labels] = gather(indices);
  return Dataset(std::move(images), std::move(labels), num_classes_);
}

std::pair<Dataset, Dataset> Dataset::split_train_test(
    double test_fraction, common::Rng& rng) const {
  GSFL_EXPECT(test_fraction > 0.0 && test_fraction < 1.0);
  GSFL_EXPECT(size() >= 2);
  auto perm = rng.permutation(size());
  const auto test_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(test_fraction * static_cast<double>(size())));
  GSFL_ENSURE(test_count < size());
  const std::span<const std::size_t> all(perm);
  return {subset(all.subspan(test_count)), subset(all.subspan(0, test_count))};
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes_, 0);
  for (const auto label : labels_) {
    ++hist[static_cast<std::size_t>(label)];
  }
  return hist;
}

Dataset Dataset::concatenate(const std::vector<Dataset>& parts) {
  GSFL_EXPECT(!parts.empty());
  const auto& first = parts.front();
  GSFL_EXPECT(!first.empty());
  std::size_t total = 0;
  for (const auto& p : parts) {
    GSFL_EXPECT_MSG(p.num_classes() == first.num_classes(),
                    "datasets disagree on class count");
    GSFL_EXPECT_MSG(p.empty() || p.sample_shape() == first.sample_shape(),
                    "datasets disagree on sample shape");
    total += p.size();
  }
  Tensor images(first.batch_shape(total));
  std::vector<std::int32_t> labels;
  labels.reserve(total);
  auto dst = images.data();
  std::size_t offset = 0;
  for (const auto& p : parts) {
    const auto src = p.images_.data();
    std::copy(src.begin(), src.end(), dst.begin() + offset);
    offset += src.size();
    labels.insert(labels.end(), p.labels_.begin(), p.labels_.end());
  }
  return Dataset(std::move(images), std::move(labels), first.num_classes());
}

}  // namespace gsfl::data
