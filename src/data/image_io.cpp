#include "gsfl/data/image_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace gsfl::data {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Skip PPM whitespace and '#' comment lines; returns the next token.
std::string next_token(std::istream& in) {
  std::string token;
  for (;;) {
    const int c = in.peek();
    if (c == EOF) throw std::runtime_error("ppm: truncated header");
    if (std::isspace(c)) {
      in.get();
      continue;
    }
    if (c == '#') {
      std::string comment;
      std::getline(in, comment);
      continue;
    }
    break;
  }
  in >> token;
  if (!in) throw std::runtime_error("ppm: truncated header");
  return token;
}

}  // namespace

Tensor read_ppm(std::istream& in) {
  if (next_token(in) != "P6") {
    throw std::runtime_error("ppm: expected binary P6 magic");
  }
  const auto parse_dim = [&](const char* what) {
    const auto token = next_token(in);
    const long value = std::stol(token);
    if (value <= 0 || value > 1 << 14) {
      throw std::runtime_error(std::string("ppm: implausible ") + what);
    }
    return static_cast<std::size_t>(value);
  };
  const std::size_t width = parse_dim("width");
  const std::size_t height = parse_dim("height");
  if (next_token(in) != "255") {
    throw std::runtime_error("ppm: only maxval 255 supported");
  }
  in.get();  // single whitespace byte after the header

  std::vector<unsigned char> raw(width * height * 3);
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  if (!in) throw std::runtime_error("ppm: truncated pixel data");

  Tensor image(Shape{3, height, width});
  auto dst = image.data();
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const std::size_t src = (y * width + x) * 3;
      for (std::size_t c = 0; c < 3; ++c) {
        dst[(c * height + y) * width + x] =
            static_cast<float>(raw[src + c]) / 255.0f;
      }
    }
  }
  return image;
}

Tensor read_ppm_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open image: " + path);
  return read_ppm(in);
}

void write_ppm(std::ostream& out, const Tensor& chw) {
  GSFL_EXPECT(chw.shape().rank() == 3);
  GSFL_EXPECT_MSG(chw.shape()[0] == 3, "write_ppm expects 3 channels");
  const std::size_t height = chw.shape()[1];
  const std::size_t width = chw.shape()[2];
  out << "P6\n" << width << ' ' << height << "\n255\n";
  const auto src = chw.data();
  std::vector<unsigned char> raw(width * height * 3);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      for (std::size_t c = 0; c < 3; ++c) {
        const float v =
            std::clamp(src[(c * height + y) * width + x], 0.0f, 1.0f);
        raw[(y * width + x) * 3 + c] =
            static_cast<unsigned char>(std::lround(v * 255.0f));
      }
    }
  }
  out.write(reinterpret_cast<const char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
  if (!out) throw std::runtime_error("ppm: write failed");
}

void write_ppm_file(const std::string& path, const Tensor& chw) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_ppm(out, chw);
}

Tensor resize_nearest(const Tensor& chw, std::size_t size) {
  GSFL_EXPECT(chw.shape().rank() == 3);
  GSFL_EXPECT(size >= 1);
  const std::size_t channels = chw.shape()[0];
  const std::size_t in_h = chw.shape()[1];
  const std::size_t in_w = chw.shape()[2];
  Tensor out(Shape{channels, size, size});
  const auto src = chw.data();
  auto dst = out.data();
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t y = 0; y < size; ++y) {
      const std::size_t sy =
          std::min(in_h - 1, y * in_h / size);
      for (std::size_t x = 0; x < size; ++x) {
        const std::size_t sx = std::min(in_w - 1, x * in_w / size);
        dst[(c * size + y) * size + x] =
            src[(c * in_h + sy) * in_w + sx];
      }
    }
  }
  return out;
}

Dataset load_image_directory(const std::string& dir,
                             std::size_t num_classes,
                             std::size_t image_size) {
  std::ifstream index(dir + "/index.csv");
  if (!index) {
    throw std::runtime_error("cannot open index file: " + dir +
                             "/index.csv");
  }
  std::vector<Tensor> images;
  std::vector<std::int32_t> labels;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(index, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const auto comma = line.rfind(',');
    if (comma == std::string::npos) {
      throw std::runtime_error("index.csv line " +
                               std::to_string(line_number) +
                               ": expected \"file,label\"");
    }
    const std::string file = line.substr(0, comma);
    const long label = std::stol(line.substr(comma + 1));
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes) {
      throw std::runtime_error("index.csv line " +
                               std::to_string(line_number) +
                               ": label out of range");
    }
    images.push_back(
        resize_nearest(read_ppm_file(dir + "/" + file), image_size));
    labels.push_back(static_cast<std::int32_t>(label));
  }
  if (images.empty()) {
    throw std::runtime_error("index.csv lists no images");
  }

  Tensor batch(Shape{images.size(), 3, image_size, image_size});
  auto dst = batch.data();
  const std::size_t stride = 3 * image_size * image_size;
  for (std::size_t i = 0; i < images.size(); ++i) {
    const auto src = images[i].data();
    std::copy(src.begin(), src.end(), dst.begin() + i * stride);
  }
  return Dataset(std::move(batch), std::move(labels), num_classes);
}

}  // namespace gsfl::data
