#include "gsfl/data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gsfl::data {

Partition partition_iid(const Dataset& dataset, std::size_t num_clients,
                        common::Rng& rng) {
  GSFL_EXPECT(num_clients >= 1);
  GSFL_EXPECT_MSG(dataset.size() >= num_clients,
                  "need at least one sample per client");
  auto perm = rng.permutation(dataset.size());
  Partition partition(num_clients);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    partition[i % num_clients].push_back(perm[i]);
  }
  return partition;
}

Partition partition_shards(const Dataset& dataset, std::size_t num_clients,
                           std::size_t shards_per_client, common::Rng& rng) {
  GSFL_EXPECT(num_clients >= 1 && shards_per_client >= 1);
  const std::size_t num_shards = num_clients * shards_per_client;
  GSFL_EXPECT_MSG(dataset.size() >= num_shards,
                  "need at least one sample per shard");

  // Sort sample indices by label (stable on index for determinism).
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  const auto labels = dataset.labels();
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return labels[a] < labels[b];
                   });

  // Deal whole shards to clients in random order.
  auto shard_order = rng.permutation(num_shards);
  Partition partition(num_clients);
  const std::size_t base = dataset.size() / num_shards;
  const std::size_t remainder = dataset.size() % num_shards;
  std::size_t cursor = 0;
  std::vector<std::pair<std::size_t, std::size_t>> shard_ranges;
  shard_ranges.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t len = base + (s < remainder ? 1 : 0);
    shard_ranges.emplace_back(cursor, cursor + len);
    cursor += len;
  }
  GSFL_ENSURE(cursor == dataset.size());

  for (std::size_t i = 0; i < num_shards; ++i) {
    const std::size_t client = i / shards_per_client;
    const auto [begin, end] = shard_ranges[shard_order[i]];
    for (std::size_t j = begin; j < end; ++j) {
      partition[client].push_back(order[j]);
    }
  }
  return partition;
}

Partition partition_dirichlet(const Dataset& dataset, std::size_t num_clients,
                              double alpha, common::Rng& rng,
                              std::size_t min_samples,
                              std::size_t max_attempts) {
  GSFL_EXPECT(num_clients >= 1);
  GSFL_EXPECT(alpha > 0.0);
  GSFL_EXPECT_MSG(dataset.size() >= num_clients * min_samples,
                  "dataset too small for the requested minimum");

  // Group sample indices by class.
  std::vector<std::vector<std::size_t>> by_class(dataset.num_classes());
  const auto labels = dataset.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }

  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    Partition partition(num_clients);
    for (auto& class_indices : by_class) {
      if (class_indices.empty()) continue;
      auto shuffled = class_indices;
      rng.shuffle(shuffled);
      const auto proportions = rng.dirichlet(alpha, num_clients);

      // Largest-remainder rounding so counts sum exactly to the class size.
      const auto total = static_cast<double>(shuffled.size());
      std::vector<std::size_t> counts(num_clients, 0);
      std::vector<std::pair<double, std::size_t>> remainders;
      std::size_t assigned = 0;
      for (std::size_t c = 0; c < num_clients; ++c) {
        const double exact = proportions[c] * total;
        counts[c] = static_cast<std::size_t>(exact);
        assigned += counts[c];
        remainders.emplace_back(exact - std::floor(exact), c);
      }
      std::stable_sort(remainders.begin(), remainders.end(),
                       [](const auto& a, const auto& b) {
                         return a.first > b.first;
                       });
      for (std::size_t k = 0; assigned < shuffled.size(); ++k, ++assigned) {
        ++counts[remainders[k % num_clients].second];
      }

      std::size_t cursor = 0;
      for (std::size_t c = 0; c < num_clients; ++c) {
        for (std::size_t j = 0; j < counts[c]; ++j) {
          partition[c].push_back(shuffled[cursor++]);
        }
      }
      GSFL_ENSURE(cursor == shuffled.size());
    }

    const bool ok = std::all_of(
        partition.begin(), partition.end(),
        [&](const auto& p) { return p.size() >= min_samples; });
    if (ok) return partition;
  }
  throw std::runtime_error(
      "partition_dirichlet: could not satisfy min_samples within the attempt "
      "budget; raise alpha or lower min_samples");
}

bool is_exact_cover(const Partition& partition, std::size_t dataset_size) {
  std::vector<bool> seen(dataset_size, false);
  std::size_t count = 0;
  for (const auto& client : partition) {
    for (const std::size_t idx : client) {
      if (idx >= dataset_size || seen[idx]) return false;
      seen[idx] = true;
      ++count;
    }
  }
  return count == dataset_size;
}

std::vector<Dataset> materialize(const Dataset& dataset,
                                 const Partition& partition) {
  std::vector<Dataset> out;
  out.reserve(partition.size());
  for (const auto& indices : partition) {
    GSFL_EXPECT_MSG(!indices.empty(),
                    "cannot materialize an empty client dataset");
    out.push_back(dataset.subset(indices));
  }
  return out;
}

}  // namespace gsfl::data
