#include "gsfl/data/sampler.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

#include "gsfl/common/serial.hpp"

namespace gsfl::data {

BatchSampler::BatchSampler(const Dataset& dataset, std::size_t batch_size,
                           common::Rng rng, bool drop_last)
    : dataset_(&dataset),
      batch_size_(batch_size),
      drop_last_(drop_last),
      rng_(rng) {
  GSFL_EXPECT(batch_size >= 1);
  GSFL_EXPECT_MSG(!dataset.empty(), "cannot sample from an empty dataset");
  reshuffle();
}

void BatchSampler::reshuffle() {
  order_ = rng_.permutation(dataset_->size());
  cursor_ = 0;
}

std::size_t BatchSampler::batches_per_epoch() const {
  const std::size_t n = dataset_->size();
  if (n < batch_size_) return 1;  // single partial batch, always kept
  return drop_last_ ? n / batch_size_
                    : (n + batch_size_ - 1) / batch_size_;
}

std::span<const std::size_t> BatchSampler::advance() {
  const std::size_t n = dataset_->size();
  if (cursor_ >= n) reshuffle();

  std::size_t take = std::min(batch_size_, n - cursor_);
  if (drop_last_ && take < batch_size_ && n >= batch_size_) {
    // Trailing partial batch: skip it and start a fresh epoch.
    reshuffle();
    take = batch_size_;
  }
  const std::span<const std::size_t> indices(order_.data() + cursor_, take);
  cursor_ += take;
  return indices;
}

std::vector<std::size_t> BatchSampler::next_indices() {
  const auto indices = advance();
  return {indices.begin(), indices.end()};
}

std::vector<std::vector<std::size_t>> BatchSampler::plan_epoch() {
  const std::size_t count = batches_per_epoch();
  std::vector<std::vector<std::size_t>> plan;
  plan.reserve(count);
  for (std::size_t i = 0; i < count; ++i) plan.push_back(next_indices());
  return plan;
}

Batch BatchSampler::next() {
  auto [images, labels] = dataset_->gather(advance());
  return Batch{std::move(images), std::move(labels)};
}

void BatchSampler::save_state(std::ostream& out) const {
  for (const std::uint64_t word : rng_.state()) {
    common::serial::write_pod(out, word);
  }
  common::serial::write_u64(out, cursor_);
  common::serial::write_u64(out, order_.size());
  for (const std::size_t index : order_) {
    common::serial::write_u64(out, index);
  }
}

void BatchSampler::restore_state(std::istream& in) {
  namespace serial = common::serial;
  std::array<std::uint64_t, 4> rng_state{};
  for (auto& word : rng_state) {
    word = serial::read_pod<std::uint64_t>(in, "sampler rng word");
  }
  const std::uint64_t cursor = serial::read_u64(in, "sampler cursor");
  const std::uint64_t size = serial::read_u64(in, "sampler order size");
  const std::size_t n = dataset_->size();
  if (size != n) {
    throw std::runtime_error("sampler state is for a dataset of " +
                             std::to_string(size) + " samples, not " +
                             std::to_string(n));
  }
  if (cursor > size) {
    throw std::runtime_error("sampler cursor " + std::to_string(cursor) +
                             " past dataset size " + std::to_string(size));
  }
  std::vector<std::size_t> order;
  order.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    const std::uint64_t index = serial::read_u64(in, "sampler order entry");
    if (index >= n) {
      throw std::runtime_error("sampler order entry " + std::to_string(index) +
                               " out of range for dataset of " +
                               std::to_string(n) + " samples");
    }
    order.push_back(static_cast<std::size_t>(index));
  }
  rng_.set_state(rng_state);
  cursor_ = static_cast<std::size_t>(cursor);
  order_ = std::move(order);
}

std::vector<Batch> BatchSampler::epoch() {
  reshuffle();
  const std::size_t count = batches_per_epoch();
  std::vector<Batch> batches;
  batches.reserve(count);
  for (std::size_t i = 0; i < count; ++i) batches.push_back(next());
  return batches;
}

}  // namespace gsfl::data
