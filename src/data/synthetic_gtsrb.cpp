#include "gsfl/data/synthetic_gtsrb.hpp"

#include <algorithm>
#include <cmath>

namespace gsfl::data {

using tensor::Shape;
using tensor::Tensor;

SignStyle class_style(std::size_t class_id) {
  // Golden-ratio hue spacing keeps ring colours of nearby ids far apart.
  const float hue =
      std::fmod(0.11f + static_cast<float>(class_id) * 0.61803398875f, 1.0f);
  return SignStyle{
      .shape = static_cast<SignShape>(class_id % 5),
      .hue = hue,
      .glyph = static_cast<std::uint8_t>((class_id / 5) % 4),
  };
}

void hsv_to_rgb(float h, float s, float v, float& r, float& g, float& b) {
  const float hh = std::fmod(std::max(h, 0.0f), 1.0f) * 6.0f;
  const int sector = static_cast<int>(hh) % 6;
  const float f = hh - std::floor(hh);
  const float p = v * (1.0f - s);
  const float q = v * (1.0f - s * f);
  const float t = v * (1.0f - s * (1.0f - f));
  switch (sector) {
    case 0: r = v; g = t; b = p; return;
    case 1: r = q; g = v; b = p; return;
    case 2: r = p; g = v; b = t; return;
    case 3: r = p; g = q; b = v; return;
    case 4: r = t; g = p; b = v; return;
    default: r = v; g = p; b = q; return;
  }
}

namespace {

/// Signed "inside-ness" of a point (x, y) in sign-local coordinates where
/// the silhouette has radius 1. Returns < 1 inside, > 1 outside.
float silhouette_metric(SignShape shape, float x, float y) {
  const float ax = std::fabs(x);
  const float ay = std::fabs(y);
  switch (shape) {
    case SignShape::kCircle:
      return std::sqrt(x * x + y * y);
    case SignShape::kTriangle: {
      // Upward equilateral triangle inscribed in the unit circle.
      // Three half-plane constraints; the max is the inside metric.
      const float a = -y;                                   // below top edge
      const float b = 0.5f * y + 0.8660254f * x;            // right edge
      const float c = 0.5f * y - 0.8660254f * x;            // left edge
      return std::max({a, b, c}) * 2.0f;
    }
    case SignShape::kOctagon: {
      const float diag = (ax + ay) * 0.70710678f;
      return std::max(std::max(ax, ay), diag) * 1.0823922f;
    }
    case SignShape::kDiamond:
      return ax + ay;
    case SignShape::kSquare:
      return std::max(ax, ay);
  }
  return 2.0f;
}

/// Whether the interior glyph covers point (x, y) in sign-local coordinates.
bool glyph_covers(std::uint8_t glyph, float x, float y) {
  switch (glyph % 4) {
    case 0:  // horizontal bar
      return std::fabs(y) < 0.18f && std::fabs(x) < 0.55f;
    case 1:  // vertical bar
      return std::fabs(x) < 0.18f && std::fabs(y) < 0.55f;
    case 2:  // filled dot
      return x * x + y * y < 0.30f * 0.30f;
    default:  // cross
      return (std::fabs(y) < 0.14f && std::fabs(x) < 0.5f) ||
             (std::fabs(x) < 0.14f && std::fabs(y) < 0.5f);
  }
}

}  // namespace

SyntheticGtsrb::SyntheticGtsrb(SyntheticGtsrbConfig config)
    : config_(config) {
  GSFL_EXPECT(config_.image_size >= 8);
  GSFL_EXPECT(config_.num_classes >= 2 && config_.num_classes <= 60);
  GSFL_EXPECT(config_.samples_per_class >= 1);
  GSFL_EXPECT(config_.noise_stddev >= 0.0f);
  GSFL_EXPECT(config_.min_scale > 0.0f &&
              config_.min_scale <= config_.max_scale &&
              config_.max_scale <= 1.0f);
}

void SyntheticGtsrb::render_sample(std::size_t class_id, common::Rng& rng,
                                   float* pixels) const {
  const std::size_t n = config_.image_size;
  const auto style = class_style(class_id);

  // Per-sample variation.
  const float cx = static_cast<float>(
      rng.uniform(-config_.jitter, config_.jitter));
  const float cy = static_cast<float>(
      rng.uniform(-config_.jitter, config_.jitter));
  const float scale = static_cast<float>(
      rng.uniform(config_.min_scale, config_.max_scale));
  const float brightness = static_cast<float>(rng.uniform(0.65, 1.30));
  const float bg_hue = static_cast<float>(rng.uniform());
  const float bg_value = static_cast<float>(rng.uniform(0.15, 0.45));

  float ring_r = 0.0f, ring_g = 0.0f, ring_b = 0.0f;
  hsv_to_rgb(style.hue, 0.85f, 0.95f, ring_r, ring_g, ring_b);
  float bg_r = 0.0f, bg_g = 0.0f, bg_b = 0.0f;
  hsv_to_rgb(bg_hue, 0.25f, bg_value, bg_r, bg_g, bg_b);

  const float inv_half = 2.0f / static_cast<float>(n);
  float* red = pixels;
  float* green = pixels + n * n;
  float* blue = pixels + 2 * n * n;

  for (std::size_t py = 0; py < n; ++py) {
    for (std::size_t px = 0; px < n; ++px) {
      // Sign-local coordinates: origin at sign center, silhouette radius 1.
      const float wx = (static_cast<float>(px) + 0.5f) * inv_half - 1.0f;
      const float wy = (static_cast<float>(py) + 0.5f) * inv_half - 1.0f;
      const float lx = (wx - cx) / scale;
      const float ly = (wy - cy) / scale;

      float r = bg_r, g = bg_g, b = bg_b;
      const float m = silhouette_metric(style.shape, lx, ly);
      if (m < 1.0f) {
        if (m > 0.72f) {
          // Coloured ring (the class's hue).
          r = ring_r;
          g = ring_g;
          b = ring_b;
        } else if (glyph_covers(style.glyph, lx, ly)) {
          // Dark glyph.
          r = g = b = 0.10f;
        } else {
          // Pale interior.
          r = g = b = 0.92f;
        }
      }

      const std::size_t idx = py * n + px;
      const auto noise = [&] {
        return static_cast<float>(rng.normal(0.0, config_.noise_stddev));
      };
      red[idx] = std::clamp(r * brightness + noise(), 0.0f, 1.0f);
      green[idx] = std::clamp(g * brightness + noise(), 0.0f, 1.0f);
      blue[idx] = std::clamp(b * brightness + noise(), 0.0f, 1.0f);
    }
  }
}

Dataset SyntheticGtsrb::generate(common::Rng& rng) const {
  const std::size_t total = config_.num_classes * config_.samples_per_class;
  const std::size_t n = config_.image_size;
  Tensor images(Shape{total, 3, n, n});
  std::vector<std::int32_t> labels(total);
  auto px = images.data();
  const std::size_t sample_elems = 3 * n * n;

  std::size_t sample = 0;
  for (std::size_t c = 0; c < config_.num_classes; ++c) {
    for (std::size_t i = 0; i < config_.samples_per_class; ++i, ++sample) {
      render_sample(c, rng, px.data() + sample * sample_elems);
      labels[sample] = static_cast<std::int32_t>(c);
    }
  }

  // Interleave classes so contiguous index ranges are roughly IID; the
  // partitioners still control the actual per-client distribution.
  auto perm = rng.permutation(total);
  Dataset ordered(std::move(images), std::move(labels), config_.num_classes);
  return ordered.subset(perm);
}

Dataset SyntheticGtsrb::generate_class(std::size_t class_id,
                                       std::size_t count,
                                       common::Rng& rng) const {
  GSFL_EXPECT(class_id < config_.num_classes);
  GSFL_EXPECT(count >= 1);
  const std::size_t n = config_.image_size;
  Tensor images(Shape{count, 3, n, n});
  std::vector<std::int32_t> labels(count,
                                   static_cast<std::int32_t>(class_id));
  auto px = images.data();
  const std::size_t sample_elems = 3 * n * n;
  for (std::size_t i = 0; i < count; ++i) {
    render_sample(class_id, rng, px.data() + i * sample_elems);
  }
  return Dataset(std::move(images), std::move(labels), config_.num_classes);
}

}  // namespace gsfl::data
