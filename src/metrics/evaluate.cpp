#include "gsfl/metrics/evaluate.hpp"

#include <numeric>

#include "gsfl/nn/loss.hpp"

namespace gsfl::metrics {

EvalResult evaluate(nn::Sequential& model, const data::Dataset& dataset,
                    std::size_t batch_size) {
  GSFL_EXPECT(batch_size >= 1);
  GSFL_EXPECT_MSG(!dataset.empty(), "cannot evaluate on an empty dataset");

  double loss_sum = 0.0;
  std::size_t correct = 0;
  std::vector<std::size_t> indices(dataset.size());
  std::iota(indices.begin(), indices.end(), 0);

  for (std::size_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, dataset.size());
    const std::span<const std::size_t> window(indices.data() + begin,
                                              end - begin);
    auto [images, labels] = dataset.gather(window);
    const auto logits = model.forward(images, /*train=*/false);
    const auto result = nn::softmax_cross_entropy(logits, labels);
    loss_sum += result.loss * static_cast<double>(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (logits.argmax_row(i) == static_cast<std::size_t>(labels[i])) {
        ++correct;
      }
    }
  }
  const auto n = static_cast<double>(dataset.size());
  return EvalResult{static_cast<double>(correct) / n, loss_sum / n};
}

}  // namespace gsfl::metrics
