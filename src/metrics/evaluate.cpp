#include "gsfl/metrics/evaluate.hpp"

#include <algorithm>

#include "gsfl/common/parallel_map.hpp"
#include "gsfl/nn/loss.hpp"

namespace gsfl::metrics {

EvalResult evaluate(nn::Sequential& model, const data::Dataset& dataset,
                    std::size_t batch_size) {
  GSFL_EXPECT(batch_size >= 1);
  GSFL_EXPECT_MSG(!dataset.empty(), "cannot evaluate on an empty dataset");

  // Pack every weight panel once on the source model before fanning out:
  // the replicas below share the packed operands by pointer (copy-on-write),
  // so no lane repacks — and the one-time cost stays out of the per-batch
  // timings.
  model.prepack();

  // Batches are independent, so evaluation fans out over them: a contiguous
  // sample range per batch — no index vector, one block gather each. Lanes
  // must not share one model (layers are stateful; eval forwards still
  // write per-instance scratch); the context overload builds one replica
  // per pool chunk (small evaluations may still see one per batch, which is
  // fine — a state copy is tiny next to a batch forward). The loss/correct
  // fold below walks the slots in batch order: bitwise identical to the
  // serial sweep for any lane count.
  const std::size_t num_batches =
      (dataset.size() + batch_size - 1) / batch_size;
  struct BatchOutcome {
    double loss_sum = 0.0;
    std::size_t correct = 0;
  };
  const auto outcomes = common::parallel_map(
      num_batches, [&] { return model; },
      [&](nn::Sequential& local, std::size_t b) {
        const std::size_t begin = b * batch_size;
        const std::size_t end = std::min(begin + batch_size, dataset.size());
        const auto [images, labels] = dataset.gather_range(begin, end);
        const auto logits = local.forward(images, /*train=*/false);
        const auto result = nn::softmax_cross_entropy(logits, labels);
        BatchOutcome out;
        out.loss_sum = result.loss * static_cast<double>(labels.size());
        for (std::size_t i = 0; i < labels.size(); ++i) {
          if (logits.argmax_row(i) == static_cast<std::size_t>(labels[i])) {
            ++out.correct;
          }
        }
        return out;
      });

  double loss_sum = 0.0;
  std::size_t correct = 0;
  for (const auto& out : outcomes) {
    loss_sum += out.loss_sum;
    correct += out.correct;
  }
  const auto n = static_cast<double>(dataset.size());
  return EvalResult{static_cast<double>(correct) / n, loss_sum / n};
}

}  // namespace gsfl::metrics
