#include "gsfl/metrics/recorder.hpp"

#include <algorithm>

#include "gsfl/common/csv.hpp"
#include "gsfl/common/expect.hpp"

namespace gsfl::metrics {

void RunRecorder::record(const RoundRecord& record) {
  if (!records_.empty()) {
    GSFL_EXPECT_MSG(record.round > records_.back().round,
                    "round indices must be strictly increasing");
    GSFL_EXPECT_MSG(record.sim_seconds >= records_.back().sim_seconds,
                    "simulated time cannot run backwards");
  }
  records_.push_back(record);
}

const RoundRecord& RunRecorder::last() const {
  GSFL_EXPECT(!records_.empty());
  return records_.back();
}

double RunRecorder::best_accuracy() const {
  double best = 0.0;
  for (const auto& r : records_) best = std::max(best, r.eval_accuracy);
  return best;
}

double RunRecorder::final_accuracy() const {
  return records_.empty() ? 0.0 : records_.back().eval_accuracy;
}

std::optional<std::size_t> RunRecorder::rounds_to_accuracy(
    double target, std::size_t window) const {
  GSFL_EXPECT(window >= 1);
  if (records_.empty()) return std::nullopt;
  double running = 0.0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    running += records_[i].eval_accuracy;
    if (i >= window) running -= records_[i - window].eval_accuracy;
    const std::size_t span = std::min(i + 1, window);
    if (running / static_cast<double>(span) >= target) {
      return records_[i].round;
    }
  }
  return std::nullopt;
}

std::optional<double> RunRecorder::seconds_to_accuracy(
    double target, std::size_t window) const {
  const auto round = rounds_to_accuracy(target, window);
  if (!round) return std::nullopt;
  for (const auto& r : records_) {
    if (r.round == *round) return r.sim_seconds;
  }
  return std::nullopt;  // unreachable given record() invariants
}

void RunRecorder::write_csv(std::ostream& out) const {
  common::CsvWriter csv(
      out, {"scheme", "round", "sim_seconds", "train_loss", "eval_accuracy"});
  for (const auto& r : records_) {
    csv.row({scheme_name_, static_cast<std::int64_t>(r.round), r.sim_seconds,
             r.train_loss, r.eval_accuracy});
  }
}

}  // namespace gsfl::metrics
