#include "gsfl/net/channel.hpp"

#include <cmath>

#include "gsfl/common/expect.hpp"
#include "gsfl/common/units.hpp"

namespace gsfl::net {

double PathLossModel::loss_db(double distance_m) const {
  GSFL_EXPECT(distance_m > 0.0);
  GSFL_EXPECT(reference_distance_m > 0.0);
  const double d = std::max(distance_m, reference_distance_m);
  return reference_loss_db +
         10.0 * exponent * std::log10(d / reference_distance_m);
}

ShannonLink::ShannonLink(const ChannelConfig& config, double tx_power_dbm,
                         double distance_m) {
  const double rx_dbm =
      tx_power_dbm - config.path_loss.loss_db(distance_m);
  received_power_watts_ = common::dbm_to_watts(rx_dbm);
  noise_density_watts_per_hz_ = common::dbm_to_watts(
      config.thermal_noise_dbm_per_hz + config.noise_figure_db);
}

double ShannonLink::snr(double bandwidth_hz) const {
  GSFL_EXPECT(bandwidth_hz > 0.0);
  return received_power_watts_ / (noise_density_watts_per_hz_ * bandwidth_hz);
}

double ShannonLink::rate_bps(double bandwidth_hz) const {
  return bandwidth_hz * std::log2(1.0 + snr(bandwidth_hz));
}

double ShannonLink::rate_bps(double bandwidth_hz, double fade_power) const {
  GSFL_EXPECT(fade_power >= 0.0);
  const double faded_snr = snr(bandwidth_hz) * fade_power;
  return bandwidth_hz * std::log2(1.0 + faded_snr);
}

double ShannonLink::faded_rate_bps(double bandwidth_hz,
                                   common::Rng& rng) const {
  // Rayleigh fading: |h|² is Exp(1), so E[|h|²] = 1 and the deterministic
  // rate is the no-fading reference.
  return rate_bps(bandwidth_hz, rng.exponential(1.0));
}

double ShannonLink::transmit_seconds(double payload_bytes,
                                     double bandwidth_hz) const {
  GSFL_EXPECT(payload_bytes >= 0.0);
  if (payload_bytes == 0.0) return 0.0;
  const double rate = rate_bps(bandwidth_hz);
  GSFL_ENSURE_MSG(rate > 0.0, "link rate collapsed to zero");
  return common::transmit_seconds(payload_bytes, rate);
}

double ShannonLink::transmit_seconds(double payload_bytes,
                                     double bandwidth_hz,
                                     double fade_power) const {
  GSFL_EXPECT(payload_bytes >= 0.0);
  if (payload_bytes == 0.0) return 0.0;
  const double rate = rate_bps(bandwidth_hz, fade_power);
  GSFL_ENSURE_MSG(rate > 0.0, "link rate collapsed to zero (deep fade?)");
  return common::transmit_seconds(payload_bytes, rate);
}

}  // namespace gsfl::net
