#include "gsfl/net/network.hpp"

#include "gsfl/common/expect.hpp"

namespace gsfl::net {

WirelessNetwork::WirelessNetwork(NetworkConfig config,
                                 std::vector<DeviceProfile> clients)
    : config_(config), clients_(std::move(clients)) {
  GSFL_EXPECT(config_.total_bandwidth_hz > 0.0);
  GSFL_EXPECT_MSG(!clients_.empty(), "a network needs at least one client");
  uplinks_.reserve(clients_.size());
  downlinks_.reserve(clients_.size());
  for (const auto& c : clients_) {
    GSFL_EXPECT(c.compute_flops > 0.0);
    uplinks_.emplace_back(config_.channel, c.tx_power_dbm, c.distance_m);
    downlinks_.emplace_back(config_.channel, config_.ap.tx_power_dbm,
                            c.distance_m);
  }
  GSFL_EXPECT(config_.ap.compute_flops > 0.0);
  uplink_fades_.assign(clients_.size(), 1.0);
  downlink_fades_.assign(clients_.size(), 1.0);
}

void WirelessNetwork::redraw_fades(common::Rng& rng) {
  if (!config_.channel.rayleigh_fading) return;
  // Fixed draw order per client (uplink then downlink) keeps the stream
  // position a pure function of the round count.
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    uplink_fades_[c] = rng.exponential(1.0);
    downlink_fades_[c] = rng.exponential(1.0);
  }
}

void WirelessNetwork::clear_fades() {
  uplink_fades_.assign(clients_.size(), 1.0);
  downlink_fades_.assign(clients_.size(), 1.0);
}

double WirelessNetwork::uplink_fade(std::size_t index) const {
  GSFL_EXPECT(index < clients_.size());
  return uplink_fades_[index];
}

double WirelessNetwork::downlink_fade(std::size_t index) const {
  GSFL_EXPECT(index < clients_.size());
  return downlink_fades_[index];
}

WirelessNetwork WirelessNetwork::make_uniform_random(
    NetworkConfig config, std::size_t num_clients, double min_distance_m,
    double max_distance_m, double min_flops, double max_flops,
    common::Rng& rng) {
  GSFL_EXPECT(num_clients >= 1);
  GSFL_EXPECT(min_distance_m > 0.0 && min_distance_m <= max_distance_m);
  GSFL_EXPECT(min_flops > 0.0 && min_flops <= max_flops);
  std::vector<DeviceProfile> clients;
  clients.reserve(num_clients);
  for (std::size_t i = 0; i < num_clients; ++i) {
    DeviceProfile profile;
    profile.distance_m = rng.uniform(min_distance_m, max_distance_m);
    profile.compute_flops = rng.uniform(min_flops, max_flops);
    clients.push_back(profile);
  }
  return WirelessNetwork(config, std::move(clients));
}

const DeviceProfile& WirelessNetwork::client(std::size_t index) const {
  GSFL_EXPECT(index < clients_.size());
  return clients_[index];
}

double WirelessNetwork::uplink_rate_bps(std::size_t client,
                                        double bandwidth_share) const {
  GSFL_EXPECT(client < clients_.size());
  GSFL_EXPECT(bandwidth_share > 0.0 && bandwidth_share <= 1.0);
  // Fade gain 1.0 (the unfaded / disabled state) reproduces the plain rate
  // bitwise — snr·1.0 is exact — so one code path serves both modes.
  return uplinks_[client].rate_bps(
      config_.total_bandwidth_hz * bandwidth_share, uplink_fades_[client]);
}

double WirelessNetwork::downlink_rate_bps(std::size_t client,
                                          double bandwidth_share) const {
  GSFL_EXPECT(client < clients_.size());
  GSFL_EXPECT(bandwidth_share > 0.0 && bandwidth_share <= 1.0);
  return downlinks_[client].rate_bps(
      config_.total_bandwidth_hz * bandwidth_share, downlink_fades_[client]);
}

double WirelessNetwork::uplink_seconds(std::size_t client,
                                       double payload_bytes,
                                       double bandwidth_share) const {
  GSFL_EXPECT(client < clients_.size());
  GSFL_EXPECT(bandwidth_share > 0.0 && bandwidth_share <= 1.0);
  return uplinks_[client].transmit_seconds(
      payload_bytes, config_.total_bandwidth_hz * bandwidth_share,
      uplink_fades_[client]);
}

double WirelessNetwork::downlink_seconds(std::size_t client,
                                         double payload_bytes,
                                         double bandwidth_share) const {
  GSFL_EXPECT(client < clients_.size());
  GSFL_EXPECT(bandwidth_share > 0.0 && bandwidth_share <= 1.0);
  return downlinks_[client].transmit_seconds(
      payload_bytes, config_.total_bandwidth_hz * bandwidth_share,
      downlink_fades_[client]);
}

double WirelessNetwork::uplink_seconds(std::size_t client,
                                       double payload_bytes,
                                       double bandwidth_share,
                                       std::size_t attempts) const {
  GSFL_EXPECT_MSG(attempts >= 1, "a landed transfer took at least one attempt");
  return static_cast<double>(attempts) *
             uplink_seconds(client, payload_bytes, bandwidth_share) +
         retry_backoff_seconds(attempts);
}

double WirelessNetwork::downlink_seconds(std::size_t client,
                                         double payload_bytes,
                                         double bandwidth_share,
                                         std::size_t attempts) const {
  GSFL_EXPECT_MSG(attempts >= 1, "a landed transfer took at least one attempt");
  return static_cast<double>(attempts) *
             downlink_seconds(client, payload_bytes, bandwidth_share) +
         retry_backoff_seconds(attempts);
}

double WirelessNetwork::retry_backoff_seconds(std::size_t attempts) const {
  if (attempts <= 1) return 0.0;
  // Linear backoff: wait k·backoff before attempt k+1, so attempts n waits
  // backoff · (1 + 2 + … + (n-1)).
  const double n = static_cast<double>(attempts - 1);
  return config_.channel.retry.backoff_seconds * n * (n + 1.0) * 0.5;
}

double WirelessNetwork::client_compute_seconds(std::size_t client,
                                               double flops) const {
  GSFL_EXPECT(client < clients_.size());
  GSFL_EXPECT(flops >= 0.0);
  return flops / clients_[client].compute_flops;
}

double WirelessNetwork::server_compute_seconds(double flops) const {
  GSFL_EXPECT(flops >= 0.0);
  return flops / config_.ap.compute_flops;
}

double WirelessNetwork::relay_seconds(std::size_t from, std::size_t to,
                                      double payload_bytes,
                                      double bandwidth_share) const {
  // Check both indices up front: the delegated calls would each catch their
  // own, but this way a bad `to` fails before any work and the failure
  // names this accessor's precondition, not a callee's.
  GSFL_EXPECT(from < clients_.size());
  GSFL_EXPECT(to < clients_.size());
  return uplink_seconds(from, payload_bytes, bandwidth_share) +
         downlink_seconds(to, payload_bytes, bandwidth_share);
}

}  // namespace gsfl::net
