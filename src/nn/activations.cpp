#include "gsfl/nn/activations.hpp"

#include <cmath>

namespace gsfl::nn {

Tensor relu_mask(const Tensor& grad_output, const Tensor& y) {
  GSFL_EXPECT(grad_output.shape() == y.shape());
  Tensor masked(grad_output.shape());
  const auto go = grad_output.data();
  const auto yd = y.data();
  auto md = masked.data();
  for (std::size_t i = 0; i < go.size(); ++i) {
    md[i] = yd[i] > 0.0f ? go[i] : 0.0f;
  }
  return masked;
}

Tensor Activation::forward(const Tensor& input, bool train) {
  Tensor out(input.shape());
  const auto src = input.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = apply(src[i]);
  // Only backward reads the caches; eval forwards copy nothing and clear
  // any stale training pair so backward-after-eval fails loudly.
  if (train) {
    cached_input_ = input;
    cached_output_ = out;
  } else {
    cached_input_ = Tensor();
    cached_output_ = Tensor();
  }
  return out;
}

Tensor Activation::backward(const Tensor& grad_output) {
  GSFL_EXPECT_MSG(grad_output.shape() == cached_input_.shape(),
                  "backward() requires a prior training-mode forward()");
  Tensor grad_input(grad_output.shape());
  const auto go = grad_output.data();
  const auto x = cached_input_.data();
  const auto y = cached_output_.data();
  auto gi = grad_input.data();
  for (std::size_t i = 0; i < go.size(); ++i) {
    gi[i] = go[i] * derivative(x[i], y[i]);
  }
  return grad_input;
}

float Tanh::apply(float x) const { return std::tanh(x); }

float Sigmoid::apply(float x) const {
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace gsfl::nn
