#include "gsfl/nn/batchnorm.hpp"

#include <cmath>
#include <utility>

#include "gsfl/tensor/microkernel.hpp"

namespace gsfl::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Tensor::ones(Shape{channels})),
      beta_(Shape{channels}),
      grad_gamma_(Shape{channels}),
      grad_beta_(Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Tensor::ones(Shape{channels})) {
  GSFL_EXPECT(channels > 0);
  GSFL_EXPECT(momentum > 0.0f && momentum <= 1.0f);
  GSFL_EXPECT(epsilon > 0.0f);
}

std::string BatchNorm2d::name() const {
  return "batchnorm2d(" + std::to_string(channels_) + ")";
}

Shape BatchNorm2d::output_shape(const Shape& input) const {
  GSFL_EXPECT(input.rank() == 4 && input[1] == channels_);
  return input;
}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  GSFL_EXPECT(input.shape().rank() == 4);
  GSFL_EXPECT_MSG(input.shape()[1] == channels_, "batchnorm channel mismatch");
  const std::size_t batch = input.shape()[0];
  const std::size_t hw = input.shape()[2] * input.shape()[3];
  const std::size_t per_channel = batch * hw;
  GSFL_EXPECT_MSG(per_channel > 0, "batchnorm needs at least one sample");

  const auto src = input.data();
  Tensor out(input.shape());
  auto dst = out.data();
  const auto g = gamma_.data();
  const auto b = beta_.data();

  const auto plane_offset = [&](std::size_t n, std::size_t c) {
    return (n * channels_ + c) * hw;
  };

  if (train) {
    cached_input_ = input;
    cached_normalized_ = Tensor(input.shape());
    cached_mean_.assign(channels_, 0.0f);
    cached_inv_std_.assign(channels_, 0.0f);
    auto norm = cached_normalized_.data();
    auto rm = running_mean_.data();
    auto rv = running_var_.data();

    for (std::size_t c = 0; c < channels_; ++c) {
      double sum = 0.0;
      for (std::size_t n = 0; n < batch; ++n) {
        const float* p = src.data() + plane_offset(n, c);
        for (std::size_t i = 0; i < hw; ++i) sum += p[i];
      }
      const float mean = static_cast<float>(sum / per_channel);

      double var_sum = 0.0;
      for (std::size_t n = 0; n < batch; ++n) {
        const float* p = src.data() + plane_offset(n, c);
        for (std::size_t i = 0; i < hw; ++i) {
          const double d = p[i] - mean;
          var_sum += d * d;
        }
      }
      // The batch is normalized with the biased (1/m) variance — the
      // standard formulation, and what backward differentiates against.
      const float var = static_cast<float>(var_sum / per_channel);
      const float inv_std = 1.0f / std::sqrt(var + epsilon_);
      cached_mean_[c] = mean;
      cached_inv_std_[c] = inv_std;
      // The *running* estimate feeding eval normalization uses the
      // Bessel-corrected (1/(m−1)) estimator: the biased one is
      // systematically low at small per-channel counts, so eval would
      // over-scale activations relative to training. (Matches the
      // torch.nn.BatchNorm2d convention.)
      const float unbiased_var =
          per_channel > 1
              ? static_cast<float>(var_sum / (per_channel - 1))
              : var;
      rm[c] = (1.0f - momentum_) * rm[c] + momentum_ * mean;
      rv[c] = (1.0f - momentum_) * rv[c] + momentum_ * unbiased_var;

      for (std::size_t n = 0; n < batch; ++n) {
        const std::size_t off = plane_offset(n, c);
        for (std::size_t i = 0; i < hw; ++i) {
          const float x_hat = (src[off + i] - mean) * inv_std;
          norm[off + i] = x_hat;
          dst[off + i] = g[c] * x_hat + b[c];
        }
      }
    }
  } else {
    // Eval forwards leave no training caches behind: a backward without a
    // training forward fails loudly instead of differentiating stale state.
    cached_input_ = Tensor();
    cached_normalized_ = Tensor();
    cached_mean_.clear();
    cached_inv_std_.clear();
    const auto rm = std::as_const(running_mean_).data();
    const auto rv = std::as_const(running_var_).data();
    for (std::size_t c = 0; c < channels_; ++c) {
      const float inv_std = 1.0f / std::sqrt(rv[c] + epsilon_);
      for (std::size_t n = 0; n < batch; ++n) {
        const std::size_t off = plane_offset(n, c);
        for (std::size_t i = 0; i < hw; ++i) {
          // bn_affine is the exact expression the GEMM epilogue runs when
          // this layer is folded into the preceding conv
          // (Conv2d::fold_batchnorm) — sharing it keeps the two paths
          // bitwise identical under FMA contraction.
          dst[off + i] = tensor::micro::bn_affine(src[off + i], g[c], rm[c],
                                                  inv_std, b[c]);
        }
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  GSFL_EXPECT_MSG(cached_input_.shape().rank() == 4,
                  "backward() requires a prior training-mode forward()");
  GSFL_EXPECT(grad_output.shape() == cached_input_.shape());
  const std::size_t batch = cached_input_.shape()[0];
  const std::size_t hw =
      cached_input_.shape()[2] * cached_input_.shape()[3];
  const auto m = static_cast<float>(batch * hw);

  Tensor grad_input(cached_input_.shape());
  const auto go = grad_output.data();
  const auto norm = cached_normalized_.data();
  auto gi = grad_input.data();
  const auto g = gamma_.data();
  auto gg = grad_gamma_.data();
  auto gb = grad_beta_.data();

  const auto plane_offset = [&](std::size_t n, std::size_t c) {
    return (n * channels_ + c) * hw;
  };

  for (std::size_t c = 0; c < channels_; ++c) {
    // Channel-wide reductions: Σdy and Σdy·x̂.
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const std::size_t off = plane_offset(n, c);
      for (std::size_t i = 0; i < hw; ++i) {
        sum_dy += go[off + i];
        sum_dy_xhat += static_cast<double>(go[off + i]) * norm[off + i];
      }
    }
    gb[c] += static_cast<float>(sum_dy);
    gg[c] += static_cast<float>(sum_dy_xhat);

    // dx = (γ/σ) · (dy − Σdy/m − x̂·Σ(dy·x̂)/m)
    const float scale = g[c] * cached_inv_std_[c];
    const auto mean_dy = static_cast<float>(sum_dy / m);
    const auto mean_dy_xhat = static_cast<float>(sum_dy_xhat / m);
    for (std::size_t n = 0; n < batch; ++n) {
      const std::size_t off = plane_offset(n, c);
      for (std::size_t i = 0; i < hw; ++i) {
        gi[off + i] = scale * (go[off + i] - mean_dy -
                               norm[off + i] * mean_dy_xhat);
      }
    }
  }
  return grad_input;
}

FlopCount BatchNorm2d::flops(const Shape& input) const {
  GSFL_EXPECT(input.rank() == 4 && input[1] == channels_);
  const std::uint64_t n = input.numel();
  // ~4 ops/element forward (two reduction passes + normalize),
  // ~7 ops/element backward (two reductions + recombine).
  return FlopCount{4 * n, 7 * n};
}

}  // namespace gsfl::nn
