#include "gsfl/nn/checkpoint.hpp"

#include <array>
#include <fstream>

#include "gsfl/common/serial.hpp"
#include "gsfl/tensor/serialize.hpp"

namespace gsfl::nn {

namespace {

constexpr std::array<char, 4> kMagic = {'G', 'S', 'F', 'C'};
constexpr std::uint32_t kVersion = 1;

// Read one serialized tensor, rewrapping any deserialization error with the
// entry index and the byte offset where the entry started — a corrupt
// checkpoint then reports *which* tensor broke and where, not just that
// something did.
tensor::Tensor read_entry(std::istream& in, std::uint64_t index,
                          std::uint64_t count) {
  const auto offset = in.tellg();
  try {
    return tensor::read_tensor(in);
  } catch (const std::runtime_error& error) {
    throw std::runtime_error(
        std::string(error.what()) + " (state entry " + std::to_string(index) +
        " of " + std::to_string(count) + ", starting at offset " +
        std::to_string(static_cast<long long>(offset)) + ")");
  }
}

}  // namespace

void write_state_dict(std::ostream& out, const StateDict& state) {
  common::serial::write_u64(out, state.size());
  for (const auto& tensor : state) {
    tensor::write_tensor(out, tensor);
  }
  if (!out) throw std::runtime_error("state dict write failed");
}

StateDict read_state_dict(std::istream& in) {
  const std::uint64_t count =
      common::serial::read_u64(in, "state dict entry count");
  if (count > (1ULL << 24)) {
    throw std::runtime_error("implausible state dict entry count: " +
                             std::to_string(count));
  }
  StateDict state;
  state.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    state.push_back(read_entry(in, i, count));
  }
  return state;
}

void save_checkpoint(std::ostream& out, const Sequential& model) {
  out.write(kMagic.data(), kMagic.size());
  common::serial::write_pod(out, kVersion);
  write_state_dict(out, model.state());
  if (!out) throw std::runtime_error("checkpoint write failed");
}

void save_checkpoint_file(const std::string& path, const Sequential& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open checkpoint file: " + path);
  save_checkpoint(out, model);
}

StateDict read_checkpoint_state(std::istream& in) {
  std::array<char, 4> magic{};
  const auto offset = in.tellg();
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error(
        "checkpoint: bad magic at offset " +
        std::to_string(static_cast<long long>(offset)));
  }
  const auto version =
      common::serial::read_pod<std::uint32_t>(in, "checkpoint version");
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }
  return read_state_dict(in);
}

void load_checkpoint(std::istream& in, Sequential& model) {
  model.load_state(read_checkpoint_state(in));
  // A well-formed checkpoint is the whole stream; bytes past the last
  // tensor mean the file was not written by save_checkpoint.
  if (in.peek() != std::istream::traits_type::eof()) {
    throw std::runtime_error(
        "checkpoint: trailing garbage after the last tensor (offset " +
        std::to_string(static_cast<long long>(in.tellg())) + ")");
  }
}

void load_checkpoint_file(const std::string& path, Sequential& model) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open checkpoint file: " + path);
  load_checkpoint(in, model);
}

}  // namespace gsfl::nn
