#include "gsfl/nn/checkpoint.hpp"

#include <array>
#include <fstream>

#include "gsfl/tensor/serialize.hpp"

namespace gsfl::nn {

namespace {

constexpr std::array<char, 4> kMagic = {'G', 'S', 'F', 'C'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_checkpoint(std::ostream& out, const Sequential& model) {
  const auto state = model.state();
  out.write(kMagic.data(), kMagic.size());
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const std::uint64_t count = state.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& tensor : state) {
    tensor::write_tensor(out, tensor);
  }
  if (!out) throw std::runtime_error("checkpoint write failed");
}

void save_checkpoint_file(const std::string& path, const Sequential& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open checkpoint file: " + path);
  save_checkpoint(out, model);
}

StateDict read_checkpoint_state(std::istream& in) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count > (1ULL << 24)) {
    throw std::runtime_error("checkpoint: implausible entry count");
  }
  StateDict state;
  state.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    state.push_back(tensor::read_tensor(in));
  }
  return state;
}

void load_checkpoint(std::istream& in, Sequential& model) {
  model.load_state(read_checkpoint_state(in));
}

void load_checkpoint_file(const std::string& path, Sequential& model) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open checkpoint file: " + path);
  load_checkpoint(in, model);
}

}  // namespace gsfl::nn
