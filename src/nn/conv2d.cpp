#include "gsfl/nn/conv2d.hpp"

#include <algorithm>
#include <vector>

#include "gsfl/common/thread_pool.hpp"
#include "gsfl/common/workspace.hpp"
#include "gsfl/nn/init.hpp"
#include "gsfl/tensor/gemm.hpp"

namespace gsfl::nn {

using tensor::ConvGeometry;

namespace {

// Samples per reduction chunk in backward. Fixed (never derived from the
// lane count) so the dW/db summation tree has the same shape for every
// thread count — the bitwise-determinism contract.
constexpr std::size_t kGradChunk = 4;

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               common::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Shape{out_channels, in_channels * kernel * kernel}),
      bias_(Shape{out_channels}),
      grad_weight_(Shape{out_channels, in_channels * kernel * kernel}),
      grad_bias_(Shape{out_channels}) {
  GSFL_EXPECT(in_channels > 0 && out_channels > 0 && kernel > 0 &&
              stride > 0);
  he_normal(weight_, in_channels * kernel * kernel, rng);
}

std::string Conv2d::name() const {
  return "conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ",k" + std::to_string(kernel_) +
         ",s" + std::to_string(stride_) + ",p" + std::to_string(pad_) + ")";
}

ConvGeometry Conv2d::geometry(const Shape& input) const {
  GSFL_EXPECT(input.rank() == 4);
  GSFL_EXPECT_MSG(input[1] == in_channels_, "conv2d channel mismatch");
  return ConvGeometry{.in_channels = in_channels_,
                      .in_h = input[2],
                      .in_w = input[3],
                      .kernel = kernel_,
                      .stride = stride_,
                      .pad = pad_};
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  const ConvGeometry geom = geometry(input.shape());
  const std::size_t batch = input.shape()[0];
  const std::size_t positions = geom.out_positions();
  const std::size_t patch = geom.patch_size();
  const std::size_t chw = in_channels_ * geom.in_h * geom.in_w;

  // Only backward() reads the cache; evaluation passes skip the copy — and
  // invalidate it, so a backward() issued after an eval forward fails loudly
  // instead of silently differentiating against a stale training batch.
  if (train) {
    cached_input_ = input;
  } else {
    cached_input_ = Tensor();
  }

  Tensor out(Shape{batch, out_channels_, geom.out_h(), geom.out_w()});
  float* od = out.data().data();
  const float* in = input.data().data();
  const float* wd = weight_.data().data();
  const float* bd = bias_.data().data();

  // Samples are independent: each writes its own output slice and unfolds
  // into its thread's scratch, so the batch parallelizes with no sharing.
  common::global_parallel_for(1, batch, [&](std::size_t b0,
                                            std::size_t b1) {
    float* columns = common::Workspace::floats(
        common::Workspace::kConvColumns, patch * positions);
    for (std::size_t n = b0; n < b1; ++n) {
      tensor::im2col_into(in + n * chw, geom, columns);
      // (out_c × patch) · (patch × positions) → (out_c × positions)
      float* dst = od + n * out_channels_ * positions;
      tensor::gemm_raw(out_channels_, patch, positions, 1.0f, wd, columns,
                       0.0f, dst);
      for (std::size_t c = 0; c < out_channels_; ++c) {
        const float b = bd[c];
        for (std::size_t p = 0; p < positions; ++p) dst[c * positions + p] += b;
      }
    }
  });
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  GSFL_EXPECT_MSG(cached_input_.shape().rank() == 4,
                  "backward() requires a prior forward()");
  const ConvGeometry geom = geometry(cached_input_.shape());
  const std::size_t batch = cached_input_.shape()[0];
  const std::size_t positions = geom.out_positions();
  const std::size_t patch = geom.patch_size();
  const std::size_t chw = in_channels_ * geom.in_h * geom.in_w;
  GSFL_EXPECT(grad_output.shape() ==
              Shape({batch, out_channels_, geom.out_h(), geom.out_w()}));

  Tensor grad_input(cached_input_.shape());
  const float* gd = grad_output.data().data();
  const float* in = cached_input_.data().data();
  float* gi = grad_input.data().data();

  // Wᵀ is loop-invariant: materialize it once and share it read-only.
  const Tensor wt = tensor::transpose(weight_);
  const float* wtd = wt.data().data();

  // dW/db are reductions over the batch. Chunk the batch with a fixed grain,
  // give each chunk its own accumulator, and fold the chunks in index order
  // afterwards — identical summation tree for any lane count.
  const std::size_t num_chunks = (batch + kGradChunk - 1) / kGradChunk;
  const std::size_t wsize = out_channels_ * patch;
  // Accumulators live in the *calling* thread's workspace; each chunk owns
  // a disjoint slice (zeroed by its writer), so lanes never collide and the
  // call allocates nothing in steady state.
  float* dw_acc = common::Workspace::floats(common::Workspace::kConvGradW,
                                            num_chunks * wsize);
  float* db_acc = common::Workspace::floats(common::Workspace::kConvGradB,
                                            num_chunks * out_channels_);

  common::global_parallel_for(1, num_chunks, [&](std::size_t c0,
                                                 std::size_t c1) {
    float* columns = common::Workspace::floats(
        common::Workspace::kConvColumns, patch * positions);
    float* columns_t = common::Workspace::floats(
        common::Workspace::kConvColumnsT, patch * positions);
    float* dcols = common::Workspace::floats(common::Workspace::kConvDcols,
                                             patch * positions);
    for (std::size_t chunk = c0; chunk < c1; ++chunk) {
      float* dw = dw_acc + chunk * wsize;
      float* db = db_acc + chunk * out_channels_;
      std::fill(dw, dw + wsize, 0.0f);
      std::fill(db, db + out_channels_, 0.0f);
      const std::size_t n_end = std::min(batch, (chunk + 1) * kGradChunk);
      for (std::size_t n = chunk * kGradChunk; n < n_end; ++n) {
        // This image's output gradient is already an (out_c × positions)
        // matrix in place — no staging copy needed with the raw GEMM core.
        const float* dy = gd + n * out_channels_ * positions;

        // db += row sums of dy.
        for (std::size_t c = 0; c < out_channels_; ++c) {
          float acc = 0.0f;
          for (std::size_t p = 0; p < positions; ++p)
            acc += dy[c * positions + p];
          db[c] += acc;
        }

        // dW += dy · colsᵀ ; dcols = Wᵀ · dy, scattered back via col2im.
        tensor::im2col_into(in + n * chw, geom, columns);
        tensor::transpose_raw(columns, patch, positions, columns_t);
        tensor::gemm_raw(out_channels_, positions, patch, 1.0f, dy, columns_t,
                         1.0f, dw);
        tensor::gemm_raw(patch, out_channels_, positions, 1.0f, wtd, dy, 0.0f,
                         dcols);
        tensor::col2im_accumulate_into(dcols, geom, gi + n * chw);
      }
    }
  });

  auto gw = grad_weight_.data();
  auto gb = grad_bias_.data();
  for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const float* dw = dw_acc + chunk * wsize;
    const float* db = db_acc + chunk * out_channels_;
    for (std::size_t i = 0; i < wsize; ++i) gw[i] += dw[i];
    for (std::size_t c = 0; c < out_channels_; ++c) gb[c] += db[c];
  }
  return grad_input;
}

std::vector<Tensor*> Conv2d::parameters() { return {&weight_, &bias_}; }
std::vector<Tensor*> Conv2d::gradients() {
  return {&grad_weight_, &grad_bias_};
}

Shape Conv2d::output_shape(const Shape& input) const {
  const ConvGeometry geom = geometry(input);
  return Shape{input[0], out_channels_, geom.out_h(), geom.out_w()};
}

FlopCount Conv2d::flops(const Shape& input) const {
  const ConvGeometry geom = geometry(input);
  const std::uint64_t batch = input[0];
  const std::uint64_t mac = 2ULL * batch * out_channels_ *
                            geom.patch_size() * geom.out_positions();
  const std::uint64_t bias_adds = batch * out_channels_ * geom.out_positions();
  // Backward runs two GEMMs of the forward size (dW and dcols) plus col2im.
  return FlopCount{mac + bias_adds, 2 * mac + bias_adds};
}

std::unique_ptr<Layer> Conv2d::clone() const {
  return std::make_unique<Conv2d>(*this);
}

}  // namespace gsfl::nn
