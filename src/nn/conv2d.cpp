#include "gsfl/nn/conv2d.hpp"

#include "gsfl/nn/init.hpp"
#include "gsfl/tensor/gemm.hpp"

namespace gsfl::nn {

using tensor::ConvGeometry;
using tensor::Trans;

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               common::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Shape{out_channels, in_channels * kernel * kernel}),
      bias_(Shape{out_channels}),
      grad_weight_(Shape{out_channels, in_channels * kernel * kernel}),
      grad_bias_(Shape{out_channels}) {
  GSFL_EXPECT(in_channels > 0 && out_channels > 0 && kernel > 0 &&
              stride > 0);
  he_normal(weight_, in_channels * kernel * kernel, rng);
}

std::string Conv2d::name() const {
  return "conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ",k" + std::to_string(kernel_) +
         ",s" + std::to_string(stride_) + ",p" + std::to_string(pad_) + ")";
}

ConvGeometry Conv2d::geometry(const Shape& input) const {
  GSFL_EXPECT(input.rank() == 4);
  GSFL_EXPECT_MSG(input[1] == in_channels_, "conv2d channel mismatch");
  return ConvGeometry{.in_channels = in_channels_,
                      .in_h = input[2],
                      .in_w = input[3],
                      .kernel = kernel_,
                      .stride = stride_,
                      .pad = pad_};
}

Tensor Conv2d::forward(const Tensor& input, bool /*train*/) {
  const ConvGeometry geom = geometry(input.shape());
  const std::size_t batch = input.shape()[0];
  const std::size_t oh = geom.out_h();
  const std::size_t ow = geom.out_w();

  cached_input_shape_ = input.shape();
  cached_columns_.clear();
  cached_columns_.reserve(batch);

  Tensor out(Shape{batch, out_channels_, oh, ow});
  auto od = out.data();
  const auto bd = bias_.data();
  const std::size_t positions = oh * ow;

  for (std::size_t n = 0; n < batch; ++n) {
    cached_columns_.push_back(tensor::im2col(input, n, geom));
    // (out_c × patch) · (patch × positions) → (out_c × positions)
    Tensor result = tensor::matmul(weight_, cached_columns_.back());
    const auto rd = result.data();
    float* dst = od.data() + n * out_channels_ * positions;
    for (std::size_t c = 0; c < out_channels_; ++c) {
      const float b = bd[c];
      for (std::size_t p = 0; p < positions; ++p) {
        dst[c * positions + p] = rd[c * positions + p] + b;
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  GSFL_EXPECT_MSG(cached_input_shape_.rank() == 4,
                  "backward() requires a prior forward()");
  const ConvGeometry geom = geometry(cached_input_shape_);
  const std::size_t batch = cached_input_shape_[0];
  const std::size_t positions = geom.out_positions();
  GSFL_EXPECT(grad_output.shape() ==
              Shape({batch, out_channels_, geom.out_h(), geom.out_w()}));
  GSFL_EXPECT(cached_columns_.size() == batch);

  Tensor grad_input(cached_input_shape_);
  const auto gd = grad_output.data();
  auto gb = grad_bias_.data();

  for (std::size_t n = 0; n < batch; ++n) {
    // View this image's output gradient as an (out_c × positions) matrix.
    Tensor dy(Shape{out_channels_, positions});
    auto dyd = dy.data();
    const float* src = gd.data() + n * out_channels_ * positions;
    std::copy(src, src + out_channels_ * positions, dyd.begin());

    // db += row sums of dy.
    for (std::size_t c = 0; c < out_channels_; ++c) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < positions; ++p) acc += dyd[c * positions + p];
      gb[c] += acc;
    }

    // dW += dy · colsᵀ ; dcols = Wᵀ · dy, scattered back via col2im.
    tensor::gemm(1.0f, dy, Trans::kNo, cached_columns_[n], Trans::kYes, 1.0f,
                 grad_weight_);
    Tensor dcols = tensor::matmul(weight_, dy, Trans::kYes, Trans::kNo);
    tensor::col2im_accumulate(dcols, geom, grad_input, n);
  }
  return grad_input;
}

std::vector<Tensor*> Conv2d::parameters() { return {&weight_, &bias_}; }
std::vector<Tensor*> Conv2d::gradients() {
  return {&grad_weight_, &grad_bias_};
}

Shape Conv2d::output_shape(const Shape& input) const {
  const ConvGeometry geom = geometry(input);
  return Shape{input[0], out_channels_, geom.out_h(), geom.out_w()};
}

FlopCount Conv2d::flops(const Shape& input) const {
  const ConvGeometry geom = geometry(input);
  const std::uint64_t batch = input[0];
  const std::uint64_t mac = 2ULL * batch * out_channels_ *
                            geom.patch_size() * geom.out_positions();
  const std::uint64_t bias_adds = batch * out_channels_ * geom.out_positions();
  // Backward runs two GEMMs of the forward size (dW and dcols) plus col2im.
  return FlopCount{mac + bias_adds, 2 * mac + bias_adds};
}

std::unique_ptr<Layer> Conv2d::clone() const {
  return std::make_unique<Conv2d>(*this);
}

}  // namespace gsfl::nn
