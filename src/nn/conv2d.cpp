#include "gsfl/nn/conv2d.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "gsfl/common/thread_pool.hpp"
#include "gsfl/common/workspace.hpp"
#include "gsfl/nn/init.hpp"
#include "gsfl/tensor/gemm.hpp"
#include "gsfl/tensor/microkernel.hpp"

namespace gsfl::nn {

using tensor::ConvGeometry;
using tensor::Trans;
namespace micro = tensor::micro;

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               common::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Shape{out_channels, in_channels * kernel * kernel}),
      bias_(Shape{out_channels}),
      grad_weight_(Shape{out_channels, in_channels * kernel * kernel}),
      grad_bias_(Shape{out_channels}) {
  GSFL_EXPECT(in_channels > 0 && out_channels > 0 && kernel > 0 &&
              stride > 0);
  he_normal(weight_, in_channels * kernel * kernel, rng);
}

std::string Conv2d::name() const {
  return "conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ",k" + std::to_string(kernel_) +
         ",s" + std::to_string(stride_) + ",p" + std::to_string(pad_) + ")";
}

ConvGeometry Conv2d::geometry(const Shape& input) const {
  GSFL_EXPECT(input.rank() == 4);
  GSFL_EXPECT_MSG(input[1] == in_channels_, "conv2d channel mismatch");
  return ConvGeometry{.in_channels = in_channels_,
                      .in_h = input[2],
                      .in_w = input[3],
                      .kernel = kernel_,
                      .stride = stride_,
                      .pad = pad_};
}

const tensor::PackedOperand& Conv2d::ensure_packed() {
  const std::size_t patch = in_channels_ * kernel_ * kernel_;
  const std::uint64_t version = std::as_const(weight_).version();
  if (packed_weight_ == nullptr || packed_version_ != version) {
    // Copy-on-write: clones sharing the old panel keep reading it; this
    // layer swaps in a freshly packed one.
    auto packed = std::make_shared<tensor::PackedOperand>();
    packed->pack_a(std::as_const(weight_).data().data(), Trans::kNo,
                   out_channels_, patch);
    packed_weight_ = std::move(packed);
    packed_version_ = version;
  }
  return *packed_weight_;
}

void Conv2d::prepack() { (void)ensure_packed(); }

void Conv2d::fold_batchnorm(std::span<const float> gamma,
                            std::span<const float> shift,
                            std::span<const float> mean,
                            std::span<const float> var, float epsilon) {
  GSFL_EXPECT_MSG(!bn_folded_, "fold_batchnorm() called twice");
  GSFL_EXPECT_MSG(gamma.size() == out_channels_ &&
                      shift.size() == out_channels_ &&
                      mean.size() == out_channels_ &&
                      var.size() == out_channels_,
                  "fold_batchnorm operand size must match out_channels");
  bn_gamma_.assign(gamma.begin(), gamma.end());
  bn_shift_.assign(shift.begin(), shift.end());
  bn_mean_.assign(mean.begin(), mean.end());
  bn_inv_std_.resize(out_channels_);
  for (std::size_t c = 0; c < out_channels_; ++c) {
    // Same expression BatchNorm2d's eval pass computes — the fold must
    // reproduce its arithmetic bitwise.
    bn_inv_std_[c] = 1.0f / std::sqrt(var[c] + epsilon);
  }
  bn_folded_ = true;
}

Tensor Conv2d::forward_impl(const Tensor& input, bool train,
                            bool fuse_relu) {
  GSFL_EXPECT_MSG(!(train && bn_folded_),
                  "training forward on a batchnorm-folded conv");
  const ConvGeometry geom = geometry(input.shape());
  const std::size_t batch = input.shape()[0];
  const std::size_t positions = geom.out_positions();
  const std::size_t patch = geom.patch_size();
  const std::size_t chw = in_channels_ * geom.in_h * geom.in_w;

  // Only backward() reads the cache; evaluation passes skip the copy — and
  // invalidate it, so a backward() issued after an eval forward fails loudly
  // instead of silently differentiating against a stale training batch.
  if (train) {
    cached_input_ = input;
  } else {
    cached_input_ = Tensor();
  }

  Tensor out(Shape{batch, out_channels_, geom.out_h(), geom.out_w()});
  float* od = out.data().data();
  const float* in = input.data().data();

  // One batched GEMM over the whole im2col matrix, driven on the raw panel
  // kernels: the weight panel is shared read-only; each sample then flows
  // unfold → pack → macrokernel while its columns are still cache-hot,
  // writing its NCHW output slice directly (the im2col matrix's per-sample
  // column blocks never need to coexist). The per-channel bias — plus the
  // frozen batch-norm affine when folded, and the ReLU clamp when fused —
  // rides the GEMM write-back epilogue, so no pass pre-fills or
  // post-processes the output. Eval forwards ride the persistent packed
  // panel, re-built only when the weight's version moved; training forwards
  // re-pack into thread scratch per call, because the version key cannot
  // see writes made through a data() span the caller is still holding
  // (exactly what a numeric gradient checker or a fused optimizer kernel
  // does mid-step).
  const float* pw;
  if (train) {
    float* fresh = common::Workspace::floats(
        common::Workspace::kGemmPackA,
        micro::packed_a_floats(out_channels_, patch));
    micro::pack_a(std::as_const(weight_).data().data(), patch, out_channels_,
                  patch, fresh);
    pw = fresh;
  } else {
    pw = ensure_packed().panel_f32();
  }
  micro::Epilogue ep{.kind = fuse_relu ? micro::Epilogue::Kind::kBiasRelu
                                       : micro::Epilogue::Kind::kBias,
                     .per_row = true,
                     .bias = std::as_const(bias_).data().data()};
  if (bn_folded_) {
    ep.kind = fuse_relu ? micro::Epilogue::Kind::kBiasBnRelu
                        : micro::Epilogue::Kind::kBiasBn;
    ep.bn_gamma = bn_gamma_.data();
    ep.bn_mean = bn_mean_.data();
    ep.bn_inv_std = bn_inv_std_.data();
    ep.bn_shift = bn_shift_.data();
  }

  common::global_parallel_for(1, batch, [&](std::size_t b0, std::size_t b1) {
    float* columns = common::Workspace::floats(
        common::Workspace::kConvColumns, patch * positions);
    float* pb = common::Workspace::floats(
        common::Workspace::kGemmPack, micro::packed_b_floats(patch,
                                                             positions));
    for (std::size_t n = b0; n < b1; ++n) {
      tensor::im2col_into(in + n * chw, geom, columns);
      micro::pack_b(columns, positions, patch, positions, pb);
      micro::macrokernel(out_channels_, positions, patch, 1.0f, pw, pb, 0.0f,
                         od + n * out_channels_ * positions, positions, ep);
    }
  });
  return out;
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  last_forward_fused_ = false;
  return forward_impl(input, train, /*fuse_relu=*/false);
}

Tensor Conv2d::forward_fused_relu(const Tensor& input, bool train) {
  last_forward_fused_ = true;
  Tensor out = forward_impl(input, train, /*fuse_relu=*/true);
  if (train) {
    cached_fused_output_ = out;
  } else {
    cached_fused_output_ = Tensor();
  }
  return out;
}

Tensor Conv2d::backward_fused_relu(const Tensor& grad_output) {
  GSFL_EXPECT_MSG(last_forward_fused_,
                  "backward_fused_relu() requires a fused forward");
  GSFL_EXPECT(grad_output.shape() == cached_fused_output_.shape());
  // The Relu derivative (y > 0) rides the dx pack of dy and the dW/db
  // restage copy — no masked-dy tensor is materialized and dy is swept zero
  // extra times. Bitwise identical to relu_mask() + backward(): masked
  // entries enter every fold as the same +0.0f.
  return backward_impl(grad_output, cached_fused_output_.data().data());
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  return backward_impl(grad_output, nullptr);
}

Tensor Conv2d::backward_impl(const Tensor& grad_output, const float* relu_y) {
  GSFL_EXPECT_MSG(cached_input_.shape().rank() == 4,
                  "backward() requires a prior training-mode forward()");
  const ConvGeometry geom = geometry(cached_input_.shape());
  const std::size_t batch = cached_input_.shape()[0];
  const std::size_t positions = geom.out_positions();
  const std::size_t patch = geom.patch_size();
  const std::size_t chw = in_channels_ * geom.in_h * geom.in_w;
  const std::size_t batch_pos = batch * positions;
  GSFL_EXPECT(grad_output.shape() ==
              Shape({batch, out_channels_, geom.out_h(), geom.out_w()}));

  Tensor grad_input(cached_input_.shape());
  const float* gd = grad_output.data().data();
  const float* in = std::as_const(cached_input_).data().data();
  float* gi = grad_input.data().data();

  // dx: dcols_n = Wᵀ · dy_n per sample, fused with the col2im scatter while
  // the column gradients are cache-hot. Wᵀ is packed once (the transpose is
  // absorbed into packing) and shared read-only; each sample's dy block is
  // already an (out_c × positions) matrix in place, so the per-sample B
  // panel packs straight from the gradient tensor. Samples write disjoint
  // grad_input slices.
  float* pwt = common::Workspace::floats(
      common::Workspace::kGemmPackA, micro::packed_a_floats(patch,
                                                            out_channels_));
  // std::as_const: a read of W must not bump its version — that would
  // force a needless repack of the persistent forward panel.
  micro::pack_a_trans(std::as_const(weight_).data().data(), patch, patch,
                      out_channels_, pwt);

  common::global_parallel_for(1, batch, [&](std::size_t b0, std::size_t b1) {
    float* pb = common::Workspace::floats(
        common::Workspace::kGemmPack, micro::packed_b_floats(out_channels_,
                                                             positions));
    float* dcols = common::Workspace::floats(common::Workspace::kConvDcols,
                                             patch * positions);
    for (std::size_t n = b0; n < b1; ++n) {
      const std::size_t off = n * out_channels_ * positions;
      if (relu_y == nullptr) {
        micro::pack_b(gd + off, positions, out_channels_, positions, pb);
      } else {
        micro::pack_b_mask(gd + off, relu_y + off, positions, out_channels_,
                           positions, pb);
      }
      micro::macrokernel(patch, positions, out_channels_, 1.0f, pwt, pb, 0.0f,
                         dcols, positions);
      tensor::col2im_accumulate_into(dcols, geom, gi + n * chw);
    }
  });

  // dW and db reduce over the batch. Restage dy to channel-major
  // (out_c × batch·positions) — the fused path folds the Relu mask into
  // this copy, so the staged dy is already masked — and rebuild the batched
  // im2col matrix (the input is k²× smaller than the unfolded columns, so
  // re-unfolding beats caching), then both reductions become single
  // fixed-order folds: db sums each channel strip in ascending index order,
  // and dW is one batched GEMM whose ascending-k accumulation
  // (k = batch·positions) *is* the batch reduction — the same order for any
  // lane count.
  float* dy = common::Workspace::floats(common::Workspace::kConvStage,
                                        out_channels_ * batch_pos);
  float* columns = common::Workspace::floats(common::Workspace::kConvColumns,
                                             patch * batch_pos);
  common::global_parallel_for(1, batch, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t n = b0; n < b1; ++n) {
      const float* src = gd + n * out_channels_ * positions;
      if (relu_y == nullptr) {
        for (std::size_t c = 0; c < out_channels_; ++c) {
          std::copy(src + c * positions, src + (c + 1) * positions,
                    dy + c * batch_pos + n * positions);
        }
      } else {
        const float* y = relu_y + n * out_channels_ * positions;
        for (std::size_t c = 0; c < out_channels_; ++c) {
          float* dst = dy + c * batch_pos + n * positions;
          for (std::size_t t = 0; t < positions; ++t) {
            const std::size_t idx = c * positions + t;
            dst[t] = y[idx] > 0.0f ? src[idx] : 0.0f;
          }
        }
      }
      tensor::im2col_into(in + n * chw, geom, columns + n * positions,
                          batch_pos);
    }
  });

  float* gb = grad_bias_.data().data();
  common::global_parallel_for(1, out_channels_, [&](std::size_t c0,
                                                    std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      const float* row = dy + c * batch_pos;
      float acc = 0.0f;
      for (std::size_t t = 0; t < batch_pos; ++t) acc += row[t];
      gb[c] += acc;
    }
  });

  tensor::gemm_raw(out_channels_, batch_pos, patch, 1.0f, dy, Trans::kNo,
                   columns, Trans::kYes, 1.0f, grad_weight_.data().data());
  return grad_input;
}

std::vector<Tensor*> Conv2d::parameters() { return {&weight_, &bias_}; }
std::vector<Tensor*> Conv2d::gradients() {
  return {&grad_weight_, &grad_bias_};
}

Shape Conv2d::output_shape(const Shape& input) const {
  const ConvGeometry geom = geometry(input);
  return Shape{input[0], out_channels_, geom.out_h(), geom.out_w()};
}

FlopCount Conv2d::flops(const Shape& input) const {
  const ConvGeometry geom = geometry(input);
  const std::uint64_t batch = input[0];
  const std::uint64_t mac = 2ULL * batch * out_channels_ *
                            geom.patch_size() * geom.out_positions();
  const std::uint64_t bias_adds = batch * out_channels_ * geom.out_positions();
  // Backward runs two GEMMs of the forward size (dW and dcols) plus col2im.
  return FlopCount{mac + bias_adds, 2 * mac + bias_adds};
}

std::unique_ptr<Layer> Conv2d::clone() const {
  return std::make_unique<Conv2d>(*this);
}

}  // namespace gsfl::nn
