#include "gsfl/nn/dense.hpp"

#include <memory>
#include <utility>

#include "gsfl/nn/init.hpp"
#include "gsfl/tensor/gemm.hpp"

namespace gsfl::nn {

using tensor::Trans;

Dense::Dense(std::size_t in_features, std::size_t out_features,
             common::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      grad_weight_(Shape{out_features, in_features}),
      grad_bias_(Shape{out_features}) {
  GSFL_EXPECT(in_features > 0 && out_features > 0);
  he_normal(weight_, in_features, rng);
}

std::string Dense::name() const {
  return "dense(" + std::to_string(in_features_) + "->" +
         std::to_string(out_features_) + ")";
}

const tensor::PackedOperand& Dense::ensure_packed() {
  const bool need_q8 = forward_precision_ == tensor::GemmPrecision::kInt8;
  const std::uint64_t version = std::as_const(weight_).version();
  if (packed_weight_ == nullptr || packed_version_ != version ||
      (need_q8 && !packed_weight_->has_q8())) {
    // Copy-on-write: clones sharing the old panel keep reading it; this
    // layer swaps in a freshly packed one.
    auto packed = std::make_shared<tensor::PackedOperand>();
    const float* w = std::as_const(weight_).data().data();
    packed->pack_b(w, Trans::kYes, in_features_, out_features_);
    if (need_q8) {
      packed->pack_b_q8(w, Trans::kYes, in_features_, out_features_);
    }
    packed_weight_ = std::move(packed);
    packed_version_ = version;
  }
  return *packed_weight_;
}

void Dense::prepack() { (void)ensure_packed(); }

Tensor Dense::forward_impl(const Tensor& input, bool train, bool fuse_relu) {
  GSFL_EXPECT(input.shape().rank() == 2);
  GSFL_EXPECT_MSG(input.shape()[1] == in_features_,
                  "dense input width mismatch");
  if (train) {
    cached_input_ = input;
  } else {
    // Eval forwards copy nothing and leave no stale activation behind, so
    // a backward without a training forward fails loudly.
    cached_input_ = Tensor();
  }
  // y = x · Wᵀ with the per-column bias (and, when fused, the ReLU clamp)
  // folded into the GEMM write-back epilogue; the transpose is absorbed into
  // panel packing either way — no staging copy of W, no separate bias or
  // activation pass over the output. Eval forwards ride the persistent
  // packed panel, re-built only when the weight's version moved; training
  // forwards re-pack per call, because the version key cannot see writes
  // made through a data() span the caller is still holding (exactly what a
  // numeric gradient checker or a fused optimizer kernel does mid-step).
  const std::size_t batch = input.shape()[0];
  Tensor out(Shape{batch, out_features_});
  const tensor::micro::Epilogue ep{
      .kind = fuse_relu ? tensor::micro::Epilogue::Kind::kBiasRelu
                        : tensor::micro::Epilogue::Kind::kBias,
      .per_row = false,
      .bias = std::as_const(bias_).data().data()};
  if (train) {
    tensor::gemm_raw(batch, in_features_, out_features_, 1.0f,
                     std::as_const(input).data().data(), Trans::kNo,
                     std::as_const(weight_).data().data(), Trans::kYes, 0.0f,
                     out.data().data(), ep, forward_precision_);
  } else {
    tensor::gemm_packed(batch, in_features_, out_features_, 1.0f,
                        std::as_const(input).data().data(), Trans::kNo,
                        ensure_packed(), 0.0f, out.data().data(), ep,
                        forward_precision_);
  }
  return out;
}

Tensor Dense::forward(const Tensor& input, bool train) {
  last_forward_fused_ = false;
  return forward_impl(input, train, /*fuse_relu=*/false);
}

Tensor Dense::forward_fused_relu(const Tensor& input, bool train) {
  last_forward_fused_ = true;
  Tensor out = forward_impl(input, train, /*fuse_relu=*/true);
  // Only backward reads the cache; eval passes skip the copy and
  // invalidate it, so a backward after an eval forward fails loudly.
  if (train) {
    cached_fused_output_ = out;
  } else {
    cached_fused_output_ = Tensor();
  }
  return out;
}

Tensor Dense::backward_fused_relu(const Tensor& grad_output) {
  GSFL_EXPECT_MSG(last_forward_fused_,
                  "backward_fused_relu() requires a fused forward");
  GSFL_EXPECT(grad_output.shape() == cached_fused_output_.shape());
  // The Relu derivative (y > 0) rides the dW/dx packing pass and the db
  // fold — no masked-dy tensor is materialized and dy is swept zero extra
  // times. Bitwise identical to relu_mask() + backward(): masked entries
  // enter every fold as the same +0.0f.
  return backward_impl(grad_output, cached_fused_output_.data().data());
}

Tensor Dense::backward(const Tensor& grad_output) {
  return backward_impl(grad_output, nullptr);
}

Tensor Dense::backward_impl(const Tensor& grad_output, const float* relu_y) {
  GSFL_EXPECT(grad_output.shape().rank() == 2);
  GSFL_EXPECT(grad_output.shape()[1] == out_features_);
  GSFL_EXPECT_MSG(cached_input_.shape().rank() == 2,
                  "backward() requires a prior training-mode forward()");
  GSFL_EXPECT(grad_output.shape()[0] == cached_input_.shape()[0]);

  // dW += dyᵀ · x ; db += column sums of dy ; dx = dy · W. All three run on
  // the raw packed path: transposes — and, when fused, the dy relu-mask —
  // fold into packing, and the only fresh tensor is the returned dx.
  const std::size_t batch = grad_output.shape()[0];
  tensor::gemm_raw(out_features_, batch, in_features_, 1.0f,
                   grad_output.data().data(), Trans::kYes, relu_y,
                   std::as_const(cached_input_).data().data(), Trans::kNo,
                   1.0f, grad_weight_.data().data(), {});
  const auto gd = grad_output.data();
  auto gb = grad_bias_.data();
  if (relu_y == nullptr) {
    for (std::size_t i = 0; i < batch; ++i) {
      for (std::size_t j = 0; j < out_features_; ++j) {
        gb[j] += gd[i * out_features_ + j];
      }
    }
  } else {
    for (std::size_t i = 0; i < batch; ++i) {
      for (std::size_t j = 0; j < out_features_; ++j) {
        const std::size_t t = i * out_features_ + j;
        gb[j] += relu_y[t] > 0.0f ? gd[t] : 0.0f;
      }
    }
  }
  Tensor dx(Shape{batch, in_features_});
  // std::as_const: a read of W must not bump its version — that would
  // force a needless repack of the persistent forward panel.
  tensor::gemm_raw(batch, out_features_, in_features_, 1.0f,
                   grad_output.data().data(), Trans::kNo, relu_y,
                   std::as_const(weight_).data().data(), Trans::kNo, 0.0f,
                   dx.data().data(), {});
  return dx;
}

std::vector<Tensor*> Dense::parameters() { return {&weight_, &bias_}; }
std::vector<Tensor*> Dense::gradients() {
  return {&grad_weight_, &grad_bias_};
}

Shape Dense::output_shape(const Shape& input) const {
  GSFL_EXPECT(input.rank() == 2 && input[1] == in_features_);
  return Shape{input[0], out_features_};
}

FlopCount Dense::flops(const Shape& input) const {
  GSFL_EXPECT(input.rank() == 2 && input[1] == in_features_);
  const std::uint64_t batch = input[0];
  const std::uint64_t mac = 2ULL * batch * in_features_ * out_features_;
  // Backward: dW (one GEMM) + dx (one GEMM) + bias reduction.
  return FlopCount{mac + batch * out_features_,
                   2 * mac + batch * out_features_};
}

std::unique_ptr<Layer> Dense::clone() const {
  return std::make_unique<Dense>(*this);
}

}  // namespace gsfl::nn
