#include "gsfl/nn/dropout.hpp"

namespace gsfl::nn {

Dropout::Dropout(float drop_probability, common::Rng& rng)
    : drop_probability_(drop_probability), rng_(rng.fork(0xd409u)) {
  GSFL_EXPECT(drop_probability >= 0.0f && drop_probability < 1.0f);
}

std::string Dropout::name() const {
  return "dropout(p=" + std::to_string(drop_probability_) + ")";
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  last_was_train_ = train;
  if (!train || drop_probability_ == 0.0f) {
    // Identity at eval — and the mask from any earlier training pass is
    // cleared so it cannot leak into a later (erroneous) backward.
    if (!train) cached_mask_ = Tensor();
    return input;
  }
  const float keep = 1.0f - drop_probability_;
  const float scale = 1.0f / keep;
  cached_mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  const auto src = input.data();
  auto mask = cached_mask_.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float m = rng_.bernoulli(keep) ? scale : 0.0f;
    mask[i] = m;
    dst[i] = src[i] * m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  // House contract: a backward whose forward ran in eval mode fails loudly
  // — silently passing the gradient through would differentiate a different
  // function (identity) than the one training executes (masked scale).
  GSFL_EXPECT_MSG(last_was_train_,
                  "backward() requires a prior training-mode forward()");
  if (drop_probability_ == 0.0f) {
    return grad_output;
  }
  GSFL_EXPECT_MSG(grad_output.shape() == cached_mask_.shape(),
                  "dropout backward shape mismatch (missing forward?)");
  Tensor grad_input = grad_output;
  grad_input.mul_(cached_mask_);
  return grad_input;
}

}  // namespace gsfl::nn
