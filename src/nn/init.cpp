#include "gsfl/nn/init.hpp"

#include <cmath>

namespace gsfl::nn {

void he_normal(tensor::Tensor& weights, std::size_t fan_in,
               common::Rng& rng) {
  GSFL_EXPECT(fan_in > 0);
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& w : weights.data()) {
    w = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void xavier_uniform(tensor::Tensor& weights, std::size_t fan_in,
                    std::size_t fan_out, common::Rng& rng) {
  GSFL_EXPECT(fan_in > 0 && fan_out > 0);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (auto& w : weights.data()) {
    w = static_cast<float>(rng.uniform(-limit, limit));
  }
}

}  // namespace gsfl::nn
