#include "gsfl/nn/loss.hpp"

#include <cmath>

#include "gsfl/common/expect.hpp"

namespace gsfl::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor softmax(const Tensor& logits) {
  GSFL_EXPECT(logits.shape().rank() == 2);
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  Tensor probs(logits.shape());
  const auto src = logits.data();
  auto dst = probs.data();
  for (std::size_t i = 0; i < batch; ++i) {
    const float* row = src.data() + i * classes;
    float* out = dst.data() + i * classes;
    float row_max = row[0];
    for (std::size_t j = 1; j < classes; ++j) row_max = std::max(row_max, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < classes; ++j) {
      out[j] = std::exp(row[j] - row_max);
      denom += out[j];
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < classes; ++j) out[j] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  GSFL_EXPECT(logits.shape().rank() == 2);
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  GSFL_EXPECT_MSG(labels.size() == batch,
                  "one label per logits row required");
  GSFL_EXPECT(batch > 0);

  LossResult result;
  result.probabilities = softmax(logits);
  result.grad_logits = result.probabilities;

  const auto probs = result.probabilities.data();
  auto grad = result.grad_logits.data();
  const auto inv_batch = static_cast<float>(1.0 / static_cast<double>(batch));
  double loss = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    const auto label = static_cast<std::size_t>(labels[i]);
    GSFL_EXPECT_MSG(label < classes, "label out of range");
    const double p = std::max(static_cast<double>(probs[i * classes + label]),
                              1e-12);
    loss -= std::log(p);
    grad[i * classes + label] -= 1.0f;
  }
  for (std::size_t i = 0; i < batch * classes; ++i) grad[i] *= inv_batch;
  result.loss = loss / static_cast<double>(batch);
  return result;
}

double accuracy(const Tensor& logits, std::span<const std::int32_t> labels) {
  GSFL_EXPECT(logits.shape().rank() == 2);
  GSFL_EXPECT(labels.size() == logits.shape()[0]);
  if (labels.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (logits.argmax_row(i) == static_cast<std::size_t>(labels[i])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace gsfl::nn
