#include "gsfl/nn/model_zoo.hpp"

#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/batchnorm.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/dropout.hpp"
#include "gsfl/nn/flatten.hpp"
#include "gsfl/nn/pooling.hpp"

namespace gsfl::nn {

Sequential make_gtsrb_cnn(const CnnConfig& config, common::Rng& rng) {
  GSFL_EXPECT(config.image_size >= 8);
  GSFL_EXPECT(config.image_size % 4 == 0);
  GSFL_EXPECT(config.classes >= 2);
  const bool three_blocks = config.conv3_filters > 0;
  if (three_blocks) GSFL_EXPECT(config.image_size % 8 == 0);

  Sequential model;
  model.emplace<Conv2d>(config.in_channels, config.conv1_filters, 3, 1, 1,
                        rng);
  if (config.batch_norm) model.emplace<BatchNorm2d>(config.conv1_filters);
  model.emplace<Relu>();
  model.emplace<MaxPool2d>(2);

  model.emplace<Conv2d>(config.conv1_filters, config.conv2_filters, 3, 1, 1,
                        rng);
  if (config.batch_norm) model.emplace<BatchNorm2d>(config.conv2_filters);
  model.emplace<Relu>();
  model.emplace<MaxPool2d>(2);

  std::size_t spatial = config.image_size / 4;
  std::size_t last_filters = config.conv2_filters;
  if (three_blocks) {
    model.emplace<Conv2d>(config.conv2_filters, config.conv3_filters, 3, 1,
                          1, rng);
    if (config.batch_norm) model.emplace<BatchNorm2d>(config.conv3_filters);
    model.emplace<Relu>();
    model.emplace<MaxPool2d>(2);
    spatial = config.image_size / 8;
    last_filters = config.conv3_filters;
  }

  model.emplace<Flatten>();
  model.emplace<Dense>(last_filters * spatial * spatial, config.hidden, rng);
  model.emplace<Relu>();
  if (config.dropout > 0.0f) model.emplace<Dropout>(config.dropout, rng);
  model.emplace<Dense>(config.hidden, config.classes, rng);
  return model;
}

CnnConfig deep_cnn_config(std::size_t image_size, std::size_t classes) {
  CnnConfig config;
  config.image_size = image_size;
  config.classes = classes;
  config.conv1_filters = 16;
  config.conv2_filters = 32;
  config.conv3_filters = 64;
  config.hidden = 128;
  return config;
}

CnnConfig serving_cnn_config(std::size_t image_size, std::size_t classes) {
  CnnConfig config = deep_cnn_config(image_size, classes);
  config.batch_norm = true;
  config.dropout = 0.25f;
  return config;
}

std::size_t default_cut_layer(const CnnConfig& config) {
  // End of the first conv block: conv (+bn) + relu + pool.
  return config.batch_norm ? 4 : 3;
}

std::size_t cut_layer_count(const CnnConfig& config) {
  const std::size_t blocks = config.conv3_filters > 0 ? 3 : 2;
  std::size_t n = 3 * blocks + 3;  // conv/relu/pool per block + head
  if (config.batch_norm) n += blocks;
  if (config.dropout > 0.0f) n += 1;
  return n + 1;  // final dense
}

Sequential make_mlp(std::size_t in_features, std::vector<std::size_t> hidden,
                    std::size_t out_features, common::Rng& rng) {
  GSFL_EXPECT(in_features > 0 && out_features > 0);
  Sequential model;
  std::size_t width = in_features;
  for (const std::size_t h : hidden) {
    model.emplace<Dense>(width, h, rng);
    model.emplace<Relu>();
    width = h;
  }
  model.emplace<Dense>(width, out_features, rng);
  return model;
}

}  // namespace gsfl::nn
