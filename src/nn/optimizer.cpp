#include "gsfl/nn/optimizer.hpp"

#include <cmath>

#include "gsfl/common/expect.hpp"

namespace gsfl::nn {

using tensor::Tensor;

void Optimizer::attach(std::vector<Tensor*> params,
                       std::vector<Tensor*> grads) {
  GSFL_EXPECT_MSG(params.size() == grads.size(),
                  "parameter/gradient count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    GSFL_EXPECT(params[i] != nullptr && grads[i] != nullptr);
    GSFL_EXPECT_MSG(params[i]->shape() == grads[i]->shape(),
                    "parameter/gradient shape mismatch at slot " +
                        std::to_string(i));
  }
  params_ = std::move(params);
  grads_ = std::move(grads);
}

void Optimizer::step() {
  GSFL_EXPECT_MSG(!params_.empty(), "optimizer not attached to a model");
  begin_step();
  for (std::size_t i = 0; i < params_.size(); ++i) {
    update(i, *params_[i], *grads_[i]);
  }
}

Sgd::Sgd(double lr, double weight_decay)
    : Optimizer(lr), weight_decay_(weight_decay) {
  GSFL_EXPECT(lr > 0.0);
  GSFL_EXPECT(weight_decay >= 0.0);
}

void Sgd::update(std::size_t /*slot*/, Tensor& param, const Tensor& grad) {
  auto p = param.data();
  const auto g = grad.data();
  const auto lr = static_cast<float>(lr_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] -= lr * (g[i] + wd * p[i]);
  }
}

MomentumSgd::MomentumSgd(double lr, double momentum, double weight_decay)
    : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {
  GSFL_EXPECT(lr > 0.0);
  GSFL_EXPECT(momentum >= 0.0 && momentum < 1.0);
}

void MomentumSgd::update(std::size_t slot, Tensor& param, const Tensor& grad) {
  if (velocity_.size() <= slot) velocity_.resize(slot + 1);
  if (velocity_[slot].shape() != param.shape()) {
    velocity_[slot] = Tensor(param.shape());
  }
  auto v = velocity_[slot].data();
  auto p = param.data();
  const auto g = grad.data();
  const auto lr = static_cast<float>(lr_);
  const auto mu = static_cast<float>(momentum_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < p.size(); ++i) {
    v[i] = mu * v[i] + g[i] + wd * p[i];
    p[i] -= lr * v[i];
  }
}

Adam::Adam(double lr, double beta1, double beta2, double epsilon)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  GSFL_EXPECT(lr > 0.0);
  GSFL_EXPECT(beta1 >= 0.0 && beta1 < 1.0);
  GSFL_EXPECT(beta2 >= 0.0 && beta2 < 1.0);
  GSFL_EXPECT(epsilon > 0.0);
}

void Adam::update(std::size_t slot, Tensor& param, const Tensor& grad) {
  if (m_.size() <= slot) {
    m_.resize(slot + 1);
    v_.resize(slot + 1);
  }
  if (m_[slot].shape() != param.shape()) {
    m_[slot] = Tensor(param.shape());
    v_[slot] = Tensor(param.shape());
  }
  auto m = m_[slot].data();
  auto v = v_[slot].data();
  auto p = param.data();
  const auto g = grad.data();
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto bias1 =
      static_cast<float>(1.0 - std::pow(beta1_, static_cast<double>(t_)));
  const auto bias2 =
      static_cast<float>(1.0 - std::pow(beta2_, static_cast<double>(t_)));
  const auto lr = static_cast<float>(lr_);
  const auto eps = static_cast<float>(epsilon_);
  for (std::size_t i = 0; i < p.size(); ++i) {
    m[i] = b1 * m[i] + (1.0f - b1) * g[i];
    v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
    const float m_hat = m[i] / bias1;
    const float v_hat = v[i] / bias2;
    p[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace gsfl::nn
