#include "gsfl/nn/pooling.hpp"

#include <limits>

namespace gsfl::nn {

namespace {

Shape pooled_shape(const Shape& input, std::size_t window,
                   std::size_t stride) {
  GSFL_EXPECT(input.rank() == 4);
  GSFL_EXPECT(input[2] >= window && input[3] >= window);
  const std::size_t oh = (input[2] - window) / stride + 1;
  const std::size_t ow = (input[3] - window) / stride + 1;
  return Shape{input[0], input[1], oh, ow};
}

}  // namespace

MaxPool2d::MaxPool2d(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  GSFL_EXPECT(window_ > 0);
}

std::string MaxPool2d::name() const {
  return "maxpool2d(k" + std::to_string(window_) + ",s" +
         std::to_string(stride_) + ")";
}

Tensor MaxPool2d::forward(const Tensor& input, bool train) {
  const Shape out_shape = pooled_shape(input.shape(), window_, stride_);
  Tensor out(out_shape);
  // Only backward reads the argmax routing; eval forwards allocate no cache
  // and clear any stale one so backward-after-eval fails loudly.
  std::size_t* arg = nullptr;
  if (train) {
    cached_input_shape_ = input.shape();
    cached_argmax_.assign(out.numel(), 0);
    arg = cached_argmax_.data();
  } else {
    cached_input_shape_ = Shape();
    cached_argmax_.clear();
  }

  const std::size_t batch = input.shape()[0];
  const std::size_t channels = input.shape()[1];
  const std::size_t ih = input.shape()[2];
  const std::size_t iw = input.shape()[3];
  const std::size_t oh = out_shape[2];
  const std::size_t ow = out_shape[3];
  const auto src = input.data();
  auto dst = out.data();

  std::size_t out_idx = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const std::size_t plane = (n * channels + c) * ih * iw;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = plane;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const std::size_t idx = plane + iy * iw + ix;
              if (src[idx] > best) {
                best = src[idx];
                best_idx = idx;
              }
            }
          }
          dst[out_idx] = best;
          if (arg != nullptr) arg[out_idx] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  GSFL_EXPECT_MSG(cached_input_shape_.rank() == 4,
                  "backward() requires a prior training-mode forward()");
  GSFL_EXPECT(grad_output.numel() == cached_argmax_.size());
  Tensor grad_input(cached_input_shape_);
  auto gi = grad_input.data();
  const auto go = grad_output.data();
  for (std::size_t i = 0; i < go.size(); ++i) {
    gi[cached_argmax_[i]] += go[i];
  }
  return grad_input;
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  return pooled_shape(input, window_, stride_);
}

FlopCount MaxPool2d::flops(const Shape& input) const {
  const Shape out = pooled_shape(input, window_, stride_);
  const std::uint64_t comparisons = out.numel() * window_ * window_;
  return FlopCount{comparisons, out.numel()};
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(*this);
}

AvgPool2d::AvgPool2d(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  GSFL_EXPECT(window_ > 0);
}

std::string AvgPool2d::name() const {
  return "avgpool2d(k" + std::to_string(window_) + ",s" +
         std::to_string(stride_) + ")";
}

Tensor AvgPool2d::forward(const Tensor& input, bool train) {
  // Backward only needs the input shape; eval forwards clear it so
  // backward-after-eval fails loudly.
  cached_input_shape_ = train ? input.shape() : Shape();
  const Shape out_shape = pooled_shape(input.shape(), window_, stride_);
  Tensor out(out_shape);
  const std::size_t batch = input.shape()[0];
  const std::size_t channels = input.shape()[1];
  const std::size_t ih = input.shape()[2];
  const std::size_t iw = input.shape()[3];
  const std::size_t oh = out_shape[2];
  const std::size_t ow = out_shape[3];
  const float inv_area = 1.0f / static_cast<float>(window_ * window_);
  const auto src = input.data();
  auto dst = out.data();

  std::size_t out_idx = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const std::size_t plane = (n * channels + c) * ih * iw;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              acc += src[plane + (oy * stride_ + ky) * iw + ox * stride_ + kx];
            }
          }
          dst[out_idx] = acc * inv_area;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  GSFL_EXPECT_MSG(cached_input_shape_.rank() == 4,
                  "backward() requires a prior training-mode forward()");
  const Shape out_shape =
      pooled_shape(cached_input_shape_, window_, stride_);
  GSFL_EXPECT(grad_output.shape() == out_shape);

  Tensor grad_input(cached_input_shape_);
  const std::size_t batch = cached_input_shape_[0];
  const std::size_t channels = cached_input_shape_[1];
  const std::size_t ih = cached_input_shape_[2];
  const std::size_t iw = cached_input_shape_[3];
  const std::size_t oh = out_shape[2];
  const std::size_t ow = out_shape[3];
  const float inv_area = 1.0f / static_cast<float>(window_ * window_);
  const auto go = grad_output.data();
  auto gi = grad_input.data();

  std::size_t out_idx = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const std::size_t plane = (n * channels + c) * ih * iw;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
          const float g = go[out_idx] * inv_area;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              gi[plane + (oy * stride_ + ky) * iw + ox * stride_ + kx] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

Shape AvgPool2d::output_shape(const Shape& input) const {
  return pooled_shape(input, window_, stride_);
}

FlopCount AvgPool2d::flops(const Shape& input) const {
  const Shape out = pooled_shape(input, window_, stride_);
  const std::uint64_t adds = out.numel() * window_ * window_;
  return FlopCount{adds, adds};
}

std::unique_ptr<Layer> AvgPool2d::clone() const {
  return std::make_unique<AvgPool2d>(*this);
}

}  // namespace gsfl::nn
