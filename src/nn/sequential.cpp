#include "gsfl/nn/sequential.hpp"

#include <sstream>
#include <utility>

#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/batchnorm.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/dropout.hpp"

namespace gsfl::nn {

Sequential::Sequential(const Sequential& other)
    : fusion_enabled_(other.fusion_enabled_),
      frozen_(other.frozen_),
      skipped_(other.skipped_) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  Sequential copy(other);
  layers_ = std::move(copy.layers_);
  fusion_enabled_ = copy.fusion_enabled_;
  frozen_ = copy.frozen_;
  skipped_ = std::move(copy.skipped_);
  fused_.clear();
  return *this;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  GSFL_EXPECT_MSG(layer != nullptr, "cannot add a null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Layer& Sequential::layer(std::size_t i) {
  GSFL_EXPECT(i < layers_.size());
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  GSFL_EXPECT(i < layers_.size());
  return *layers_[i];
}

void Sequential::refresh_fusion_plan() {
  fused_.assign(layers_.size(), 0);
  if (!fusion_enabled_) return;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (is_skipped(i) || !layers_[i]->can_fuse_relu()) continue;
    // The fusion partner is the next *executed* layer: on a frozen model a
    // folded BatchNorm2d may sit (skipped) between the conv and its Relu.
    std::size_t j = i + 1;
    while (j < layers_.size() && is_skipped(j)) ++j;
    if (j < layers_.size() &&
        dynamic_cast<const Relu*>(layers_[j].get()) != nullptr) {
      fused_[i] = 1;
    }
  }
}

Tensor Sequential::forward(const Tensor& input, bool train) {
  GSFL_EXPECT_MSG(!(frozen_ && train),
                  "training forward() on a frozen model");
  refresh_fusion_plan();
  Tensor x = input;
  for (std::size_t i = 0; i < layers_.size();) {
    if (is_skipped(i)) {
      i += 1;
      continue;
    }
    if (fused_[i]) {
      x = layers_[i]->forward_fused_relu(x, train);
      i += 1;
      while (i < layers_.size() && is_skipped(i)) i += 1;
      i += 1;  // the next executed layer (a Relu) was absorbed
    } else {
      x = layers_[i]->forward(x, train);
      i += 1;
    }
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  GSFL_EXPECT_MSG(!frozen_, "backward() on a frozen model");
  // Mirror the last forward's fusion plan; a backward with no prior forward
  // runs unfused and lets the layers raise their own "requires a prior
  // forward" errors. A fused pair's backward masks dy inside the layer's
  // gradient packing (no masked-dy temporary is materialized anywhere in
  // the stack).
  if (fused_.size() != layers_.size()) fused_.assign(layers_.size(), 0);
  Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i > 0;) {
    --i;
    if (i > 0 && fused_[i - 1]) {
      g = layers_[i - 1]->backward_fused_relu(g);
      --i;  // the Relu at i was absorbed
    } else {
      g = layers_[i]->backward(g);
    }
  }
  return g;
}

void Sequential::zero_grad() {
  for (auto& l : layers_) l->zero_grad();
}

std::vector<Tensor*> Sequential::parameters() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* p : l->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::gradients() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* g : l->gradients()) out.push_back(g);
  }
  return out;
}

std::vector<Tensor*> Sequential::buffers() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* b : l->buffers()) out.push_back(b);
  }
  return out;
}

StateDict Sequential::state() const {
  StateDict out;
  auto& self = const_cast<Sequential&>(*this);
  for (Tensor* p : self.parameters()) out.push_back(*p);
  for (Tensor* b : self.buffers()) out.push_back(*b);
  return out;
}

void Sequential::load_state(const StateDict& state) {
  // A frozen model has batch-norm statistics baked into conv epilogues and
  // serving precision pinned; swapping parameters underneath would silently
  // serve a hybrid of old epilogue and new weights.
  GSFL_EXPECT_MSG(!frozen_, "load_state() on a frozen model");
  auto params = parameters();
  auto bufs = buffers();
  GSFL_EXPECT_MSG(state.size() == params.size() + bufs.size(),
                  "state dict entry count mismatch");
  std::size_t i = 0;
  for (Tensor* p : params) {
    GSFL_EXPECT_MSG(state[i].shape() == p->shape(),
                    "state dict shape mismatch at parameter " +
                        std::to_string(i));
    *p = state[i++];
  }
  for (Tensor* b : bufs) {
    GSFL_EXPECT_MSG(state[i].shape() == b->shape(),
                    "state dict shape mismatch at buffer " +
                        std::to_string(i));
    *b = state[i++];
  }
}

std::size_t Sequential::parameter_count() const {
  auto& self = const_cast<Sequential&>(*this);
  std::size_t n = 0;
  for (const Tensor* p : self.parameters()) n += p->numel();
  return n;
}

std::size_t Sequential::state_bytes() const {
  auto& self = const_cast<Sequential&>(*this);
  std::size_t bytes = 0;
  for (const Tensor* p : self.parameters()) bytes += p->size_bytes();
  for (const Tensor* b : self.buffers()) bytes += b->size_bytes();
  return bytes;
}

Shape Sequential::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

FlopCount Sequential::flops(const Shape& input) const {
  FlopCount total;
  Shape s = input;
  for (const auto& l : layers_) {
    total += l->flops(s);
    s = l->output_shape(s);
  }
  return total;
}

std::vector<Shape> Sequential::layer_output_shapes(const Shape& input) const {
  std::vector<Shape> out;
  out.reserve(layers_.size());
  Shape s = input;
  for (const auto& l : layers_) {
    s = l->output_shape(s);
    out.push_back(s);
  }
  return out;
}

std::string Sequential::summary(const Shape& input) const {
  std::ostringstream os;
  Shape s = input;
  os << "input " << s.to_string() << '\n';
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    s = layers_[i]->output_shape(s);
    os << "  [" << i << "] " << layers_[i]->name() << " -> " << s.to_string()
       << '\n';
  }
  os << "parameters: " << parameter_count();
  return os.str();
}

void Sequential::prepack() {
  for (auto& l : layers_) l->prepack();
}

void Sequential::freeze(tensor::GemmPrecision precision) {
  GSFL_EXPECT_MSG(!frozen_, "freeze() called twice");
  skipped_.assign(layers_.size(), 0);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (dynamic_cast<const Dropout*>(layers_[i].get()) != nullptr) {
      // Identity at eval — elided entirely so requests skip the virtual
      // call and the mask bookkeeping.
      skipped_[i] = 1;
      continue;
    }
    auto* bn = dynamic_cast<BatchNorm2d*>(layers_[i].get());
    if (bn != nullptr && i > 0) {
      auto* conv = dynamic_cast<Conv2d*>(layers_[i - 1].get());
      if (conv != nullptr && !conv->batchnorm_folded()) {
        conv->fold_batchnorm(std::as_const(bn->gamma()).data(),
                             std::as_const(bn->shift()).data(),
                             std::as_const(bn->running_mean()).data(),
                             std::as_const(bn->running_var()).data(),
                             bn->epsilon());
        skipped_[i] = 1;
      }
    }
  }
  if (precision == tensor::GemmPrecision::kInt8) {
    for (auto& l : layers_) {
      if (auto* dense = dynamic_cast<Dense*>(l.get())) {
        dense->set_forward_precision(precision);
      }
    }
  }
  frozen_ = true;
  // Pack every panel now (including the int8 siblings the precision switch
  // just requested) so the first request pays no one-time cost.
  prepack();
}

std::pair<Sequential, Sequential> Sequential::split(std::size_t cut) const {
  GSFL_EXPECT_MSG(!frozen_, "split() on a frozen model");
  GSFL_EXPECT_MSG(cut <= layers_.size(), "cut index beyond model depth");
  Sequential head;
  Sequential tail;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    (i < cut ? head : tail).add(layers_[i]->clone());
  }
  return {std::move(head), std::move(tail)};
}

Sequential Sequential::concatenate(const Sequential& head,
                                   const Sequential& tail) {
  GSFL_EXPECT_MSG(!head.frozen_ && !tail.frozen_,
                  "concatenate() on a frozen model");
  Sequential out(head);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    out.add(tail.layer(i).clone());
  }
  return out;
}

}  // namespace gsfl::nn
