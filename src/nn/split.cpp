#include "gsfl/nn/split.hpp"

namespace gsfl::nn {

SplitModel::SplitModel(const Sequential& full, std::size_t cut_layer)
    : cut_(cut_layer) {
  auto [head, tail] = full.split(cut_layer);
  client_ = std::move(head);
  server_ = std::move(tail);
}

SplitModel::SplitModel(Sequential client_side, Sequential server_side)
    : cut_(client_side.size()),
      client_(std::move(client_side)),
      server_(std::move(server_side)) {}

Tensor SplitModel::client_forward(const Tensor& input, bool train) {
  return client_.forward(input, train);
}

Tensor SplitModel::server_forward(const Tensor& smashed, bool train) {
  return server_.forward(smashed, train);
}

Tensor SplitModel::server_backward(const Tensor& grad_logits) {
  return server_.backward(grad_logits);
}

void SplitModel::client_backward(const Tensor& grad_smashed) {
  if (client_.empty()) return;
  (void)client_.backward(grad_smashed);
}

Tensor SplitModel::forward(const Tensor& input, bool train) {
  return server_.forward(client_.forward(input, train), train);
}

void SplitModel::zero_grad() {
  client_.zero_grad();
  server_.zero_grad();
}

Sequential SplitModel::merged() const {
  return Sequential::concatenate(client_, server_);
}

Shape SplitModel::smashed_shape(const Shape& input) const {
  return client_.output_shape(input);
}

std::size_t SplitModel::smashed_bytes(const Shape& input) const {
  return smashed_shape(input).numel() * sizeof(float);
}

std::size_t SplitModel::client_state_bytes() const {
  return client_.state_bytes();
}

std::size_t SplitModel::server_state_bytes() const {
  return server_.state_bytes();
}

FlopCount SplitModel::client_flops(const Shape& input) const {
  return client_.flops(input);
}

FlopCount SplitModel::server_flops(const Shape& input) const {
  return server_.flops(smashed_shape(input));
}

}  // namespace gsfl::nn
