#include "gsfl/schemes/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

#include "gsfl/common/expect.hpp"
#include "gsfl/common/rng.hpp"
#include "gsfl/common/serial.hpp"

namespace gsfl::schemes {

const char* to_string(AdaptivePolicy policy) {
  switch (policy) {
    case AdaptivePolicy::kGreedy: return "greedy";
    case AdaptivePolicy::kPaper: return "paper";
    case AdaptivePolicy::kBandit: return "bandit";
  }
  return "?";
}

std::optional<AdaptivePolicy> parse_adaptive_policy(std::string_view name) {
  if (name == "greedy") return AdaptivePolicy::kGreedy;
  if (name == "paper") return AdaptivePolicy::kPaper;
  if (name == "bandit") return AdaptivePolicy::kBandit;
  return std::nullopt;
}

AdaptiveController::AdaptiveController(AdaptiveConfig config)
    : config_(config) {
  GSFL_EXPECT_MSG(config_.epsilon >= 0.0 && config_.epsilon < 1.0,
                  "bandit epsilon must be in [0, 1)");
  GSFL_EXPECT(config_.min_cut <= config_.max_cut);
  GSFL_EXPECT(config_.paper_compute_budget > 0.0);
}

void AdaptiveController::set_candidates(std::vector<CutCost> table) {
  all_costs_ = std::move(table);
  std::sort(all_costs_.begin(), all_costs_.end(),
            [](const CutCost& a, const CutCost& b) { return a.cut < b.cut; });
  candidates_.clear();
  for (const CutCost& cost : all_costs_) {
    if (cost.cut >= config_.min_cut && cost.cut <= config_.max_cut) {
      candidates_.push_back(cost);
    }
  }
  arm_pulls_.assign(candidates_.size(), 0);
  arm_mean_.assign(candidates_.size(), 0.0);
}

const CutCost* AdaptiveController::cost_for(std::size_t cut) const {
  for (const CutCost& cost : all_costs_) {
    if (cost.cut == cut) return &cost;
  }
  return nullptr;
}

double AdaptiveController::score_cut(const CutCost& candidate,
                                     const AdaptiveObservation& obs) const {
  // Fit per-unit rates to the observed round: seconds per client flop,
  // per server flop, and per byte on the air, each from the observed cut's
  // cost row. Extrapolating those rates to another cut assumes the fleet's
  // speeds and the channel are cut-invariant — true in the simulator, a
  // first-order model on real radios.
  const CutCost* cur = cost_for(obs.cut);
  if (cur == nullptr) return candidate.client_flops;  // no fit: prefer thin
  const auto rate = [](double seconds, double units) {
    return units > 0.0 ? seconds / units : 0.0;
  };
  const double rc = rate(obs.latency.client_compute, cur->client_flops);
  const double rs = rate(obs.latency.server_compute, cur->server_flops);
  const double wire_cur = cur->smashed_bytes + cur->client_state_bytes;
  const double rw = rate(obs.latency.comm(), wire_cur);
  return rc * candidate.client_flops + rs * candidate.server_flops +
         rw * (candidate.smashed_bytes + candidate.client_state_bytes);
}

AdaptiveDecision AdaptiveController::decide_greedy(
    const AdaptiveObservation& obs) {
  AdaptiveDecision decision;
  decision.cut = obs.cut;
  double best = std::numeric_limits<double>::infinity();
  for (const CutCost& candidate : candidates_) {
    const double score = score_cut(candidate, obs);
    if (score < best) {  // strict: ties keep the lowest cut (ascending scan)
      best = score;
      decision.cut = candidate.cut;
    }
  }
  return decision;
}

AdaptiveDecision AdaptiveController::decide_paper(
    const AdaptiveObservation& obs) {
  // The paper's device-fit heuristic, made online: among the cuts whose
  // client-side flops fit the device budget, take the one that puts the
  // fewest bytes on the air (smashed exchange + model relay); shares then
  // re-balance toward equal group radio time (the §IV allocation step).
  AdaptiveDecision decision;
  decision.cut = obs.cut;
  double budget = std::numeric_limits<double>::infinity();
  if (!candidates_.empty()) {
    const double total =
        candidates_.front().client_flops + candidates_.front().server_flops;
    budget = config_.paper_compute_budget * total;
  }
  double best_wire = std::numeric_limits<double>::infinity();
  bool any_fit = false;
  for (const CutCost& candidate : candidates_) {
    if (candidate.client_flops > budget) continue;
    any_fit = true;
    const double wire = candidate.smashed_bytes + candidate.client_state_bytes;
    if (wire < best_wire) {
      best_wire = wire;
      decision.cut = candidate.cut;
    }
  }
  if (!any_fit && !candidates_.empty()) {
    // Nothing fits the budget: fall back to the thinnest client side.
    double least = std::numeric_limits<double>::infinity();
    for (const CutCost& candidate : candidates_) {
      if (candidate.client_flops < least) {
        least = candidate.client_flops;
        decision.cut = candidate.cut;
      }
    }
  }
  return decision;
}

AdaptiveDecision AdaptiveController::decide_bandit(
    const AdaptiveObservation& obs) {
  AdaptiveDecision decision;
  decision.cut = obs.cut;
  if (candidates_.empty()) return decision;

  // Credit the observation to the arm that produced it (the observed cut
  // may sit outside the filtered table on the very first round).
  for (std::size_t a = 0; a < candidates_.size(); ++a) {
    if (candidates_[a].cut != obs.cut) continue;
    const double n = static_cast<double>(++arm_pulls_[a]);
    arm_mean_[a] += (obs.latency.total() - arm_mean_[a]) / n;
    break;
  }

  // Round-keyed exploration stream: a pure function of (seed, round), so
  // replays — resume, pipeline, retry — redraw the identical decision.
  common::Rng root(config_.seed);
  common::Rng rng = root.fork(obs.round + 1);
  if (config_.epsilon > 0.0 && rng.bernoulli(config_.epsilon)) {
    decision.explored = true;
    decision.cut =
        candidates_[static_cast<std::size_t>(
                        rng.uniform_index(candidates_.size()))]
            .cut;
    return decision;
  }
  // Exploit: first untried arm in cut order, else the best observed mean.
  for (std::size_t a = 0; a < candidates_.size(); ++a) {
    if (arm_pulls_[a] == 0) {
      decision.cut = candidates_[a].cut;
      return decision;
    }
  }
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < candidates_.size(); ++a) {
    if (arm_mean_[a] < best) {
      best = arm_mean_[a];
      decision.cut = candidates_[a].cut;
    }
  }
  return decision;
}

AdaptiveDecision AdaptiveController::decide(const AdaptiveObservation& obs) {
  AdaptiveDecision decision;
  if (candidates_.empty()) {
    decision.cut = obs.cut;  // schemes without a cut: nothing to move
  } else {
    switch (config_.policy) {
      case AdaptivePolicy::kGreedy: decision = decide_greedy(obs); break;
      case AdaptivePolicy::kPaper: decision = decide_paper(obs); break;
      case AdaptivePolicy::kBandit: decision = decide_bandit(obs); break;
    }
  }
  decision.changed = decision.cut != obs.cut;
  // Every policy re-balances shares from the freshly observed chains; the
  // trainer applies it after any cut swap, so the renormalization prices
  // the new cut's cost vector. Schemes without shares ignore the bit.
  decision.rebalance = true;
  ++observed_;
  last_ = decision;
  return decision;
}

void AdaptiveController::save_state(std::ostream& out) const {
  common::serial::write_u64(out, observed_);
  common::serial::write_u64(out, arm_pulls_.size());
  for (std::size_t a = 0; a < arm_pulls_.size(); ++a) {
    common::serial::write_u64(out, arm_pulls_[a]);
    common::serial::write_f64(out, arm_mean_[a]);
  }
}

void AdaptiveController::load_state(std::istream& in) {
  observed_ = static_cast<std::size_t>(
      common::serial::read_u64(in, "adaptive rounds observed"));
  const std::uint64_t arms =
      common::serial::read_u64(in, "adaptive arm count");
  if (arms != arm_pulls_.size()) {
    throw std::runtime_error(
        "adaptive checkpoint arm count mismatch: checkpoint has " +
        std::to_string(arms) + ", controller has " +
        std::to_string(arm_pulls_.size()));
  }
  for (std::size_t a = 0; a < arm_pulls_.size(); ++a) {
    arm_pulls_[a] = common::serial::read_u64(in, "adaptive arm pulls");
    arm_mean_[a] = common::serial::read_f64(in, "adaptive arm mean");
  }
}

std::vector<CutCost> enumerate_split_cut_costs(
    const nn::Sequential& full, const tensor::Shape& batch_shape) {
  std::vector<CutCost> table;
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    const nn::SplitModel split(full, cut);
    // Both halves must carry parameters: the client needs a model to hold
    // and relay, the schemes need a trainable server side.
    if (split.client().parameter_count() == 0 ||
        split.server().parameter_count() == 0) {
      continue;
    }
    CutCost cost;
    cost.cut = cut;
    const nn::FlopCount cf = split.client_flops(batch_shape);
    const nn::FlopCount sf = split.server_flops(batch_shape);
    cost.client_flops = static_cast<double>(cf.forward + cf.backward);
    cost.server_flops = static_cast<double>(sf.forward + sf.backward);
    cost.smashed_bytes = static_cast<double>(split.smashed_bytes(batch_shape));
    cost.client_state_bytes = static_cast<double>(split.client_state_bytes());
    table.push_back(cost);
  }
  return table;
}

void resplit_halves(nn::Sequential& client, nn::Sequential& server,
                    std::size_t new_cut) {
  const nn::Sequential full = nn::Sequential::concatenate(client, server);
  GSFL_EXPECT_MSG(new_cut <= full.size(),
                  "adaptive cut beyond the model's layer count");
  auto [head, tail] = full.split(new_cut);
  GSFL_EXPECT_MSG(tail.parameter_count() > 0,
                  "adaptive cut must leave a trainable server side");
  client = std::move(head);
  server = std::move(tail);
}

}  // namespace gsfl::schemes
