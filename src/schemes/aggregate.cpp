#include "gsfl/schemes/aggregate.hpp"

#include "gsfl/common/expect.hpp"

namespace gsfl::schemes {

nn::StateDict fedavg_states(std::span<const nn::StateDict> states,
                            std::span<const double> weights) {
  GSFL_EXPECT(!states.empty());
  GSFL_EXPECT(states.size() == weights.size());

  double weight_sum = 0.0;
  for (const double w : weights) {
    GSFL_EXPECT_MSG(w >= 0.0, "aggregation weights must be non-negative");
    weight_sum += w;
  }
  GSFL_EXPECT_MSG(weight_sum > 0.0, "aggregation weights sum to zero");

  const std::size_t entries = states.front().size();
  for (const auto& s : states) {
    GSFL_EXPECT_MSG(s.size() == entries,
                    "state dicts disagree on entry count");
  }

  nn::StateDict out;
  out.reserve(entries);
  for (std::size_t e = 0; e < entries; ++e) {
    std::vector<const tensor::Tensor*> tensors;
    std::vector<double> normalized;
    tensors.reserve(states.size());
    normalized.reserve(states.size());
    for (std::size_t k = 0; k < states.size(); ++k) {
      tensors.push_back(&states[k][e]);
      normalized.push_back(weights[k] / weight_sum);
    }
    out.push_back(tensor::weighted_sum(tensors, normalized));
  }
  return out;
}

nn::StateDict fedavg_models(std::span<const nn::Sequential* const> models,
                            std::span<const double> weights) {
  std::vector<nn::StateDict> states;
  states.reserve(models.size());
  for (const auto* m : models) {
    GSFL_EXPECT(m != nullptr);
    states.push_back(m->state());
  }
  return fedavg_states(states, weights);
}

double aggregation_flops(std::size_t scalars, std::size_t replicas) {
  // One multiply and one add per scalar per replica.
  return 2.0 * static_cast<double>(scalars) * static_cast<double>(replicas);
}

}  // namespace gsfl::schemes
