#include "gsfl/schemes/aggregate.hpp"

#include "gsfl/common/expect.hpp"
#include "gsfl/common/parallel_map.hpp"

namespace gsfl::schemes {

nn::StateDict fedavg_states(std::span<const nn::StateDict> states,
                            std::span<const double> weights) {
  GSFL_EXPECT(!states.empty());
  GSFL_EXPECT(states.size() == weights.size());

  double weight_sum = 0.0;
  for (const double w : weights) {
    GSFL_EXPECT_MSG(w >= 0.0, "aggregation weights must be non-negative");
    weight_sum += w;
  }
  GSFL_EXPECT_MSG(weight_sum > 0.0, "aggregation weights sum to zero");

  const std::size_t entries = states.front().size();
  for (const auto& s : states) {
    GSFL_EXPECT_MSG(s.size() == entries,
                    "state dicts disagree on entry count");
  }

  // Normalize once, outside the parallel region, so every entry multiplies
  // by the identical double regardless of which lane folds it.
  std::vector<double> normalized(states.size());
  for (std::size_t k = 0; k < states.size(); ++k) {
    normalized[k] = weights[k] / weight_sum;
  }

  // Parallel weighted reduction over state entries: entry e's fold is a
  // serial ascending-replica weighted_sum computed wholly inside its map
  // slot, so the result is bitwise identical for every thread count (the
  // parallel_map contract — chunking never splits an entry's fold).
  return common::parallel_map(entries, [&](std::size_t e) {
    std::vector<const tensor::Tensor*> tensors;
    tensors.reserve(states.size());
    for (const auto& s : states) tensors.push_back(&s[e]);
    return tensor::weighted_sum(tensors, normalized);
  });
}

nn::StateDict fedavg_models(std::span<const nn::Sequential* const> models,
                            std::span<const double> weights) {
  std::vector<nn::StateDict> states;
  states.reserve(models.size());
  for (const auto* m : models) {
    GSFL_EXPECT(m != nullptr);
    states.push_back(m->state());
  }
  return fedavg_states(states, weights);
}

double aggregation_flops(std::size_t scalars, std::size_t replicas) {
  // Per replica: one weight-normalization divide (w_k / Σw), then one
  // multiply and one add per scalar for the normalized-weight fold —
  // 2·P·K + K total for K replicas of P scalars.
  return 2.0 * static_cast<double>(scalars) * static_cast<double>(replicas) +
         static_cast<double>(replicas);
}

}  // namespace gsfl::schemes
