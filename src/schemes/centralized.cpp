#include "gsfl/schemes/centralized.hpp"

#include "gsfl/nn/loss.hpp"

namespace gsfl::schemes {

CentralizedTrainer::CentralizedTrainer(const net::WirelessNetwork& network,
                                       std::vector<data::Dataset> client_data,
                                       nn::Sequential initial_model,
                                       TrainConfig config)
    : Trainer("CL", network, std::move(client_data), config),
      model_(std::move(initial_model)),
      pooled_(data::Dataset::concatenate(client_data_)),
      sampler_(pooled_, config.batch_size, client_sampler_rng(0)) {
  optimizer_ = make_optimizer();
  optimizer_->attach(model_.parameters(), model_.gradients());
}

RoundResult CentralizedTrainer::do_round() {
  RoundResult result;

  if (!data_uploaded_) {
    // One-time raw-data upload: every client ships its dataset to the AP.
    // All clients transmit concurrently, splitting the band N ways.
    const double share = 1.0 / static_cast<double>(num_clients());
    std::vector<double> spans;
    spans.reserve(num_clients());
    for (std::size_t c = 0; c < num_clients(); ++c) {
      const auto bytes =
          static_cast<double>(client_dataset(c).image_bytes() +
                              client_dataset(c).size() * sizeof(std::int32_t));
      spans.push_back(network().uplink_seconds(c, bytes, share));
    }
    result.latency.uplink += sim::span_parallel(spans);
    data_uploaded_ = true;
  }

  double loss_sum = 0.0;
  std::size_t batches = 0;
  const std::size_t num_batches = sampler_.batches_per_epoch();
  for (std::size_t b = 0; b < num_batches; ++b) {
    const auto batch = sampler_.next();
    const auto cost = model_.flops(batch.images.shape());
    model_.zero_grad();
    const auto logits = model_.forward(batch.images, /*train=*/true);
    const auto loss = nn::softmax_cross_entropy(logits, batch.labels);
    (void)model_.backward(loss.grad_logits);
    optimizer_->step();
    result.latency.server_compute += network().server_compute_seconds(
        static_cast<double>(cost.forward + cost.backward));
    loss_sum += loss.loss;
    ++batches;
  }
  result.train_loss = loss_sum / static_cast<double>(batches);
  return result;
}

}  // namespace gsfl::schemes
