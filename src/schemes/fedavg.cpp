#include "gsfl/schemes/fedavg.hpp"

#include "gsfl/common/expect.hpp"
#include "gsfl/common/parallel_map.hpp"
#include "gsfl/nn/checkpoint.hpp"
#include "gsfl/nn/loss.hpp"
#include "gsfl/schemes/aggregate.hpp"
#include "gsfl/schemes/pipeline.hpp"
#include "gsfl/schemes/robustness.hpp"

namespace gsfl::schemes {

namespace {

// One client's round contribution; slot c of both the barriered
// parallel_map and the pipelined round graph.
struct FlClientOutcome {
  sim::LatencyBreakdown chain;
  nn::StateDict state;
  double loss_sum = 0.0;
  std::size_t batches = 0;
};

// The local-training pass both round forms share: one batch's forward /
// backward / step plus its latency and loss accounting.
void fl_train_batch(nn::Sequential& local, nn::Optimizer& optimizer,
                    const data::Batch& batch,
                    const net::WirelessNetwork& network, std::size_t c,
                    FlClientOutcome& out) {
  const auto cost = local.flops(batch.images.shape());
  local.zero_grad();
  const auto logits = local.forward(batch.images, /*train=*/true);
  const auto loss = nn::softmax_cross_entropy(logits, batch.labels);
  (void)local.backward(loss.grad_logits);
  optimizer.step();
  out.chain.client_compute += network.client_compute_seconds(
      c, static_cast<double>(cost.forward + cost.backward));
  out.loss_sum += loss.loss;
  ++out.batches;
}

}  // namespace

FedAvgTrainer::FedAvgTrainer(const net::WirelessNetwork& network,
                             std::vector<data::Dataset> client_data,
                             nn::Sequential initial_model, TrainConfig config)
    : Trainer("FL", network, std::move(client_data), config),
      global_(std::move(initial_model)) {
  model_bytes_ = global_.state_bytes();
  samplers_.reserve(client_data_.size());
  for (std::size_t c = 0; c < client_data_.size(); ++c) {
    samplers_.emplace_back(client_data_[c], config.batch_size,
                           client_sampler_rng(c));
  }
}

RoundResult FedAvgTrainer::do_round() {
  if (robustness_active()) {
    // One implementation of the fault/quorum round serves both forms: the
    // barriered round *is* the pipelined graph, submitted ungated and waited
    // inline (help-on-wait executes it on this thread and the lane workers).
    // Bitwise equality across depths holds by construction.
    auto done = submit_round_faulty({}, {});
    return done.wait();
  }
  RoundResult result;
  GSFL_EXPECT_MSG(num_clients() > 0, "round with no clients");
  const double model_bytes = static_cast<double>(model_bytes_);
  const double share = 1.0 / static_cast<double>(num_clients());

  // Clients train concurrently in FL by definition; the simulation does
  // too. Each index owns its model copy, optimizer, and sampler, and the
  // merges below walk the returned slots in client-index order — the
  // determinism contract parallel_map encodes.
  using ClientOutcome = FlClientOutcome;
  auto outcomes = common::parallel_map(num_clients(), [&](std::size_t c) {
    ClientOutcome out;
    // Global model download (all clients concurrently).
    out.chain.downlink += network().downlink_seconds(c, model_bytes, share);

    // Local training: full model on the device.
    nn::Sequential local = global_;
    auto optimizer = make_optimizer();
    optimizer->attach(local.parameters(), local.gradients());

    for (std::size_t e = 0; e < config().local_epochs; ++e) {
      const std::size_t num_batches = samplers_[c].batches_per_epoch();
      for (std::size_t b = 0; b < num_batches; ++b) {
        const auto batch = samplers_[c].next();
        fl_train_batch(local, *optimizer, batch, network(), c, out);
      }
    }

    // Model upload (all clients concurrently).
    out.chain.uplink += network().uplink_seconds(c, model_bytes, share);
    out.state = local.state();
    return out;
  });

  std::vector<nn::StateDict> local_states;
  std::vector<double> weights;
  local_states.reserve(num_clients());
  weights.reserve(num_clients());

  double loss_sum = 0.0;
  std::size_t loss_batches = 0;
  sim::LatencyBreakdown slowest;

  for (std::size_t c = 0; c < num_clients(); ++c) {
    ClientOutcome& out = outcomes[c];
    loss_sum += out.loss_sum;
    loss_batches += out.batches;
    if (out.chain.total() > slowest.total()) slowest = out.chain;
    local_states.push_back(std::move(out.state));
    weights.push_back(static_cast<double>(client_dataset(c).size()));
  }

  // The round's span is the slowest client chain; attribute the breakdown
  // to that critical client.
  result.latency = slowest;

  // FedAvg at the AP.
  const auto aggregated = fedavg_states(local_states, weights);
  global_.load_state(aggregated);
  result.latency.aggregation += network().server_compute_seconds(
      aggregation_flops(global_.parameter_count(), num_clients()));

  result.train_loss = loss_sum / static_cast<double>(loss_batches);
  return result;
}

common::TaskFuture<RoundResult> FedAvgTrainer::do_submit_round(
    const common::TaskHandle& start, const common::TaskHandle& release) {
  if (robustness_active()) return submit_round_faulty(start, release);
  const std::size_t n = num_clients();
  const double model_bytes = static_cast<double>(model_bytes_);
  const double share = 1.0 / static_cast<double>(n);

  // Submit stage: pre-draw local_epochs epochs of batch indices per client
  // (the round's only RNG) and fix the sample-count weights.
  struct Prep {
    explicit Prep(const std::vector<double>& weights) : fold(weights) {}
    /// plans[c][e] is client c's epoch-e batch plan.
    std::vector<std::vector<std::vector<std::vector<std::size_t>>>> plans;
    OrderedStateFold fold;
  };
  std::vector<double> weights;
  weights.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    weights.push_back(static_cast<double>(client_dataset(c).size()));
  }
  auto prep = std::make_shared<Prep>(weights);
  prep->plans.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    prep->plans[c].reserve(config().local_epochs);
    for (std::size_t e = 0; e < config().local_epochs; ++e) {
      prep->plans[c].push_back(samplers_[c].plan_epoch());
    }
  }

  auto compute = [this, prep, model_bytes,
                  share](std::size_t c) -> FlClientOutcome {
    FlClientOutcome out;
    out.chain.downlink += network().downlink_seconds(c, model_bytes, share);

    nn::Sequential local = global_;
    auto optimizer = make_optimizer();
    optimizer->attach(local.parameters(), local.gradients());

    for (const auto& epoch : prep->plans[c]) {
      for (const auto& indices : epoch) {
        auto [images, labels] = client_dataset(c).gather(indices);
        const data::Batch batch{std::move(images), std::move(labels)};
        fl_train_batch(local, *optimizer, batch, network(), c, out);
      }
    }

    out.chain.uplink += network().uplink_seconds(c, model_bytes, share);
    out.state = local.state();
    return out;
  };

  auto fold = [prep](std::size_t, FlClientOutcome& out) {
    prep->fold.fold(out.state);
  };
  auto publish =
      [this, prep](std::vector<FlClientOutcome>& outcomes) -> RoundResult {
    RoundResult result;
    double loss_sum = 0.0;
    std::size_t loss_batches = 0;
    sim::LatencyBreakdown slowest;
    for (auto& out : outcomes) {
      loss_sum += out.loss_sum;
      loss_batches += out.batches;
      if (out.chain.total() > slowest.total()) slowest = out.chain;
    }
    result.latency = slowest;
    global_.load_state(prep->fold.take());
    result.latency.aggregation += network().server_compute_seconds(
        aggregation_flops(global_.parameter_count(), num_clients()));
    result.train_loss = loss_sum / static_cast<double>(loss_batches);
    return result;
  };

  return submit_round_graph<FlClientOutcome>(
      common::global_lane(), n, std::vector<char>(n, 1), start, release,
      std::move(compute), std::move(fold), std::move(publish));
}

common::TaskFuture<RoundResult> FedAvgTrainer::submit_round_faulty(
    const common::TaskHandle& start, const common::TaskHandle& release) {
  const std::size_t n = num_clients();
  const double model_bytes = static_cast<double>(model_bytes_);
  const double share = 1.0 / static_cast<double>(n);
  const std::size_t retry_cap = network().config().channel.retry.max_attempts;

  // Submit stage: the round-keyed fault plan plus the batch plans of every
  // client whose device actually trains. Which clients report is fully
  // scripted here; only *lateness* (a policy exclusion) waits for the
  // simulated chains, so the survivor weights are renormalized at publish —
  // the eager fold path needs weights fixed at submission and stays off.
  struct Prep {
    sim::FaultPlan plan;
    std::vector<ClientDisposition> dispo;
    /// plans[c][e] is client c's epoch-e batch plan (empty for non-computers).
    std::vector<std::vector<std::vector<std::vector<std::size_t>>>> plans;
  };
  auto prep = std::make_shared<Prep>();
  prep->plan =
      sim::FaultPlan::draw(config().faults, retry_cap, next_round_index(), n);
  prep->dispo.resize(n);
  prep->plans.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    prep->dispo[c] = classify(prep->plan.client(c));
    if (!prep->dispo[c].computes) continue;
    // The device trains even when its result never reports (crash-after,
    // exhausted uplink): its sampler stream advances either way.
    prep->plans[c].reserve(config().local_epochs);
    for (std::size_t e = 0; e < config().local_epochs; ++e) {
      prep->plans[c].push_back(samplers_[c].plan_epoch());
    }
  }

  auto compute = [this, prep, model_bytes, share,
                  retry_cap](std::size_t c) -> FlClientOutcome {
    FlClientOutcome out;
    const auto& fault = prep->plan.client(c);
    const auto& dispo = prep->dispo[c];
    if (fault.crash_before) return out;  // never heard from this round

    // Download airtime: the successful attempt count, or the whole
    // exhausted retry budget when the model never lands.
    const std::size_t dl =
        fault.downlink_attempts > 0 ? fault.downlink_attempts : retry_cap;
    out.chain.downlink += network().downlink_seconds(c, model_bytes, share, dl);
    if (!dispo.reports) {
      // Crash-after / lost uplink / lost downlink: the host needn't train a
      // replica nobody will fold — the on-device work is unobservable.
      return out;
    }

    nn::Sequential local = global_;
    auto optimizer = make_optimizer();
    optimizer->attach(local.parameters(), local.gradients());
    for (const auto& epoch : prep->plans[c]) {
      for (const auto& indices : epoch) {
        auto [images, labels] = client_dataset(c).gather(indices);
        const data::Batch batch{std::move(images), std::move(labels)};
        fl_train_batch(local, *optimizer, batch, network(), c, out);
      }
    }
    out.chain.client_compute *= fault.slowdown;
    out.chain.uplink += network().uplink_seconds(c, model_bytes, share,
                                                 fault.uplink_attempts);
    out.state = local.state();
    return out;
  };

  auto fold = [](std::size_t, FlClientOutcome&) {};
  auto publish =
      [this, prep](std::vector<FlClientOutcome>& outcomes) -> RoundResult {
    const std::size_t n = outcomes.size();
    std::vector<char> reported(n, 0);
    std::vector<double> times(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      if (!prep->dispo[c].reports) continue;
      reported[c] = 1;
      times[c] = outcomes[c].chain.total();
    }
    const RoundClose close = close_round(config().round_policy, reported, times);

    RoundResult result;
    std::vector<nn::StateDict> states;
    std::vector<double> weights;
    double loss_sum = 0.0;
    std::size_t loss_batches = 0;
    sim::LatencyBreakdown critical;
    for (std::size_t c = 0; c < n; ++c) {
      auto& record = result.participation.emplace_back();
      record.client = c;
      record.fault = prep->dispo[c].fault;
      record.report_seconds = reported[c] != 0 ? times[c] : 0.0;
      if (reported[c] != 0 && close.included[c] == 0) {
        record.fault = sim::FaultKind::kLate;
      }
      if (close.included[c] == 0) continue;
      loss_sum += outcomes[c].loss_sum;
      loss_batches += outcomes[c].batches;
      if (outcomes[c].chain.total() > critical.total()) {
        critical = outcomes[c].chain;
      }
      states.push_back(std::move(outcomes[c].state));
      weights.push_back(static_cast<double>(client_dataset(c).size()));
    }
    result.latency = critical;
    if (close.close_seconds > result.latency.total()) {
      // The AP idled until the deadline before folding; charge the wait to
      // the aggregation bucket (server-side waiting, not radio or compute).
      result.latency.aggregation += close.close_seconds - result.latency.total();
    }
    if (!states.empty()) {
      // Survivor-only FedAvg: weights renormalize over exactly the included
      // set, in client-index order.
      global_.load_state(fedavg_states(states, weights));
      result.latency.aggregation += network().server_compute_seconds(
          aggregation_flops(global_.parameter_count(), states.size()));
    }
    result.train_loss =
        loss_batches > 0 ? loss_sum / static_cast<double>(loss_batches) : 0.0;
    return result;
  };

  return submit_round_graph<FlClientOutcome>(
      common::global_lane(), n, std::vector<char>(n, 0), start, release,
      std::move(compute), std::move(fold), std::move(publish));
}

void FedAvgTrainer::do_save_state(std::ostream& out) const {
  nn::write_state_dict(out, global_.state());
  for (const auto& sampler : samplers_) sampler.save_state(out);
}

void FedAvgTrainer::do_load_state(std::istream& in) {
  global_.load_state(nn::read_state_dict(in));
  for (auto& sampler : samplers_) sampler.restore_state(in);
}

}  // namespace gsfl::schemes
