#include "gsfl/schemes/fedavg.hpp"

#include "gsfl/common/parallel_map.hpp"
#include "gsfl/nn/loss.hpp"
#include "gsfl/schemes/aggregate.hpp"

namespace gsfl::schemes {

FedAvgTrainer::FedAvgTrainer(const net::WirelessNetwork& network,
                             std::vector<data::Dataset> client_data,
                             nn::Sequential initial_model, TrainConfig config)
    : Trainer("FL", network, std::move(client_data), config),
      global_(std::move(initial_model)) {
  samplers_.reserve(client_data_.size());
  for (std::size_t c = 0; c < client_data_.size(); ++c) {
    samplers_.emplace_back(client_data_[c], config.batch_size,
                           client_sampler_rng(c));
  }
}

RoundResult FedAvgTrainer::do_round() {
  RoundResult result;
  const double model_bytes = static_cast<double>(global_.state_bytes());
  const double share = 1.0 / static_cast<double>(num_clients());

  // Clients train concurrently in FL by definition; the simulation does
  // too. Each index owns its model copy, optimizer, and sampler, and the
  // merges below walk the returned slots in client-index order — the
  // determinism contract parallel_map encodes.
  struct ClientOutcome {
    sim::LatencyBreakdown chain;
    nn::StateDict state;
    double loss_sum = 0.0;
    std::size_t batches = 0;
  };
  auto outcomes = common::parallel_map(num_clients(), [&](std::size_t c) {
    ClientOutcome out;
    // Global model download (all clients concurrently).
    out.chain.downlink += network().downlink_seconds(c, model_bytes, share);

    // Local training: full model on the device.
    nn::Sequential local = global_;
    auto optimizer = make_optimizer();
    optimizer->attach(local.parameters(), local.gradients());

    for (std::size_t e = 0; e < config().local_epochs; ++e) {
      const std::size_t num_batches = samplers_[c].batches_per_epoch();
      for (std::size_t b = 0; b < num_batches; ++b) {
        const auto batch = samplers_[c].next();
        const auto cost = local.flops(batch.images.shape());
        local.zero_grad();
        const auto logits = local.forward(batch.images, /*train=*/true);
        const auto loss = nn::softmax_cross_entropy(logits, batch.labels);
        (void)local.backward(loss.grad_logits);
        optimizer->step();
        out.chain.client_compute += network().client_compute_seconds(
            c, static_cast<double>(cost.forward + cost.backward));
        out.loss_sum += loss.loss;
        ++out.batches;
      }
    }

    // Model upload (all clients concurrently).
    out.chain.uplink += network().uplink_seconds(c, model_bytes, share);
    out.state = local.state();
    return out;
  });

  std::vector<nn::StateDict> local_states;
  std::vector<double> weights;
  local_states.reserve(num_clients());
  weights.reserve(num_clients());

  double loss_sum = 0.0;
  std::size_t loss_batches = 0;
  sim::LatencyBreakdown slowest;

  for (std::size_t c = 0; c < num_clients(); ++c) {
    ClientOutcome& out = outcomes[c];
    loss_sum += out.loss_sum;
    loss_batches += out.batches;
    if (out.chain.total() > slowest.total()) slowest = out.chain;
    local_states.push_back(std::move(out.state));
    weights.push_back(static_cast<double>(client_dataset(c).size()));
  }

  // The round's span is the slowest client chain; attribute the breakdown
  // to that critical client.
  result.latency = slowest;

  // FedAvg at the AP.
  const auto aggregated = fedavg_states(local_states, weights);
  global_.load_state(aggregated);
  result.latency.aggregation += network().server_compute_seconds(
      aggregation_flops(global_.parameter_count(), num_clients()));

  result.train_loss = loss_sum / static_cast<double>(loss_batches);
  return result;
}

}  // namespace gsfl::schemes
