#include "gsfl/schemes/robustness.hpp"

#include <algorithm>
#include <cmath>

#include "gsfl/common/expect.hpp"

namespace gsfl::schemes {

ClientDisposition classify(const sim::ClientFault& fault) {
  ClientDisposition d;
  if (fault.crash_before) {
    d.fault = sim::FaultKind::kCrashBeforeCompute;
    return d;
  }
  if (fault.downlink_attempts == 0) {
    d.fault = sim::FaultKind::kDownlinkFailed;
    return d;
  }
  d.computes = true;
  if (fault.crash_after) {
    d.fault = sim::FaultKind::kCrashAfterCompute;
    return d;
  }
  if (fault.uplink_attempts == 0) {
    d.fault = sim::FaultKind::kUplinkFailed;
    return d;
  }
  d.reports = true;
  return d;
}

RoundClose close_round(const RoundPolicy& policy,
                       std::span<const char> reported,
                       std::span<const double> report_seconds) {
  GSFL_EXPECT(reported.size() == report_seconds.size());
  GSFL_EXPECT(policy.quorum_fraction > 0.0 && policy.quorum_fraction <= 1.0);
  GSFL_EXPECT(policy.deadline_seconds > 0.0);
  const std::size_t n = reported.size();

  RoundClose close;
  close.included.assign(n, 0);

  std::vector<double> times;
  times.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (reported[i] != 0) times.push_back(report_seconds[i]);
  }
  if (times.empty()) {
    // Nobody ever reports. With a finite deadline the AP still waits it out.
    close.close_seconds =
        std::isfinite(policy.deadline_seconds) ? policy.deadline_seconds : 0.0;
    return close;
  }

  if (!policy.active()) {
    close.close_seconds = *std::max_element(times.begin(), times.end());
    for (std::size_t i = 0; i < n; ++i) close.included[i] = reported[i];
    return close;
  }

  const double deadline = policy.deadline_seconds;  // may be +inf
  const std::size_t quorum = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(policy.quorum_fraction * static_cast<double>(n))),
      1, n);

  // Reports that beat the deadline, ascending. (Exact double comparisons
  // throughout: every chain total is itself a deterministic fold.)
  std::vector<double> eligible;
  eligible.reserve(times.size());
  for (const double t : times) {
    if (t <= deadline) eligible.push_back(t);
  }
  std::sort(eligible.begin(), eligible.end());

  if (eligible.size() >= quorum) {
    close.close_seconds = eligible[quorum - 1];
  } else if (std::isfinite(deadline)) {
    close.close_seconds = deadline;
  } else {
    // Quorum unreachable and no deadline: the AP takes everyone who ever
    // reports rather than waiting forever.
    close.close_seconds = *std::max_element(times.begin(), times.end());
  }

  for (std::size_t i = 0; i < n; ++i) {
    close.included[i] =
        (reported[i] != 0 && report_seconds[i] <= close.close_seconds) ? 1 : 0;
  }
  return close;
}

}  // namespace gsfl::schemes
