#include "gsfl/schemes/split_common.hpp"

#include "gsfl/nn/loss.hpp"
#include "gsfl/tensor/quantize.hpp"

namespace gsfl::schemes {

std::unique_ptr<nn::Optimizer> attach_optimizer(
    nn::Sequential& half,
    const std::function<std::unique_ptr<nn::Optimizer>()>& factory) {
  auto params = half.parameters();
  if (params.empty()) return nullptr;
  auto optimizer = factory();
  optimizer->attach(std::move(params), half.gradients());
  return optimizer;
}

namespace {

// The one split epoch loop both entry points drive: `next_batch(b)` yields
// batch b. Keeping a single body is what makes the sampler-driven and
// plan-driven forms bitwise identical.
template <typename NextBatch>
SplitEpochResult split_epoch_loop(nn::SplitModel& model,
                                  nn::Optimizer* client_optimizer,
                                  nn::Optimizer& server_optimizer,
                                  std::size_t num_batches,
                                  const NextBatch& next_batch,
                                  const net::WirelessNetwork& network,
                                  std::size_t client_id,
                                  double bandwidth_share) {
  SplitEpochResult result;
  // Cut-layer payload quantizer: when active, smashed activations and
  // gradients are priced at the quantized wire-codec bytes *and* pushed
  // through quantize→dequantize before crossing the cut, so the model
  // trains on exactly the values the receiver reconstructs. Both transforms
  // are pure elementwise functions of the tensors, so quantized rounds keep
  // the bitwise thread/pipeline-depth reproducibility contract.
  const auto& quantizer = network.config().channel.quantizer;

  for (std::size_t b = 0; b < num_batches; ++b) {
    const auto batch = next_batch(b);
    const auto batch_shape = batch.images.shape();
    const auto client_cost = model.client_flops(batch_shape);
    const auto server_cost = model.server_flops(batch_shape);
    const double smashed_bytes =
        quantizer.active()
            ? static_cast<double>(tensor::quantized_wire_bytes(
                  model.smashed_shape(batch_shape), quantizer))
            : static_cast<double>(model.smashed_bytes(batch_shape));
    const double label_bytes =
        static_cast<double>(batch.size() * sizeof(std::int32_t));

    // --- client forward: local data → smashed data ---
    model.zero_grad();
    auto smashed = model.client_forward(batch.images, /*train=*/true);
    if (quantizer.active()) tensor::fake_quantize(smashed, quantizer);
    result.latency.client_compute += network.client_compute_seconds(
        client_id, static_cast<double>(client_cost.forward));

    // --- uplink: smashed data + labels to the AP ---
    result.latency.uplink += network.uplink_seconds(
        client_id, smashed_bytes + label_bytes, bandwidth_share);

    // --- server forward + loss + backward ---
    const auto logits = model.server_forward(smashed, /*train=*/true);
    const auto loss = nn::softmax_cross_entropy(logits, batch.labels);
    auto grad_smashed = model.server_backward(loss.grad_logits);
    if (quantizer.active()) tensor::fake_quantize(grad_smashed, quantizer);
    result.latency.server_compute += network.server_compute_seconds(
        static_cast<double>(server_cost.forward + server_cost.backward));

    // --- downlink: smashed-data gradient back to the client ---
    result.latency.downlink +=
        network.downlink_seconds(client_id, smashed_bytes, bandwidth_share);

    // --- client backward ---
    model.client_backward(grad_smashed);
    result.latency.client_compute += network.client_compute_seconds(
        client_id, static_cast<double>(client_cost.backward));

    // --- updates (local at each side; no radio cost) ---
    server_optimizer.step();
    if (client_optimizer != nullptr) client_optimizer->step();

    result.loss_sum += loss.loss;
    result.samples += batch.size();
    ++result.batches;
  }
  return result;
}

}  // namespace

SplitEpochResult run_split_epoch(nn::SplitModel& model,
                                 nn::Optimizer* client_optimizer,
                                 nn::Optimizer& server_optimizer,
                                 data::BatchSampler& sampler,
                                 const net::WirelessNetwork& network,
                                 std::size_t client_id,
                                 double bandwidth_share) {
  return split_epoch_loop(
      model, client_optimizer, server_optimizer, sampler.batches_per_epoch(),
      [&](std::size_t) { return sampler.next(); }, network, client_id,
      bandwidth_share);
}

SplitEpochResult run_split_epoch_planned(
    nn::SplitModel& model, nn::Optimizer* client_optimizer,
    nn::Optimizer& server_optimizer, const data::Dataset& dataset,
    std::span<const std::vector<std::size_t>> plan,
    const net::WirelessNetwork& network, std::size_t client_id,
    double bandwidth_share) {
  return split_epoch_loop(
      model, client_optimizer, server_optimizer, plan.size(),
      [&](std::size_t b) {
        auto [images, labels] = dataset.gather(plan[b]);
        return data::Batch{std::move(images), std::move(labels)};
      },
      network, client_id, bandwidth_share);
}

}  // namespace gsfl::schemes
