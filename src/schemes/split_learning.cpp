#include "gsfl/schemes/split_learning.hpp"

#include "gsfl/schemes/split_common.hpp"

namespace gsfl::schemes {

SplitLearningTrainer::SplitLearningTrainer(
    const net::WirelessNetwork& network,
    std::vector<data::Dataset> client_data, nn::Sequential initial_model,
    std::size_t cut_layer, TrainConfig config)
    : Trainer("SL", network, std::move(client_data), config),
      model_(initial_model, cut_layer) {
  samplers_.reserve(client_data_.size());
  for (std::size_t c = 0; c < client_data_.size(); ++c) {
    samplers_.emplace_back(client_data_[c], config.batch_size,
                           client_sampler_rng(c));
  }
  client_optimizer_ = attach_optimizer(
      model_.client(), [this] { return make_optimizer(); });
  server_optimizer_ = attach_optimizer(
      model_.server(), [this] { return make_optimizer(); });
  GSFL_EXPECT_MSG(server_optimizer_ != nullptr,
                  "SL requires a trainable server side (raise cut_layer)");
}

RoundResult SplitLearningTrainer::do_round() {
  RoundResult result;
  const double client_model_bytes =
      static_cast<double>(model_.client_state_bytes());
  // Only one client is active at a time: it gets the whole band.
  constexpr double kShare = 1.0;

  double loss_sum = 0.0;
  std::size_t batches = 0;

  for (std::size_t c = 0; c < num_clients(); ++c) {
    // Client-model hand-off. First ever activation is an AP download to
    // client 0 (model distribution); afterwards the previous holder relays
    // through the AP — including the wrap-around from last client of round
    // r to first client of round r+1.
    if (!distributed_) {
      result.latency.downlink +=
          network().downlink_seconds(c, client_model_bytes, kShare);
      distributed_ = true;
    } else {
      const std::size_t prev = c == 0 ? num_clients() - 1 : c - 1;
      result.latency.relay +=
          network().relay_seconds(prev, c, client_model_bytes, kShare);
    }

    const auto epoch =
        run_split_epoch(model_, client_optimizer_.get(), *server_optimizer_,
                        samplers_[c], network(), c, kShare);
    result.latency += epoch.latency;
    loss_sum += epoch.loss_sum;
    batches += epoch.batches;
  }

  result.train_loss = loss_sum / static_cast<double>(batches);
  return result;
}

}  // namespace gsfl::schemes
