#include "gsfl/schemes/splitfed.hpp"

#include "gsfl/common/expect.hpp"
#include "gsfl/common/parallel_map.hpp"
#include "gsfl/common/serial.hpp"
#include "gsfl/nn/checkpoint.hpp"
#include "gsfl/schemes/aggregate.hpp"
#include "gsfl/schemes/pipeline.hpp"
#include "gsfl/schemes/robustness.hpp"
#include "gsfl/schemes/split_common.hpp"

namespace gsfl::schemes {

namespace {

// One client's round contribution; slot c of both the barriered
// parallel_map and the pipelined round graph.
struct SflClientOutcome {
  sim::LatencyBreakdown chain;
  nn::StateDict client_state;
  nn::StateDict server_state;
  double loss_sum = 0.0;
  std::size_t batches = 0;
};

}  // namespace

SplitFedTrainer::SplitFedTrainer(const net::WirelessNetwork& network,
                                 std::vector<data::Dataset> client_data,
                                 nn::Sequential initial_model,
                                 std::size_t cut_layer, TrainConfig config)
    : Trainer("SFL", network, std::move(client_data), config),
      cut_layer_(cut_layer) {
  auto [head, tail] = initial_model.split(cut_layer);
  global_client_ = std::move(head);
  global_server_ = std::move(tail);
  GSFL_EXPECT_MSG(!global_server_.parameters().empty(),
                  "SFL requires a trainable server side (raise cut_layer)");
  client_model_bytes_ = global_client_.state_bytes();
  samplers_.reserve(client_data_.size());
  for (std::size_t c = 0; c < client_data_.size(); ++c) {
    samplers_.emplace_back(client_data_[c], config.batch_size,
                           client_sampler_rng(c));
  }
}

nn::Sequential SplitFedTrainer::global_model() const {
  return nn::Sequential::concatenate(global_client_, global_server_);
}

std::size_t SplitFedTrainer::server_storage_bytes() const {
  // One server-side replica per client, resident simultaneously.
  return global_server_.state_bytes() * num_clients();
}

RoundResult SplitFedTrainer::do_round() {
  if (robustness_active()) {
    // The barriered fault/quorum round is the pipelined graph submitted
    // ungated and waited inline — one implementation, bitwise equal across
    // depths by construction.
    auto done = submit_round_faulty({}, {});
    return done.wait();
  }
  RoundResult result;
  GSFL_EXPECT_MSG(num_clients() > 0, "round with no clients");
  const double client_model_bytes = static_cast<double>(client_model_bytes_);
  const double share = 1.0 / static_cast<double>(num_clients());

  // Every client trains against its own server-side replica — exactly the
  // scheme's premise — so the per-client work runs as a parallel_map, one
  // independent (replica, optimizer, sampler) bundle per client. The merges
  // below consume the returned slots in client order, keeping the round
  // bitwise identical for any lane count.
  using ClientOutcome = SflClientOutcome;
  auto outcomes = common::parallel_map(num_clients(), [&](std::size_t c) {
    ClientOutcome out;
    // Client-side model download (all clients concurrently).
    out.chain.downlink +=
        network().downlink_seconds(c, client_model_bytes, share);

    nn::SplitModel replica(global_client_, global_server_);
    auto client_opt = attach_optimizer(replica.client(),
                                       [this] { return make_optimizer(); });
    auto server_opt = attach_optimizer(replica.server(),
                                       [this] { return make_optimizer(); });

    const auto epoch =
        run_split_epoch(replica, client_opt.get(), *server_opt, samplers_[c],
                        network(), c, share);
    out.chain += epoch.latency;
    out.loss_sum = epoch.loss_sum;
    out.batches = epoch.batches;

    // Client-side model upload for aggregation.
    out.chain.uplink += network().uplink_seconds(c, client_model_bytes, share);
    out.client_state = replica.client().state();
    out.server_state = replica.server().state();
    return out;
  });

  std::vector<nn::StateDict> client_states;
  std::vector<nn::StateDict> server_states;
  std::vector<double> weights;
  client_states.reserve(num_clients());
  server_states.reserve(num_clients());
  weights.reserve(num_clients());

  double loss_sum = 0.0;
  std::size_t batches = 0;
  sim::LatencyBreakdown slowest;

  for (std::size_t c = 0; c < num_clients(); ++c) {
    ClientOutcome& out = outcomes[c];
    loss_sum += out.loss_sum;
    batches += out.batches;
    if (out.chain.total() > slowest.total()) slowest = out.chain;
    client_states.push_back(std::move(out.client_state));
    server_states.push_back(std::move(out.server_state));
    weights.push_back(static_cast<double>(client_dataset(c).size()));
  }

  result.latency = slowest;

  global_client_.load_state(fedavg_states(client_states, weights));
  global_server_.load_state(fedavg_states(server_states, weights));
  result.latency.aggregation += network().server_compute_seconds(
      aggregation_flops(global_client_.parameter_count() +
                            global_server_.parameter_count(),
                        num_clients()));

  result.train_loss = loss_sum / static_cast<double>(batches);
  return result;
}

common::TaskFuture<RoundResult> SplitFedTrainer::do_submit_round(
    const common::TaskHandle& start, const common::TaskHandle& release) {
  if (robustness_active()) return submit_round_faulty(start, release);
  const std::size_t n = num_clients();
  const double share = 1.0 / static_cast<double>(n);

  // Submit stage (this thread, round order): pre-draw every client's batch
  // plan — the only RNG the round consumes — and fix the aggregation
  // weights, which depend only on dataset sizes. With the streams drained
  // here, several rounds can be in flight without a task ever touching a
  // sampler.
  struct Prep {
    explicit Prep(const std::vector<double>& weights)
        : client_fold(weights), server_fold(weights) {}
    std::vector<std::vector<std::vector<std::size_t>>> plans;
    OrderedStateFold client_fold;
    OrderedStateFold server_fold;
  };
  std::vector<double> weights;
  weights.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    weights.push_back(static_cast<double>(client_dataset(c).size()));
  }
  auto prep = std::make_shared<Prep>(weights);
  prep->plans.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    prep->plans.push_back(samplers_[c].plan_epoch());
  }

  // Compute stage: identical arithmetic to do_round's parallel_map body,
  // batches gathered from the pre-drawn plan.
  auto compute = [this, prep, share](std::size_t c) -> SflClientOutcome {
    SflClientOutcome out;
    // Read the model bytes live, not a submission-time snapshot: compute is
    // gated on the previous round's publish chain, so under an adaptive
    // controller this sees that round's re-cut model — exactly what the
    // barriered round reads.
    const double client_model_bytes = static_cast<double>(client_model_bytes_);
    out.chain.downlink +=
        network().downlink_seconds(c, client_model_bytes, share);

    nn::SplitModel replica(global_client_, global_server_);
    auto client_opt = attach_optimizer(replica.client(),
                                       [this] { return make_optimizer(); });
    auto server_opt = attach_optimizer(replica.server(),
                                       [this] { return make_optimizer(); });

    const auto epoch = run_split_epoch_planned(
        replica, client_opt.get(), *server_opt, client_dataset(c),
        prep->plans[c], network(), c, share);
    out.chain += epoch.latency;
    out.loss_sum = epoch.loss_sum;
    out.batches = epoch.batches;

    out.chain.uplink +=
        network().uplink_seconds(c, client_model_bytes, share);
    out.client_state = replica.client().state();
    out.server_state = replica.server().state();
    return out;
  };

  // Aggregate stage, eagerly: client c's states fold the moment c and all
  // earlier clients finished — overlapping FedAvg with the stragglers'
  // forward/backward — and publish does the cheap in-order merges plus the
  // model swap.
  auto fold = [prep](std::size_t, SflClientOutcome& out) {
    prep->client_fold.fold(out.client_state);
    prep->server_fold.fold(out.server_state);
  };
  auto publish =
      [this, prep](std::vector<SflClientOutcome>& outcomes) -> RoundResult {
    RoundResult result;
    double loss_sum = 0.0;
    std::size_t batches = 0;
    sim::LatencyBreakdown slowest;
    for (auto& out : outcomes) {
      loss_sum += out.loss_sum;
      batches += out.batches;
      if (out.chain.total() > slowest.total()) slowest = out.chain;
    }
    result.latency = slowest;
    global_client_.load_state(prep->client_fold.take());
    global_server_.load_state(prep->server_fold.take());
    result.latency.aggregation += network().server_compute_seconds(
        aggregation_flops(global_client_.parameter_count() +
                              global_server_.parameter_count(),
                          num_clients()));
    result.train_loss = loss_sum / static_cast<double>(batches);
    return result;
  };

  return submit_round_graph<SflClientOutcome>(
      common::global_lane(), n, std::vector<char>(n, 1), start, release,
      std::move(compute), std::move(fold), std::move(publish));
}

common::TaskFuture<RoundResult> SplitFedTrainer::submit_round_faulty(
    const common::TaskHandle& start, const common::TaskHandle& release) {
  const std::size_t n = num_clients();
  const double share = 1.0 / static_cast<double>(n);
  const std::size_t retry_cap = network().config().channel.retry.max_attempts;

  // Submit stage: round-keyed fault plan + batch plans for every computing
  // client. Survivor weights renormalize at publish (lateness is only known
  // from the simulated chains), so the eager fold stays off.
  struct Prep {
    sim::FaultPlan plan;
    std::vector<ClientDisposition> dispo;
    std::vector<std::vector<std::vector<std::size_t>>> plans;
  };
  auto prep = std::make_shared<Prep>();
  prep->plan =
      sim::FaultPlan::draw(config().faults, retry_cap, next_round_index(), n);
  prep->dispo.resize(n);
  prep->plans.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    prep->dispo[c] = classify(prep->plan.client(c));
    if (prep->dispo[c].computes) prep->plans[c] = samplers_[c].plan_epoch();
  }

  auto compute = [this, prep, share,
                  retry_cap](std::size_t c) -> SflClientOutcome {
    SflClientOutcome out;
    const auto& fault = prep->plan.client(c);
    const auto& dispo = prep->dispo[c];
    if (fault.crash_before) return out;
    // Live read — see do_submit_round's compute stage.
    const double client_model_bytes = static_cast<double>(client_model_bytes_);

    const std::size_t dl =
        fault.downlink_attempts > 0 ? fault.downlink_attempts : retry_cap;
    out.chain.downlink +=
        network().downlink_seconds(c, client_model_bytes, share, dl);
    if (!dispo.reports) return out;  // result unobservable: skip host work

    nn::SplitModel replica(global_client_, global_server_);
    auto client_opt = attach_optimizer(replica.client(),
                                       [this] { return make_optimizer(); });
    auto server_opt = attach_optimizer(replica.server(),
                                       [this] { return make_optimizer(); });
    const auto epoch = run_split_epoch_planned(
        replica, client_opt.get(), *server_opt, client_dataset(c),
        prep->plans[c], network(), c, share);
    auto latency = epoch.latency;
    latency.client_compute *= fault.slowdown;
    out.chain += latency;
    out.loss_sum = epoch.loss_sum;
    out.batches = epoch.batches;

    out.chain.uplink += network().uplink_seconds(c, client_model_bytes, share,
                                                 fault.uplink_attempts);
    out.client_state = replica.client().state();
    out.server_state = replica.server().state();
    return out;
  };

  auto fold = [](std::size_t, SflClientOutcome&) {};
  auto publish =
      [this, prep](std::vector<SflClientOutcome>& outcomes) -> RoundResult {
    const std::size_t n = outcomes.size();
    std::vector<char> reported(n, 0);
    std::vector<double> times(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      if (!prep->dispo[c].reports) continue;
      reported[c] = 1;
      times[c] = outcomes[c].chain.total();
    }
    const RoundClose close = close_round(config().round_policy, reported, times);

    RoundResult result;
    std::vector<nn::StateDict> client_states;
    std::vector<nn::StateDict> server_states;
    std::vector<double> weights;
    double loss_sum = 0.0;
    std::size_t batches = 0;
    sim::LatencyBreakdown critical;
    for (std::size_t c = 0; c < n; ++c) {
      auto& record = result.participation.emplace_back();
      record.client = c;
      record.fault = prep->dispo[c].fault;
      record.report_seconds = reported[c] != 0 ? times[c] : 0.0;
      if (reported[c] != 0 && close.included[c] == 0) {
        record.fault = sim::FaultKind::kLate;
      }
      if (close.included[c] == 0) continue;
      loss_sum += outcomes[c].loss_sum;
      batches += outcomes[c].batches;
      if (outcomes[c].chain.total() > critical.total()) {
        critical = outcomes[c].chain;
      }
      client_states.push_back(std::move(outcomes[c].client_state));
      server_states.push_back(std::move(outcomes[c].server_state));
      weights.push_back(static_cast<double>(client_dataset(c).size()));
    }
    result.latency = critical;
    if (close.close_seconds > result.latency.total()) {
      // Deadline idle time at the AP, charged to aggregation.
      result.latency.aggregation += close.close_seconds - result.latency.total();
    }
    if (!client_states.empty()) {
      global_client_.load_state(fedavg_states(client_states, weights));
      global_server_.load_state(fedavg_states(server_states, weights));
      result.latency.aggregation += network().server_compute_seconds(
          aggregation_flops(global_client_.parameter_count() +
                                global_server_.parameter_count(),
                            client_states.size()));
    }
    result.train_loss =
        batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    return result;
  };

  return submit_round_graph<SflClientOutcome>(
      common::global_lane(), n, std::vector<char>(n, 0), start, release,
      std::move(compute), std::move(fold), std::move(publish));
}

std::vector<CutCost> SplitFedTrainer::enumerate_cut_costs() const {
  return enumerate_split_cut_costs(
      global_model(), client_dataset(0).batch_shape(config().batch_size));
}

void SplitFedTrainer::apply_cut(std::size_t cut) {
  if (cut == cut_layer_) return;
  resplit_halves(global_client_, global_server_, cut);
  client_model_bytes_ = global_client_.state_bytes();
  cut_layer_ = cut;
}

void SplitFedTrainer::apply_adaptive_decision(
    const AdaptiveDecision& decision) {
  if (decision.changed) apply_cut(decision.cut);
}

void SplitFedTrainer::do_save_state(std::ostream& out) const {
  // Cut first: an adaptively re-cut trainer must re-split its halves before
  // their state dicts can load (per-half entry counts follow the cut).
  common::serial::write_u64(out, cut_layer_);
  nn::write_state_dict(out, global_client_.state());
  nn::write_state_dict(out, global_server_.state());
  for (const auto& sampler : samplers_) sampler.save_state(out);
}

void SplitFedTrainer::do_load_state(std::istream& in) {
  apply_cut(static_cast<std::size_t>(
      common::serial::read_u64(in, "sfl cut layer")));
  global_client_.load_state(nn::read_state_dict(in));
  global_server_.load_state(nn::read_state_dict(in));
  for (auto& sampler : samplers_) sampler.restore_state(in);
}

}  // namespace gsfl::schemes
