#include "gsfl/schemes/trainer.hpp"

#include <algorithm>
#include <deque>
#include <iostream>
#include <stdexcept>

#include "gsfl/common/async_lane.hpp"
#include "gsfl/common/expect.hpp"
#include "gsfl/common/serial.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/core/checkpoint.hpp"
#include "gsfl/metrics/evaluate.hpp"
#include "gsfl/nn/optimizer.hpp"

namespace gsfl::schemes {

Trainer::Trainer(std::string name, const net::WirelessNetwork& network,
                 std::vector<data::Dataset> client_data, TrainConfig config)
    : name_(std::move(name)),
      network_(&network),
      client_data_(std::move(client_data)),
      config_(config) {
  GSFL_EXPECT_MSG(!client_data_.empty(), "at least one client required");
  GSFL_EXPECT_MSG(client_data_.size() <= network.num_clients(),
                  "more client datasets than network devices");
  for (const auto& d : client_data_) {
    GSFL_EXPECT_MSG(!d.empty(), "every client needs at least one sample");
  }
  GSFL_EXPECT(config_.learning_rate > 0.0);
  GSFL_EXPECT(config_.batch_size >= 1);
  GSFL_EXPECT(config_.local_epochs >= 1);
}

const data::Dataset& Trainer::client_dataset(std::size_t c) const {
  GSFL_EXPECT(c < client_data_.size());
  return client_data_[c];
}

RoundResult Trainer::run_round() {
  GSFL_EXPECT_MSG(in_flight_ == 0,
                  "run_round while submitted rounds are in flight — collect "
                  "every ticket first");
  if (config_.threads > 0) common::set_global_threads(config_.threads);
  RoundResult result = do_round();
  apply_adaptive(rounds_, result);
  ++rounds_;
  return result;
}

void Trainer::set_adaptive(std::shared_ptr<AdaptiveController> controller) {
  GSFL_EXPECT_MSG(in_flight_ == 0,
                  "set_adaptive with rounds in flight — collect every ticket "
                  "first");
  controller_ = std::move(controller);
  if (controller_) controller_->set_candidates(enumerate_cut_costs());
}

void Trainer::apply_adaptive(std::size_t round, const RoundResult& result) {
  if (!controller_) return;
  AdaptiveObservation obs;
  obs.round = round;
  obs.cut = adaptive_cut();
  obs.latency = result.latency;
  // One decide() per round, in round order — faulty, quorum-closed, and
  // clean rounds all report through the same published RoundResult, so the
  // controller sees identical observations on every execution path.
  apply_adaptive_decision(controller_->decide(obs));
}

RoundTicket Trainer::submit_round(const common::TaskHandle& model_release) {
  // Resizing the pool while an in-flight round's aggregate stage may be on
  // it would pull the workers out from under a running parallel_for, so the
  // thread preference only applies between pipeline flushes (it is constant
  // across rounds anyway).
  if (config_.threads > 0 && in_flight_ == 0) {
    common::set_global_threads(config_.threads);
  }
  auto done = do_submit_round(last_publish_, model_release);
  if (controller_) {
    // The adaptive stage rides the publish chain: it observes the fully
    // published round and mutates the model/shares before anything gated on
    // this round (the next round's compute, evaluations, save_state) runs —
    // exactly the slot run_round applies it in, so depths agree bitwise.
    const std::size_t round = next_round_index();
    done = common::global_lane().then(
        std::move(done), [this, round](RoundResult& result) {
          apply_adaptive(round, result);
          return result;
        });
  }
  RoundTicket ticket{std::move(done)};
  last_publish_ = ticket.done.handle();
  ++in_flight_;
  return ticket;
}

RoundResult Trainer::collect_round(RoundTicket& ticket) {
  GSFL_EXPECT_MSG(in_flight_ > 0, "collect_round without a submitted round");
  --in_flight_;  // even if the round errored: the stages have all resolved
  try {
    RoundResult result = ticket.done.wait();
    ++rounds_;
    return result;
  } catch (...) {
    // A failed publish poisons every round gated on it (dependents inherit
    // the error without running). Once the window is drained, clear the
    // gate so the next submission starts fresh from the last successfully
    // published model instead of rethrowing the old error forever.
    if (in_flight_ == 0) last_publish_ = {};
    throw;
  }
}

common::TaskFuture<RoundResult> Trainer::do_submit_round(
    const common::TaskHandle& start, const common::TaskHandle& release) {
  // Fallback for schemes without a submit/aggregate decomposition: the
  // whole barriered round runs as one aggregate-stage task. No intra-round
  // overlap, but the pipelined API (and its gating) behaves uniformly.
  // lint: missing-precondition(no shape inputs — gates only optional handles; do_round validates its own state)
  return common::global_lane().submit_after([this] { return do_round(); },
                                            {start, release});
}

void Trainer::save_state(std::ostream& out) const {
  GSFL_EXPECT_MSG(in_flight_ == 0,
                  "save_state with rounds in flight — collect every ticket "
                  "first");
  common::serial::write_u64(out, rounds_);
  do_save_state(out);
  // Controller state rides the trainer checkpoint so resumed runs replay
  // the identical decision sequence (the Adaptive* resume tests pin this).
  common::serial::write_u64(out, controller_ ? 1 : 0);
  if (controller_) controller_->save_state(out);
}

void Trainer::load_state(std::istream& in) {
  GSFL_EXPECT_MSG(in_flight_ == 0, "load_state with rounds in flight");
  rounds_ = static_cast<std::size_t>(
      common::serial::read_u64(in, "trainer round counter"));
  do_load_state(in);
  const std::uint64_t has_controller =
      common::serial::read_u64(in, "adaptive controller flag");
  if (has_controller != (controller_ ? 1U : 0U)) {
    throw std::runtime_error(
        "experiment checkpoint adaptive-controller mismatch: attach the same "
        "controller configuration before load_state");
  }
  if (controller_) controller_->load_state(in);
}

void Trainer::do_save_state(std::ostream&) const {
  throw std::logic_error(name_ + ": checkpointing not supported");
}

void Trainer::do_load_state(std::istream&) {
  throw std::logic_error(name_ + ": checkpointing not supported");
}

std::unique_ptr<nn::Optimizer> Trainer::make_optimizer() const {
  if (config_.momentum > 0.0) {
    return std::make_unique<nn::MomentumSgd>(
        config_.learning_rate, config_.momentum, config_.weight_decay);
  }
  return std::make_unique<nn::Sgd>(config_.learning_rate,
                                   config_.weight_decay);
}

std::size_t Trainer::total_samples() const {
  std::size_t n = 0;
  for (const auto& d : client_data_) n += d.size();
  return n;
}

namespace {

// The one record/print step both experiment drivers share, so their output
// cannot diverge (pipeline_test pins record-for-record equality).
void record_round(metrics::RunRecorder& recorder, const Trainer& trainer,
                  std::size_t round, double sim_seconds,
                  const RoundResult& result, const metrics::EvalResult& eval,
                  bool verbose) {
  recorder.record(metrics::RoundRecord{
      .round = round,
      .sim_seconds = sim_seconds,
      .train_loss = result.train_loss,
      .eval_accuracy = eval.accuracy,
  });
  if (verbose) {
    std::cout << trainer.name() << " round " << round << ": acc "
              << eval.accuracy * 100.0 << "% loss " << result.train_loss
              << " t " << sim_seconds << "s\n";
  }
}

// Pipelined driver body: up to `depth` rounds in flight; round r's
// evaluation runs as a lane task that overlaps round r+1's client compute
// (the next publish is gated on it via submit_round's model_release, so the
// evaluation always reads round r's model). Records are identical to the
// barriered loop: collection, recording, and printing all happen in round
// order on this thread.
metrics::RunRecorder run_experiment_pipelined(
    Trainer& trainer, const data::Dataset& test_set,
    const ExperimentOptions& options, std::size_t depth,
    metrics::RunRecorder recorder, double sim_seconds,
    std::size_t first_round) {
  GSFL_EXPECT_MSG(options.eval_every > 0 && depth > 0,
                  "pipelined run needs eval_every >= 1 and depth >= 1");
  struct InFlight {
    std::size_t round = 0;
    RoundTicket ticket;
    std::optional<common::TaskFuture<metrics::EvalResult>> eval;
  };
  std::deque<InFlight> window;

  const auto drain_front = [&] {
    InFlight flight = std::move(window.front());
    window.pop_front();
    const RoundResult result = trainer.collect_round(flight.ticket);
    sim_seconds += result.latency.total();
    if (!flight.eval) return;
    const metrics::EvalResult eval = flight.eval->wait();
    record_round(recorder, trainer, flight.round, sim_seconds, result, eval,
                 options.verbose);
  };

  try {
    common::TaskHandle model_release;  // last scheduled evaluation
    for (std::size_t round = first_round; round <= options.rounds; ++round) {
      InFlight flight;
      flight.round = round;
      flight.ticket = trainer.submit_round(model_release);
      model_release = {};
      if (round % options.eval_every == 0 || round == options.rounds) {
        flight.eval = common::global_lane().submit_after(
            [&trainer, &test_set, batch = options.eval_batch_size] {
              auto model = trainer.global_model();
              return metrics::evaluate(model, test_set, batch);
            },
            {flight.ticket.done.handle()});
        model_release = flight.eval->handle();
      }
      window.push_back(std::move(flight));
      if (window.size() >= depth) drain_front();
    }
    while (!window.empty()) drain_front();
  } catch (...) {
    // A failed round must not abandon in-flight work: lane tasks reference
    // this trainer and test_set, and uncollected tickets would wedge the
    // trainer past our unwind. Drain everything, then surface the error.
    while (!window.empty()) {
      try {
        (void)trainer.collect_round(window.front().ticket);
      } catch (...) {  // the original error is the one to report
      }
      if (window.front().eval) {
        try {
          (void)window.front().eval->wait();
        } catch (...) {
        }
      }
      window.pop_front();
    }
    throw;
  }
  return recorder;
}

}  // namespace

metrics::RunRecorder run_experiment(Trainer& trainer,
                                    const data::Dataset& test_set,
                                    const ExperimentOptions& options) {
  GSFL_EXPECT(options.rounds >= 1);
  GSFL_EXPECT(options.eval_every >= 1);

  // Crash recovery: restore trainer + history + clock before any round
  // runs; the remaining rounds then continue bitwise identically to the
  // uninterrupted run (the Resume* tests pin this record-for-record).
  metrics::RunRecorder recorder(trainer.name());
  double sim_seconds = 0.0;
  std::size_t first_round = 1;
  if (options.resume_from) {
    const core::ExperimentCheckpoint ckpt =
        core::load_experiment_checkpoint_file(*options.resume_from, trainer);
    for (const auto& record : ckpt.records) recorder.record(record);
    sim_seconds = ckpt.sim_seconds;
    first_round = ckpt.round + 1;
  }

  // Early stopping decides whether round r+1 runs from round r's
  // evaluation — an inherent barrier — so the pipelined driver only takes
  // over when no stop option asks for that decision. Checkpointing is a
  // barrier too: a snapshot must capture a fully published round.
  if (options.pipeline_depth > 1 && !options.stop_at_accuracy &&
      !options.stop_after_seconds && options.checkpoint_every == 0) {
    return run_experiment_pipelined(trainer, test_set, options,
                                    options.pipeline_depth,
                                    std::move(recorder), sim_seconds,
                                    first_round);
  }

  for (std::size_t round = first_round; round <= options.rounds; ++round) {
    const RoundResult result = trainer.run_round();
    sim_seconds += result.latency.total();

    const bool evaluate =
        round % options.eval_every == 0 || round == options.rounds;
    bool stop = false;
    if (evaluate) {
      auto model = trainer.global_model();
      const auto eval =
          metrics::evaluate(model, test_set, options.eval_batch_size);
      record_round(recorder, trainer, round, sim_seconds, result, eval,
                   options.verbose);
      stop = (options.stop_at_accuracy &&
              eval.accuracy >= *options.stop_at_accuracy) ||
             (options.stop_after_seconds &&
              sim_seconds >= *options.stop_after_seconds);
    }
    if (options.checkpoint_every != 0 &&
        round % options.checkpoint_every == 0) {
      core::save_experiment_checkpoint_file(
          core::checkpoint_path(options.checkpoint_dir, trainer.name(), round),
          trainer, recorder.records(), sim_seconds);
    }
    if (stop) break;
  }
  return recorder;
}

std::vector<RoundResult> run_rounds_pipelined(Trainer& trainer,
                                              std::size_t rounds,
                                              std::size_t depth) {
  depth = std::max<std::size_t>(depth, 1);
  std::vector<RoundResult> results;
  results.reserve(rounds);
  if (depth == 1) {
    for (std::size_t r = 0; r < rounds; ++r) {
      results.push_back(trainer.run_round());
    }
    return results;
  }
  std::deque<RoundTicket> window;
  try {
    for (std::size_t r = 0; r < rounds; ++r) {
      window.push_back(trainer.submit_round());
      if (window.size() >= depth) {
        results.push_back(trainer.collect_round(window.front()));
        window.pop_front();
      }
    }
    while (!window.empty()) {
      results.push_back(trainer.collect_round(window.front()));
      window.pop_front();
    }
  } catch (...) {
    // Drain the remaining in-flight rounds before unwinding: their lane
    // tasks reference this trainer, and abandoned tickets would leave it
    // wedged (rounds_in_flight never returns to zero).
    while (!window.empty()) {
      try {
        (void)trainer.collect_round(window.front());
      } catch (...) {  // the first error is the one to report
      }
      window.pop_front();
    }
    throw;
  }
  return results;
}

}  // namespace gsfl::schemes
