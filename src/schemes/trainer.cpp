#include "gsfl/schemes/trainer.hpp"

#include <iostream>

#include "gsfl/common/thread_pool.hpp"
#include "gsfl/metrics/evaluate.hpp"
#include "gsfl/nn/optimizer.hpp"

namespace gsfl::schemes {

Trainer::Trainer(std::string name, const net::WirelessNetwork& network,
                 std::vector<data::Dataset> client_data, TrainConfig config)
    : name_(std::move(name)),
      network_(&network),
      client_data_(std::move(client_data)),
      config_(config) {
  GSFL_EXPECT_MSG(!client_data_.empty(), "at least one client required");
  GSFL_EXPECT_MSG(client_data_.size() <= network.num_clients(),
                  "more client datasets than network devices");
  for (const auto& d : client_data_) {
    GSFL_EXPECT_MSG(!d.empty(), "every client needs at least one sample");
  }
  GSFL_EXPECT(config_.learning_rate > 0.0);
  GSFL_EXPECT(config_.batch_size >= 1);
  GSFL_EXPECT(config_.local_epochs >= 1);
}

const data::Dataset& Trainer::client_dataset(std::size_t c) const {
  GSFL_EXPECT(c < client_data_.size());
  return client_data_[c];
}

RoundResult Trainer::run_round() {
  if (config_.threads > 0) common::set_global_threads(config_.threads);
  RoundResult result = do_round();
  ++rounds_;
  return result;
}

std::unique_ptr<nn::Optimizer> Trainer::make_optimizer() const {
  if (config_.momentum > 0.0) {
    return std::make_unique<nn::MomentumSgd>(
        config_.learning_rate, config_.momentum, config_.weight_decay);
  }
  return std::make_unique<nn::Sgd>(config_.learning_rate,
                                   config_.weight_decay);
}

std::size_t Trainer::total_samples() const {
  std::size_t n = 0;
  for (const auto& d : client_data_) n += d.size();
  return n;
}

metrics::RunRecorder run_experiment(Trainer& trainer,
                                    const data::Dataset& test_set,
                                    const ExperimentOptions& options) {
  GSFL_EXPECT(options.rounds >= 1);
  GSFL_EXPECT(options.eval_every >= 1);
  metrics::RunRecorder recorder(trainer.name());
  double sim_seconds = 0.0;

  for (std::size_t round = 1; round <= options.rounds; ++round) {
    const RoundResult result = trainer.run_round();
    sim_seconds += result.latency.total();

    if (round % options.eval_every != 0 && round != options.rounds) {
      continue;
    }
    auto model = trainer.global_model();
    const auto eval =
        metrics::evaluate(model, test_set, options.eval_batch_size);
    recorder.record(metrics::RoundRecord{
        .round = round,
        .sim_seconds = sim_seconds,
        .train_loss = result.train_loss,
        .eval_accuracy = eval.accuracy,
    });
    if (options.verbose) {
      std::cout << trainer.name() << " round " << round << ": acc "
                << eval.accuracy * 100.0 << "% loss " << result.train_loss
                << " t " << sim_seconds << "s\n";
    }
    if (options.stop_at_accuracy && eval.accuracy >= *options.stop_at_accuracy) {
      break;
    }
    if (options.stop_after_seconds && sim_seconds >= *options.stop_after_seconds) {
      break;
    }
  }
  return recorder;
}

}  // namespace gsfl::schemes
