#include "gsfl/sim/breakdown.hpp"

#include <algorithm>
#include <sstream>

#include "gsfl/common/expect.hpp"

namespace gsfl::sim {

LatencyBreakdown& LatencyBreakdown::operator+=(const LatencyBreakdown& other) {
  client_compute += other.client_compute;
  server_compute += other.server_compute;
  uplink += other.uplink;
  downlink += other.downlink;
  relay += other.relay;
  aggregation += other.aggregation;
  return *this;
}

LatencyBreakdown LatencyBreakdown::operator+(
    const LatencyBreakdown& other) const {
  LatencyBreakdown out = *this;
  out += other;
  return out;
}

LatencyBreakdown LatencyBreakdown::scaled(double factor) const {
  LatencyBreakdown out = *this;
  out.client_compute *= factor;
  out.server_compute *= factor;
  out.uplink *= factor;
  out.downlink *= factor;
  out.relay *= factor;
  out.aggregation *= factor;
  return out;
}

std::string LatencyBreakdown::to_string() const {
  std::ostringstream os;
  os << "total=" << total() << "s (client=" << client_compute
     << " server=" << server_compute << " up=" << uplink
     << " down=" << downlink << " relay=" << relay
     << " agg=" << aggregation << ")";
  return os.str();
}

double span_sequential(std::span<const double> spans) {
  double sum = 0.0;
  for (const double s : spans) {
    GSFL_EXPECT(s >= 0.0);
    sum += s;
  }
  return sum;
}

double span_parallel(std::span<const double> spans) {
  double worst = 0.0;
  for (const double s : spans) {
    GSFL_EXPECT(s >= 0.0);
    worst = std::max(worst, s);
  }
  return worst;
}

LatencyBreakdown critical_branch(std::span<const LatencyBreakdown> branches) {
  GSFL_EXPECT(!branches.empty());
  const auto* best = &branches[0];
  for (const auto& b : branches) {
    if (b.total() > best->total()) best = &b;
  }
  return *best;
}

}  // namespace gsfl::sim
