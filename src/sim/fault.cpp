#include "gsfl/sim/fault.hpp"

#include "gsfl/common/expect.hpp"
#include "gsfl/common/rng.hpp"

namespace gsfl::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrashBeforeCompute: return "crash-before-compute";
    case FaultKind::kDownlinkFailed: return "downlink-failed";
    case FaultKind::kCrashAfterCompute: return "crash-after-compute";
    case FaultKind::kUplinkFailed: return "uplink-failed";
    case FaultKind::kLate: return "late";
    case FaultKind::kCascade: return "cascade";
  }
  return "?";
}

namespace {

/// Attempts until the first success under per-attempt loss rate `p`, capped
/// at `max_attempts`; 0 ⇒ the cap was exhausted. Rate 0 draws nothing (a
/// clean link consumes no stream), everything else draws one bernoulli per
/// attempt — variable-length but deterministic, since the count depends only
/// on the draws themselves.
std::uint32_t draw_attempts(common::Rng& rng, double p,
                            std::size_t max_attempts) {
  if (p <= 0.0) return 1;
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (!rng.bernoulli(p)) return static_cast<std::uint32_t>(attempt);
  }
  return 0;
}

}  // namespace

FaultPlan FaultPlan::draw(const FaultConfig& config, std::size_t max_attempts,
                          std::uint64_t round_index, std::size_t num_clients) {
  GSFL_EXPECT_MSG(max_attempts >= 1, "retry cap must allow one attempt");
  GSFL_EXPECT(config.crash_before_rate >= 0.0 &&
              config.crash_before_rate < 1.0);
  GSFL_EXPECT(config.crash_after_rate >= 0.0 && config.crash_after_rate < 1.0);
  GSFL_EXPECT(config.downlink_loss_rate >= 0.0 &&
              config.downlink_loss_rate < 1.0);
  GSFL_EXPECT(config.uplink_loss_rate >= 0.0 && config.uplink_loss_rate < 1.0);
  GSFL_EXPECT(config.straggler_rate >= 0.0 && config.straggler_rate <= 1.0);
  GSFL_EXPECT(config.straggler_slowdown_min >= 1.0 &&
              config.straggler_slowdown_min <= config.straggler_slowdown_max);

  // The round key: forking the root by (round + 1) gives every round an
  // independent stream whose position never depends on how many draws
  // earlier rounds consumed — the property crash-resume and pipelined
  // submission both rely on.
  common::Rng root(config.seed);
  common::Rng rng = root.fork(round_index + 1);

  FaultPlan plan;
  plan.clients_.resize(num_clients);
  for (auto& fault : plan.clients_) {
    // Fixed per-client draw order, chronological in the round: crash-before,
    // downlink, (compute, straggler factor), crash-after, uplink.
    fault.crash_before =
        config.crash_before_rate > 0.0 && rng.bernoulli(config.crash_before_rate);
    fault.downlink_attempts =
        draw_attempts(rng, config.downlink_loss_rate, max_attempts);
    if (config.straggler_rate > 0.0 && rng.bernoulli(config.straggler_rate)) {
      fault.slowdown = rng.uniform(config.straggler_slowdown_min,
                                   config.straggler_slowdown_max);
    }
    fault.crash_after =
        config.crash_after_rate > 0.0 && rng.bernoulli(config.crash_after_rate);
    fault.uplink_attempts =
        draw_attempts(rng, config.uplink_loss_rate, max_attempts);
  }
  return plan;
}

const ClientFault& FaultPlan::client(std::size_t c) const {
  GSFL_EXPECT(c < clients_.size());
  return clients_[c];
}

}  // namespace gsfl::sim
