#include "gsfl/sim/timeline.hpp"

#include "gsfl/common/csv.hpp"
#include "gsfl/common/expect.hpp"

namespace gsfl::sim {

void Timeline::append(std::string label, const LatencyBreakdown& cost) {
  TimelineEntry entry;
  entry.label = std::move(label);
  entry.start_seconds = now_;
  entry.cost = cost;
  now_ = entry.end_seconds();
  entries_.push_back(std::move(entry));
}

const TimelineEntry& Timeline::entry(std::size_t i) const {
  GSFL_EXPECT(i < entries_.size());
  return entries_[i];
}

LatencyBreakdown Timeline::total_cost() const {
  LatencyBreakdown total;
  for (const auto& e : entries_) total += e.cost;
  return total;
}

void Timeline::write_csv(std::ostream& out) const {
  common::CsvWriter csv(out, {"label", "start_s", "end_s", "total_s",
                              "client_compute_s", "server_compute_s",
                              "uplink_s", "downlink_s", "relay_s",
                              "aggregation_s"});
  for (const auto& e : entries_) {
    csv.row({e.label, e.start_seconds, e.end_seconds(), e.cost.total(),
             e.cost.client_compute, e.cost.server_compute, e.cost.uplink,
             e.cost.downlink, e.cost.relay, e.cost.aggregation});
  }
}

}  // namespace gsfl::sim
