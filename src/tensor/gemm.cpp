#include "gsfl/tensor/gemm.hpp"

#include <algorithm>

namespace gsfl::tensor {

namespace {

// Block sizes chosen so an (MC×KC) panel of A and a (KC×NC) panel of B fit
// comfortably in L1/L2 on commodity cores.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockK = 128;
constexpr std::size_t kBlockN = 256;

// C[i,:] += a_ik * B[k,:] over a j-range: the innermost kernel. Written so
// the compiler auto-vectorizes the contiguous row walk.
inline void saxpy_row(float a_ik, const float* b_row, float* c_row,
                      std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
}

}  // namespace

Tensor transpose(const Tensor& a) {
  GSFL_EXPECT(a.shape().rank() == 2);
  const std::size_t rows = a.shape()[0];
  const std::size_t cols = a.shape()[1];
  Tensor out(Shape{cols, rows});
  const auto src = a.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      dst[j * rows + i] = src[i * cols + j];
    }
  }
  return out;
}

void gemm(float alpha, const Tensor& a, Trans trans_a, const Tensor& b,
          Trans trans_b, float beta, Tensor& c) {
  GSFL_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2 &&
              c.shape().rank() == 2);

  // Materialize transposed operands; the copies are small relative to the
  // O(mnk) work and keep the kernel a single fast row-major path.
  const Tensor* pa = &a;
  const Tensor* pb = &b;
  Tensor at, bt;
  if (trans_a == Trans::kYes) {
    at = transpose(a);
    pa = &at;
  }
  if (trans_b == Trans::kYes) {
    bt = transpose(b);
    pb = &bt;
  }

  const std::size_t m = pa->shape()[0];
  const std::size_t k = pa->shape()[1];
  GSFL_EXPECT_MSG(pb->shape()[0] == k, "gemm inner dimensions must agree");
  const std::size_t n = pb->shape()[1];
  GSFL_EXPECT_MSG(c.shape()[0] == m && c.shape()[1] == n,
                  "gemm output shape mismatch");

  auto cd = c.data();
  if (beta == 0.0f) {
    std::fill(cd.begin(), cd.end(), 0.0f);
  } else if (beta != 1.0f) {
    for (auto& v : cd) v *= beta;
  }

  const auto ad = pa->data();
  const auto bd = pb->data();

  for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, m);
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t j1 = std::min(j0 + kBlockN, n);
        const std::size_t jn = j1 - j0;
        for (std::size_t i = i0; i < i1; ++i) {
          float* c_row = cd.data() + i * n + j0;
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const float a_ik = alpha * ad[i * k + kk];
            if (a_ik == 0.0f) continue;
            saxpy_row(a_ik, bd.data() + kk * n + j0, c_row, jn);
          }
        }
      }
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a,
              Trans trans_b) {
  GSFL_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2);
  const std::size_t m =
      trans_a == Trans::kNo ? a.shape()[0] : a.shape()[1];
  const std::size_t n =
      trans_b == Trans::kNo ? b.shape()[1] : b.shape()[0];
  Tensor c(Shape{m, n});
  gemm(1.0f, a, trans_a, b, trans_b, 0.0f, c);
  return c;
}

}  // namespace gsfl::tensor
