#include "gsfl/tensor/gemm.hpp"

#include <algorithm>

#include "gsfl/common/thread_pool.hpp"
#include "gsfl/common/workspace.hpp"
#include "gsfl/tensor/microkernel.hpp"

namespace gsfl::tensor {

namespace {

// Panel granularity for the parallel split of C — rows per chunk when
// splitting by rows, columns per chunk when splitting by columns — and the
// multiply-add count below which submit overhead outweighs going parallel.
constexpr std::size_t kRowGrain = 2 * micro::kMR;
constexpr std::size_t kColGrain = 2 * micro::kNR;
constexpr std::size_t kParallelMacCutoff = 1u << 18;

// Pack the panel of op(A) covering logical rows [r0, r1).
void pack_a_panel(const float* a, Trans trans, std::size_t m, std::size_t k,
                  std::size_t r0, std::size_t r1, float* pa) {
  if (trans == Trans::kNo) {
    micro::pack_a(a + r0 * k, k, r1 - r0, k, pa);
  } else {
    micro::pack_a_trans(a + r0, m, r1 - r0, k, pa);
  }
}

// Pack the panel of op(B) covering logical columns [c0, c1).
void pack_b_panel(const float* b, Trans trans, std::size_t k, std::size_t n,
                  std::size_t c0, std::size_t c1, float* pb) {
  if (trans == Trans::kNo) {
    micro::pack_b(b + c0, n, k, c1 - c0, pb);
  } else {
    micro::pack_b_trans(b + c0 * k, k, k, c1 - c0, pb);
  }
}

}  // namespace

void transpose_raw(const float* src, std::size_t rows, std::size_t cols,
                   float* dst) {
  // Cache-blocked: walk src in tiles so both the row-major reads and the
  // column-major writes stay within a tile's worth of cache lines, instead
  // of thrashing one line per element on large weight matrices.
  constexpr std::size_t kTile = 32;
  for (std::size_t i0 = 0; i0 < rows; i0 += kTile) {
    const std::size_t i1 = std::min(i0 + kTile, rows);
    for (std::size_t j0 = 0; j0 < cols; j0 += kTile) {
      const std::size_t j1 = std::min(j0 + kTile, cols);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          dst[j * rows + i] = src[i * cols + j];
        }
      }
    }
  }
}

Tensor transpose(const Tensor& a) {
  GSFL_EXPECT(a.shape().rank() == 2);
  const std::size_t rows = a.shape()[0];
  const std::size_t cols = a.shape()[1];
  Tensor out(Shape{cols, rows});
  transpose_raw(a.data().data(), rows, cols, out.data().data());
  return out;
}

void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* b, Trans trans_b,
              float beta, float* c, const micro::Epilogue& epilogue) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    // Empty inner dimension: the product term vanishes — run the write-back
    // (beta scale + epilogue) through a zero-k macrokernel so the epilogue
    // semantics stay uniform.
    micro::macrokernel(m, n, 0, alpha, nullptr, nullptr, beta, c, n,
                       epilogue);
    return;
  }

  // Split C along whichever axis yields more panels — conv batched GEMMs are
  // short and very wide (split columns), dense dW GEMMs are closer to square
  // (split rows). The choice depends only on the problem shape, never on the
  // lane count, and the microkernel produces each C element with the same
  // arithmetic under either split, so results are bitwise identical for any
  // thread count either way.
  const bool by_columns = (n + kColGrain - 1) / kColGrain >
                          (m + kRowGrain - 1) / kRowGrain;
  const bool serial = m * n * k < kParallelMacCutoff;

  if (serial || !by_columns) {
    // Caller packs all of op(B) once; panel tasks read it concurrently
    // (caller-owned shared key) and pack only their own row panel of op(A)
    // into lane-local scratch.
    float* pb = common::Workspace::floats(common::Workspace::kGemmPack,
                                          micro::packed_b_floats(k, n));
    pack_b_panel(b, trans_b, k, n, 0, n, pb);
    const auto rows_task = [&](std::size_t r0, std::size_t r1) {
      float* pa = common::Workspace::floats(
          common::Workspace::kGemmPackA, micro::packed_a_floats(r1 - r0, k));
      pack_a_panel(a, trans_a, m, k, r0, r1, pa);
      // A per-row bias walks with the panel's row offset; a per-column bias
      // spans all of n unshifted.
      micro::Epilogue ep = epilogue;
      if (ep.bias != nullptr && ep.per_row) ep.bias += r0;
      micro::macrokernel(r1 - r0, n, k, alpha, pa, pb, beta, c + r0 * n, n,
                         ep);
    };
    if (serial) {
      rows_task(0, m);
    } else {
      common::global_parallel_for(kRowGrain, m, rows_task);
    }
    return;
  }

  // Column split: op(A) is the small operand — caller packs it once, shared
  // read-only — and each task packs its own column panel of op(B), which
  // spreads the dominant O(k·n) packing pass across the lanes.
  float* pa = common::Workspace::floats(common::Workspace::kGemmPackA,
                                        micro::packed_a_floats(m, k));
  pack_a_panel(a, trans_a, m, k, 0, m, pa);
  common::global_parallel_for(kColGrain, n, [&](std::size_t c0,
                                                std::size_t c1) {
    float* pb = common::Workspace::floats(
        common::Workspace::kGemmPack, micro::packed_b_floats(k, c1 - c0));
    pack_b_panel(b, trans_b, k, n, c0, c1, pb);
    micro::Epilogue ep = epilogue;
    if (ep.bias != nullptr && !ep.per_row) ep.bias += c0;
    micro::macrokernel(m, c1 - c0, k, alpha, pa, pb, beta, c + c0, n, ep);
  });
}

void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* b, Trans trans_b,
              float beta, float* c) {
  gemm_raw(m, k, n, alpha, a, trans_a, b, trans_b, beta, c,
           micro::Epilogue{});
}

void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c) {
  gemm_raw(m, k, n, alpha, a, Trans::kNo, b, Trans::kNo, beta, c);
}

void gemm(float alpha, const Tensor& a, Trans trans_a, const Tensor& b,
          Trans trans_b, float beta, Tensor& c) {
  GSFL_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2 &&
              c.shape().rank() == 2);

  const std::size_t m =
      trans_a == Trans::kNo ? a.shape()[0] : a.shape()[1];
  const std::size_t k =
      trans_a == Trans::kNo ? a.shape()[1] : a.shape()[0];
  const std::size_t kb =
      trans_b == Trans::kNo ? b.shape()[0] : b.shape()[1];
  const std::size_t n =
      trans_b == Trans::kNo ? b.shape()[1] : b.shape()[0];
  GSFL_EXPECT_MSG(kb == k, "gemm inner dimensions must agree");
  GSFL_EXPECT_MSG(c.shape()[0] == m && c.shape()[1] == n,
                  "gemm output shape mismatch");

  gemm_raw(m, k, n, alpha, a.data().data(), trans_a, b.data().data(), trans_b,
           beta, c.data().data());
}

Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a,
              Trans trans_b) {
  GSFL_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2);
  const std::size_t m =
      trans_a == Trans::kNo ? a.shape()[0] : a.shape()[1];
  const std::size_t n =
      trans_b == Trans::kNo ? b.shape()[1] : b.shape()[0];
  Tensor c(Shape{m, n});
  gemm(1.0f, a, trans_a, b, trans_b, 0.0f, c);
  return c;
}

}  // namespace gsfl::tensor
