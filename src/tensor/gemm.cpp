#include "gsfl/tensor/gemm.hpp"

#include <algorithm>

#include "gsfl/common/thread_pool.hpp"
#include "gsfl/common/workspace.hpp"

namespace gsfl::tensor {

namespace {

// Block sizes chosen so an (MC×KC) panel of A and a packed (KC×NC) panel of
// B fit comfortably in L1/L2 on commodity cores.
constexpr std::size_t kBlockK = 128;
constexpr std::size_t kBlockN = 256;

// Row-panel granularity for the parallel split of C, and the multiply-add
// count below which the submit overhead outweighs going parallel.
constexpr std::size_t kRowGrain = 8;
constexpr std::size_t kParallelMacCutoff = 1u << 18;

// Minimum C rows before packing B pays for its extra O(k·n) pass.
constexpr std::size_t kPackMinRows = 16;

// C[i,:] += a_ik * B[k,:] over a j-range: the innermost kernel. Branch-free
// so the compiler auto-vectorizes the contiguous row walk and throughput is
// independent of the data (a zero-skip test here defeats both).
inline void saxpy_row(float a_ik, const float* b_row, float* c_row,
                      std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
}

}  // namespace

void transpose_raw(const float* src, std::size_t rows, std::size_t cols,
                   float* dst) {
  // Cache-blocked: walk src in tiles so both the row-major reads and the
  // column-major writes stay within a tile's worth of cache lines, instead
  // of thrashing one line per element on large weight matrices.
  constexpr std::size_t kTile = 32;
  for (std::size_t i0 = 0; i0 < rows; i0 += kTile) {
    const std::size_t i1 = std::min(i0 + kTile, rows);
    for (std::size_t j0 = 0; j0 < cols; j0 += kTile) {
      const std::size_t j1 = std::min(j0 + kTile, cols);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          dst[j * rows + i] = src[i * cols + j];
        }
      }
    }
  }
}

Tensor transpose(const Tensor& a) {
  GSFL_EXPECT(a.shape().rank() == 2);
  const std::size_t rows = a.shape()[0];
  const std::size_t cols = a.shape()[1];
  Tensor out(Shape{cols, rows});
  transpose_raw(a.data().data(), rows, cols, out.data().data());
  return out;
}

void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c) {
  if (m == 0 || n == 0) return;

  // Pack B once per call into a blocked layout — (k0, j0) panels laid out
  // contiguously in loop order — so the saxpy sweep reads contiguous rows
  // instead of n-strided ones. Only worth the extra O(k·n) pass when enough
  // C rows reuse each panel; below the threshold B is read in place. The
  // packed copy lives in the calling thread's workspace and is read-only
  // while row tasks run.
  const bool pack_b = m >= kPackMinRows;
  float* pack = nullptr;
  if (pack_b) {
    pack = common::Workspace::floats(common::Workspace::kGemmPack, k * n);
    std::size_t offset = 0;
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t j1 = std::min(j0 + kBlockN, n);
        const std::size_t jn = j1 - j0;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const float* b_row = b + kk * n + j0;
          std::copy(b_row, b_row + jn, pack + offset + (kk - k0) * jn);
        }
        offset += (k1 - k0) * jn;
      }
    }
  }

  // Each task owns a contiguous row panel of C: it applies beta to its rows
  // and accumulates k-blocks in ascending order, so every C row sees the
  // exact same operation sequence no matter how many lanes execute — the
  // bitwise-determinism contract of the parallel runtime.
  const auto process_rows = [&](std::size_t i_begin, std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      float* c_row = c + i * n;
      if (beta == 0.0f) {
        std::fill(c_row, c_row + n, 0.0f);
      } else if (beta != 1.0f) {
        for (std::size_t j = 0; j < n; ++j) c_row[j] *= beta;
      }
    }
    std::size_t offset = 0;
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t j1 = std::min(j0 + kBlockN, n);
        const std::size_t jn = j1 - j0;
        // Same values either way — packing only changes the stride.
        const float* panel = pack_b ? pack + offset : b + k0 * n + j0;
        const std::size_t panel_stride = pack_b ? jn : n;
        offset += (k1 - k0) * jn;
        for (std::size_t i = i_begin; i < i_end; ++i) {
          float* c_row = c + i * n + j0;
          const float* a_row = a + i * k;
          for (std::size_t kk = k0; kk < k1; ++kk) {
            saxpy_row(alpha * a_row[kk], panel + (kk - k0) * panel_stride,
                      c_row, jn);
          }
        }
      }
    }
  };

  if (m * n * k < kParallelMacCutoff) {
    process_rows(0, m);
    return;
  }
  common::global_parallel_for(kRowGrain, m, process_rows);
}

void gemm(float alpha, const Tensor& a, Trans trans_a, const Tensor& b,
          Trans trans_b, float beta, Tensor& c) {
  GSFL_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2 &&
              c.shape().rank() == 2);

  // Materialize transposed operands; the copies are small relative to the
  // O(mnk) work and keep the kernel a single fast row-major path.
  const Tensor* pa = &a;
  const Tensor* pb = &b;
  Tensor at, bt;
  if (trans_a == Trans::kYes) {
    at = transpose(a);
    pa = &at;
  }
  if (trans_b == Trans::kYes) {
    bt = transpose(b);
    pb = &bt;
  }

  const std::size_t m = pa->shape()[0];
  const std::size_t k = pa->shape()[1];
  GSFL_EXPECT_MSG(pb->shape()[0] == k, "gemm inner dimensions must agree");
  const std::size_t n = pb->shape()[1];
  GSFL_EXPECT_MSG(c.shape()[0] == m && c.shape()[1] == n,
                  "gemm output shape mismatch");

  gemm_raw(m, k, n, alpha, pa->data().data(), pb->data().data(), beta,
           c.data().data());
}

Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a,
              Trans trans_b) {
  GSFL_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2);
  const std::size_t m =
      trans_a == Trans::kNo ? a.shape()[0] : a.shape()[1];
  const std::size_t n =
      trans_b == Trans::kNo ? b.shape()[1] : b.shape()[0];
  Tensor c(Shape{m, n});
  gemm(1.0f, a, trans_a, b, trans_b, 0.0f, c);
  return c;
}

}  // namespace gsfl::tensor
