#include "gsfl/tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "gsfl/common/async_lane.hpp"
#include "gsfl/common/expect.hpp"
#include "gsfl/common/thread_pool.hpp"
#include "gsfl/common/workspace.hpp"
#include "gsfl/tensor/microkernel.hpp"

namespace gsfl::tensor {

namespace {

// Panel granularity for the parallel split of C — rows per chunk when
// splitting by rows, columns per chunk when splitting by columns — and the
// multiply-add count below which submit overhead outweighs going parallel.
constexpr std::size_t kRowGrain = 2 * micro::kMR;
constexpr std::size_t kColGrain = 2 * micro::kNR;
constexpr std::size_t kParallelMacCutoff = 1u << 18;

std::atomic<PackStrategy> g_pack_strategy{PackStrategy::kAuto};

// Pack the panel of op(A) covering logical rows [r0, r1), optionally with
// the Relu-derivative mask (same layout as a) folded into the read.
void pack_a_panel(const float* a, const float* a_mask, Trans trans,
                  std::size_t m, std::size_t k, std::size_t r0,
                  std::size_t r1, float* pa) {
  if (trans == Trans::kNo) {
    if (a_mask == nullptr) {
      micro::pack_a(a + r0 * k, k, r1 - r0, k, pa);
    } else {
      micro::pack_a_mask(a + r0 * k, a_mask + r0 * k, k, r1 - r0, k, pa);
    }
  } else {
    if (a_mask == nullptr) {
      micro::pack_a_trans(a + r0, m, r1 - r0, k, pa);
    } else {
      micro::pack_a_trans_mask(a + r0, a_mask + r0, m, r1 - r0, k, pa);
    }
  }
}

// Pack the full-k panel of op(B) covering logical columns [c0, c1).
void pack_b_panel(const float* b, Trans trans, std::size_t k, std::size_t n,
                  std::size_t c0, std::size_t c1, float* pb) {
  if (trans == Trans::kNo) {
    micro::pack_b(b + c0, n, k, c1 - c0, pb);
  } else {
    micro::pack_b_trans(b + c0 * k, k, k, c1 - c0, pb);
  }
}

// Pack the k slice [p0, p1) of op(B)'s columns [c0, c1) in slice-major strip
// layout (strip stride (p1-p0)·kNR — what macrokernel_block consumes with
// b_stride = p1-p0).
void pack_b_slice_panel(const float* b, Trans trans, std::size_t k,
                        std::size_t n, std::size_t p0, std::size_t p1,
                        std::size_t c0, std::size_t c1, float* pb) {
  if (trans == Trans::kNo) {
    micro::pack_b_slice(b + p0 * n + c0, n, p1 - p0, c1 - c0, pb);
  } else {
    micro::pack_b_trans_slice(b + c0 * k + p0, k, p1 - p0, c1 - c0, pb);
  }
}

// Sweep a rows×cols C block in KC k blocks, packing each B slice into the
// double-buffered slice arena immediately before its block runs — the
// interleaved schedule. The A panel (`pa`, strips of stride k) is packed by
// the caller; the per-element fold is the exact block sequence of
// micro::macrokernel, so the result is bitwise identical to the up-front
// schedule. beta != 0 runs as one block (C is the accumuland, not scratch),
// which degenerates to packing the full panel once.
void interleaved_sweep(std::size_t rows, std::size_t cols, std::size_t k,
                       float alpha, const float* pa, const float* b,
                       Trans trans_b, std::size_t n, std::size_t c0,
                       float beta, float* c, std::size_t ldc,
                       const micro::Epilogue& ep) {
  const std::size_t kc_len = beta != 0.0f ? k : micro::kKC;
  const std::size_t blocks = (k + kc_len - 1) / kc_len;
  const std::size_t slice_floats =
      micro::packed_b_slice_floats(std::min(kc_len, k), cols);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t p0 = blk * kc_len;
    const std::size_t p1 = std::min(p0 + kc_len, k);
    float* pb = common::Workspace::slice(common::Workspace::kGemmPackSlice,
                                         slice_floats, blk);
    pack_b_slice_panel(b, trans_b, k, n, p0, p1, c0, c0 + cols, pb);
    micro::macrokernel_block(rows, cols, p1 - p0, alpha,
                             pa + p0 * micro::kMR, k, pb, p1 - p0, beta, c,
                             ldc, blk > 0, blk + 1 == blocks, ep);
  }
}

// interleaved_sweep with the pack moved one block ahead onto the async
// lane: while block b sweeps on this thread, a lane worker packs slice b+1
// into the *other* parity of the slice arena. Both parity buffers are
// fetched up front by this (the sweeping) thread and handed to the pack
// tasks — the caller-owned handoff of the Workspace rules: the lane worker
// writes a buffer it was given, and this thread reads it only after the
// pack future resolves. Packing is a pure read of B, so the packed bytes —
// and therefore the fold — are bitwise identical to the interleaved
// schedule no matter which thread packs.
void pack_ahead_sweep(std::size_t rows, std::size_t cols, std::size_t k,
                      float alpha, const float* pa, const float* b,
                      Trans trans_b, std::size_t n, std::size_t c0,
                      float beta, float* c, std::size_t ldc,
                      const micro::Epilogue& ep) {
  const std::size_t kc_len = beta != 0.0f ? k : micro::kKC;
  const std::size_t blocks = (k + kc_len - 1) / kc_len;
  if (blocks == 1) {
    interleaved_sweep(rows, cols, k, alpha, pa, b, trans_b, n, c0, beta, c,
                      ldc, ep);
    return;
  }
  const std::size_t slice_floats =
      micro::packed_b_slice_floats(std::min(kc_len, k), cols);
  float* const pb[2] = {
      common::Workspace::slice(common::Workspace::kGemmPackSlice,
                               slice_floats, 0),
      common::Workspace::slice(common::Workspace::kGemmPackSlice,
                               slice_floats, 1)};
  // The parity handoff is the whole safety argument: the lane worker writes
  // one buffer while this thread sweeps the other.
  GSFL_EXPECT_MSG(pb[0] != pb[1],
                  "double-buffered pack slices must be distinct arenas");
  const auto pack_block = [&](std::size_t blk) {
    const std::size_t p0 = blk * kc_len;
    const std::size_t p1 = std::min(p0 + kc_len, k);
    pack_b_slice_panel(b, trans_b, k, n, p0, p1, c0, c0 + cols, pb[blk & 1]);
  };
  pack_block(0);
  common::TaskFuture<void> pending;
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    if (blk > 0) pending.wait();  // slice blk packed (maybe ahead, maybe now)
    if (blk + 1 < blocks) {
      pending = common::global_lane().submit(
          [&pack_block, next = blk + 1] { pack_block(next); });
    }
    const std::size_t p0 = blk * kc_len;
    const std::size_t p1 = std::min(p0 + kc_len, k);
    micro::macrokernel_block(rows, cols, p1 - p0, alpha,
                             pa + p0 * micro::kMR, k, pb[blk & 1], p1 - p0,
                             beta, c, ldc, blk > 0, blk + 1 == blocks, ep);
  }
}

// Quantize-on-pack panel of op(A) covering logical rows [r0, r1): packed u8
// bytes plus one dequant scale per logical row (scales index from 0 — the
// caller offsets into the full scale array like the bias pointer).
void pack_qa_panel(const float* a, Trans trans, std::size_t m, std::size_t k,
                   std::size_t r0, std::size_t r1, std::uint8_t* pa,
                   float* scale_a) {
  if (trans == Trans::kNo) {
    micro::q8::pack_a(a + r0 * k, k, r1 - r0, k, pa, scale_a);
  } else {
    micro::q8::pack_a_trans(a + r0, m, r1 - r0, k, pa, scale_a);
  }
}

// Quantize-on-pack full-k panel of op(B) covering logical columns [c0, c1):
// packed s8 bytes, per-column dequant scales, and the u8-offset
// compensation row.
void pack_qb_panel(const float* b, Trans trans, std::size_t k, std::size_t n,
                   std::size_t c0, std::size_t c1, std::int8_t* pb,
                   float* scale_b, std::int32_t* comp) {
  if (trans == Trans::kNo) {
    micro::q8::pack_b(b + c0, n, k, c1 - c0, pb, scale_b, comp);
  } else {
    micro::q8::pack_b_trans(b + c0 * k, k, k, c1 - c0, pb, scale_b, comp);
  }
}

// The int8 driver: same shape-driven row/column split and grains as the f32
// path (so the panel roles and Workspace key ownership mirror it exactly),
// but panels always pack up front over the full k — the integer macrokernel
// runs one k block with register-resident accumulators, so there is no KC
// sweep and PackStrategy is irrelevant. Scales are per *logical* row/column
// (pure functions of the operands, never of panel boundaries) and int32
// accumulation is exact, so any split packs identical bytes and folds to
// identical results: bitwise invariance across thread count for free.
void gemm_raw_q8(std::size_t m, std::size_t k, std::size_t n, float alpha,
                 const float* a, Trans trans_a, const float* b, Trans trans_b,
                 float beta, float* c, const micro::Epilogue& epilogue) {
  namespace q8 = micro::q8;
  GSFL_EXPECT_MSG(a != nullptr && b != nullptr && c != nullptr,
                  "gemm_raw_q8 operands must be non-null");
  const bool by_columns = (n + kColGrain - 1) / kColGrain >
                          (m + kRowGrain - 1) / kRowGrain;
  const bool serial = m * n * k < kParallelMacCutoff;

  if (serial || !by_columns) {
    // Caller packs + quantizes all of op(B) once (shared, read-only across
    // the row tasks); each task quantizes its own row panel of op(A).
    auto* pb = reinterpret_cast<std::int8_t*>(common::Workspace::bytes(
        common::Workspace::kGemmQuantB, q8::packed_b_bytes(k, n)));
    float* sb =
        common::Workspace::floats(common::Workspace::kGemmQuantScaleB, n);
    auto* comp = reinterpret_cast<std::int32_t*>(common::Workspace::bytes(
        common::Workspace::kGemmQuantComp, n * sizeof(std::int32_t)));
    pack_qb_panel(b, trans_b, k, n, 0, n, pb, sb, comp);
    const auto rows_task = [&](std::size_t r0, std::size_t r1) {
      auto* pa = reinterpret_cast<std::uint8_t*>(common::Workspace::bytes(
          common::Workspace::kGemmQuantA, q8::packed_a_bytes(r1 - r0, k)));
      float* sa = common::Workspace::floats(
          common::Workspace::kGemmQuantScaleA, r1 - r0);
      pack_qa_panel(a, trans_a, m, k, r0, r1, pa, sa);
      // A per-row epilogue walks with the panel's row offset; per-column
      // arrays span all of n unshifted.
      const micro::Epilogue ep =
          epilogue.per_row ? epilogue.shifted(r0) : epilogue;
      q8::macrokernel(r1 - r0, n, k, alpha, pa, pb, sa, sb, comp, beta,
                      c + r0 * n, n, ep);
    };
    if (serial) {
      rows_task(0, m);
    } else {
      common::global_parallel_for(kRowGrain, m, rows_task);
    }
    return;
  }

  // Column split: op(A) quantizes once (shared), each task quantizes its own
  // column panel of op(B) — the dominant O(k·n) pass spreads across lanes.
  auto* pa = reinterpret_cast<std::uint8_t*>(common::Workspace::bytes(
      common::Workspace::kGemmQuantA, q8::packed_a_bytes(m, k)));
  float* sa =
      common::Workspace::floats(common::Workspace::kGemmQuantScaleA, m);
  pack_qa_panel(a, trans_a, m, k, 0, m, pa, sa);
  common::global_parallel_for(
      kColGrain, n, [&](std::size_t c0, std::size_t c1) {
        auto* pb = reinterpret_cast<std::int8_t*>(common::Workspace::bytes(
            common::Workspace::kGemmQuantB,
            q8::packed_b_bytes(k, c1 - c0)));
        float* sb = common::Workspace::floats(
            common::Workspace::kGemmQuantScaleB, c1 - c0);
        auto* comp =
            reinterpret_cast<std::int32_t*>(common::Workspace::bytes(
                common::Workspace::kGemmQuantComp,
                (c1 - c0) * sizeof(std::int32_t)));
        pack_qb_panel(b, trans_b, k, n, c0, c1, pb, sb, comp);
        const micro::Epilogue ep =
            epilogue.per_row ? epilogue : epilogue.shifted(c0);
        q8::macrokernel(m, c1 - c0, k, alpha, pa, pb, sa, sb, comp, beta,
                        c + c0, n, ep);
      });
}

// Dispatch between the two per-slice schedules.
void sliced_sweep(PackStrategy strategy, std::size_t rows, std::size_t cols,
                  std::size_t k, float alpha, const float* pa, const float* b,
                  Trans trans_b, std::size_t n, std::size_t c0, float beta,
                  float* c, std::size_t ldc, const micro::Epilogue& ep) {
  if (strategy == PackStrategy::kPackAhead) {
    pack_ahead_sweep(rows, cols, k, alpha, pa, b, trans_b, n, c0, beta, c,
                     ldc, ep);
  } else {
    interleaved_sweep(rows, cols, k, alpha, pa, b, trans_b, n, c0, beta, c,
                      ldc, ep);
  }
}

}  // namespace

void PackedOperand::pack_b(const float* b, Trans trans, std::size_t k,
                           std::size_t cols) {
  GSFL_EXPECT(k > 0 && cols > 0);
  k_ = k;
  cols_ = cols;
  rows_ = 0;
  float* panel = f32_.elements<float>(micro::packed_b_floats(k, cols));
  pack_b_panel(b, trans, k, cols, 0, cols, panel);
  has_f32_ = true;
  // Dims changed ⇒ any previously quantized panel is stale.
  has_q8_ = false;
}

void PackedOperand::pack_b_q8(const float* b, Trans trans, std::size_t k,
                              std::size_t cols) {
  namespace q8 = micro::q8;
  GSFL_EXPECT(k > 0 && cols > 0);
  GSFL_EXPECT_MSG(rows_ == 0, "pack_b_q8 on an A-side operand");
  k_ = k;
  cols_ = cols;
  auto* pb = q8_.elements<std::int8_t>(q8::packed_b_bytes(k, cols));
  float* sb = q8_scale_.elements<float>(cols);
  auto* comp = q8_comp_.elements<std::int32_t>(cols);
  pack_qb_panel(b, trans, k, cols, 0, cols, pb, sb, comp);
  has_q8_ = true;
}

void PackedOperand::pack_a(const float* a, Trans trans, std::size_t rows,
                           std::size_t k) {
  GSFL_EXPECT(rows > 0 && k > 0);
  rows_ = rows;
  k_ = k;
  cols_ = 0;
  float* panel = f32_.elements<float>(micro::packed_a_floats(rows, k));
  pack_a_panel(a, nullptr, trans, rows, k, 0, rows, panel);
  has_f32_ = true;
  has_q8_ = false;
}

void gemm_packed(std::size_t m, std::size_t k, std::size_t n, float alpha,
                 const float* a, Trans trans_a, const PackedOperand& b,
                 float beta, float* c, const micro::Epilogue& epilogue,
                 GemmPrecision precision) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    micro::macrokernel(m, n, 0, alpha, nullptr, nullptr, beta, c, n,
                       epilogue);
    return;
  }
  GSFL_EXPECT_MSG(b.k() == k && b.cols() == n,
                  "gemm_packed: packed operand dims must match the call");

  // Same shape-driven split heuristic as gemm_raw — the panel roles mirror
  // it, with the persistent B standing in for the per-call pack.
  const bool by_columns = (n + kColGrain - 1) / kColGrain >
                          (m + kRowGrain - 1) / kRowGrain;
  const bool serial = m * n * k < kParallelMacCutoff;

  if (precision == GemmPrecision::kInt8) {
    namespace q8 = micro::q8;
    GSFL_EXPECT_MSG(b.has_q8(),
                    "gemm_packed kInt8 requires a pack_b_q8'd operand");
    const std::int8_t* pb = b.panel_q8();
    const float* sb = b.q8_scales();
    const std::int32_t* comp = b.q8_comp();
    if (serial || !by_columns) {
      // Row split: every task reads the shared persistent B panel and
      // quantizes only its own row panel of op(A) into lane-local scratch —
      // exactly gemm_raw_q8's row path minus the B pack.
      const auto rows_task = [&](std::size_t r0, std::size_t r1) {
        auto* pa = reinterpret_cast<std::uint8_t*>(common::Workspace::bytes(
            common::Workspace::kGemmQuantA, q8::packed_a_bytes(r1 - r0, k)));
        float* sa = common::Workspace::floats(
            common::Workspace::kGemmQuantScaleA, r1 - r0);
        pack_qa_panel(a, trans_a, m, k, r0, r1, pa, sa);
        const micro::Epilogue ep =
            epilogue.per_row ? epilogue.shifted(r0) : epilogue;
        q8::macrokernel(r1 - r0, n, k, alpha, pa, pb, sa, sb, comp, beta,
                        c + r0 * n, n, ep);
      };
      if (serial) {
        rows_task(0, m);
      } else {
        common::global_parallel_for(kRowGrain, m, rows_task);
      }
      return;
    }
    // Column split into the shared panel: parallelize over *strip groups*
    // (kColGrain = 2·kNR columns each) rather than raw columns — pool chunk
    // boundaries are not grain-aligned, and a mid-strip c0 cannot be
    // addressed inside a pre-packed panel. c0 = group·kColGrain is always a
    // strip boundary, so the sub-panel is pb + c0·padded_k.
    auto* pa = reinterpret_cast<std::uint8_t*>(common::Workspace::bytes(
        common::Workspace::kGemmQuantA, q8::packed_a_bytes(m, k)));
    float* sa =
        common::Workspace::floats(common::Workspace::kGemmQuantScaleA, m);
    pack_qa_panel(a, trans_a, m, k, 0, m, pa, sa);
    const std::size_t kp = q8::padded_k(k);
    const std::size_t groups = (n + kColGrain - 1) / kColGrain;
    common::global_parallel_for(
        1, groups, [&](std::size_t g0, std::size_t g1) {
          const std::size_t c0 = g0 * kColGrain;
          const std::size_t c1 = std::min(g1 * kColGrain, n);
          const micro::Epilogue ep =
              epilogue.per_row ? epilogue : epilogue.shifted(c0);
          q8::macrokernel(m, c1 - c0, k, alpha, pa, pb + c0 * kp, sa,
                          sb + c0, comp + c0, beta, c + c0, n, ep);
        });
    return;
  }

  GSFL_EXPECT_MSG(b.has_f32(), "gemm_packed requires a pack_b'd operand");
  const float* pb = b.panel_f32();
  if (serial || !by_columns) {
    const auto rows_task = [&](std::size_t r0, std::size_t r1) {
      float* pa = common::Workspace::floats(
          common::Workspace::kGemmPackA, micro::packed_a_floats(r1 - r0, k));
      pack_a_panel(a, nullptr, trans_a, m, k, r0, r1, pa);
      const micro::Epilogue ep =
          epilogue.per_row ? epilogue.shifted(r0) : epilogue;
      micro::macrokernel(r1 - r0, n, k, alpha, pa, pb, beta, c + r0 * n, n,
                         ep);
    };
    if (serial) {
      rows_task(0, m);
    } else {
      common::global_parallel_for(kRowGrain, m, rows_task);
    }
    return;
  }
  // Column split over strip groups (see the int8 path above): each group's
  // f32 sub-panel starts at pb + c0·k (strip stride k·kNR, c0 a kNR
  // multiple). The per-element fold never depends on where the panel was
  // sliced, so this matches gemm_raw's arbitrary-boundary split bitwise.
  float* pa = common::Workspace::floats(common::Workspace::kGemmPackA,
                                        micro::packed_a_floats(m, k));
  pack_a_panel(a, nullptr, trans_a, m, k, 0, m, pa);
  const std::size_t groups = (n + kColGrain - 1) / kColGrain;
  common::global_parallel_for(1, groups, [&](std::size_t g0, std::size_t g1) {
    const std::size_t c0 = g0 * kColGrain;
    const std::size_t c1 = std::min(g1 * kColGrain, n);
    const micro::Epilogue ep =
        epilogue.per_row ? epilogue : epilogue.shifted(c0);
    micro::macrokernel(m, c1 - c0, k, alpha, pa, pb + c0 * k, beta, c + c0,
                       n, ep);
  });
}

void set_pack_strategy(PackStrategy strategy) {
  g_pack_strategy.store(strategy, std::memory_order_relaxed);
}

PackStrategy pack_strategy() {
  return g_pack_strategy.load(std::memory_order_relaxed);
}

void transpose_raw(const float* src, std::size_t rows, std::size_t cols,
                   float* dst) {
  // Cache-blocked: walk src in tiles so both the row-major reads and the
  // column-major writes stay within a tile's worth of cache lines, instead
  // of thrashing one line per element on large weight matrices.
  constexpr std::size_t kTile = 32;
  for (std::size_t i0 = 0; i0 < rows; i0 += kTile) {
    const std::size_t i1 = std::min(i0 + kTile, rows);
    for (std::size_t j0 = 0; j0 < cols; j0 += kTile) {
      const std::size_t j1 = std::min(j0 + kTile, cols);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          dst[j * rows + i] = src[i * cols + j];
        }
      }
    }
  }
}

Tensor transpose(const Tensor& a) {
  GSFL_EXPECT(a.shape().rank() == 2);
  const std::size_t rows = a.shape()[0];
  const std::size_t cols = a.shape()[1];
  Tensor out(Shape{cols, rows});
  transpose_raw(a.data().data(), rows, cols, out.data().data());
  return out;
}

void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* a_mask,
              const float* b, Trans trans_b, float beta, float* c,
              const micro::Epilogue& epilogue) {
  if (m == 0 || n == 0) return;
  GSFL_EXPECT_MSG(a != nullptr && b != nullptr && c != nullptr,
                  "gemm_raw operands must be non-null");
  if (k == 0) {
    // Empty inner dimension: the product term vanishes — run the write-back
    // (beta scale + epilogue) through a zero-k macrokernel so the epilogue
    // semantics stay uniform.
    micro::macrokernel(m, n, 0, alpha, nullptr, nullptr, beta, c, n,
                       epilogue);
    return;
  }

  // Split C along whichever axis yields more panels — conv batched GEMMs are
  // short and very wide (split columns), dense dW GEMMs are closer to square
  // (split rows). The choice depends only on the problem shape, never on the
  // lane count, and the microkernel produces each C element with the same
  // arithmetic under either split, so results are bitwise identical for any
  // thread count either way.
  const bool by_columns = (n + kColGrain - 1) / kColGrain >
                          (m + kRowGrain - 1) / kRowGrain;
  const bool serial = m * n * k < kParallelMacCutoff;

  // Interleaved packing (see PackStrategy): under kAuto, the row path
  // interleaves only when it runs as a single task — the serial cutoff, a
  // one-lane pool, or a GEMM nested inside a parallel region (where
  // global_parallel_for runs fn(0, m) inline: the per-client training hot
  // path). A multi-task row split shares one packed B across its tasks, so
  // up-front packing does the O(k·n) work once where interleaving would
  // repeat it per task. The column path packs per task either way, so it
  // interleaves whenever the sweep k-blocks.
  const PackStrategy strategy = pack_strategy();
  const bool multi_block = beta == 0.0f && k > micro::kKC;
  const bool row_single_task = serial || common::global_lanes() == 1 ||
                               common::ThreadPool::in_parallel_region();

  if (serial || !by_columns) {
    const bool interleave =
        strategy == PackStrategy::kInterleaved ||
        strategy == PackStrategy::kPackAhead ||
        (strategy == PackStrategy::kAuto && multi_block && row_single_task);
    // kAuto upgrades an interleaved sweep to pack-ahead when the global
    // lane reports idle capacity: the pack of slice b+1 then overlaps block
    // b's sweep instead of serializing after it. idle_workers() is a racy
    // advisory read — a stale answer only changes which thread packs, and
    // the packed bytes (hence the fold, hence the result) are bitwise
    // identical under every schedule, so the auto-pick cannot perturb
    // results (pinned by the pack-strategy property sweep).
    PackStrategy sliced = strategy;
    if (interleave && strategy == PackStrategy::kAuto &&
        common::global_lane().idle_workers() > 0) {
      sliced = PackStrategy::kPackAhead;
    }
    float* pb = nullptr;
    if (!interleave) {
      // Caller packs all of op(B) once; panel tasks read it concurrently
      // (caller-owned shared key) and pack only their own row panel of
      // op(A) into lane-local scratch.
      pb = common::Workspace::floats(common::Workspace::kGemmPack,
                                     micro::packed_b_floats(k, n));
      pack_b_panel(b, trans_b, k, n, 0, n, pb);
    }
    const auto rows_task = [&](std::size_t r0, std::size_t r1) {
      float* pa = common::Workspace::floats(
          common::Workspace::kGemmPackA, micro::packed_a_floats(r1 - r0, k));
      pack_a_panel(a, a_mask, trans_a, m, k, r0, r1, pa);
      // A per-row epilogue walks with the panel's row offset; per-column
      // arrays span all of n unshifted.
      const micro::Epilogue ep =
          epilogue.per_row ? epilogue.shifted(r0) : epilogue;
      if (interleave) {
        // Each task packs its own B slices (one task in the kAuto hot path;
        // forced kInterleaved accepts the per-task repack to exercise the
        // schedule under every split).
        sliced_sweep(sliced, r1 - r0, n, k, alpha, pa, b, trans_b, n, 0,
                     beta, c + r0 * n, n, ep);
      } else {
        micro::macrokernel(r1 - r0, n, k, alpha, pa, pb, beta, c + r0 * n,
                           n, ep);
      }
    };
    if (serial) {
      rows_task(0, m);
    } else {
      common::global_parallel_for(kRowGrain, m, rows_task);
    }
    return;
  }

  // Column split: op(A) is the small operand — caller packs it once, shared
  // read-only — and each task packs its own column panel of op(B), which
  // spreads the dominant O(k·n) packing pass across the lanes.
  const bool interleave_cols =
      strategy == PackStrategy::kInterleaved ||
      strategy == PackStrategy::kPackAhead ||
      (strategy == PackStrategy::kAuto && multi_block);
  // Same advisory pack-ahead upgrade as the row path, decided once by the
  // issuing thread (column tasks submitting packs race help-on-wait safely
  // either way).
  PackStrategy sliced_cols = strategy;
  if (interleave_cols && strategy == PackStrategy::kAuto &&
      common::global_lane().idle_workers() > 0) {
    sliced_cols = PackStrategy::kPackAhead;
  }
  float* pa = common::Workspace::floats(common::Workspace::kGemmPackA,
                                        micro::packed_a_floats(m, k));
  pack_a_panel(a, a_mask, trans_a, m, k, 0, m, pa);
  common::global_parallel_for(kColGrain, n, [&](std::size_t c0,
                                                std::size_t c1) {
    const micro::Epilogue ep =
        epilogue.per_row ? epilogue : epilogue.shifted(c0);
    if (interleave_cols) {
      sliced_sweep(sliced_cols, m, c1 - c0, k, alpha, pa, b, trans_b, n, c0,
                   beta, c + c0, n, ep);
      return;
    }
    float* pb = common::Workspace::floats(
        common::Workspace::kGemmPack, micro::packed_b_floats(k, c1 - c0));
    pack_b_panel(b, trans_b, k, n, c0, c1, pb);
    micro::macrokernel(m, c1 - c0, k, alpha, pa, pb, beta, c + c0, n, ep);
  });
}

void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* b, Trans trans_b,
              float beta, float* c, const micro::Epilogue& epilogue) {
  gemm_raw(m, k, n, alpha, a, trans_a, nullptr, b, trans_b, beta, c,
           epilogue);
}

void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* b, Trans trans_b,
              float beta, float* c, const micro::Epilogue& epilogue,
              GemmPrecision precision) {
  if (precision == GemmPrecision::kF32) {
    gemm_raw(m, k, n, alpha, a, trans_a, b, trans_b, beta, c, epilogue);
    return;
  }
  if (m == 0 || n == 0) return;
  if (k == 0) {
    // Empty inner dimension: nothing to quantize — the write-back
    // (beta scale + epilogue) is precision-independent.
    micro::macrokernel(m, n, 0, alpha, nullptr, nullptr, beta, c, n,
                       epilogue);
    return;
  }
  gemm_raw_q8(m, k, n, alpha, a, trans_a, b, trans_b, beta, c, epilogue);
}

void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, Trans trans_a, const float* b, Trans trans_b,
              float beta, float* c) {
  gemm_raw(m, k, n, alpha, a, trans_a, b, trans_b, beta, c,
           micro::Epilogue{});
}

void gemm_raw(std::size_t m, std::size_t k, std::size_t n, float alpha,
              const float* a, const float* b, float beta, float* c) {
  gemm_raw(m, k, n, alpha, a, Trans::kNo, b, Trans::kNo, beta, c);
}

void gemm(float alpha, const Tensor& a, Trans trans_a, const Tensor& b,
          Trans trans_b, float beta, Tensor& c) {
  GSFL_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2 &&
              c.shape().rank() == 2);

  const std::size_t m =
      trans_a == Trans::kNo ? a.shape()[0] : a.shape()[1];
  const std::size_t k =
      trans_a == Trans::kNo ? a.shape()[1] : a.shape()[0];
  const std::size_t kb =
      trans_b == Trans::kNo ? b.shape()[0] : b.shape()[1];
  const std::size_t n =
      trans_b == Trans::kNo ? b.shape()[1] : b.shape()[0];
  GSFL_EXPECT_MSG(kb == k, "gemm inner dimensions must agree");
  GSFL_EXPECT_MSG(c.shape()[0] == m && c.shape()[1] == n,
                  "gemm output shape mismatch");

  gemm_raw(m, k, n, alpha, a.data().data(), trans_a, b.data().data(), trans_b,
           beta, c.data().data());
}

Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a,
              Trans trans_b) {
  GSFL_EXPECT(a.shape().rank() == 2 && b.shape().rank() == 2);
  const std::size_t m =
      trans_a == Trans::kNo ? a.shape()[0] : a.shape()[1];
  const std::size_t n =
      trans_b == Trans::kNo ? b.shape()[1] : b.shape()[0];
  Tensor c(Shape{m, n});
  gemm(1.0f, a, trans_a, b, trans_b, 0.0f, c);
  return c;
}

}  // namespace gsfl::tensor
