#include "gsfl/tensor/im2col.hpp"

namespace gsfl::tensor {

namespace {

void check_image(const Tensor& t, std::size_t batch_index,
                 const ConvGeometry& geom) {
  GSFL_EXPECT(t.shape().rank() == 4);
  GSFL_EXPECT(batch_index < t.shape()[0]);
  GSFL_EXPECT(t.shape()[1] == geom.in_channels);
  GSFL_EXPECT(t.shape()[2] == geom.in_h);
  GSFL_EXPECT(t.shape()[3] == geom.in_w);
  GSFL_EXPECT(geom.kernel > 0 && geom.stride > 0);
}

}  // namespace

void im2col_into(const float* image, const ConvGeometry& geom, float* columns,
                 std::size_t col_stride) {
  const std::size_t oh = geom.out_h();
  const std::size_t ow = geom.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < geom.in_channels; ++c) {
    for (std::size_t ky = 0; ky < geom.kernel; ++ky) {
      for (std::size_t kx = 0; kx < geom.kernel; ++kx, ++row) {
        float* out_row = columns + row * col_stride;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * geom.stride + ky) -
              static_cast<std::ptrdiff_t>(geom.pad);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * geom.stride + kx) -
                static_cast<std::ptrdiff_t>(geom.pad);
            float value = 0.0f;
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(geom.in_h) &&
                ix >= 0 && ix < static_cast<std::ptrdiff_t>(geom.in_w)) {
              value = image[(c * geom.in_h + static_cast<std::size_t>(iy)) *
                                geom.in_w +
                            static_cast<std::size_t>(ix)];
            }
            out_row[oy * ow + ox] = value;
          }
        }
      }
    }
  }
}

void im2col_into(const float* image, const ConvGeometry& geom,
                 float* columns) {
  im2col_into(image, geom, columns, geom.out_positions());
}

Tensor im2col(const Tensor& input, std::size_t batch_index,
              const ConvGeometry& geom) {
  check_image(input, batch_index, geom);
  Tensor columns(Shape{geom.patch_size(), geom.out_positions()});
  const std::size_t chw = geom.in_channels * geom.in_h * geom.in_w;
  im2col_into(input.data().data() + batch_index * chw, geom,
              columns.data().data());
  return columns;
}

void col2im_accumulate_into(const float* columns, const ConvGeometry& geom,
                            float* image, std::size_t col_stride) {
  const std::size_t oh = geom.out_h();
  const std::size_t ow = geom.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < geom.in_channels; ++c) {
    for (std::size_t ky = 0; ky < geom.kernel; ++ky) {
      for (std::size_t kx = 0; kx < geom.kernel; ++kx, ++row) {
        const float* in_row = columns + row * col_stride;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * geom.stride + ky) -
              static_cast<std::ptrdiff_t>(geom.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(geom.in_h)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * geom.stride + kx) -
                static_cast<std::ptrdiff_t>(geom.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(geom.in_w))
              continue;
            image[(c * geom.in_h + static_cast<std::size_t>(iy)) * geom.in_w +
                  static_cast<std::size_t>(ix)] += in_row[oy * ow + ox];
          }
        }
      }
    }
  }
}

void col2im_accumulate_into(const float* columns, const ConvGeometry& geom,
                            float* image) {
  col2im_accumulate_into(columns, geom, image, geom.out_positions());
}

void col2im_accumulate(const Tensor& columns, const ConvGeometry& geom,
                       Tensor& grad_input, std::size_t batch_index) {
  check_image(grad_input, batch_index, geom);
  GSFL_EXPECT(columns.shape().rank() == 2);
  GSFL_EXPECT(columns.shape()[0] == geom.patch_size());
  GSFL_EXPECT(columns.shape()[1] == geom.out_positions());
  const std::size_t chw = geom.in_channels * geom.in_h * geom.in_w;
  col2im_accumulate_into(columns.data().data(), geom,
                         grad_input.data().data() + batch_index * chw);
}

}  // namespace gsfl::tensor
