#include "gsfl/tensor/quantize.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gsfl/common/serial.hpp"
#include "gsfl/tensor/microkernel.hpp"
#include "gsfl/tensor/serialize.hpp"

namespace gsfl::tensor {

namespace {

constexpr std::array<char, 4> kQuantMagic = {'G', 'S', 'Q', 'T'};

// The quantize/round helpers are shared with the int8 GEMM path
// (micro::q8::scale_for / quantize) so the wire codec and the compute path
// round identically — one nearest-even rule, pinned in one place.

std::size_t num_scale_groups(const Shape& shape,
                             const QuantizerConfig& config) {
  return config.per_channel && shape.rank() > 0 ? shape[0] : 1;
}

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error(message);
}

}  // namespace

int quantizer_qmax(std::size_t bits) {
  GSFL_EXPECT_MSG(bits >= 2 && bits <= 8, "quantizer bits must be in [2, 8]");
  return (1 << (bits - 1)) - 1;
}

void fake_quantize(Tensor& t, const QuantizerConfig& config) {
  if (!config.active()) return;
  const int qmax = quantizer_qmax(config.bits);
  auto data = t.data();
  const std::size_t groups = num_scale_groups(t.shape(), config);
  const std::size_t stride = data.size() / groups;
  for (std::size_t g = 0; g < groups; ++g) {
    float* x = data.data() + g * stride;
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < stride; ++i) {
      max_abs = std::max(max_abs, std::fabs(x[i]));
    }
    const float scale = micro::q8::scale_for(max_abs, qmax);
    const float inv = 1.0f / scale;
    for (std::size_t i = 0; i < stride; ++i) {
      x[i] = scale *
             static_cast<float>(micro::q8::quantize(x[i], inv, qmax));
    }
  }
}

std::size_t quantized_wire_bytes(const Shape& shape,
                                 const QuantizerConfig& config) {
  GSFL_EXPECT_MSG(config.active(),
                  "quantized_wire_bytes requires an active quantizer");
  (void)quantizer_qmax(config.bits);  // range-check bits
  const std::size_t groups = num_scale_groups(shape, config);
  return kQuantMagic.size() + sizeof(std::uint32_t) +
         shape.rank() * sizeof(std::uint64_t) + 2 * sizeof(std::uint8_t) +
         sizeof(std::uint32_t) + groups * sizeof(float) +
         (shape.numel() * config.bits + 7) / 8;
}

void write_quantized(std::ostream& out, const Tensor& t,
                     const QuantizerConfig& config) {
  GSFL_EXPECT_MSG(config.active(),
                  "write_quantized requires an active quantizer");
  const int qmax = quantizer_qmax(config.bits);
  out.write(kQuantMagic.data(), kQuantMagic.size());
  common::serial::write_pod(
      out, static_cast<std::uint32_t>(t.shape().rank()));
  for (const std::size_t d : t.shape().dims()) {
    common::serial::write_pod(out, static_cast<std::uint64_t>(d));
  }
  common::serial::write_pod(out, static_cast<std::uint8_t>(config.bits));
  common::serial::write_pod(
      out, static_cast<std::uint8_t>(config.per_channel ? 1 : 0));

  const auto data = t.data();
  const std::size_t groups = num_scale_groups(t.shape(), config);
  const std::size_t stride = data.size() / groups;
  common::serial::write_pod(out, static_cast<std::uint32_t>(groups));
  std::vector<float> scales(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < stride; ++i) {
      max_abs = std::max(max_abs, std::fabs(data[g * stride + i]));
    }
    scales[g] = micro::q8::scale_for(max_abs, qmax);
    common::serial::write_pod(out, scales[g]);
  }

  std::vector<unsigned char> payload((data.size() * config.bits + 7) / 8, 0);
  std::size_t bitpos = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const float inv = 1.0f / scales[g];
    for (std::size_t i = 0; i < stride; ++i) {
      const int q =
          micro::q8::quantize(data[g * stride + i], inv, qmax);
      const auto u = static_cast<unsigned>(q + qmax);
      for (std::size_t b = 0; b < config.bits; ++b, ++bitpos) {
        if ((u >> b) & 1u) {
          payload[bitpos >> 3] |=
              static_cast<unsigned char>(1u << (bitpos & 7));
        }
      }
    }
  }
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  if (!out) fail("quantized tensor serialization: write failed");
}

Tensor read_quantized(std::istream& in) {
  std::array<char, 4> magic{};
  const auto magic_offset = static_cast<long long>(in.tellg());
  in.read(magic.data(), magic.size());
  if (!in) {
    fail("truncated read of quantized tensor magic at offset " +
         std::to_string(magic_offset));
  }
  if (magic != kQuantMagic) {
    fail("quantized tensor deserialization: bad magic");
  }
  const auto rank =
      common::serial::read_pod<std::uint32_t>(in, "quantized tensor rank");
  if (rank > 8) fail("quantized tensor deserialization: rank > 8");
  std::vector<std::size_t> dims(rank);
  std::size_t numel = 1;
  for (auto& d : dims) {
    d = static_cast<std::size_t>(
        common::serial::read_u64(in, "quantized tensor dim"));
    if (d == 0 || numel > (1ULL << 32) / std::max<std::size_t>(d, 1)) {
      fail("quantized tensor deserialization: implausible shape");
    }
    numel *= d;
  }

  const auto bits_offset = static_cast<long long>(in.tellg());
  const auto bits =
      common::serial::read_pod<std::uint8_t>(in, "quantized tensor bits");
  if (bits < 2 || bits > 8) {
    fail("quantized tensor deserialization: bits " +
         std::to_string(static_cast<int>(bits)) +
         " outside [2, 8] at offset " + std::to_string(bits_offset));
  }
  const auto flag_offset = static_cast<long long>(in.tellg());
  const auto per_channel = common::serial::read_pod<std::uint8_t>(
      in, "quantized tensor per-channel flag");
  if (per_channel > 1) {
    fail("quantized tensor deserialization: bad per-channel flag at offset " +
         std::to_string(flag_offset));
  }
  const auto scales_offset = static_cast<long long>(in.tellg());
  const auto num_scales = common::serial::read_pod<std::uint32_t>(
      in, "quantized tensor scale count");
  const std::size_t expected_scales =
      per_channel != 0 && rank > 0 ? dims[0] : 1;
  if (num_scales != expected_scales) {
    fail("quantized tensor deserialization: scale table of " +
         std::to_string(num_scales) + " entries does not match shape " +
         Shape(dims).to_string() + " (expected " +
         std::to_string(expected_scales) + ") at offset " +
         std::to_string(scales_offset));
  }
  std::vector<float> scales(num_scales);
  for (auto& scale : scales) {
    const auto scale_offset = static_cast<long long>(in.tellg());
    scale = common::serial::read_pod<float>(in, "quantized tensor scale");
    if (!std::isfinite(scale) || scale <= 0.0f) {
      fail("quantized tensor deserialization: bad scale at offset " +
           std::to_string(scale_offset));
    }
  }

  const std::size_t payload_bytes = (numel * bits + 7) / 8;
  std::vector<unsigned char> payload(payload_bytes);
  const auto payload_offset = static_cast<long long>(in.tellg());
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  if (!in) {
    fail("truncated read of quantized tensor payload at offset " +
         std::to_string(payload_offset) + " (shape " +
         Shape(dims).to_string() + " needs " +
         std::to_string(payload_bytes) + " payload bytes)");
  }

  const int qmax = (1 << (bits - 1)) - 1;
  Tensor t{Shape(std::move(dims))};
  auto data = t.data();
  const std::size_t stride = numel / num_scales;
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < numel; ++i) {
    unsigned u = 0;
    for (std::size_t b = 0; b < bits; ++b, ++bitpos) {
      u |= static_cast<unsigned>((payload[bitpos >> 3] >> (bitpos & 7)) & 1u)
           << b;
    }
    // Clamp offset-binary codes above the symmetric range (2·qmax) — they
    // cannot come from our writer, but a corrupt payload must not
    // dequantize outside the advertised range.
    const int q =
        static_cast<int>(std::min<unsigned>(u, 2u * static_cast<unsigned>(
                                                     qmax))) -
        qmax;
    data[i] = scales[i / stride] * static_cast<float>(q);
  }
  return t;
}

}  // namespace gsfl::tensor
