#include "gsfl/tensor/serialize.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace gsfl::tensor {

namespace {

constexpr std::array<char, 4> kMagic = {'G', 'S', 'F', 'T'};

template <typename T>
void write_raw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_raw(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("tensor deserialization: truncated input");
  return value;
}

}  // namespace

void write_tensor(std::ostream& out, const Tensor& t) {
  out.write(kMagic.data(), kMagic.size());
  write_raw<std::uint32_t>(out, static_cast<std::uint32_t>(t.shape().rank()));
  for (const std::size_t d : t.shape().dims()) {
    write_raw<std::uint64_t>(out, d);
  }
  const auto data = t.data();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!out) throw std::runtime_error("tensor serialization: write failed");
}

Tensor read_tensor(std::istream& in) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("tensor deserialization: bad magic");
  }
  const auto rank = read_raw<std::uint32_t>(in);
  if (rank > 8) throw std::runtime_error("tensor deserialization: rank > 8");
  std::vector<std::size_t> dims(rank);
  std::size_t numel = 1;
  for (auto& d : dims) {
    d = static_cast<std::size_t>(read_raw<std::uint64_t>(in));
    if (d == 0 || numel > (1ULL << 32) / std::max<std::size_t>(d, 1)) {
      throw std::runtime_error("tensor deserialization: implausible shape");
    }
    numel *= d;
  }
  Tensor t{Shape(std::move(dims))};
  auto data = t.data();
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in) throw std::runtime_error("tensor deserialization: truncated data");
  return t;
}

std::size_t serialized_size(const Tensor& t) {
  return kMagic.size() + sizeof(std::uint32_t) +
         t.shape().rank() * sizeof(std::uint64_t) + t.size_bytes();
}

}  // namespace gsfl::tensor
