#include "gsfl/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace gsfl::tensor {

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  GSFL_EXPECT_MSG(data_.size() == shape_.numel(),
                  "data size must match shape " + shape_.to_string());
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::uniform(Shape shape, common::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::normal(Shape shape, common::Rng& rng, float mean,
                      float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::arange(std::size_t n) {
  Tensor t(Shape{n});
  for (std::size_t i = 0; i < n; ++i) t.data_[i] = static_cast<float>(i);
  return t;
}

float& Tensor::at(std::size_t flat_index) {
  GSFL_EXPECT(flat_index < data_.size());
  ++version_;
  return data_[flat_index];
}

float Tensor::at(std::size_t flat_index) const {
  GSFL_EXPECT(flat_index < data_.size());
  return data_[flat_index];
}

float& Tensor::at2(std::size_t i, std::size_t j) {
  GSFL_EXPECT(shape_.rank() == 2);
  GSFL_EXPECT(i < shape_[0] && j < shape_[1]);
  ++version_;
  return data_[i * shape_[1] + j];
}

float Tensor::at2(std::size_t i, std::size_t j) const {
  GSFL_EXPECT(shape_.rank() == 2);
  GSFL_EXPECT(i < shape_[0] && j < shape_[1]);
  return data_[i * shape_[1] + j];
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w) {
  GSFL_EXPECT(shape_.rank() == 4);
  GSFL_EXPECT(n < shape_[0] && c < shape_[1] && h < shape_[2] &&
              w < shape_[3]);
  ++version_;
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) const {
  GSFL_EXPECT(shape_.rank() == 4);
  GSFL_EXPECT(n < shape_[0] && c < shape_[1] && h < shape_[2] &&
              w < shape_[3]);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshape(Shape new_shape) const {
  GSFL_EXPECT_MSG(new_shape.numel() == numel(),
                  "reshape must preserve element count");
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::slice0(std::size_t begin, std::size_t end) const {
  GSFL_EXPECT(shape_.rank() >= 1);
  GSFL_EXPECT(begin <= end && end <= shape_[0]);
  const std::size_t row = numel() / std::max<std::size_t>(shape_[0], 1);
  Tensor out(shape_.with_dim0(end - begin));
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * row),
            data_.begin() + static_cast<std::ptrdiff_t>(end * row),
            out.data_.begin());
  return out;
}

Tensor& Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  ++version_;
  return *this;
}

Tensor& Tensor::add_(const Tensor& other) {
  GSFL_EXPECT(shape_ == other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  ++version_;
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  GSFL_EXPECT(shape_ == other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  ++version_;
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  GSFL_EXPECT(shape_ == other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  ++version_;
  return *this;
}

Tensor& Tensor::scale_(float factor) {
  for (auto& v : data_) v *= factor;
  ++version_;
  return *this;
}

Tensor& Tensor::axpy_(float alpha, const Tensor& x) {
  GSFL_EXPECT(shape_ == x.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * x.data_[i];
  ++version_;
  return *this;
}

double Tensor::sum() const {
  double acc = 0.0;
  for (const float v : data_) acc += v;
  return acc;
}

double Tensor::mean() const {
  return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

float Tensor::max() const {
  GSFL_EXPECT(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min() const {
  GSFL_EXPECT(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

std::size_t Tensor::argmax_row(std::size_t row) const {
  GSFL_EXPECT(shape_.rank() == 2);
  GSFL_EXPECT(row < shape_[0]);
  const std::size_t cols = shape_[1];
  const auto begin = data_.begin() + static_cast<std::ptrdiff_t>(row * cols);
  return static_cast<std::size_t>(
      std::distance(begin, std::max_element(
                               begin, begin + static_cast<std::ptrdiff_t>(cols))));
}

double Tensor::squared_norm() const {
  double acc = 0.0;
  for (const float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

double Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  GSFL_EXPECT(a.shape_ == b.shape_);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(a.data_[i]) - b.data_[i]));
  }
  return worst;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.sub_(b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.mul_(b);
  return out;
}

Tensor scale(const Tensor& a, float factor) {
  Tensor out = a;
  out.scale_(factor);
  return out;
}

void weighted_accumulate(Tensor& acc, const Tensor& src, double weight) {
  GSFL_EXPECT_MSG(src.shape() == acc.shape(),
                  "weighted_accumulate requires identical shapes");
  auto acc_data = acc.data();
  const auto w = static_cast<float>(weight);
  const auto src_data = src.data();
  for (std::size_t i = 0; i < acc_data.size(); ++i) {
    acc_data[i] += w * src_data[i];
  }
}

Tensor weighted_sum(std::span<const Tensor* const> tensors,
                    std::span<const double> weights) {
  GSFL_EXPECT(!tensors.empty());
  GSFL_EXPECT(tensors.size() == weights.size());
  // Each replica's step runs through the one exported accumulate routine,
  // so the incremental (eager, pipelined) fold and this all-at-once fold
  // execute identical code — bitwise-equal results by construction.
  Tensor out(tensors.front()->shape());
  for (std::size_t t = 0; t < tensors.size(); ++t) {
    weighted_accumulate(out, *tensors[t], weights[t]);
  }
  return out;
}

}  // namespace gsfl::tensor
