// AsyncLane: the futures-based task-graph layer. The properties under test
// are the ones the pipelined paths lean on — submission-order ids, the
// when_all ordered merge, dependency gating, error propagation through
// graphs, and help-on-wait (a waiter executes an unclaimed ready task
// inline, so waiting on a saturated lane cannot deadlock).
#include "gsfl/common/async_lane.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gsfl/common/thread_pool.hpp"
#include "gsfl/common/workspace.hpp"

namespace {

using gsfl::common::AsyncLane;
using gsfl::common::TaskFuture;
using gsfl::common::TaskHandle;

TEST(AsyncLane, SubmitRunsAndReturnsValue) {
  AsyncLane lane(2);
  auto f = lane.submit([] { return 41 + 1; });
  EXPECT_EQ(f.wait(), 42);
  EXPECT_TRUE(f.ready());
}

TEST(AsyncLane, VoidTasksComplete) {
  AsyncLane lane(1);
  std::atomic<int> hits{0};
  auto f = lane.submit([&] { ++hits; });
  f.wait();
  EXPECT_EQ(hits.load(), 1);
}

TEST(AsyncLane, IdsFollowSubmissionOrder) {
  AsyncLane lane(2);
  auto a = lane.submit([] { return 1; });
  auto b = lane.submit([] { return 2; });
  auto c = lane.submit([] { return 3; });
  EXPECT_LT(a.id(), b.id());
  EXPECT_LT(b.id(), c.id());
  a.wait();
  b.wait();
  c.wait();
}

TEST(AsyncLane, WhenAllCollectsInSubmissionOrder) {
  AsyncLane lane(4);
  // Later submissions finish first (earlier ones sleep longer); the merge
  // must still be slot-ordered, not completion-ordered.
  std::vector<TaskFuture<std::size_t>> futures;
  for (std::size_t i = 0; i < 8; ++i) {
    futures.push_back(lane.submit([i] {
      std::this_thread::sleep_for(std::chrono::microseconds((8 - i) * 100));
      return i;
    }));
  }
  const auto values = AsyncLane::when_all(futures);
  ASSERT_EQ(values.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(values[i], i);
}

TEST(AsyncLane, ThenChainsThroughValue) {
  AsyncLane lane(2);
  auto a = lane.submit([] { return 10; });
  auto b = lane.then(a, [](int& v) { return v * 2; });
  EXPECT_EQ(b.wait(), 20);
}

TEST(AsyncLane, SubmitAfterWaitsEveryDependency) {
  AsyncLane lane(4);
  std::atomic<int> done{0};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto a = lane.submit([&] { gate.wait(); ++done; });
  auto b = lane.submit([&] { gate.wait(); ++done; });
  auto c = lane.submit_after([&] { return done.load(); },
                             {a.handle(), b.handle()});
  EXPECT_FALSE(c.ready());
  release.set_value();
  // Both dependencies must have completed before c ran.
  EXPECT_EQ(c.wait(), 2);
}

TEST(AsyncLane, DependencyOnCompletedTaskFiresImmediately) {
  AsyncLane lane(1);
  auto a = lane.submit([] { return 5; });
  a.wait();
  auto b = lane.submit_after([] { return 7; }, {a.handle()});
  EXPECT_EQ(b.wait(), 7);
}

TEST(AsyncLane, InvalidHandlesAreSkippedAsDependencies) {
  AsyncLane lane(1);
  const TaskHandle none;
  EXPECT_FALSE(none.valid());
  auto f = lane.submit_after([] { return 3; }, {none, TaskHandle{}});
  EXPECT_EQ(f.wait(), 3);
}

TEST(AsyncLane, ErrorsRethrowAtWait) {
  AsyncLane lane(2);
  auto f = lane.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.wait(), std::runtime_error);
  // The lane survives a failed task.
  auto g = lane.submit([] { return 1; });
  EXPECT_EQ(g.wait(), 1);
}

TEST(AsyncLane, ErrorsPropagateThroughDependencyChains) {
  AsyncLane lane(2);
  auto a = lane.submit([]() -> int { throw std::runtime_error("root"); });
  std::atomic<bool> ran{false};
  auto b = lane.submit_after(
      [&] {
        ran = true;
        return 1;
      },
      {a.handle()});
  auto c = lane.submit_after([&] { return 2; }, {b.handle()});
  EXPECT_THROW(c.wait(), std::runtime_error);
  // The dependent bodies were skipped, not run against poisoned inputs.
  EXPECT_FALSE(ran.load());
}

TEST(AsyncLane, HelpOnWaitRunsUnclaimedTaskInline) {
  AsyncLane lane(1);
  // Occupy the only worker until after the waiter has finished helping.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  auto blocker = lane.submit([gate, &started] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();  // the worker is definitely inside blocker
  const auto self = std::this_thread::get_id();
  auto helped = lane.submit([self] {
    // With the worker blocked, only the waiting thread can be running this.
    return std::this_thread::get_id() == self;
  });
  EXPECT_TRUE(helped.wait());
  release.set_value();
  blocker.wait();
}

TEST(AsyncLane, SubmittingFromInsideATaskIsSafe) {
  AsyncLane lane(2);
  auto outer = lane.submit([&] {
    auto inner = lane.submit([] { return 21; });
    return inner.wait() * 2;  // helps inline if both workers are busy
  });
  EXPECT_EQ(outer.wait(), 42);
}

// Contention hammer for the help-on-wait claim path: several waiter threads
// and the lane workers race for the same queued tasks, so the
// kReady→kClaimed claim, the run-closure move-out, and the completion
// hand-off all run under real contention, including many waiters on the
// *same* future. Functionally every task must run exactly once and every
// waiter must observe the value; under the TSan CI leg this test is the
// regression pin for the clean help-on-wait baseline (docs/TSAN.md).
TEST(AsyncLane, HelpOnWaitClaimRaceHammer) {
  AsyncLane lane(2);
  constexpr int kRounds = 25;
  constexpr int kTasksPerRound = 32;
  constexpr int kWaiters = 4;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> executed{0};
    std::vector<TaskFuture<int>> futures;
    futures.reserve(kTasksPerRound);
    for (int t = 0; t < kTasksPerRound; ++t) {
      futures.push_back(lane.submit([&executed, t] {
        executed.fetch_add(1, std::memory_order_relaxed);
        return t;
      }));
    }
    std::vector<std::thread> waiters;
    std::vector<long> sums(kWaiters, 0);
    waiters.reserve(kWaiters);
    for (int w = 0; w < kWaiters; ++w) {
      waiters.emplace_back([&futures, &sums, w] {
        // Every waiter waits every future — staggered start index so the
        // help attempts interleave instead of marching in lockstep.
        for (int i = 0; i < kTasksPerRound; ++i) {
          sums[w] += futures[(i + w * 7) % kTasksPerRound].wait();
        }
      });
    }
    for (auto& thread : waiters) thread.join();
    EXPECT_EQ(executed.load(), kTasksPerRound);
    const long expected = kTasksPerRound * (kTasksPerRound - 1) / 2;
    for (int w = 0; w < kWaiters; ++w) EXPECT_EQ(sums[w], expected);
  }
}

// The Workspace::slice double-buffer handoff exactly as pack_ahead_sweep
// uses it: the issuing thread fetches both parity buffers up front, a lane
// task fills the other parity while this thread works the current one, and
// the pack future's completion orders the reader after the writer. The
// sum checks catch a torn or stale buffer; TSan checks the ordering claim.
TEST(AsyncLane, SliceDoubleBufferHandoffHammer) {
  using gsfl::common::Workspace;
  AsyncLane lane(2);
  constexpr std::size_t kFloats = 1024;
  constexpr int kBlocks = 64;
  float* const pb[2] = {
      Workspace::slice(Workspace::kGemmPackSlice, kFloats, 0),
      Workspace::slice(Workspace::kGemmPackSlice, kFloats, 1)};
  ASSERT_NE(pb[0], pb[1]);
  const auto fill = [&](int blk) {
    float* buffer = pb[blk & 1];
    for (std::size_t i = 0; i < kFloats; ++i) {
      buffer[i] = static_cast<float>(blk);
    }
  };
  fill(0);
  TaskFuture<void> pending;
  for (int blk = 0; blk < kBlocks; ++blk) {
    if (blk > 0) pending.wait();  // block blk's buffer is ready
    if (blk + 1 < kBlocks) {
      pending = lane.submit([&fill, next = blk + 1] { fill(next); });
    }
    const float* buffer = pb[blk & 1];
    double sum = 0.0;
    for (std::size_t i = 0; i < kFloats; ++i) sum += buffer[i];
    EXPECT_EQ(sum, static_cast<double>(blk) * kFloats);
  }
}

TEST(AsyncLane, ManyTasksStress) {
  AsyncLane lane(4);
  constexpr std::size_t kTasks = 500;
  std::vector<TaskFuture<std::size_t>> futures;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(lane.submit([i] { return i * i; }));
  }
  const auto values = AsyncLane::when_all(futures);
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(values[i], i * i);
}

TEST(AsyncLane, LongDependencyChainCompletesInOrder) {
  AsyncLane lane(3);
  auto counter = std::make_shared<std::vector<int>>();
  TaskHandle prev;
  std::vector<TaskFuture<void>> futures;
  for (int i = 0; i < 64; ++i) {
    auto f = lane.submit_after([counter, i] { counter->push_back(i); },
                               {prev});
    prev = f.handle();
    futures.push_back(std::move(f));
  }
  AsyncLane::when_all(futures);
  ASSERT_EQ(counter->size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ((*counter)[i], i);
}

TEST(AsyncLane, InlineRegionGuardInlinesNestedParallelism) {
  EXPECT_FALSE(gsfl::common::ThreadPool::in_parallel_region());
  {
    gsfl::common::InlineRegionGuard guard;
    EXPECT_TRUE(gsfl::common::ThreadPool::in_parallel_region());
    {
      gsfl::common::InlineRegionGuard nested;
      EXPECT_TRUE(gsfl::common::ThreadPool::in_parallel_region());
    }
    EXPECT_TRUE(gsfl::common::ThreadPool::in_parallel_region());
  }
  EXPECT_FALSE(gsfl::common::ThreadPool::in_parallel_region());
}

TEST(AsyncLane, GlobalLaneIsSharedAndSized) {
  auto& lane = gsfl::common::global_lane();
  EXPECT_GE(lane.workers(), 1u);
  EXPECT_EQ(&lane, &gsfl::common::global_lane());
  auto f = lane.submit([] { return 9; });
  EXPECT_EQ(f.wait(), 9);
}

// ---- error-path hardening ---------------------------------------------------

TEST(AsyncLane, ThrowingTaskMidGraphFailsOnlyItsDescendants) {
  // A diamond with one poisoned arm: the failure must flow to the join, the
  // healthy arm must still run, and an unrelated task must be untouched.
  AsyncLane lane(2);
  auto ok_arm = lane.submit([] { return 1; });
  auto bad_arm = lane.submit([]() -> int {
    throw std::runtime_error("mid-graph");
  });
  std::atomic<bool> join_ran{false};
  auto join = lane.submit_after(
      [&] {
        join_ran = true;
        return 3;
      },
      {ok_arm.handle(), bad_arm.handle()});
  auto unrelated = lane.submit([] { return 4; });

  EXPECT_EQ(ok_arm.wait(), 1);
  EXPECT_THROW(join.wait(), std::runtime_error);
  EXPECT_FALSE(join_ran.load());
  EXPECT_EQ(unrelated.wait(), 4);
}

TEST(AsyncLane, WhenAllOverAFailedTaskThrowsAfterOthersComplete) {
  AsyncLane lane(2);
  std::vector<TaskFuture<int>> futures;
  futures.push_back(lane.submit([] { return 0; }));
  futures.push_back(lane.submit([]() -> int {
    throw std::runtime_error("slot 1");
  }));
  futures.push_back(lane.submit([] { return 2; }));
  EXPECT_THROW((void)AsyncLane::when_all(futures), std::runtime_error);
  // The healthy slots did complete; only the merge aborted.
  EXPECT_EQ(futures[0].ready(), true);
  EXPECT_EQ(futures[2].wait(), 2);
}

TEST(AsyncLane, HelpOnWaitSurfacesTheHelpedTasksError) {
  // The waiter executes the throwing task inline; the error must come out
  // of wait() exactly as if a worker had run it, and the lane must stay
  // usable for both the blocked worker and later submissions.
  AsyncLane lane(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  auto blocker = lane.submit([gate, &started] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();
  auto helped = lane.submit([]() -> int {
    throw std::runtime_error("helped and failed");
  });
  EXPECT_THROW(helped.wait(), std::runtime_error);
  release.set_value();
  blocker.wait();
  auto after = lane.submit([] { return 5; });
  EXPECT_EQ(after.wait(), 5);
}

TEST(AsyncLane, LaneIsReusableAfterAFullyFailedGraph) {
  AsyncLane lane(2);
  for (int graph = 0; graph < 3; ++graph) {
    auto root = lane.submit([]() -> int {
      throw std::runtime_error("graph root");
    });
    std::vector<TaskFuture<int>> layer;
    for (int i = 0; i < 4; ++i) {
      layer.push_back(lane.submit_after([i] { return i; }, {root.handle()}));
    }
    for (auto& f : layer) EXPECT_THROW((void)f.wait(), std::runtime_error);
  }
  // Three poisoned graphs later, a clean graph runs to completion.
  auto a = lane.submit([] { return 20; });
  auto b = lane.then(a, [](int& v) { return v + 2; });
  EXPECT_EQ(b.wait(), 22);
}

// idle_workers() is the advisory capacity signal the GEMM pack-ahead
// upgrade consults: all workers parked on an empty queue read as idle, a
// blocked worker does not, and the count recovers once the queue drains.
// The signal is racy by design, so the assertions poll with a deadline
// instead of expecting instantaneous transitions.
TEST(AsyncLane, IdleWorkersTracksParkedWorkers) {
  AsyncLane lane(2);
  const auto deadline_passed = [start = std::chrono::steady_clock::now()] {
    return std::chrono::steady_clock::now() - start >
           std::chrono::seconds(10);
  };
  // Freshly constructed (or drained): both workers park.
  while (lane.idle_workers() < 2 && !deadline_passed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(lane.idle_workers(), 2u);

  // Occupy one worker: at most one can be parked while it blocks.
  std::promise<void> started;
  std::promise<void> release;
  auto blocker = lane.submit([&] {
    started.set_value();
    release.get_future().wait();
  });
  started.get_future().wait();
  EXPECT_LE(lane.idle_workers(), 1u);

  // Drain: both park again.
  release.set_value();
  blocker.wait();
  while (lane.idle_workers() < 2 && !deadline_passed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(lane.idle_workers(), 2u);
}

}  // namespace
