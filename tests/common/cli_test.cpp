#include <gtest/gtest.h>

#include "gsfl/common/cli.hpp"

namespace {

using gsfl::common::CliArgs;

CliArgs parse(std::vector<const char*> argv,
              std::vector<std::string> flags = {}) {
  return CliArgs(static_cast<int>(argv.size()), argv.data(), flags);
}

TEST(Cli, EqualsFormParsesValue) {
  const auto args = parse({"prog", "--rounds=25"});
  EXPECT_EQ(args.int_or("rounds", 0), 25);
}

TEST(Cli, SpaceFormParsesValue) {
  const auto args = parse({"prog", "--rounds", "25"});
  EXPECT_EQ(args.int_or("rounds", 0), 25);
}

TEST(Cli, BooleanFlagRecognized) {
  const auto args = parse({"prog", "--full"}, {"full"});
  EXPECT_TRUE(args.has_flag("full"));
  EXPECT_FALSE(args.has_flag("other"));
}

TEST(Cli, DefaultsWhenMissing) {
  const auto args = parse({"prog"});
  EXPECT_EQ(args.int_or("rounds", 7), 7);
  EXPECT_DOUBLE_EQ(args.double_or("lr", 0.5), 0.5);
  EXPECT_EQ(args.value_or("name", "x"), "x");
  EXPECT_FALSE(args.value("name").has_value());
}

TEST(Cli, DoubleParsing) {
  const auto args = parse({"prog", "--lr=0.125"});
  EXPECT_DOUBLE_EQ(args.double_or("lr", 0.0), 0.125);
}

TEST(Cli, StringValues) {
  const auto args = parse({"prog", "--csv=/tmp/out.csv"});
  EXPECT_EQ(args.value_or("csv", ""), "/tmp/out.csv");
}

TEST(Cli, ProgramNameCaptured) {
  const auto args = parse({"bench_fig2a"});
  EXPECT_EQ(args.program(), "bench_fig2a");
}

TEST(Cli, PositionalArgumentRejected) {
  EXPECT_THROW(parse({"prog", "loose"}), std::invalid_argument);
}

TEST(Cli, UnknownFlagWithoutValueRejected) {
  EXPECT_THROW(parse({"prog", "--dangling"}), std::invalid_argument);
}

TEST(Cli, FlagFollowedByFlagDoesNotStealValue) {
  const auto args = parse({"prog", "--full", "--rounds=3"}, {"full"});
  EXPECT_TRUE(args.has_flag("full"));
  EXPECT_EQ(args.int_or("rounds", 0), 3);
}

TEST(Cli, MultipleValuesParsed) {
  const auto args =
      parse({"prog", "--a=1", "--b", "2", "--c=3.5"}, {});
  EXPECT_EQ(args.int_or("a", 0), 1);
  EXPECT_EQ(args.int_or("b", 0), 2);
  EXPECT_DOUBLE_EQ(args.double_or("c", 0.0), 3.5);
}

}  // namespace
