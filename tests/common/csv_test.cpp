#include <gtest/gtest.h>
#include <sstream>

#include "gsfl/common/csv.hpp"

namespace {

using gsfl::common::CsvWriter;

TEST(Csv, WritesHeaderOnConstruction) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, WritesMixedTypedRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"name", "count", "ratio"});
  csv.row({std::string("x"), std::int64_t{3}, 0.5});
  EXPECT_EQ(out.str(), "name,count,ratio\nx,3,0.5\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(Csv, EscapesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RowWidthMismatchThrows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_THROW(csv.row({std::int64_t{1}}), std::invalid_argument);
  EXPECT_THROW(csv.row({std::int64_t{1}, std::int64_t{2}, std::int64_t{3}}),
               std::invalid_argument);
}

TEST(Csv, EmptyHeaderThrows) {
  std::ostringstream out;
  EXPECT_THROW(CsvWriter(out, {}), std::invalid_argument);
}

TEST(Csv, HeaderCellsAreEscaped) {
  std::ostringstream out;
  CsvWriter csv(out, {"plain", "with,comma"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\"\n");
}

TEST(Csv, DoubleFormattingKeepsPrecision) {
  std::ostringstream out;
  CsvWriter csv(out, {"v"});
  csv.row({0.123456789});
  EXPECT_NE(out.str().find("0.123456789"), std::string::npos);
}

TEST(CsvFile, UnwritablePathThrows) {
  EXPECT_THROW(
      gsfl::common::CsvFile("/nonexistent-dir/x.csv", {"a"}),
      std::invalid_argument);
}

}  // namespace
