#include <gtest/gtest.h>

#include "gsfl/common/expect.hpp"

namespace {

TEST(Expect, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(GSFL_EXPECT(1 + 1 == 2));
  EXPECT_NO_THROW(GSFL_ENSURE(true));
}

TEST(Expect, FailingPreconditionThrowsInvalidArgument) {
  EXPECT_THROW(GSFL_EXPECT(false), std::invalid_argument);
  EXPECT_THROW(GSFL_EXPECT_MSG(false, "context"), std::invalid_argument);
}

TEST(Expect, FailingInvariantThrowsLogicError) {
  EXPECT_THROW(GSFL_ENSURE(false), std::logic_error);
  EXPECT_THROW(GSFL_ENSURE_MSG(false, "context"), std::logic_error);
}

TEST(Expect, MessageCarriesExpressionAndContext) {
  try {
    GSFL_EXPECT_MSG(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("expect_test.cpp"), std::string::npos);
  }
}

TEST(Expect, InvariantMessageNamesInvariant) {
  try {
    GSFL_ENSURE(1 == 2);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

}  // namespace
