#include "gsfl/common/parallel_map.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using gsfl::common::parallel_map;

class ParallelMapTest : public ::testing::Test {
 protected:
  void TearDown() override { gsfl::common::set_global_threads(0); }
};

TEST_F(ParallelMapTest, SlotsHoldFnOfIndexInOrder) {
  const auto out =
      parallel_map(100, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST_F(ParallelMapTest, ZeroIndicesYieldsEmptyVectorWithoutInvokingFn) {
  std::atomic<int> calls{0};
  const auto out = parallel_map(0, [&](std::size_t i) {
    ++calls;
    return i;
  });
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelMapTest, EachIndexRunsExactlyOnce) {
  gsfl::common::set_global_threads(8);
  std::vector<std::atomic<int>> counts(257);
  (void)parallel_map(counts.size(), [&](std::size_t i) {
    counts[i].fetch_add(1);
    return 0;
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST_F(ParallelMapTest, ResultsAreThreadCountInvariant) {
  // A float fold whose result depends on evaluation order *within* an index
  // but not across indices — the helper must return bitwise-equal vectors
  // for any lane count.
  const auto run = [](std::size_t threads) {
    gsfl::common::set_global_threads(threads);
    return parallel_map(64, [](std::size_t i) {
      float acc = 0.0f;
      for (std::size_t t = 0; t < 1000; ++t) {
        acc += 1.0f / static_cast<float>(i * 1000 + t + 1);
      }
      return acc;
    });
  };
  const auto serial = run(1);
  const auto wide = run(8);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], wide[i]) << "slot " << i;
  }
}

TEST_F(ParallelMapTest, MoveOnlyStyleResultsLandInTheirSlots) {
  const auto out = parallel_map(10, [](std::size_t i) {
    return std::vector<std::string>(i, std::to_string(i));
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].size(), i);
    if (i > 0) EXPECT_EQ(out[i].front(), std::to_string(i));
  }
}

TEST_F(ParallelMapTest, ContextOverloadBuildsPerChunkAndMapsEveryIndex) {
  gsfl::common::set_global_threads(4);
  std::atomic<int> contexts_made{0};
  const auto out = parallel_map(
      100,
      [&] {
        ++contexts_made;
        return std::vector<std::size_t>{};  // per-chunk scratch
      },
      [](std::vector<std::size_t>& scratch, std::size_t i) {
        scratch.push_back(i);  // context reuse within a chunk is visible...
        return i * 2;          // ...but must not affect the result
      });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 2 * i);
  // One context per executed chunk — far fewer than one per index.
  EXPECT_GE(contexts_made.load(), 1);
  EXPECT_LT(contexts_made.load(), 100);
}

TEST_F(ParallelMapTest, ExceptionsPropagateToTheCaller) {
  gsfl::common::set_global_threads(4);
  EXPECT_THROW(
      (void)parallel_map(32,
                         [](std::size_t i) -> int {
                           if (i == 17) throw std::runtime_error("boom");
                           return 0;
                         }),
      std::runtime_error);
}

TEST_F(ParallelMapTest, UsableAfterAMidMapThrow) {
  // A task throwing mid-map must not poison the pool or leak the abort
  // flag: the next map over the same pool runs every index normally.
  gsfl::common::set_global_threads(4);
  EXPECT_THROW(
      (void)parallel_map(64,
                         [](std::size_t i) -> int {
                           if (i == 31) throw std::runtime_error("mid-map");
                           return static_cast<int>(i);
                         }),
      std::runtime_error);
  const auto out = parallel_map(64, [](std::size_t i) { return i + 1; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);
}

TEST_F(ParallelMapTest, FirstOfSeveralThrowsIsReported) {
  // Several indices throw; exactly one exception reaches the caller and it
  // is one of the thrown ones (the runtime keeps the first and swallows the
  // rest — no terminate, no double-throw).
  gsfl::common::set_global_threads(4);
  try {
    (void)parallel_map(64, [](std::size_t i) -> int {
      if (i % 7 == 3) throw std::runtime_error("task " + std::to_string(i));
      return 0;
    });
    FAIL() << "expected a propagated task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("task ", 0), 0u);
  }
}

TEST_F(ParallelMapTest, ContextOverloadPropagatesTaskThrow) {
  gsfl::common::set_global_threads(3);
  EXPECT_THROW(
      (void)parallel_map(
          16, [] { return std::string("ctx"); },
          [](std::string&, std::size_t i) -> int {
            if (i == 9) throw std::runtime_error("ctx task");
            return 0;
          }),
      std::runtime_error);
  // And the pool is reusable afterwards.
  const auto out = parallel_map(8, [](std::size_t i) { return i; });
  ASSERT_EQ(out.size(), 8u);
}

TEST_F(ParallelMapTest, SerialPoolPropagatesThrowFromExactIndex) {
  // threads=1 runs inline: the throw surfaces immediately at index 5 and
  // indices past it never run.
  gsfl::common::set_global_threads(1);
  std::vector<int> ran(16, 0);
  EXPECT_THROW((void)parallel_map(16,
                                  [&](std::size_t i) -> int {
                                    ran[i] = 1;
                                    if (i == 5)
                                      throw std::runtime_error("inline");
                                    return 0;
                                  }),
               std::runtime_error);
  for (std::size_t i = 0; i <= 5; ++i) EXPECT_EQ(ran[i], 1) << i;
  for (std::size_t i = 6; i < 16; ++i) EXPECT_EQ(ran[i], 0) << i;
}

TEST_F(ParallelMapTest, NestedCallsRunInline) {
  gsfl::common::set_global_threads(4);
  const auto out = parallel_map(8, [](std::size_t i) {
    const auto inner =
        parallel_map(4, [i](std::size_t j) { return i * 10 + j; });
    std::size_t sum = 0;
    for (const auto v : inner) sum += v;
    return sum;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * 40 + 6);
  }
}

}  // namespace
