#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <numeric>
#include <set>

#include "gsfl/common/rng.hpp"

namespace {

using gsfl::common::Rng;

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123);
  Rng b(124);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(9);
  const auto first = a.next();
  a.reseed(9);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexApproximatelyUniform) {
  Rng rng(6);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_index(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  constexpr int kDraws = 60000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaleShift) {
  Rng rng(14);
  constexpr int kDraws = 60000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(15);
  constexpr int kDraws = 60000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 0.25, 0.01);
}

TEST(Rng, GammaMeanEqualsShape) {
  Rng rng(16);
  for (const double shape : {0.5, 1.0, 2.0, 7.5}) {
    double sum = 0.0;
    constexpr int kDraws = 40000;
    for (int i = 0; i < kDraws; ++i) {
      const double x = rng.gamma(shape);
      ASSERT_GT(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum / kDraws, shape, shape * 0.05)
        << "gamma mean off for shape " << shape;
  }
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(17);
  for (const double alpha : {0.1, 1.0, 100.0}) {
    const auto draw = rng.dirichlet(alpha, 8);
    ASSERT_EQ(draw.size(), 8u);
    const double sum = std::accumulate(draw.begin(), draw.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (const double p : draw) EXPECT_GE(p, 0.0);
  }
}

TEST(Rng, DirichletLargeAlphaNearUniform) {
  Rng rng(18);
  const auto draw = rng.dirichlet(5000.0, 5);
  for (const double p : draw) EXPECT_NEAR(p, 0.2, 0.03);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(19);
  const auto perm = rng.permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<bool> seen(100, false);
  for (const auto i : perm) {
    ASSERT_LT(i, 100u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng(20);
  const auto perm = rng.permutation(100);
  std::size_t fixed_points = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 10u);  // expected ≈ 1
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(21);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ForkedStreamsDecorrelated) {
  Rng parent(22);
  auto a = parent.fork(1);
  auto b = parent.fork(2);
  int matches = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++matches;
  }
  EXPECT_LT(matches, 2);
}

TEST(Rng, ForkIsDeterministicGivenParentState) {
  Rng p1(33);
  Rng p2(33);
  auto c1 = p1.fork(9);
  auto c2 = p2.fork(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.gamma(-1.0), std::invalid_argument);
  EXPECT_THROW(rng.dirichlet(0.0, 3), std::invalid_argument);
  EXPECT_THROW(rng.dirichlet(1.0, 0), std::invalid_argument);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeAndVaries) {
  Rng rng(GetParam());
  std::set<std::uint64_t> values;
  for (int i = 0; i < 256; ++i) values.insert(rng.next());
  EXPECT_GT(values.size(), 250u);  // collisions in 256 draws ≈ impossible
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           ~0ULL));

}  // namespace
