#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gsfl/common/thread_pool.hpp"
#include "gsfl/common/workspace.hpp"

namespace {

using gsfl::common::ThreadPool;
using gsfl::common::Workspace;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RangesAreContiguousDisjointAndRespectGrain) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 137;
  constexpr std::size_t kGrain = 10;
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_for(kGrain, kN, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(mutex);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  std::size_t expected_begin = 0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const auto [b, e] = ranges[i];
    EXPECT_EQ(b, expected_begin);   // contiguous, disjoint tiling of [0, n)
    EXPECT_LT(b, e);
    if (i + 1 < ranges.size()) EXPECT_GE(e - b, kGrain);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, kN);
}

TEST(ThreadPool, SmallRangeRunsInOnePiece) {
  ThreadPool pool(8);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_for(100, 40, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(mutex);
    ranges.emplace_back(b, e);
  });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 40}));
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(1, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1, 100,
                        [&](std::size_t b, std::size_t) {
                          if (b >= 50) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1, 64,
                                 [&](std::size_t, std::size_t) {
                                   throw std::runtime_error("first");
                                 }),
               std::runtime_error);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(1, 64, [&](std::size_t b, std::size_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPool, ReuseAcrossManySubmits) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<long long> sum{0};
    pool.parallel_for(8, 256, [&](std::size_t b, std::size_t e) {
      long long local = 0;
      for (std::size_t i = b; i < e; ++i) local += static_cast<long long>(i);
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 255LL * 256 / 2);
  }
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(1, 8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      EXPECT_TRUE(ThreadPool::in_parallel_region());
      // A nested submit must not deadlock; it runs inline on this lane.
      pool.parallel_for(1, 10, [&](std::size_t ib, std::size_t ie) {
        inner_total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80u);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, SingleLanePoolRunsEverythingInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.lanes(), 1u);
  std::size_t sum = 0;  // no atomics needed: provably single-threaded
  pool.parallel_for(1, 100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ResolveThreadsPrefersExplicitRequest) {
  EXPECT_EQ(gsfl::common::resolve_threads(3), 3u);
  EXPECT_GE(gsfl::common::resolve_threads(0), 1u);
}

TEST(ThreadPool, GlobalPoolResizes) {
  gsfl::common::set_global_threads(2);
  EXPECT_EQ(gsfl::common::global_lanes(), 2u);
  gsfl::common::set_global_threads(0);  // back to the resolved default
  EXPECT_GE(gsfl::common::global_lanes(), 1u);
}

TEST(Workspace, BuffersGrowAndAreReused) {
  Workspace::reset_thread();
  float* small = Workspace::floats(Workspace::kUserBase, 16);
  for (std::size_t i = 0; i < 16; ++i) small[i] = 1.0f;
  // Same key, same size: steady state must not reallocate.
  EXPECT_EQ(Workspace::floats(Workspace::kUserBase, 16), small);
  // Growing may move the buffer but must keep at least the new size.
  float* big = Workspace::floats(Workspace::kUserBase, 1 << 12);
  for (std::size_t i = 0; i < (1 << 12); ++i) big[i] = 2.0f;
  EXPECT_GE(Workspace::thread_bytes(), (1u << 12) * sizeof(float));
  Workspace::reset_thread();
  EXPECT_EQ(Workspace::thread_bytes(), 0u);
}

TEST(Workspace, DistinctKeysNeverAlias) {
  Workspace::reset_thread();
  float* a = Workspace::floats(Workspace::kUserBase, 64);
  float* b = Workspace::floats(Workspace::kUserBase + 1, 64);
  EXPECT_NE(a, b);
  Workspace::reset_thread();
}

TEST(Workspace, LanesNeverShareBuffers) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<float*> pointers;
  // Each lane stamps its scratch, then we check nobody overwrote anybody:
  // thread_local arenas make aliasing across lanes impossible.
  pool.parallel_for(1, 64, [&](std::size_t b, std::size_t e) {
    float* scratch = Workspace::floats(Workspace::kUserBase + 2, 256);
    for (std::size_t i = 0; i < 256; ++i) scratch[i] = static_cast<float>(b);
    for (std::size_t i = 0; i < 256; ++i) {
      ASSERT_EQ(scratch[i], static_cast<float>(b));
    }
    (void)e;
    std::lock_guard<std::mutex> lock(mutex);
    pointers.push_back(scratch);
  });
  ASSERT_FALSE(pointers.empty());
}

TEST(Workspace, SliceParitiesAreIndependentBuffers) {
  Workspace::reset_thread();
  float* even = Workspace::slice(Workspace::kUserBase, 128, 0);
  float* odd = Workspace::slice(Workspace::kUserBase, 128, 1);
  EXPECT_NE(even, odd);
  for (std::size_t i = 0; i < 128; ++i) {
    even[i] = 1.0f;
    odd[i] = 2.0f;
  }
  // Writes through one parity never leak into the other.
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(even[i], 1.0f);
    EXPECT_EQ(odd[i], 2.0f);
  }
  // Parity wraps modulo 2: the ping-pong schedule's `blk` indexes directly.
  EXPECT_EQ(Workspace::slice(Workspace::kUserBase, 128, 2), even);
  EXPECT_EQ(Workspace::slice(Workspace::kUserBase, 128, 3), odd);
  Workspace::reset_thread();
}

TEST(Workspace, SliceParityReuseAcrossNestedCalls) {
  // The interleaved sweep refetches (key, parity) once per k block, often
  // from nested call frames. Steady state must hand back the *same* buffer
  // (that is the documented ownership hazard — and the reuse guarantee),
  // grow only parities that are asked to grow, and keep slice keys fully
  // disjoint from the flat floats() arena.
  Workspace::reset_thread();
  float* flat = Workspace::floats(Workspace::kUserBase, 64);
  float* s0 = Workspace::slice(Workspace::kUserBase, 64, 0);
  float* s1 = Workspace::slice(Workspace::kUserBase, 64, 1);
  EXPECT_NE(flat, s0);
  EXPECT_NE(flat, s1);
  s0[0] = 7.0f;

  const auto nested = [&] {
    // A nested consumer of the same key and size sees the same buffer…
    EXPECT_EQ(Workspace::slice(Workspace::kUserBase, 64, 0), s0);
    EXPECT_EQ(Workspace::slice(Workspace::kUserBase, 64, 1), s1);
    // …and growing one parity moves only that parity.
    float* grown = Workspace::slice(Workspace::kUserBase, 1 << 12, 1);
    for (std::size_t i = 0; i < (1 << 12); ++i) grown[i] = 3.0f;
    return grown;
  };
  float* grown = nested();
  EXPECT_EQ(Workspace::slice(Workspace::kUserBase, 64, 0), s0);
  EXPECT_EQ(s0[0], 7.0f);  // parity 0 untouched by parity 1's growth
  EXPECT_EQ(Workspace::slice(Workspace::kUserBase, 64, 1), grown);
  Workspace::reset_thread();
}

TEST(Workspace, SliceBuffersArePerLane) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<float*> pointers;
  pool.parallel_for(1, 32, [&](std::size_t b, std::size_t e) {
    (void)e;
    float* scratch = Workspace::slice(Workspace::kUserBase + 3, 128, b);
    for (std::size_t i = 0; i < 128; ++i) scratch[i] = static_cast<float>(b);
    for (std::size_t i = 0; i < 128; ++i) {
      ASSERT_EQ(scratch[i], static_cast<float>(b));
    }
    std::lock_guard<std::mutex> lock(mutex);
    pointers.push_back(scratch);
  });
  ASSERT_FALSE(pointers.empty());
}

}  // namespace
