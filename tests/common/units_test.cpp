#include <gtest/gtest.h>

#include "gsfl/common/units.hpp"

namespace {

using namespace gsfl::common;

TEST(Units, DbmWattsRoundTrip) {
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-9);
  EXPECT_NEAR(watts_to_dbm(1.0), 30.0, 1e-9);
  for (const double dbm : {-80.0, -10.0, 0.0, 20.0, 36.0}) {
    EXPECT_NEAR(watts_to_dbm(dbm_to_watts(dbm)), dbm, 1e-9);
  }
}

TEST(Units, DbLinearRoundTrip) {
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-9);
  EXPECT_NEAR(db_to_linear(3.0), 1.9952623, 1e-6);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-9);
}

TEST(Units, ScaleHelpers) {
  EXPECT_DOUBLE_EQ(mhz(10.0), 1e7);
  EXPECT_DOUBLE_EQ(ghz(2.4), 2.4e9);
  EXPECT_DOUBLE_EQ(kib(1.0), 1024.0);
  EXPECT_DOUBLE_EQ(mib(2.0), 2.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(gflops(1.5), 1.5e9);
  EXPECT_DOUBLE_EQ(mflops(300.0), 3e8);
}

TEST(Units, TransmitSeconds) {
  // 1 MB over 8 Mbit/s = 1 second.
  EXPECT_NEAR(transmit_seconds(1e6, 8e6), 1.0, 1e-12);
  // Doubling rate halves time.
  EXPECT_NEAR(transmit_seconds(1e6, 16e6), 0.5, 1e-12);
  // Zero payload costs nothing.
  EXPECT_DOUBLE_EQ(transmit_seconds(0.0, 1e6), 0.0);
}

}  // namespace
