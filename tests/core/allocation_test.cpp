// Adaptive bandwidth allocation across groups (the paper's §IV future work:
// "rationally allocating communication bandwidth ... is crucial").
#include <gtest/gtest.h>
#include <numeric>

#include "gsfl/core/gsfl.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::core::BandwidthPolicy;
using gsfl::core::GroupingPolicy;
using gsfl::core::GsflConfig;
using gsfl::core::GsflTrainer;

/// Network with one far/slow-radio half and one near/fast-radio half, so
/// contiguous groups have very unequal radio demands.
gsfl::net::WirelessNetwork make_lopsided_network() {
  gsfl::net::NetworkConfig config;
  config.total_bandwidth_hz = 10e6;
  std::vector<gsfl::net::DeviceProfile> devices(6);
  for (int i = 0; i < 3; ++i) {
    devices[i].distance_m = 15.0;   // near group
    devices[i].compute_flops = 1e9;
  }
  for (int i = 3; i < 6; ++i) {
    devices[i].distance_m = 220.0;  // far group: weak links
    devices[i].compute_flops = 1e9;
  }
  return gsfl::net::WirelessNetwork(config, std::move(devices));
}

GsflConfig lopsided_config(BandwidthPolicy policy) {
  GsflConfig config;
  config.num_groups = 2;
  config.cut_layer = gsfl::test::kTinyCut;
  config.grouping = GroupingPolicy::kContiguous;  // near|far split
  config.bandwidth = policy;
  return config;
}

TEST(Allocation, EqualShareStaysFixed) {
  const auto network = make_lopsided_network();
  const auto data = gsfl::test::make_client_datasets(6, 8, 71);
  Rng rng(71);
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      lopsided_config(BandwidthPolicy::kEqualShare));
  for (int i = 0; i < 3; ++i) (void)trainer.run_round();
  ASSERT_EQ(trainer.group_shares().size(), 2u);
  EXPECT_DOUBLE_EQ(trainer.group_shares()[0], 0.5);
  EXPECT_DOUBLE_EQ(trainer.group_shares()[1], 0.5);
}

TEST(Allocation, AdaptiveSharesSumToOneAndStayPositive) {
  const auto network = make_lopsided_network();
  const auto data = gsfl::test::make_client_datasets(6, 8, 72);
  Rng rng(72);
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      lopsided_config(BandwidthPolicy::kAdaptive));
  for (int i = 0; i < 5; ++i) {
    (void)trainer.run_round();
    const auto& shares = trainer.group_shares();
    const double sum = std::accumulate(shares.begin(), shares.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (const double s : shares) EXPECT_GT(s, 0.0);
  }
}

TEST(Allocation, AdaptiveFavoursTheWeakLinkGroup) {
  const auto network = make_lopsided_network();
  const auto data = gsfl::test::make_client_datasets(6, 8, 73);
  Rng rng(73);
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      lopsided_config(BandwidthPolicy::kAdaptive));
  for (int i = 0; i < 3; ++i) (void)trainer.run_round();
  // Group 1 (far clients) has much slower links → needs the larger share.
  EXPECT_GT(trainer.group_shares()[1], trainer.group_shares()[0]);
}

TEST(Allocation, AdaptiveReducesRoundLatency) {
  const auto network = make_lopsided_network();
  const auto data = gsfl::test::make_client_datasets(6, 8, 74);
  Rng rng(74);
  const auto init = gsfl::test::make_tiny_model(rng);

  GsflTrainer equal(network, data, init,
                    lopsided_config(BandwidthPolicy::kEqualShare));
  GsflTrainer adaptive(network, data, init,
                       lopsided_config(BandwidthPolicy::kAdaptive));
  double equal_total = 0.0;
  double adaptive_total = 0.0;
  // Skip round 1 (identical shares); compare the steady state.
  (void)equal.run_round();
  (void)adaptive.run_round();
  for (int i = 0; i < 4; ++i) {
    equal_total += equal.run_round().latency.total();
    adaptive_total += adaptive.run_round().latency.total();
  }
  EXPECT_LT(adaptive_total, equal_total);
}

TEST(Allocation, AdaptiveDoesNotChangeModelTrajectory) {
  // Bandwidth shares affect latency only — the trained weights must be
  // identical under both policies.
  const auto network = make_lopsided_network();
  const auto data = gsfl::test::make_client_datasets(6, 8, 75);
  Rng rng(75);
  const auto init = gsfl::test::make_tiny_model(rng);

  GsflTrainer equal(network, data, init,
                    lopsided_config(BandwidthPolicy::kEqualShare));
  GsflTrainer adaptive(network, data, init,
                       lopsided_config(BandwidthPolicy::kAdaptive));
  for (int i = 0; i < 4; ++i) {
    (void)equal.run_round();
    (void)adaptive.run_round();
  }
  EXPECT_TRUE(gsfl::test::states_equal(equal.global_model(),
                                       adaptive.global_model()));
}

// Extreme skew: ten singleton groups, one of which (a far, weak-radio
// client) carries essentially all the radio work. The floor must hold
// *after* normalization — the old clamp-before-renormalize dropped the nine
// starved groups to floor/1.045 < floor — and the dominant group keeps the
// rest of the band.
TEST(Allocation, ExtremeSkewRespectsTheShareFloorPostNormalization) {
  gsfl::net::NetworkConfig net_config;
  net_config.total_bandwidth_hz = 10e6;
  std::vector<gsfl::net::DeviceProfile> devices(10);
  for (int i = 0; i < 9; ++i) {
    devices[i].distance_m = 1.0;      // wire-grade links: ~zero radio time
    devices[i].tx_power_dbm = 23.0;
    devices[i].compute_flops = 1e9;
  }
  devices[9].distance_m = 1000.0;     // the straggler carrying ~all the work
  devices[9].tx_power_dbm = 10.0;     // sub-0-dB SNR: a few bit/s/Hz vs ~30
  devices[9].compute_flops = 1e9;
  const gsfl::net::WirelessNetwork network(net_config, std::move(devices));

  const auto data = gsfl::test::make_client_datasets(10, 8, 77);
  Rng rng(77);
  GsflConfig config;
  config.num_groups = 10;  // contiguous singletons
  config.cut_layer = gsfl::test::kTinyCut;
  config.grouping = GroupingPolicy::kContiguous;
  config.bandwidth = BandwidthPolicy::kAdaptive;
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      config);

  const double floor = 0.05 / 10.0;
  for (int round = 0; round < 3; ++round) {
    (void)trainer.run_round();
    const auto& shares = trainer.group_shares();
    ASSERT_EQ(shares.size(), 10u);
    const double sum = std::accumulate(shares.begin(), shares.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (const double s : shares) {
      EXPECT_GE(s, floor) << "round " << round;
    }
  }
  // The nine idle groups sit exactly at the floor; the straggler's group
  // gets everything else.
  const auto& shares = trainer.group_shares();
  for (int g = 0; g < 9; ++g) EXPECT_DOUBLE_EQ(shares[g], floor);
  EXPECT_NEAR(shares[9], 1.0 - 9.0 * floor, 1e-6);
}

TEST(Allocation, SingleGroupAdaptiveIsFullBand) {
  const auto network = gsfl::test::make_tiny_network(3);
  const auto data = gsfl::test::make_client_datasets(3, 8, 76);
  Rng rng(76);
  auto config = lopsided_config(BandwidthPolicy::kAdaptive);
  config.num_groups = 1;
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      config);
  for (int i = 0; i < 2; ++i) (void)trainer.run_round();
  ASSERT_EQ(trainer.group_shares().size(), 1u);
  EXPECT_DOUBLE_EQ(trainer.group_shares()[0], 1.0);
}

}  // namespace
