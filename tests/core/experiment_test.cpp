#include <gtest/gtest.h>

#include "gsfl/core/experiment.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::core::Experiment;
using gsfl::core::ExperimentConfig;
using gsfl::core::PartitionKind;

ExperimentConfig tiny_config() {
  auto config = ExperimentConfig::scaled();
  config.dataset.image_size = 8;
  config.dataset.num_classes = 4;
  config.dataset.samples_per_class = 10;
  config.test_samples_per_class = 4;
  config.num_clients = 4;
  config.num_groups = 2;
  config.shards_per_client = 2;
  config.model.conv1_filters = 4;
  config.model.conv2_filters = 4;
  config.model.hidden = 16;
  return config;
}

TEST(Experiment, BuildsConsistentWorld) {
  const Experiment experiment(tiny_config());
  EXPECT_EQ(experiment.client_data().size(), 4u);
  EXPECT_EQ(experiment.test_set().num_classes(), 4u);
  EXPECT_EQ(experiment.test_set().size(), 16u);
  EXPECT_EQ(experiment.network().num_clients(), 4u);

  std::size_t total = 0;
  for (const auto& d : experiment.client_data()) {
    EXPECT_FALSE(d.empty());
    total += d.size();
  }
  EXPECT_EQ(total, 40u);
}

TEST(Experiment, ModelGeometryFollowsDataset) {
  const Experiment experiment(tiny_config());
  auto model = experiment.initial_model();
  EXPECT_EQ(model.output_shape(gsfl::tensor::Shape{2, 3, 8, 8}),
            gsfl::tensor::Shape({2, 4}));
}

TEST(Experiment, InitialModelIdenticalAcrossCalls) {
  const Experiment experiment(tiny_config());
  EXPECT_TRUE(gsfl::test::states_equal(experiment.initial_model(),
                                       experiment.initial_model()));
}

TEST(Experiment, SameSeedSameWorld) {
  const Experiment a(tiny_config());
  const Experiment b(tiny_config());
  EXPECT_EQ(a.test_set().images(), b.test_set().images());
  EXPECT_TRUE(gsfl::test::states_equal(a.initial_model(), b.initial_model()));
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(a.client_data()[c].images(), b.client_data()[c].images());
    EXPECT_DOUBLE_EQ(a.network().client(c).distance_m,
                     b.network().client(c).distance_m);
  }
}

TEST(Experiment, DifferentSeedDifferentWorld) {
  auto config = tiny_config();
  const Experiment a(config);
  config.seed = 777;
  const Experiment b(config);
  EXPECT_NE(a.test_set().images(), b.test_set().images());
  EXPECT_FALSE(gsfl::test::states_equal(a.initial_model(),
                                        b.initial_model()));
}

TEST(Experiment, AllTrainersShareTheSameInitialModel) {
  const Experiment experiment(tiny_config());
  const auto cl = experiment.make_cl();
  const auto fl = experiment.make_fl();
  const auto sl = experiment.make_sl();
  const auto sfl = experiment.make_sfl();
  const auto gsfl_trainer = experiment.make_gsfl();

  const auto reference = experiment.initial_model();
  EXPECT_TRUE(gsfl::test::states_equal(cl->global_model(), reference));
  EXPECT_TRUE(gsfl::test::states_equal(fl->global_model(), reference));
  EXPECT_TRUE(gsfl::test::states_equal(sl->global_model(), reference));
  EXPECT_TRUE(gsfl::test::states_equal(sfl->global_model(), reference));
  EXPECT_TRUE(
      gsfl::test::states_equal(gsfl_trainer->global_model(), reference));
}

TEST(Experiment, GsflOverridesGroupsAndCut) {
  const Experiment experiment(tiny_config());
  const auto trainer = experiment.make_gsfl(4, 1);
  EXPECT_EQ(trainer->num_groups(), 4u);
  EXPECT_EQ(trainer->cut_layer(), 1u);
}

TEST(Experiment, PartitionKindsAllWork) {
  for (const auto kind : {PartitionKind::kIid, PartitionKind::kShards,
                          PartitionKind::kDirichlet}) {
    auto config = tiny_config();
    config.partition = kind;
    const Experiment experiment(config);
    std::size_t total = 0;
    for (const auto& d : experiment.client_data()) total += d.size();
    EXPECT_EQ(total, 40u);
  }
}

TEST(Experiment, ShardPartitionIsSkewedIidIsNot) {
  auto config = tiny_config();
  config.dataset.samples_per_class = 40;  // enough for clear histograms
  config.partition = PartitionKind::kShards;
  config.shards_per_client = 1;
  const Experiment skewed(config);
  config.partition = PartitionKind::kIid;
  const Experiment iid(config);

  const auto distinct = [](const gsfl::data::Dataset& d) {
    std::size_t n = 0;
    for (const auto c : d.class_histogram()) n += c > 0 ? 1 : 0;
    return n;
  };
  std::size_t skewed_distinct = 0;
  std::size_t iid_distinct = 0;
  for (const auto& d : skewed.client_data()) skewed_distinct += distinct(d);
  for (const auto& d : iid.client_data()) iid_distinct += distinct(d);
  EXPECT_LT(skewed_distinct, iid_distinct);
}

TEST(Experiment, PaperAndScaledConfigsAreSane) {
  const auto paper = ExperimentConfig::paper();
  EXPECT_EQ(paper.num_clients, 30u);
  EXPECT_EQ(paper.num_groups, 6u);
  EXPECT_EQ(paper.dataset.num_classes, 43u);
  EXPECT_EQ(paper.dataset.image_size, 32u);

  const auto scaled = ExperimentConfig::scaled();
  EXPECT_EQ(scaled.num_clients, 30u);
  EXPECT_EQ(scaled.num_groups, 6u);
  EXPECT_LT(scaled.dataset.num_classes, paper.dataset.num_classes);
  EXPECT_LT(scaled.dataset.image_size, paper.dataset.image_size);
}

TEST(Experiment, InvalidConfigRejected) {
  auto config = tiny_config();
  config.num_groups = 10;  // more groups than clients
  EXPECT_THROW(Experiment{config}, std::invalid_argument);
}

}  // namespace
