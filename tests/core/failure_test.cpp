#include <cmath>
// Client failure injection: GSFL must degrade gracefully when devices drop
// out of a round (battery, mobility, radio outage).
#include <gtest/gtest.h>

#include "gsfl/core/gsfl.hpp"
#include "gsfl/metrics/evaluate.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::core::GsflConfig;
using gsfl::core::GsflTrainer;

GsflConfig failing_config(std::size_t groups, double rate) {
  GsflConfig config;
  config.num_groups = groups;
  config.cut_layer = gsfl::test::kTinyCut;
  config.client_failure_rate = rate;
  return config;
}

TEST(FailureInjection, RateZeroIsExactlyBaseline) {
  const auto network = gsfl::test::make_tiny_network(6);
  const auto data = gsfl::test::make_client_datasets(6, 8, 91);
  Rng rng(91);
  const auto init = gsfl::test::make_tiny_model(rng);

  GsflTrainer baseline(network, data, init, failing_config(3, 0.0));
  GsflConfig with_seed = failing_config(3, 0.0);
  with_seed.failure_seed = 12345;  // seed is irrelevant at rate 0
  GsflTrainer same(network, data, init, with_seed);
  for (int i = 0; i < 3; ++i) {
    (void)baseline.run_round();
    (void)same.run_round();
  }
  EXPECT_TRUE(gsfl::test::states_equal(baseline.global_model(),
                                       same.global_model()));
  EXPECT_TRUE(baseline.last_round_failures().empty());
}

TEST(FailureInjection, FailuresAreReportedAndDeterministic) {
  const auto network = gsfl::test::make_tiny_network(8);
  const auto data = gsfl::test::make_client_datasets(8, 8, 92);
  Rng rng(92);
  const auto init = gsfl::test::make_tiny_model(rng);

  GsflTrainer a(network, data, init, failing_config(2, 0.5));
  GsflTrainer b(network, data, init, failing_config(2, 0.5));
  for (int i = 0; i < 4; ++i) {
    (void)a.run_round();
    (void)b.run_round();
    EXPECT_EQ(a.last_round_failures(), b.last_round_failures());
  }
  EXPECT_TRUE(gsfl::test::states_equal(a.global_model(), b.global_model()));
}

TEST(FailureInjection, ModerateFailuresStillLearn) {
  const auto network = gsfl::test::make_tiny_network(8);
  Rng test_rng(93);
  const auto test_set = gsfl::test::make_separable_dataset(40, test_rng);
  Rng rng(93);
  auto config = failing_config(4, 0.25);
  config.train.learning_rate = 0.15;
  GsflTrainer trainer(network, gsfl::test::make_client_datasets(8, 16, 93),
                      gsfl::test::make_tiny_model(rng), config);
  for (int i = 0; i < 30; ++i) (void)trainer.run_round();
  auto model = trainer.global_model();
  EXPECT_GT(gsfl::metrics::evaluate(model, test_set).accuracy, 0.8);
}

TEST(FailureInjection, FullyFailedGroupIsExcludedNotPoisonous) {
  // With 2 singleton groups and one client always failing (rate just below
  // 1 applied repeatedly), some rounds will have a fully-failed group; the
  // aggregation must skip it rather than averaging an untrained replica.
  const auto network = gsfl::test::make_tiny_network(2);
  const auto data = gsfl::test::make_client_datasets(2, 8, 94);
  Rng rng(94);
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      failing_config(2, 0.6));
  for (int i = 0; i < 10; ++i) {
    const auto result = trainer.run_round();
    EXPECT_TRUE(std::isfinite(result.train_loss));
  }
  auto model = trainer.global_model();
  for (const auto& t : model.state()) {
    for (const float v : t.data()) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(FailureInjection, AllClientsFailedLeavesModelUntouched) {
  const auto network = gsfl::test::make_tiny_network(2);
  const auto data = gsfl::test::make_client_datasets(2, 8, 95);
  Rng rng(95);
  const auto init = gsfl::test::make_tiny_model(rng);
  // rate ~1 (capped below 1): all clients fail in virtually every round.
  GsflTrainer trainer(network, data, init, failing_config(2, 0.999));
  const auto result = trainer.run_round();
  if (trainer.last_round_failures().size() == 2) {
    EXPECT_TRUE(gsfl::test::states_equal(trainer.global_model(), init));
    EXPECT_DOUBLE_EQ(result.train_loss, 0.0);
  }
}

TEST(FailureInjection, SkippedClientsReduceRoundTraffic) {
  const auto network = gsfl::test::make_tiny_network(6);
  const auto data = gsfl::test::make_client_datasets(6, 8, 96);
  Rng rng(96);
  const auto init = gsfl::test::make_tiny_model(rng);

  GsflTrainer healthy(network, data, init, failing_config(1, 0.0));
  GsflTrainer flaky(network, data, init, failing_config(1, 0.5));
  const double healthy_up = healthy.run_round().latency.uplink;
  double flaky_up = 0.0;
  // Find a round where at least one client failed.
  for (int i = 0; i < 10; ++i) {
    const auto result = flaky.run_round();
    if (!flaky.last_round_failures().empty() &&
        flaky.last_round_failures().size() < 6) {
      flaky_up = result.latency.uplink;
      break;
    }
  }
  ASSERT_GT(flaky_up, 0.0) << "no usable failure round drawn";
  EXPECT_LT(flaky_up, healthy_up);
}

TEST(FailureInjection, InvalidRateRejected) {
  const auto network = gsfl::test::make_tiny_network(2);
  const auto data = gsfl::test::make_client_datasets(2, 8, 97);
  Rng rng(97);
  EXPECT_THROW(GsflTrainer(network, data, gsfl::test::make_tiny_model(rng),
                           failing_config(2, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(GsflTrainer(network, data, gsfl::test::make_tiny_model(rng),
                           failing_config(2, -0.1)),
               std::invalid_argument);
}

}  // namespace
