#include <gtest/gtest.h>

#include "gsfl/core/grouping.hpp"
#include "gsfl/data/partition.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::core::group_contiguous;
using gsfl::core::group_label_aware;
using gsfl::core::group_random;
using gsfl::core::group_round_robin;
using gsfl::core::GroupAssignment;
using gsfl::core::grouping_label_imbalance;
using gsfl::core::is_valid_grouping;
using gsfl::data::Dataset;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

TEST(Grouping, RoundRobinInterleaves) {
  const auto groups = group_round_robin(7, 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 3, 6}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(groups[2], (std::vector<std::size_t>{2, 5}));
  EXPECT_TRUE(is_valid_grouping(groups, 7));
}

TEST(Grouping, ContiguousBlocks) {
  const auto groups = group_contiguous(7, 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(groups[2], (std::vector<std::size_t>{5, 6}));
  EXPECT_TRUE(is_valid_grouping(groups, 7));
}

TEST(Grouping, RandomIsValidAndSeeded) {
  Rng rng_a(5);
  Rng rng_b(5);
  const auto a = group_random(10, 4, rng_a);
  const auto b = group_random(10, 4, rng_b);
  EXPECT_TRUE(is_valid_grouping(a, 10));
  EXPECT_EQ(a, b);  // deterministic given the seed
}

TEST(Grouping, PaperConfiguration30Clients6Groups) {
  const auto groups = group_round_robin(30, 6);
  ASSERT_EQ(groups.size(), 6u);
  for (const auto& g : groups) EXPECT_EQ(g.size(), 5u);
  EXPECT_TRUE(is_valid_grouping(groups, 30));
}

TEST(Grouping, SingleGroupAndSingletonGroups) {
  const auto one = group_round_robin(5, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].size(), 5u);

  const auto singletons = group_round_robin(5, 5);
  ASSERT_EQ(singletons.size(), 5u);
  for (const auto& g : singletons) EXPECT_EQ(g.size(), 1u);
}

TEST(Grouping, MoreGroupsThanClientsThrows) {
  EXPECT_THROW(group_round_robin(3, 4), std::invalid_argument);
  EXPECT_THROW(group_contiguous(3, 0), std::invalid_argument);
}

TEST(Grouping, ValidityDetectsProblems) {
  EXPECT_TRUE(is_valid_grouping({{0, 1}, {2}}, 3));
  EXPECT_FALSE(is_valid_grouping({{0, 1}, {}}, 2));      // empty group
  EXPECT_FALSE(is_valid_grouping({{0, 1}, {1}}, 2));     // duplicate
  EXPECT_FALSE(is_valid_grouping({{0}}, 2));             // missing client
  EXPECT_FALSE(is_valid_grouping({{0, 2}}, 2));          // out of range
}

/// Clients with single-class datasets; class = client index % classes.
std::vector<Dataset> single_class_clients(std::size_t n,
                                          std::size_t classes) {
  std::vector<Dataset> out;
  for (std::size_t c = 0; c < n; ++c) {
    Tensor images(Shape{6, 1, 2, 2});
    std::vector<std::int32_t> labels(
        6, static_cast<std::int32_t>(c % classes));
    out.emplace_back(std::move(images), std::move(labels), classes);
  }
  return out;
}

TEST(Grouping, LabelAwareIsValid) {
  const auto clients = single_class_clients(12, 4);
  const auto groups = group_label_aware(clients, 4);
  EXPECT_TRUE(is_valid_grouping(groups, 12));
  for (const auto& g : groups) EXPECT_EQ(g.size(), 3u);
}

TEST(Grouping, LabelAwareBalancesSkewedClients) {
  // 8 clients, 4 classes, two single-class clients per class. A contiguous
  // grouping into 4 groups pairs same-class clients (worst case); the
  // label-aware grouping must do strictly better.
  std::vector<Dataset> clients;
  for (std::size_t c = 0; c < 8; ++c) {
    Tensor images(Shape{6, 1, 2, 2});
    std::vector<std::int32_t> labels(6,
                                     static_cast<std::int32_t>(c / 2));
    clients.emplace_back(std::move(images), std::move(labels), 4);
  }
  const auto aware = group_label_aware(clients, 4);
  const auto contiguous = group_contiguous(8, 4);
  EXPECT_TRUE(is_valid_grouping(aware, 8));
  EXPECT_LT(grouping_label_imbalance(aware, clients),
            grouping_label_imbalance(contiguous, clients));
}

TEST(Grouping, LabelAwareHandlesAwkwardSizes) {
  // N=4, M=3 — the case where greedy filling could leave a group empty.
  const auto clients = single_class_clients(4, 2);
  const auto groups = group_label_aware(clients, 3);
  EXPECT_TRUE(is_valid_grouping(groups, 4));
}

TEST(Grouping, ImbalanceZeroForPerfectlyMixedGroups) {
  // Every client IID over classes → every grouping has imbalance ≈ 0.
  std::vector<Dataset> clients;
  for (std::size_t c = 0; c < 6; ++c) {
    Tensor images(Shape{4, 1, 2, 2});
    std::vector<std::int32_t> labels = {0, 1, 2, 3};
    clients.emplace_back(std::move(images), std::move(labels), 4);
  }
  EXPECT_NEAR(grouping_label_imbalance(group_round_robin(6, 2), clients),
              0.0, 1e-12);
}

class GroupingSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(GroupingSweep, AllStrategiesValid) {
  const auto [clients_n, groups_n] = GetParam();
  Rng rng(clients_n * 13 + groups_n);
  EXPECT_TRUE(
      is_valid_grouping(group_round_robin(clients_n, groups_n), clients_n));
  EXPECT_TRUE(
      is_valid_grouping(group_contiguous(clients_n, groups_n), clients_n));
  EXPECT_TRUE(is_valid_grouping(group_random(clients_n, groups_n, rng),
                                clients_n));
  const auto data = single_class_clients(clients_n, 3);
  EXPECT_TRUE(
      is_valid_grouping(group_label_aware(data, groups_n), clients_n));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GroupingSweep,
    ::testing::Values(std::make_tuple(30, 6), std::make_tuple(30, 1),
                      std::make_tuple(30, 30), std::make_tuple(7, 3),
                      std::make_tuple(4, 3), std::make_tuple(5, 2),
                      std::make_tuple(13, 5)));

}  // namespace
