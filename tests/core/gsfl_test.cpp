#include <gtest/gtest.h>

#include "gsfl/core/gsfl.hpp"
#include "gsfl/metrics/evaluate.hpp"
#include "gsfl/schemes/split_learning.hpp"
#include "gsfl/schemes/splitfed.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::core::GroupingPolicy;
using gsfl::core::GsflConfig;
using gsfl::core::GsflTrainer;
using gsfl::schemes::SplitFedTrainer;
using gsfl::schemes::SplitLearningTrainer;
using gsfl::schemes::TrainConfig;

GsflConfig tiny_gsfl_config(std::size_t groups) {
  GsflConfig config;
  config.num_groups = groups;
  config.cut_layer = gsfl::test::kTinyCut;
  return config;
}

TEST(Gsfl, SingleGroupEqualsVanillaSlExactly) {
  // With M = 1 the group walks all clients sequentially — exactly vanilla
  // SL — and aggregating a single replica is the identity.
  const auto network = gsfl::test::make_tiny_network(4);
  const auto data = gsfl::test::make_client_datasets(4, 12, 41);
  Rng rng(41);
  const auto init = gsfl::test::make_tiny_model(rng);

  GsflTrainer gsfl(network, data, init, tiny_gsfl_config(1));
  SplitLearningTrainer sl(network, data, init, gsfl::test::kTinyCut,
                          TrainConfig{});

  for (int round = 0; round < 3; ++round) {
    (void)gsfl.run_round();
    (void)sl.run_round();
    EXPECT_TRUE(
        gsfl::test::states_equal(gsfl.global_model(), sl.global_model()))
        << "diverged at round " << round;
  }
}

TEST(Gsfl, SingletonGroupsEqualSplitFedExactly) {
  // With M = N every group is one client with its own server replica —
  // exactly SplitFed.
  const auto network = gsfl::test::make_tiny_network(3);
  const auto data = gsfl::test::make_client_datasets(3, 12, 42);
  Rng rng(42);
  const auto init = gsfl::test::make_tiny_model(rng);

  GsflTrainer gsfl(network, data, init, tiny_gsfl_config(3));
  SplitFedTrainer sfl(network, data, init, gsfl::test::kTinyCut,
                      TrainConfig{});

  for (int round = 0; round < 3; ++round) {
    (void)gsfl.run_round();
    (void)sfl.run_round();
    EXPECT_TRUE(
        gsfl::test::states_equal(gsfl.global_model(), sfl.global_model()))
        << "diverged at round " << round;
  }
}

TEST(Gsfl, LearnsSeparableTask) {
  const auto network = gsfl::test::make_tiny_network(6);
  Rng rng(43);
  Rng test_rng(44);
  const auto test_set = gsfl::test::make_separable_dataset(48, test_rng);
  auto config = tiny_gsfl_config(3);
  config.train.learning_rate = 0.15;
  GsflTrainer trainer(network, gsfl::test::make_client_datasets(6, 12, 43),
                      gsfl::test::make_tiny_model(rng), config);
  for (int i = 0; i < 25; ++i) (void)trainer.run_round();
  auto model = trainer.global_model();
  EXPECT_GT(gsfl::metrics::evaluate(model, test_set).accuracy, 0.85);
}

TEST(Gsfl, RoundLatencyDecreasesWithMoreGroups) {
  // Groups train in parallel: more groups ⇒ shorter sequential chains ⇒
  // a shorter round, despite the reduced per-group bandwidth share.
  const auto network = gsfl::test::make_tiny_network(12);
  const auto data = gsfl::test::make_client_datasets(12, 8, 45);
  Rng rng(45);
  const auto init = gsfl::test::make_tiny_model(rng);

  GsflTrainer one(network, data, init, tiny_gsfl_config(1));
  GsflTrainer four(network, data, init, tiny_gsfl_config(4));
  const double t1 = one.run_round().latency.total();
  const double t4 = four.run_round().latency.total();
  EXPECT_LT(t4, t1);
}

TEST(Gsfl, ServerStorageScalesWithGroupsNotClients) {
  const auto network = gsfl::test::make_tiny_network(12);
  const auto data = gsfl::test::make_client_datasets(12, 8, 46);
  Rng rng(46);
  const auto init = gsfl::test::make_tiny_model(rng);

  GsflTrainer two(network, data, init, tiny_gsfl_config(2));
  GsflTrainer six(network, data, init, tiny_gsfl_config(6));
  EXPECT_EQ(six.server_storage_bytes(), 3 * two.server_storage_bytes());

  // The paper's argument: GSFL with M ≪ N stores far less than SplitFed.
  SplitFedTrainer sfl(network, data, init, gsfl::test::kTinyCut,
                      TrainConfig{});
  EXPECT_LT(two.server_storage_bytes(), sfl.server_storage_bytes());
}

TEST(Gsfl, GroupChainsExposedPerRound) {
  const auto network = gsfl::test::make_tiny_network(6);
  Rng rng(47);
  GsflTrainer trainer(network, gsfl::test::make_client_datasets(6, 8, 47),
                      gsfl::test::make_tiny_model(rng), tiny_gsfl_config(3));
  EXPECT_TRUE(trainer.last_group_chains().empty());
  const auto result = trainer.run_round();
  ASSERT_EQ(trainer.last_group_chains().size(), 3u);
  // The reported round latency equals the critical chain plus aggregation.
  double max_chain = 0.0;
  for (const auto& chain : trainer.last_group_chains()) {
    max_chain = std::max(max_chain, chain.total());
  }
  EXPECT_NEAR(result.latency.total() - result.latency.aggregation, max_chain,
              1e-9);
  EXPECT_GT(result.latency.aggregation, 0.0);
}

TEST(Gsfl, GroupingPoliciesProduceValidGroups) {
  const auto network = gsfl::test::make_tiny_network(9);
  const auto data = gsfl::test::make_client_datasets(9, 8, 48);
  Rng rng(48);
  const auto init = gsfl::test::make_tiny_model(rng);

  for (const auto policy :
       {GroupingPolicy::kRoundRobin, GroupingPolicy::kContiguous,
        GroupingPolicy::kRandom, GroupingPolicy::kLabelAware}) {
    auto config = tiny_gsfl_config(3);
    config.grouping = policy;
    GsflTrainer trainer(network, data, init, config);
    EXPECT_TRUE(gsfl::core::is_valid_grouping(trainer.groups(), 9));
    EXPECT_EQ(trainer.num_groups(), 3u);
  }
}

TEST(Gsfl, ExplicitGroupingHonoured) {
  const auto network = gsfl::test::make_tiny_network(4);
  const auto data = gsfl::test::make_client_datasets(4, 8, 49);
  Rng rng(49);
  auto config = tiny_gsfl_config(2);
  config.grouping = GroupingPolicy::kExplicit;
  config.explicit_groups = {{3, 0}, {2, 1}};
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      config);
  EXPECT_EQ(trainer.groups(), config.explicit_groups);

  config.explicit_groups = {{0, 1}, {1, 2}};  // duplicate, missing 3
  EXPECT_THROW(GsflTrainer(network, data, gsfl::test::make_tiny_model(rng),
                           config),
               std::invalid_argument);
}

TEST(Gsfl, RequiresTrainableServerSide) {
  const auto network = gsfl::test::make_tiny_network(2);
  const auto data = gsfl::test::make_client_datasets(2, 8, 50);
  Rng rng(50);
  const auto init = gsfl::test::make_tiny_model(rng);
  auto config = tiny_gsfl_config(2);
  config.cut_layer = init.size();
  EXPECT_THROW(GsflTrainer(network, data, init, config),
               std::invalid_argument);
}

TEST(Gsfl, ClientModelBytesMatchCut) {
  const auto network = gsfl::test::make_tiny_network(2);
  const auto data = gsfl::test::make_client_datasets(2, 8, 51);
  Rng rng(51);
  const auto init = gsfl::test::make_tiny_model(rng);
  GsflTrainer trainer(network, data, init, tiny_gsfl_config(2));
  // Client side = flatten + dense(4→8): (4·8 + 8) floats.
  EXPECT_EQ(trainer.client_model_bytes(), (4 * 8 + 8) * sizeof(float));
}

}  // namespace
