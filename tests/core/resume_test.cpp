// Crash recovery: a trainer restored from a checkpoint continues bitwise
// identically to the uninterrupted run. The state blob carries everything
// mutable — models, sampler streams, auxiliary RNG, adaptive bandwidth
// shares — and the fault engine needs nothing saved at all, because its
// plans are keyed by round index. The suite pins the contract for every
// checkpointable scheme, for the run_experiment driver's
// checkpoint_every/resume_from options, and for the failure modes (scheme
// mismatch, truncation, trainers without checkpoint support).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gsfl/core/checkpoint.hpp"
#include "gsfl/core/gsfl.hpp"
#include "gsfl/schemes/centralized.hpp"
#include "gsfl/schemes/fedavg.hpp"
#include "gsfl/schemes/splitfed.hpp"
#include "gsfl/schemes/trainer.hpp"
#include "support/property.hpp"
#include "support/test_world.hpp"

namespace {

using namespace gsfl;
using test::prop::bitwise_equal;

sim::FaultConfig lively_faults() {
  sim::FaultConfig faults;
  faults.crash_before_rate = 0.15;
  faults.downlink_loss_rate = 0.2;
  faults.straggler_rate = 0.3;
  faults.seed = 0xD1CE;
  return faults;
}

void expect_states_equal(const nn::StateDict& actual,
                         const nn::StateDict& expected, const char* label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t e = 0; e < actual.size(); ++e) {
    EXPECT_TRUE(bitwise_equal(actual[e], expected[e]))
        << label << " entry " << e;
  }
}

void expect_results_equal(const std::vector<schemes::RoundResult>& actual,
                          const std::vector<schemes::RoundResult>& expected,
                          const char* label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t r = 0; r < actual.size(); ++r) {
    EXPECT_EQ(actual[r].train_loss, expected[r].train_loss)
        << label << " round " << r;
    EXPECT_EQ(actual[r].latency.total(), expected[r].latency.total())
        << label << " round " << r;
  }
}

// Run `factory()`'s trainer straight for total_rounds; then re-run as
// split_at rounds + save_state + a fresh trainer restored with load_state
// driving the remainder. Both tails must match bitwise.
template <typename Factory>
void check_save_restore_bitwise(Factory factory, std::size_t total_rounds,
                                std::size_t split_at, const char* label) {
  auto straight = factory();
  const auto straight_results =
      schemes::run_rounds_pipelined(*straight, total_rounds, 1);
  const auto straight_state = straight->global_model().state();

  auto first = factory();
  (void)schemes::run_rounds_pipelined(*first, split_at, 1);
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  first->save_state(blob);

  auto resumed = factory();
  resumed->load_state(blob);
  EXPECT_EQ(resumed->rounds_completed(), split_at) << label;
  const auto tail_results =
      schemes::run_rounds_pipelined(*resumed, total_rounds - split_at, 1);

  expect_states_equal(resumed->global_model().state(), straight_state, label);
  const std::vector<schemes::RoundResult> straight_tail(
      straight_results.begin() + static_cast<std::ptrdiff_t>(split_at),
      straight_results.end());
  expect_results_equal(tail_results, straight_tail, label);
}

TEST(Resume, SflSaveRestoreContinuesBitwise) {
  const auto factory = [] {
    auto network = std::make_shared<net::WirelessNetwork>(
        test::make_tiny_network(4));
    auto datasets = test::make_client_datasets(4, 10, 71);
    common::Rng model_rng(73);
    auto model = test::make_tiny_model(model_rng);
    schemes::TrainConfig config;
    config.batch_size = 4;
    struct Holder {
      std::shared_ptr<net::WirelessNetwork> network;
      schemes::SplitFedTrainer trainer;
      schemes::Trainer& operator*() { return trainer; }
      schemes::Trainer* operator->() { return &trainer; }
    };
    return Holder{network,
                  schemes::SplitFedTrainer(*network, std::move(datasets),
                                           std::move(model), test::kTinyCut,
                                           config)};
  };
  check_save_restore_bitwise(factory, 6, 3, "sfl");
}

TEST(Resume, FlWithFaultsAndQuorumSaveRestoreContinuesBitwise) {
  // Fault plans are round-keyed: the resumed run replays rounds 4–6's
  // exact faults without any fault-RNG state in the blob.
  const auto factory = [] {
    auto network = std::make_shared<net::WirelessNetwork>(
        test::make_tiny_network(5));
    auto datasets = test::make_client_datasets(5, 10, 81);
    common::Rng model_rng(83);
    auto model = test::make_tiny_model(model_rng);
    schemes::TrainConfig config;
    config.batch_size = 4;
    config.faults = lively_faults();
    config.round_policy.quorum_fraction = 0.6;
    struct Holder {
      std::shared_ptr<net::WirelessNetwork> network;
      schemes::FedAvgTrainer trainer;
      schemes::Trainer& operator*() { return trainer; }
      schemes::Trainer* operator->() { return &trainer; }
    };
    return Holder{network, schemes::FedAvgTrainer(*network, std::move(datasets),
                                                  std::move(model), config)};
  };
  check_save_restore_bitwise(factory, 6, 3, "fl-faulty");
}

TEST(Resume, GsflAdaptiveWithFaultsSaveRestoreContinuesBitwise) {
  // The deepest blob: both model halves, all samplers, the legacy failure
  // RNG mid-stream, and the adaptive bandwidth shares.
  const auto factory = [] {
    auto network = std::make_shared<net::WirelessNetwork>(
        test::make_tiny_network(6));
    auto datasets = test::make_client_datasets(6, 10, 91);
    common::Rng model_rng(93);
    auto model = test::make_tiny_model(model_rng);
    core::GsflConfig config;
    config.num_groups = 3;
    config.cut_layer = test::kTinyCut;
    config.grouping = core::GroupingPolicy::kContiguous;
    config.bandwidth = core::BandwidthPolicy::kAdaptive;
    config.client_failure_rate = 0.2;
    config.train.batch_size = 4;
    config.train.faults = lively_faults();
    struct Holder {
      std::shared_ptr<net::WirelessNetwork> network;
      core::GsflTrainer trainer;
      schemes::Trainer& operator*() { return trainer; }
      schemes::Trainer* operator->() { return &trainer; }
    };
    return Holder{network, core::GsflTrainer(*network, std::move(datasets),
                                             std::move(model), config)};
  };
  check_save_restore_bitwise(factory, 6, 3, "gsfl-adaptive-faulty");
}

// ---- run_experiment driver -------------------------------------------------

TEST(Resume, RunExperimentResumesRecordForRecord) {
  const std::string dir = ::testing::TempDir();
  const auto make_trainer = [](auto& network) {
    auto datasets = test::make_client_datasets(4, 10, 101);
    common::Rng model_rng(103);
    auto model = test::make_tiny_model(model_rng);
    schemes::TrainConfig config;
    config.batch_size = 4;
    config.faults = lively_faults();
    return schemes::FedAvgTrainer(network, std::move(datasets),
                                  std::move(model), config);
  };
  common::Rng data_rng(105);
  const auto test_set = test::make_separable_dataset(24, data_rng);

  auto network = test::make_tiny_network(4);
  auto full = make_trainer(network);
  schemes::ExperimentOptions options;
  options.rounds = 6;
  options.eval_every = 1;
  options.checkpoint_every = 2;
  options.checkpoint_dir = dir;
  const auto reference = schemes::run_experiment(full, test_set, options);

  auto resumed = make_trainer(network);
  schemes::ExperimentOptions resume_options;
  resume_options.rounds = 6;
  resume_options.eval_every = 1;
  resume_options.resume_from = core::checkpoint_path(dir, "FL", 4);
  const auto rerun = schemes::run_experiment(resumed, test_set, resume_options);

  ASSERT_EQ(rerun.rounds(), reference.rounds());
  for (std::size_t i = 0; i < rerun.records().size(); ++i) {
    const auto& a = rerun.records()[i];
    const auto& e = reference.records()[i];
    EXPECT_EQ(a.round, e.round) << "record " << i;
    EXPECT_EQ(a.sim_seconds, e.sim_seconds) << "record " << i;
    EXPECT_EQ(a.train_loss, e.train_loss) << "record " << i;
    EXPECT_EQ(a.eval_accuracy, e.eval_accuracy) << "record " << i;
  }
  expect_states_equal(resumed.global_model().state(),
                      full.global_model().state(), "run_experiment resume");
}

// ---- failure modes ---------------------------------------------------------

TEST(Resume, ExperimentCheckpointRejectsSchemeMismatch) {
  auto network = test::make_tiny_network(2);
  auto datasets = test::make_client_datasets(2, 8, 111);
  common::Rng model_rng(113);
  schemes::TrainConfig config;
  config.batch_size = 4;
  schemes::FedAvgTrainer fl(network, test::make_client_datasets(2, 8, 111),
                            test::make_tiny_model(model_rng), config);
  (void)fl.run_round();
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  core::save_experiment_checkpoint(blob, fl, {}, 1.0);

  common::Rng other_rng(115);
  schemes::SplitFedTrainer sfl(network, std::move(datasets),
                               test::make_tiny_model(other_rng),
                               test::kTinyCut, config);
  EXPECT_THROW((void)core::load_experiment_checkpoint(blob, sfl),
               std::runtime_error);
}

TEST(Resume, TruncatedExperimentCheckpointReportsTheBreak) {
  auto network = test::make_tiny_network(2);
  auto datasets = test::make_client_datasets(2, 8, 121);
  common::Rng model_rng(123);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  schemes::FedAvgTrainer trainer(network, std::move(datasets),
                                 std::move(model), config);
  (void)trainer.run_round();
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  core::save_experiment_checkpoint(blob, trainer, {}, 1.0);
  const std::string bytes = blob.str();

  // Cut the blob mid-tensor: the error must name a field and an offset.
  std::stringstream cut(bytes.substr(0, bytes.size() / 2),
                        std::ios::in | std::ios::binary);
  try {
    (void)core::load_experiment_checkpoint(cut, trainer);
    FAIL() << "truncated checkpoint must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("offset"), std::string::npos)
        << "message was: " << error.what();
  }
}

TEST(Resume, TrailingGarbageIsRejected) {
  auto network = test::make_tiny_network(2);
  auto datasets = test::make_client_datasets(2, 8, 131);
  common::Rng model_rng(133);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  schemes::FedAvgTrainer trainer(network, std::move(datasets),
                                 std::move(model), config);
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  core::save_experiment_checkpoint(blob, trainer, {}, 0.0);
  blob << "extra bytes that no writer of ours produced";
  EXPECT_THROW((void)core::load_experiment_checkpoint(blob, trainer),
               std::runtime_error);
}

TEST(Resume, SchemesWithoutCheckpointSupportSaySo) {
  auto network = test::make_tiny_network(1);
  auto datasets = test::make_client_datasets(1, 8, 141);
  common::Rng model_rng(143);
  auto model = test::make_tiny_model(model_rng);
  schemes::TrainConfig config;
  config.batch_size = 4;
  schemes::CentralizedTrainer trainer(network, std::move(datasets),
                                      std::move(model), config);
  std::stringstream blob;
  EXPECT_THROW(trainer.save_state(blob), std::logic_error);
}

}  // namespace
