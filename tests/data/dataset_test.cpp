#include <gtest/gtest.h>

#include "gsfl/data/dataset.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::data::Dataset;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

Dataset make_dataset(std::size_t n, std::size_t classes = 4) {
  Tensor images(Shape{n, 1, 2, 2});
  std::vector<std::int32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    images.at4(i, 0, 0, 0) = static_cast<float>(i);
    labels[i] = static_cast<std::int32_t>(i % classes);
  }
  return Dataset(std::move(images), std::move(labels), classes);
}

TEST(Dataset, BasicAccessors) {
  const auto ds = make_dataset(10);
  EXPECT_EQ(ds.size(), 10u);
  EXPECT_FALSE(ds.empty());
  EXPECT_EQ(ds.num_classes(), 4u);
  EXPECT_EQ(ds.sample_shape(), Shape({1, 2, 2}));
  EXPECT_EQ(ds.batch_shape(3), Shape({3, 1, 2, 2}));
  EXPECT_EQ(ds.image_bytes(), 10u * 4u * sizeof(float));
}

TEST(Dataset, ConstructionValidation) {
  Tensor images(Shape{2, 1, 2, 2});
  EXPECT_THROW(Dataset(images, {0}, 4), std::invalid_argument);      // count
  EXPECT_THROW(Dataset(images, {0, 9}, 4), std::invalid_argument);   // range
  EXPECT_THROW(Dataset(images, {0, -1}, 4), std::invalid_argument);  // range
  EXPECT_THROW(Dataset(Tensor(Shape{2, 4}), {0, 1}, 4),
               std::invalid_argument);  // rank
}

TEST(Dataset, GatherCopiesRequestedSamples) {
  const auto ds = make_dataset(10);
  const std::size_t idx[] = {7, 2, 2};
  const auto [images, labels] = ds.gather(idx);
  EXPECT_EQ(images.shape(), Shape({3, 1, 2, 2}));
  EXPECT_FLOAT_EQ(images.at4(0, 0, 0, 0), 7.0f);
  EXPECT_FLOAT_EQ(images.at4(1, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(images.at4(2, 0, 0, 0), 2.0f);
  EXPECT_EQ(labels[0], 3);
  EXPECT_EQ(labels[1], 2);
}

TEST(Dataset, GatherValidatesIndices) {
  const auto ds = make_dataset(5);
  const std::size_t bad[] = {5};
  EXPECT_THROW(ds.gather(bad), std::invalid_argument);
  EXPECT_THROW(ds.gather({}), std::invalid_argument);
}

TEST(Dataset, SubsetPreservesMetadata) {
  const auto ds = make_dataset(10);
  const std::size_t idx[] = {1, 3, 5};
  const auto sub = ds.subset(idx);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.num_classes(), 4u);
  EXPECT_EQ(sub.labels()[2], 1);
}

TEST(Dataset, SplitTrainTestPartitions) {
  const auto ds = make_dataset(20);
  Rng rng(1);
  const auto [train, test] = ds.split_train_test(0.25, rng);
  EXPECT_EQ(train.size(), 15u);
  EXPECT_EQ(test.size(), 5u);

  // Together they hold every original marker value exactly once.
  std::vector<int> seen(20, 0);
  for (const auto& part : {train, test}) {
    for (std::size_t i = 0; i < part.size(); ++i) {
      ++seen[static_cast<std::size_t>(part.images().at4(i, 0, 0, 0))];
    }
  }
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(Dataset, SplitValidation) {
  const auto ds = make_dataset(10);
  Rng rng(2);
  EXPECT_THROW(ds.split_train_test(0.0, rng), std::invalid_argument);
  EXPECT_THROW(ds.split_train_test(1.0, rng), std::invalid_argument);
}

TEST(Dataset, ClassHistogram) {
  const auto ds = make_dataset(10, 4);  // labels 0..3 cycling
  const auto hist = ds.class_histogram();
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 3u);  // 0, 4, 8
  EXPECT_EQ(hist[1], 3u);  // 1, 5, 9
  EXPECT_EQ(hist[2], 2u);
  EXPECT_EQ(hist[3], 2u);
}

TEST(Dataset, ConcatenatePools) {
  const auto a = make_dataset(4);
  const auto b = make_dataset(6);
  const auto pooled = Dataset::concatenate({a, b});
  EXPECT_EQ(pooled.size(), 10u);
  EXPECT_EQ(pooled.num_classes(), 4u);
  EXPECT_FLOAT_EQ(pooled.images().at4(4, 0, 0, 0), 0.0f);  // b starts over
}

TEST(Dataset, ConcatenateValidatesCompatibility) {
  const auto a = make_dataset(4, 4);
  const auto b = make_dataset(4, 5);
  EXPECT_THROW(Dataset::concatenate({a, b}), std::invalid_argument);
  EXPECT_THROW(Dataset::concatenate({}), std::invalid_argument);
}

}  // namespace
