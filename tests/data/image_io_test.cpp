#include <cstdio>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "gsfl/data/image_io.hpp"
#include "gsfl/data/synthetic_gtsrb.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::data::load_image_directory;
using gsfl::data::read_ppm;
using gsfl::data::resize_nearest;
using gsfl::data::write_ppm;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

Tensor gradient_image(std::size_t h, std::size_t w) {
  Tensor image(Shape{3, h, w});
  auto px = image.data();
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        px[(c * h + y) * w + x] =
            static_cast<float>((c + 1) * (y * w + x)) /
            static_cast<float>(3 * h * w);
      }
    }
  }
  return image;
}

TEST(PpmIo, RoundTripWithinQuantization) {
  const auto original = gradient_image(7, 5);
  std::stringstream buffer;
  write_ppm(buffer, original);
  const auto restored = read_ppm(buffer);
  ASSERT_EQ(restored.shape(), original.shape());
  // 8-bit quantization: error bounded by 1/510.
  EXPECT_LT(Tensor::max_abs_diff(original, restored), 1.0 / 255.0);
}

TEST(PpmIo, HeaderCommentsAndWhitespaceAccepted) {
  const auto image = gradient_image(2, 2);
  std::stringstream buffer;
  write_ppm(buffer, image);
  const auto body = buffer.str().substr(buffer.str().find("255") + 4);
  std::stringstream commented;
  commented << "P6\n# a comment line\n  2   2\n# another\n255\n" << body;
  const auto restored = read_ppm(commented);
  EXPECT_EQ(restored.shape(), Shape({3, 2, 2}));
}

TEST(PpmIo, MalformedInputsRejected) {
  std::stringstream bad_magic("P5\n2 2\n255\n....");
  EXPECT_THROW(read_ppm(bad_magic), std::runtime_error);
  std::stringstream bad_maxval("P6\n2 2\n65535\n....");
  EXPECT_THROW(read_ppm(bad_maxval), std::runtime_error);
  std::stringstream truncated("P6\n4 4\n255\nxx");
  EXPECT_THROW(read_ppm(truncated), std::runtime_error);
  std::stringstream huge("P6\n999999 2\n255\n");
  EXPECT_THROW(read_ppm(huge), std::runtime_error);
}

TEST(PpmIo, WriteRejectsNonRgb) {
  EXPECT_THROW(write_ppm(std::cout, Tensor(Shape{1, 4, 4})),
               std::invalid_argument);
  EXPECT_THROW(write_ppm(std::cout, Tensor(Shape{3, 4})),
               std::invalid_argument);
}

TEST(Resize, IdentityWhenSizesMatch) {
  const auto image = gradient_image(8, 8);
  EXPECT_EQ(resize_nearest(image, 8), image);
}

TEST(Resize, DownAndUpScaleGeometry) {
  const auto image = gradient_image(16, 12);
  const auto small = resize_nearest(image, 8);
  EXPECT_EQ(small.shape(), Shape({3, 8, 8}));
  const auto big = resize_nearest(image, 32);
  EXPECT_EQ(big.shape(), Shape({3, 32, 32}));
  // Nearest-neighbour preserves the value range exactly.
  EXPECT_GE(small.min(), image.min());
  EXPECT_LE(small.max(), image.max());
}

TEST(Resize, ConstantImageStaysConstant) {
  const auto image = Tensor::full(Shape{3, 10, 10}, 0.3f);
  const auto resized = resize_nearest(image, 7);
  for (const float v : resized.data()) EXPECT_FLOAT_EQ(v, 0.3f);
}

class ImageDirectoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per-test directory: ctest runs each test case as its own
    // process in parallel, so a shared fixed path would let one case's
    // TearDown delete the directory under another.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("gsfl_image_dir_test_") + info->name()))
               .string();
    std::filesystem::create_directories(dir_);
    // Render a few synthetic signs to PPM at heterogeneous sizes.
    gsfl::data::SyntheticGtsrbConfig config;
    config.image_size = 20;
    config.num_classes = 4;
    config.samples_per_class = 1;
    const gsfl::data::SyntheticGtsrb generator(config);
    Rng rng(5);
    std::ofstream index(dir_ + "/index.csv");
    index << "# file,label\n";
    for (std::size_t c = 0; c < 4; ++c) {
      const auto ds = generator.generate_class(c, 1, rng);
      const auto image =
          ds.images().slice0(0, 1).reshape(Shape{3, 20, 20});
      const std::string name = "sign_" + std::to_string(c) + ".ppm";
      gsfl::data::write_ppm_file(dir_ + "/" + name, image);
      index << name << ',' << c << '\n';
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ImageDirectoryTest, LoadsAndResizes) {
  const auto ds = load_image_directory(dir_, 4, 16);
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.num_classes(), 4u);
  EXPECT_EQ(ds.sample_shape(), Shape({3, 16, 16}));
  const auto hist = ds.class_histogram();
  for (const auto count : hist) EXPECT_EQ(count, 1u);
}

TEST_F(ImageDirectoryTest, RejectsOutOfRangeLabels) {
  std::ofstream(dir_ + "/index.csv") << "sign_0.ppm,9\n";
  EXPECT_THROW(load_image_directory(dir_, 4, 16), std::runtime_error);
}

TEST_F(ImageDirectoryTest, RejectsMissingIndex) {
  std::filesystem::remove(dir_ + "/index.csv");
  EXPECT_THROW(load_image_directory(dir_, 4, 16), std::runtime_error);
}

TEST_F(ImageDirectoryTest, RejectsEmptyIndex) {
  std::ofstream(dir_ + "/index.csv") << "# nothing here\n";
  EXPECT_THROW(load_image_directory(dir_, 4, 16), std::runtime_error);
}

}  // namespace
