#include <algorithm>
#include <gtest/gtest.h>
#include <set>

#include "gsfl/data/partition.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::data::Dataset;
using gsfl::data::is_exact_cover;
using gsfl::data::materialize;
using gsfl::data::Partition;
using gsfl::data::partition_dirichlet;
using gsfl::data::partition_iid;
using gsfl::data::partition_shards;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

Dataset make_dataset(std::size_t n, std::size_t classes) {
  Tensor images(Shape{n, 1, 2, 2});
  std::vector<std::int32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<std::int32_t>(i % classes);
  }
  return Dataset(std::move(images), std::move(labels), classes);
}

TEST(PartitionIid, ExactCoverAndBalance) {
  const auto ds = make_dataset(100, 10);
  Rng rng(1);
  const auto partition = partition_iid(ds, 7, rng);
  EXPECT_TRUE(is_exact_cover(partition, 100));
  for (const auto& p : partition) {
    EXPECT_GE(p.size(), 14u);
    EXPECT_LE(p.size(), 15u);
  }
}

TEST(PartitionIid, LabelDistributionRoughlyUniform) {
  const auto ds = make_dataset(1000, 10);
  Rng rng(2);
  const auto partition = partition_iid(ds, 4, rng);
  const auto clients = materialize(ds, partition);
  for (const auto& c : clients) {
    const auto hist = c.class_histogram();
    // Each client holds ~250 samples, ~25/class; allow generous slack.
    for (const auto count : hist) {
      EXPECT_GT(count, 10u);
      EXPECT_LT(count, 45u);
    }
  }
}

TEST(PartitionShards, ExactCover) {
  const auto ds = make_dataset(120, 10);
  Rng rng(3);
  const auto partition = partition_shards(ds, 10, 2, rng);
  EXPECT_TRUE(is_exact_cover(partition, 120));
}

TEST(PartitionShards, LimitsDistinctLabelsPerClient) {
  // 10 classes, 12 samples each; 10 clients × 2 shards of 12 → each client
  // sees at most 2 label runs (possibly 3 labels if a shard straddles).
  const auto ds = make_dataset(120, 10);
  Rng rng(4);
  const auto partition = partition_shards(ds, 10, 2, rng);
  const auto clients = materialize(ds, partition);
  for (const auto& c : clients) {
    const auto hist = c.class_histogram();
    const auto distinct = static_cast<std::size_t>(
        std::count_if(hist.begin(), hist.end(),
                      [](std::size_t n) { return n > 0; }));
    EXPECT_LE(distinct, 4u);
    EXPECT_GE(distinct, 1u);
  }
}

TEST(PartitionShards, MoreShardsMoreMixing) {
  const auto ds = make_dataset(400, 10);
  Rng rng(5);
  const auto skewed = materialize(ds, partition_shards(ds, 10, 1, rng));
  const auto mixed = materialize(ds, partition_shards(ds, 10, 8, rng));
  const auto count_distinct = [](const Dataset& d) {
    const auto h = d.class_histogram();
    return static_cast<std::size_t>(std::count_if(
        h.begin(), h.end(), [](std::size_t n) { return n > 0; }));
  };
  std::size_t skewed_total = 0;
  std::size_t mixed_total = 0;
  for (const auto& c : skewed) skewed_total += count_distinct(c);
  for (const auto& c : mixed) mixed_total += count_distinct(c);
  EXPECT_LT(skewed_total, mixed_total);
}

TEST(PartitionDirichlet, ExactCoverAndMinSamples) {
  const auto ds = make_dataset(300, 6);
  Rng rng(6);
  const auto partition = partition_dirichlet(ds, 10, 0.5, rng, 3);
  EXPECT_TRUE(is_exact_cover(partition, 300));
  for (const auto& p : partition) EXPECT_GE(p.size(), 3u);
}

TEST(PartitionDirichlet, HighAlphaApproachesIid) {
  const auto ds = make_dataset(1000, 10);
  Rng rng(7);
  const auto partition = partition_dirichlet(ds, 5, 1e4, rng);
  for (const auto& p : partition) {
    EXPECT_NEAR(static_cast<double>(p.size()), 200.0, 40.0);
  }
}

TEST(PartitionDirichlet, LowAlphaConcentrates) {
  const auto ds = make_dataset(1000, 10);
  Rng rng(8);
  const auto partition = partition_dirichlet(ds, 5, 0.05, rng);
  // With extreme skew, at least one client dominates some class: compute
  // the max share any single client holds of any class.
  const auto clients = materialize(ds, partition);
  double max_share = 0.0;
  for (const auto& c : clients) {
    const auto hist = c.class_histogram();
    for (const auto count : hist) {
      max_share = std::max(max_share, static_cast<double>(count) / 100.0);
    }
  }
  EXPECT_GT(max_share, 0.8);
}

TEST(PartitionDirichlet, ImpossibleMinSamplesThrows) {
  const auto ds = make_dataset(10, 2);
  Rng rng(9);
  EXPECT_THROW(partition_dirichlet(ds, 5, 1.0, rng, 3),
               std::invalid_argument);
}

TEST(Partition, ValidationHelpers) {
  EXPECT_TRUE(is_exact_cover({{0, 1}, {2}}, 3));
  EXPECT_FALSE(is_exact_cover({{0, 1}}, 3));          // missing 2
  EXPECT_FALSE(is_exact_cover({{0, 1}, {1, 2}}, 3));  // duplicate 1
  EXPECT_FALSE(is_exact_cover({{0, 3}}, 3));          // out of range
}

TEST(Partition, MaterializeRejectsEmptyClient) {
  const auto ds = make_dataset(4, 2);
  const Partition with_empty{{0, 1, 2, 3}, {}};
  EXPECT_THROW(materialize(ds, with_empty), std::invalid_argument);
}

TEST(Partition, TooManyClientsThrows) {
  const auto ds = make_dataset(3, 3);
  Rng rng(10);
  EXPECT_THROW(partition_iid(ds, 4, rng), std::invalid_argument);
  EXPECT_THROW(partition_shards(ds, 2, 2, rng), std::invalid_argument);
}

class PartitionCoverSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(PartitionCoverSweep, AllStrategiesCoverExactly) {
  const auto [samples, clients] = GetParam();
  const auto ds = make_dataset(samples, 5);
  Rng rng(samples * 31 + clients);
  EXPECT_TRUE(is_exact_cover(partition_iid(ds, clients, rng), samples));
  if (samples >= clients * 2) {
    EXPECT_TRUE(
        is_exact_cover(partition_shards(ds, clients, 2, rng), samples));
  }
  if (samples >= clients * 4) {
    EXPECT_TRUE(is_exact_cover(
        partition_dirichlet(ds, clients, 0.8, rng, 1), samples));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PartitionCoverSweep,
    ::testing::Values(std::make_tuple(30, 30), std::make_tuple(100, 7),
                      std::make_tuple(101, 7), std::make_tuple(720, 30),
                      std::make_tuple(64, 2)));

}  // namespace
