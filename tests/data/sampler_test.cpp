#include <gtest/gtest.h>
#include <set>

#include "gsfl/data/sampler.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::data::BatchSampler;
using gsfl::data::Dataset;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

Dataset make_dataset(std::size_t n) {
  Tensor images(Shape{n, 1, 1, 1});
  std::vector<std::int32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    images.at4(i, 0, 0, 0) = static_cast<float>(i);
    labels[i] = static_cast<std::int32_t>(i % 2);
  }
  return Dataset(std::move(images), std::move(labels), 2);
}

TEST(Sampler, BatchesPerEpochArithmetic) {
  const auto ds = make_dataset(10);
  EXPECT_EQ(BatchSampler(ds, 3, Rng(1)).batches_per_epoch(), 4u);
  EXPECT_EQ(BatchSampler(ds, 3, Rng(1), true).batches_per_epoch(), 3u);
  EXPECT_EQ(BatchSampler(ds, 5, Rng(1)).batches_per_epoch(), 2u);
  EXPECT_EQ(BatchSampler(ds, 20, Rng(1)).batches_per_epoch(), 1u);
  EXPECT_EQ(BatchSampler(ds, 20, Rng(1), true).batches_per_epoch(), 1u);
}

TEST(Sampler, EpochVisitsEverySampleOnce) {
  const auto ds = make_dataset(10);
  BatchSampler sampler(ds, 3, Rng(2));
  std::multiset<float> seen;
  for (const auto& batch : sampler.epoch()) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      seen.insert(batch.images.at4(i, 0, 0, 0));
    }
  }
  EXPECT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(seen.count(static_cast<float>(i)), 1u) << "sample " << i;
  }
}

TEST(Sampler, PartialBatchKeptByDefault) {
  const auto ds = make_dataset(7);
  BatchSampler sampler(ds, 4, Rng(3));
  const auto batches = sampler.epoch();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 4u);
  EXPECT_EQ(batches[1].size(), 3u);
}

TEST(Sampler, DropLastSkipsPartialBatch) {
  const auto ds = make_dataset(7);
  BatchSampler sampler(ds, 4, Rng(4), /*drop_last=*/true);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sampler.next().size(), 4u);
  }
}

TEST(Sampler, TinyDatasetAlwaysKept) {
  const auto ds = make_dataset(3);
  BatchSampler sampler(ds, 8, Rng(5), /*drop_last=*/true);
  EXPECT_EQ(sampler.next().size(), 3u);
}

TEST(Sampler, DeterministicGivenSameRng) {
  const auto ds = make_dataset(20);
  BatchSampler a(ds, 4, Rng(6));
  BatchSampler b(ds, 4, Rng(6));
  for (int i = 0; i < 10; ++i) {
    const auto ba = a.next();
    const auto bb = b.next();
    EXPECT_EQ(ba.images, bb.images);
    EXPECT_EQ(ba.labels, bb.labels);
  }
}

TEST(Sampler, ReshufflesBetweenEpochs) {
  const auto ds = make_dataset(16);
  BatchSampler sampler(ds, 16, Rng(7));
  const auto e1 = sampler.next();
  const auto e2 = sampler.next();
  EXPECT_NE(e1.images, e2.images);  // same multiset, new order
}

TEST(Sampler, LabelsTravelWithImages) {
  const auto ds = make_dataset(10);
  BatchSampler sampler(ds, 5, Rng(8));
  const auto batch = sampler.next();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto value =
        static_cast<std::int32_t>(batch.images.at4(i, 0, 0, 0));
    EXPECT_EQ(batch.labels[i], value % 2);
  }
}

TEST(Sampler, ConstructorValidation) {
  const auto ds = make_dataset(4);
  EXPECT_THROW(BatchSampler(ds, 0, Rng(9)), std::invalid_argument);
}

}  // namespace
