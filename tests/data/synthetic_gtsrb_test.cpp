#include <gtest/gtest.h>
#include <set>

#include "gsfl/data/synthetic_gtsrb.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::data::class_style;
using gsfl::data::hsv_to_rgb;
using gsfl::data::SignShape;
using gsfl::data::SyntheticGtsrb;
using gsfl::data::SyntheticGtsrbConfig;
using gsfl::tensor::Shape;

SyntheticGtsrbConfig small_config() {
  SyntheticGtsrbConfig config;
  config.image_size = 16;
  config.num_classes = 8;
  config.samples_per_class = 5;
  return config;
}

TEST(ClassStyle, DeterministicAndShapeCycles) {
  for (std::size_t id = 0; id < 43; ++id) {
    const auto a = class_style(id);
    const auto b = class_style(id);
    EXPECT_EQ(a.shape, b.shape);
    EXPECT_FLOAT_EQ(a.hue, b.hue);
    EXPECT_EQ(a.glyph, b.glyph);
    EXPECT_EQ(static_cast<std::size_t>(a.shape), id % 5);
  }
}

TEST(ClassStyle, NearbyClassesDiffer) {
  // Consecutive ids must differ in silhouette or hue (or both).
  for (std::size_t id = 0; id + 1 < 43; ++id) {
    const auto a = class_style(id);
    const auto b = class_style(id + 1);
    const bool differs = a.shape != b.shape ||
                         std::abs(a.hue - b.hue) > 0.05f ||
                         a.glyph != b.glyph;
    EXPECT_TRUE(differs) << "classes " << id << " and " << id + 1;
  }
}

TEST(HsvToRgb, PrimaryColours) {
  float r = 0, g = 0, b = 0;
  hsv_to_rgb(0.0f, 1.0f, 1.0f, r, g, b);
  EXPECT_FLOAT_EQ(r, 1.0f);
  EXPECT_FLOAT_EQ(g, 0.0f);
  hsv_to_rgb(1.0f / 3.0f, 1.0f, 1.0f, r, g, b);
  EXPECT_FLOAT_EQ(g, 1.0f);
  hsv_to_rgb(2.0f / 3.0f, 1.0f, 1.0f, r, g, b);
  EXPECT_FLOAT_EQ(b, 1.0f);
  // Zero saturation → gray at value.
  hsv_to_rgb(0.5f, 0.0f, 0.7f, r, g, b);
  EXPECT_FLOAT_EQ(r, 0.7f);
  EXPECT_FLOAT_EQ(g, 0.7f);
  EXPECT_FLOAT_EQ(b, 0.7f);
}

TEST(SyntheticGtsrb, GeneratesBalancedDataset) {
  const SyntheticGtsrb generator(small_config());
  Rng rng(1);
  const auto ds = generator.generate(rng);
  EXPECT_EQ(ds.size(), 40u);
  EXPECT_EQ(ds.num_classes(), 8u);
  EXPECT_EQ(ds.sample_shape(), Shape({3, 16, 16}));
  for (const auto count : ds.class_histogram()) EXPECT_EQ(count, 5u);
}

TEST(SyntheticGtsrb, PixelsInUnitRange) {
  const SyntheticGtsrb generator(small_config());
  Rng rng(2);
  const auto ds = generator.generate(rng);
  EXPECT_GE(ds.images().min(), 0.0f);
  EXPECT_LE(ds.images().max(), 1.0f);
}

TEST(SyntheticGtsrb, DeterministicGivenSeed) {
  const SyntheticGtsrb generator(small_config());
  Rng rng_a(7);
  Rng rng_b(7);
  const auto a = generator.generate(rng_a);
  const auto b = generator.generate(rng_b);
  EXPECT_EQ(a.images(), b.images());
  EXPECT_TRUE(std::equal(a.labels().begin(), a.labels().end(),
                         b.labels().begin()));
}

TEST(SyntheticGtsrb, DifferentSeedsDiffer) {
  const SyntheticGtsrb generator(small_config());
  Rng rng_a(7);
  Rng rng_b(8);
  const auto a = generator.generate(rng_a);
  const auto b = generator.generate(rng_b);
  EXPECT_NE(a.images(), b.images());
}

TEST(SyntheticGtsrb, SamplesOfSameClassVary) {
  const SyntheticGtsrb generator(small_config());
  Rng rng(3);
  const auto ds = generator.generate_class(2, 4, rng);
  EXPECT_EQ(ds.size(), 4u);
  // Jitter/noise must make samples distinct.
  const auto img = ds.images();
  const auto s0 = img.slice0(0, 1);
  const auto s1 = img.slice0(1, 2);
  EXPECT_NE(s0, s1);
}

TEST(SyntheticGtsrb, ClassesAreVisuallyDistinct) {
  // Noise-free renders of different classes should differ by much more
  // than renders of the same class (separability precondition).
  auto config = small_config();
  config.noise_stddev = 0.0f;
  config.jitter = 0.0f;
  config.min_scale = 0.8f;
  config.max_scale = 0.8f;
  const SyntheticGtsrb generator(config);

  Rng rng(4);
  const auto a0 = generator.generate_class(0, 1, rng).images();
  const auto a1 = generator.generate_class(0, 1, rng).images();
  const auto b0 = generator.generate_class(1, 1, rng).images();

  const double same = gsfl::tensor::Tensor::max_abs_diff(a0, a1);
  const double cross = gsfl::tensor::Tensor::max_abs_diff(a0, b0);
  EXPECT_GT(cross, 2.0 * same + 0.2);
}

TEST(SyntheticGtsrb, GenerateClassValidatesId) {
  const SyntheticGtsrb generator(small_config());
  Rng rng(5);
  EXPECT_THROW(generator.generate_class(8, 1, rng), std::invalid_argument);
}

TEST(SyntheticGtsrb, ConfigValidation) {
  SyntheticGtsrbConfig bad = small_config();
  bad.num_classes = 1;
  EXPECT_THROW(SyntheticGtsrb{bad}, std::invalid_argument);
  bad = small_config();
  bad.num_classes = 61;
  EXPECT_THROW(SyntheticGtsrb{bad}, std::invalid_argument);
  bad = small_config();
  bad.min_scale = 0.9f;
  bad.max_scale = 0.5f;
  EXPECT_THROW(SyntheticGtsrb{bad}, std::invalid_argument);
  bad = small_config();
  bad.image_size = 4;
  EXPECT_THROW(SyntheticGtsrb{bad}, std::invalid_argument);
}

TEST(SyntheticGtsrb, SupportsFull43Classes) {
  SyntheticGtsrbConfig config;
  config.image_size = 16;
  config.num_classes = 43;
  config.samples_per_class = 1;
  const SyntheticGtsrb generator(config);
  Rng rng(6);
  const auto ds = generator.generate(rng);
  EXPECT_EQ(ds.size(), 43u);
  std::set<std::int32_t> labels(ds.labels().begin(), ds.labels().end());
  EXPECT_EQ(labels.size(), 43u);
}

}  // namespace
