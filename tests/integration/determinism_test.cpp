// Thread-count invariance: the parallel runtime's core promise is that a
// round is *bitwise* identical however many lanes execute it — model states,
// training losses, and every simulated-latency component. These tests run
// the same world serially (threads=1) and wide (threads=8, far more lanes
// than this suite's datasets have clients per chunk) and demand exact
// equality, not tolerances.
#include <gtest/gtest.h>

#include <vector>

#include "gsfl/common/thread_pool.hpp"
#include "gsfl/core/gsfl.hpp"
#include "gsfl/nn/activations.hpp"
#include "gsfl/nn/conv2d.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/flatten.hpp"
#include "gsfl/schemes/fedavg.hpp"
#include "gsfl/schemes/splitfed.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::schemes::RoundResult;
using gsfl::schemes::TrainConfig;

/// conv(1→4,k2) → relu → flatten → dense(4,2): exercises the conv scratch /
/// chunked-reduction paths, not just dense GEMMs. Cut 2 splits after relu.
gsfl::nn::Sequential make_conv_model(Rng& rng) {
  gsfl::nn::Sequential model;
  model.emplace<gsfl::nn::Conv2d>(1, 4, /*kernel=*/2, /*stride=*/1,
                                  /*pad=*/0, rng);
  model.emplace<gsfl::nn::Relu>();
  model.emplace<gsfl::nn::Flatten>();
  model.emplace<gsfl::nn::Dense>(4, 2, rng);
  return model;
}

constexpr std::size_t kConvCut = 2;
constexpr std::size_t kClients = 8;
constexpr std::size_t kRounds = 3;

struct RunOutcome {
  gsfl::nn::Sequential model;
  std::vector<RoundResult> rounds;
};

void expect_identical(const RunOutcome& serial, const RunOutcome& wide) {
  EXPECT_TRUE(gsfl::test::states_equal(serial.model, wide.model));
  ASSERT_EQ(serial.rounds.size(), wide.rounds.size());
  for (std::size_t r = 0; r < serial.rounds.size(); ++r) {
    const auto& a = serial.rounds[r];
    const auto& b = wide.rounds[r];
    EXPECT_EQ(a.train_loss, b.train_loss);
    EXPECT_EQ(a.latency.client_compute, b.latency.client_compute);
    EXPECT_EQ(a.latency.server_compute, b.latency.server_compute);
    EXPECT_EQ(a.latency.uplink, b.latency.uplink);
    EXPECT_EQ(a.latency.downlink, b.latency.downlink);
    EXPECT_EQ(a.latency.relay, b.latency.relay);
    EXPECT_EQ(a.latency.aggregation, b.latency.aggregation);
  }
}

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    gsfl::common::set_global_threads(0);  // restore the resolved default
  }

  template <typename MakeTrainer>
  RunOutcome run_with_threads(std::size_t threads,
                              const MakeTrainer& make_trainer) {
    auto network = gsfl::test::make_tiny_network(kClients);
    auto data = gsfl::test::make_client_datasets(kClients, 12, 77);
    Rng rng(77);
    auto init = make_conv_model(rng);
    auto trainer = make_trainer(network, std::move(data), std::move(init),
                                threads);
    RunOutcome outcome;
    for (std::size_t r = 0; r < kRounds; ++r) {
      outcome.rounds.push_back(trainer->run_round());
    }
    outcome.model = trainer->global_model();
    return outcome;
  }
};

TEST_F(DeterminismTest, SplitFedRoundIsThreadCountInvariant) {
  const auto make = [](const gsfl::net::WirelessNetwork& network,
                       std::vector<gsfl::data::Dataset> data,
                       gsfl::nn::Sequential init, std::size_t threads) {
    TrainConfig config;
    config.threads = threads;
    return std::make_unique<gsfl::schemes::SplitFedTrainer>(
        network, std::move(data), std::move(init), kConvCut, config);
  };
  expect_identical(run_with_threads(1, make), run_with_threads(8, make));
}

TEST_F(DeterminismTest, FedAvgRoundIsThreadCountInvariant) {
  const auto make = [](const gsfl::net::WirelessNetwork& network,
                       std::vector<gsfl::data::Dataset> data,
                       gsfl::nn::Sequential init, std::size_t threads) {
    TrainConfig config;
    config.threads = threads;
    return std::make_unique<gsfl::schemes::FedAvgTrainer>(
        network, std::move(data), std::move(init), config);
  };
  expect_identical(run_with_threads(1, make), run_with_threads(8, make));
}

TEST_F(DeterminismTest, GsflRoundIsThreadCountInvariant) {
  const auto make = [](const gsfl::net::WirelessNetwork& network,
                       std::vector<gsfl::data::Dataset> data,
                       gsfl::nn::Sequential init, std::size_t threads) {
    gsfl::core::GsflConfig config;
    config.num_groups = 4;
    config.cut_layer = kConvCut;
    config.train.threads = threads;
    return std::make_unique<gsfl::core::GsflTrainer>(
        network, std::move(data), std::move(init), config);
  };
  expect_identical(run_with_threads(1, make), run_with_threads(8, make));
}

TEST_F(DeterminismTest, GsflWithRayleighFadingIsThreadCountInvariant) {
  // Fade gains are pre-drawn between rounds, outside the parallel region,
  // in fixed client order — so a faded run's latencies (which every group
  // task reads concurrently) are bitwise identical for any lane count.
  const auto run = [](std::size_t threads) {
    gsfl::net::NetworkConfig net_config;
    net_config.total_bandwidth_hz = 10e6;
    net_config.channel.rayleigh_fading = true;
    std::vector<gsfl::net::DeviceProfile> clients(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients[c].distance_m = 30.0 + 10.0 * static_cast<double>(c);
    }
    gsfl::net::WirelessNetwork network(net_config, clients);
    auto data = gsfl::test::make_client_datasets(kClients, 12, 78);
    Rng rng(78);
    auto init = make_conv_model(rng);
    gsfl::core::GsflConfig config;
    config.num_groups = 4;
    config.cut_layer = kConvCut;
    config.train.threads = threads;
    gsfl::core::GsflTrainer trainer(network, std::move(data),
                                    std::move(init), config);
    Rng fade_rng(123);
    RunOutcome outcome;
    for (std::size_t r = 0; r < kRounds; ++r) {
      network.redraw_fades(fade_rng);
      outcome.rounds.push_back(trainer.run_round());
    }
    // The fades must actually be in play, not silently disabled.
    EXPECT_NE(network.uplink_fade(0), 1.0);
    outcome.model = trainer.global_model();
    return outcome;
  };
  expect_identical(run(1), run(8));
}

TEST_F(DeterminismTest, GsflWithFailuresIsThreadCountInvariant) {
  // Failure draws happen before the parallel region; the skip/relay logic
  // must stay on the same clients for any lane count.
  const auto make = [](const gsfl::net::WirelessNetwork& network,
                       std::vector<gsfl::data::Dataset> data,
                       gsfl::nn::Sequential init, std::size_t threads) {
    gsfl::core::GsflConfig config;
    config.num_groups = 4;
    config.cut_layer = kConvCut;
    config.client_failure_rate = 0.3;
    config.train.threads = threads;
    return std::make_unique<gsfl::core::GsflTrainer>(
        network, std::move(data), std::move(init), config);
  };
  expect_identical(run_with_threads(1, make), run_with_threads(8, make));
}

}  // namespace
