#include <cmath>
// Edge-case and failure-injection tests across the training schemes:
// awkward population sizes, tiny client datasets, uneven groups, and the
// degenerate-but-legal corners of the configuration space.
#include <gtest/gtest.h>

#include "gsfl/core/gsfl.hpp"
#include "gsfl/metrics/evaluate.hpp"
#include "gsfl/schemes/fedavg.hpp"
#include "gsfl/schemes/split_learning.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::core::GsflConfig;
using gsfl::core::GsflTrainer;
using gsfl::schemes::FedAvgTrainer;
using gsfl::schemes::SplitLearningTrainer;
using gsfl::schemes::TrainConfig;

GsflConfig config_with(std::size_t groups) {
  GsflConfig config;
  config.num_groups = groups;
  config.cut_layer = gsfl::test::kTinyCut;
  return config;
}

TEST(EdgeCases, UnevenGroupsTrainCorrectly) {
  // 7 clients in 3 groups: sizes 3/2/2 under round-robin.
  const auto network = gsfl::test::make_tiny_network(7);
  const auto data = gsfl::test::make_client_datasets(7, 10, 81);
  Rng rng(81);
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      config_with(3));
  ASSERT_EQ(trainer.groups()[0].size(), 3u);
  ASSERT_EQ(trainer.groups()[1].size(), 2u);
  const double first = trainer.run_round().train_loss;
  double last = first;
  for (int i = 0; i < 8; ++i) last = trainer.run_round().train_loss;
  EXPECT_LT(last, first);
}

TEST(EdgeCases, ClientSmallerThanBatchSize) {
  // 3 samples per client, batch size 16: a single partial batch per epoch.
  const auto network = gsfl::test::make_tiny_network(4);
  const auto data = gsfl::test::make_client_datasets(4, 3, 82);
  Rng rng(82);
  TrainConfig train;
  train.batch_size = 16;
  auto config = config_with(2);
  config.train = train;
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      config);
  const auto result = trainer.run_round();
  EXPECT_GT(result.train_loss, 0.0);
  EXPECT_GT(result.latency.total(), 0.0);
}

TEST(EdgeCases, SingleSamplePerClient) {
  const auto network = gsfl::test::make_tiny_network(3);
  const auto data = gsfl::test::make_client_datasets(3, 1, 83);
  Rng rng(83);
  GsflTrainer gsfl_trainer(network, data, gsfl::test::make_tiny_model(rng),
                           config_with(3));
  EXPECT_NO_THROW((void)gsfl_trainer.run_round());

  SplitLearningTrainer sl(network, data, gsfl::test::make_tiny_model(rng),
                          gsfl::test::kTinyCut, TrainConfig{});
  EXPECT_NO_THROW((void)sl.run_round());
}

TEST(EdgeCases, WildlyUnequalClientDataSizes) {
  // One data-rich client, several data-poor ones: sample-weighted FedAvg
  // must keep training stable and weights finite.
  const auto network = gsfl::test::make_tiny_network(4);
  Rng root(84);
  std::vector<gsfl::data::Dataset> data;
  auto rich_rng = root.fork(1);
  data.push_back(gsfl::test::make_separable_dataset(64, rich_rng));
  for (int i = 0; i < 3; ++i) {
    auto poor_rng = root.fork(10 + i);
    data.push_back(gsfl::test::make_separable_dataset(2, poor_rng));
  }
  Rng rng(84);
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      config_with(2));
  for (int i = 0; i < 5; ++i) (void)trainer.run_round();
  auto model = trainer.global_model();
  for (const auto& tensor : model.state()) {
    for (const float v : tensor.data()) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST(EdgeCases, TwoClientsTwoGroupsIsMinimalParallelism) {
  const auto network = gsfl::test::make_tiny_network(2);
  const auto data = gsfl::test::make_client_datasets(2, 8, 85);
  Rng rng(85);
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      config_with(2));
  const auto result = trainer.run_round();
  EXPECT_EQ(trainer.last_group_chains().size(), 2u);
  EXPECT_DOUBLE_EQ(result.latency.relay, 0.0);  // singleton groups: no relays
}

TEST(EdgeCases, HighMomentumStaysStable) {
  const auto network = gsfl::test::make_tiny_network(4);
  const auto data = gsfl::test::make_client_datasets(4, 16, 86);
  Rng rng(86);
  TrainConfig train;
  train.momentum = 0.9;
  train.learning_rate = 0.02;
  auto config = config_with(2);
  config.train = train;
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      config);
  double last = 0.0;
  for (int i = 0; i < 10; ++i) last = trainer.run_round().train_loss;
  EXPECT_TRUE(std::isfinite(last));
  EXPECT_LT(last, 0.7);  // actually learns
}

TEST(EdgeCases, WeightDecayShrinksNorm) {
  const auto network = gsfl::test::make_tiny_network(2);
  const auto data = gsfl::test::make_client_datasets(2, 8, 87);
  Rng rng(87);
  const auto init = gsfl::test::make_tiny_model(rng);

  TrainConfig plain;
  TrainConfig decayed;
  decayed.weight_decay = 0.05;
  FedAvgTrainer a(network, data, init, plain);
  FedAvgTrainer b(network, data, init, decayed);
  for (int i = 0; i < 5; ++i) {
    (void)a.run_round();
    (void)b.run_round();
  }
  double norm_plain = 0.0;
  double norm_decayed = 0.0;
  auto ma = a.global_model();
  auto mb = b.global_model();
  for (const auto& t : ma.state()) norm_plain += t.squared_norm();
  for (const auto& t : mb.state()) norm_decayed += t.squared_norm();
  EXPECT_LT(norm_decayed, norm_plain);
}

TEST(EdgeCases, EvaluationAfterZeroRounds) {
  const auto network = gsfl::test::make_tiny_network(2);
  const auto data = gsfl::test::make_client_datasets(2, 8, 88);
  Rng rng(88);
  Rng test_rng(89);
  const auto test_set = gsfl::test::make_separable_dataset(20, test_rng);
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      config_with(2));
  auto model = trainer.global_model();
  const auto eval = gsfl::metrics::evaluate(model, test_set);
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 1.0);
}

}  // namespace
