// End-to-end runs of every scheme on a miniature synthetic-GTSRB experiment,
// asserting the qualitative relationships the paper's figures report.
#include <gtest/gtest.h>

#include "gsfl/core/experiment.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::core::Experiment;
using gsfl::core::ExperimentConfig;
using gsfl::schemes::ExperimentOptions;
using gsfl::schemes::run_experiment;

ExperimentConfig mini_config() {
  auto config = ExperimentConfig::scaled();
  config.dataset.image_size = 8;
  config.dataset.num_classes = 4;
  config.dataset.samples_per_class = 24;
  config.test_samples_per_class = 8;
  config.num_clients = 6;
  config.num_groups = 3;
  config.shards_per_client = 2;
  config.model.conv1_filters = 4;
  config.model.conv2_filters = 6;
  config.model.hidden = 24;
  config.train.learning_rate = 0.1;
  config.train.batch_size = 8;
  config.cut_layer = 3;
  return config;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    experiment_ = new Experiment(mini_config());
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static Experiment* experiment_;
};

Experiment* EndToEndTest::experiment_ = nullptr;

TEST_F(EndToEndTest, EverySchemeBeatsChanceAfterTraining) {
  ExperimentOptions options;
  options.rounds = 12;
  options.eval_every = 12;

  const double chance = 1.0 / 4.0;
  auto cl = experiment_->make_cl();
  auto fl = experiment_->make_fl();
  auto sl = experiment_->make_sl();
  auto gsfl_trainer = experiment_->make_gsfl();

  EXPECT_GT(run_experiment(*cl, experiment_->test_set(), options)
                .final_accuracy(),
            chance + 0.15);
  EXPECT_GT(run_experiment(*sl, experiment_->test_set(), options)
                .final_accuracy(),
            chance + 0.15);
  EXPECT_GT(run_experiment(*gsfl_trainer, experiment_->test_set(), options)
                .final_accuracy(),
            chance + 0.1);
  // FL converges slower per round (the paper's headline); only require it
  // to be above chance.
  EXPECT_GT(run_experiment(*fl, experiment_->test_set(), options)
                .final_accuracy(),
            chance);
}

TEST_F(EndToEndTest, GsflRoundIsFasterThanSlRound) {
  // The paper's Fig. 2(b) premise: a GSFL round (groups in parallel) takes
  // less simulated time than an SL round (everyone sequential).
  auto sl = experiment_->make_sl();
  auto gsfl_trainer = experiment_->make_gsfl();
  const double sl_round = sl->run_round().latency.total();
  const double gsfl_round = gsfl_trainer->run_round().latency.total();
  EXPECT_LT(gsfl_round, sl_round);
}

TEST_F(EndToEndTest, FlRoundCommunicationDominatedBySlimBand) {
  // FL uploads the full model; SL uploads activations. With the default
  // narrow band the FL round's communication share must exceed GSFL's
  // smashed-data share per unit of data... at minimum both are positive
  // and FL moves more model bytes than GSFL does client-model bytes.
  auto fl = experiment_->make_fl();
  auto gsfl_trainer = experiment_->make_gsfl();
  const auto fl_latency = fl->run_round().latency;
  const auto gsfl_latency = gsfl_trainer->run_round().latency;
  EXPECT_GT(fl_latency.uplink + fl_latency.downlink, 0.0);
  EXPECT_GT(gsfl_latency.uplink + gsfl_latency.downlink, 0.0);
}

TEST_F(EndToEndTest, SimulatedTimeAccumulatesMonotonically) {
  auto trainer = experiment_->make_gsfl();
  ExperimentOptions options;
  options.rounds = 5;
  const auto recorder =
      run_experiment(*trainer, experiment_->test_set(), options);
  double prev = 0.0;
  for (const auto& r : recorder.records()) {
    EXPECT_GT(r.sim_seconds, prev);
    prev = r.sim_seconds;
  }
}

TEST_F(EndToEndTest, TrainLossTrendsDownForAllSchemes) {
  ExperimentOptions options;
  options.rounds = 10;

  auto check = [&](gsfl::schemes::Trainer& trainer) {
    const auto recorder =
        run_experiment(trainer, experiment_->test_set(), options);
    const auto& records = recorder.records();
    ASSERT_GE(records.size(), 10u);
    // Mean of last 3 losses < mean of first 3 losses.
    const double early = (records[0].train_loss + records[1].train_loss +
                          records[2].train_loss) / 3.0;
    const std::size_t n = records.size();
    const double late = (records[n - 1].train_loss +
                         records[n - 2].train_loss +
                         records[n - 3].train_loss) / 3.0;
    EXPECT_LT(late, early) << trainer.name();
  };

  auto cl = experiment_->make_cl();
  check(*cl);
  auto sl = experiment_->make_sl();
  check(*sl);
  auto gsfl_trainer = experiment_->make_gsfl();
  check(*gsfl_trainer);
}

TEST_F(EndToEndTest, StorageOrderingMatchesPaperArgument) {
  // SL: 1 server model. GSFL: M. SFL: N. (The paper's §I resource argument.)
  auto sl = experiment_->make_sl();
  auto gsfl_trainer = experiment_->make_gsfl();
  auto sfl = experiment_->make_sfl();
  const std::size_t server_one =
      sl->split_model().server_state_bytes();
  EXPECT_EQ(gsfl_trainer->server_storage_bytes(), 3 * server_one);
  EXPECT_EQ(sfl->server_storage_bytes(), 6 * server_one);
}

}  // namespace
