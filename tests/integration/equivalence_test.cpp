// Cross-scheme equivalence: the strongest correctness evidence in the suite.
// Degenerate configurations of different schemes must produce *bit-identical*
// model trajectories, because the underlying math is identical and every
// stochastic choice is seeded through the same per-client streams.
#include <gtest/gtest.h>

#include "gsfl/core/gsfl.hpp"
#include "gsfl/schemes/centralized.hpp"
#include "gsfl/schemes/fedavg.hpp"
#include "gsfl/schemes/split_learning.hpp"
#include "gsfl/schemes/splitfed.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::core::GsflConfig;
using gsfl::core::GsflTrainer;
using gsfl::schemes::CentralizedTrainer;
using gsfl::schemes::FedAvgTrainer;
using gsfl::schemes::SplitFedTrainer;
using gsfl::schemes::SplitLearningTrainer;
using gsfl::schemes::TrainConfig;

class EquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<gsfl::net::WirelessNetwork>(
        gsfl::test::make_tiny_network(4));
    data_ = gsfl::test::make_client_datasets(4, 12, 1234);
    Rng rng(1234);
    init_ = gsfl::test::make_tiny_model(rng);
  }

  GsflConfig gsfl_config(std::size_t groups) const {
    GsflConfig config;
    config.num_groups = groups;
    config.cut_layer = gsfl::test::kTinyCut;
    return config;
  }

  std::unique_ptr<gsfl::net::WirelessNetwork> network_;
  std::vector<gsfl::data::Dataset> data_;
  gsfl::nn::Sequential init_;
};

TEST_F(EquivalenceTest, ChainSlEqualsClWithOneClient) {
  const auto one_network = gsfl::test::make_tiny_network(1);
  const std::vector<gsfl::data::Dataset> one_client = {data_[0]};
  SplitLearningTrainer sl(one_network, one_client, init_,
                          gsfl::test::kTinyCut, TrainConfig{});
  CentralizedTrainer cl(one_network, one_client, init_, TrainConfig{});
  for (int i = 0; i < 5; ++i) {
    (void)sl.run_round();
    (void)cl.run_round();
  }
  EXPECT_TRUE(gsfl::test::states_equal(sl.global_model(), cl.global_model()));
}

TEST_F(EquivalenceTest, GsflWithOneGroupTracksSlForManyRounds) {
  GsflTrainer gsfl(*network_, data_, init_, gsfl_config(1));
  SplitLearningTrainer sl(*network_, data_, init_, gsfl::test::kTinyCut,
                          TrainConfig{});
  for (int i = 0; i < 6; ++i) {
    (void)gsfl.run_round();
    (void)sl.run_round();
  }
  EXPECT_TRUE(
      gsfl::test::states_equal(gsfl.global_model(), sl.global_model()));
}

TEST_F(EquivalenceTest, GsflWithSingletonGroupsTracksSplitFed) {
  GsflTrainer gsfl(*network_, data_, init_, gsfl_config(4));
  SplitFedTrainer sfl(*network_, data_, init_, gsfl::test::kTinyCut,
                      TrainConfig{});
  for (int i = 0; i < 6; ++i) {
    (void)gsfl.run_round();
    (void)sfl.run_round();
  }
  EXPECT_TRUE(
      gsfl::test::states_equal(gsfl.global_model(), sfl.global_model()));
}

TEST_F(EquivalenceTest, CutLayerDoesNotChangeSlTrajectory) {
  // Splitting is mathematically transparent: SL trajectories are identical
  // for every cut layer (the wireless cost differs, the weights must not).
  SplitLearningTrainer cut1(*network_, data_, init_, 1, TrainConfig{});
  SplitLearningTrainer cut3(*network_, data_, init_, 3, TrainConfig{});
  for (int i = 0; i < 4; ++i) {
    (void)cut1.run_round();
    (void)cut3.run_round();
  }
  EXPECT_TRUE(
      gsfl::test::states_equal(cut1.global_model(), cut3.global_model()));
}

TEST_F(EquivalenceTest, CutLayerDoesNotChangeGsflTrajectory) {
  auto config1 = gsfl_config(2);
  config1.cut_layer = 1;
  auto config3 = gsfl_config(2);
  config3.cut_layer = 3;
  GsflTrainer a(*network_, data_, init_, config1);
  GsflTrainer b(*network_, data_, init_, config3);
  for (int i = 0; i < 4; ++i) {
    (void)a.run_round();
    (void)b.run_round();
  }
  EXPECT_TRUE(gsfl::test::states_equal(a.global_model(), b.global_model()));
}

TEST_F(EquivalenceTest, SchemesDivergeInGeneralConfigurations) {
  // Sanity check that the equalities above are meaningful: in a general
  // configuration the schemes genuinely differ.
  GsflTrainer gsfl(*network_, data_, init_, gsfl_config(2));
  SplitLearningTrainer sl(*network_, data_, init_, gsfl::test::kTinyCut,
                          TrainConfig{});
  FedAvgTrainer fl(*network_, data_, init_, TrainConfig{});
  (void)gsfl.run_round();
  (void)sl.run_round();
  (void)fl.run_round();
  EXPECT_FALSE(
      gsfl::test::states_equal(gsfl.global_model(), sl.global_model()));
  EXPECT_FALSE(
      gsfl::test::states_equal(gsfl.global_model(), fl.global_model()));
  EXPECT_FALSE(
      gsfl::test::states_equal(sl.global_model(), fl.global_model()));
}

TEST_F(EquivalenceTest, DeterminismAcrossIdenticalRuns) {
  GsflTrainer a(*network_, data_, init_, gsfl_config(2));
  GsflTrainer b(*network_, data_, init_, gsfl_config(2));
  for (int i = 0; i < 5; ++i) {
    const auto ra = a.run_round();
    const auto rb = b.run_round();
    EXPECT_DOUBLE_EQ(ra.train_loss, rb.train_loss);
    EXPECT_DOUBLE_EQ(ra.latency.total(), rb.latency.total());
  }
  EXPECT_TRUE(gsfl::test::states_equal(a.global_model(), b.global_model()));
}

}  // namespace
