// Latency-model integration: the analytic relationships between scheme
// round times that Fig. 2(b)'s result depends on.
#include <gtest/gtest.h>

#include "gsfl/core/gsfl.hpp"
#include "gsfl/schemes/split_learning.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::core::GsflConfig;
using gsfl::core::GsflTrainer;
using gsfl::schemes::SplitLearningTrainer;
using gsfl::schemes::TrainConfig;

GsflConfig config_with_groups(std::size_t groups, std::size_t cut) {
  GsflConfig config;
  config.num_groups = groups;
  config.cut_layer = cut;
  return config;
}

TEST(LatencyModel, GsflRoundShrinksAsGroupsGrow) {
  const auto network = gsfl::test::make_tiny_network(12);
  const auto data = gsfl::test::make_client_datasets(12, 8, 61);
  Rng rng(61);
  const auto init = gsfl::test::make_tiny_model(rng);

  double prev = 1e18;
  for (const std::size_t m : {1u, 2u, 4u, 6u}) {
    GsflTrainer trainer(network, data, init,
                        config_with_groups(m, gsfl::test::kTinyCut));
    const double t = trainer.run_round().latency.total();
    EXPECT_LT(t, prev) << "round latency should shrink at M=" << m;
    prev = t;
  }
}

TEST(LatencyModel, DeeperCutMovesComputeToClient) {
  const auto network = gsfl::test::make_tiny_network(4);
  const auto data = gsfl::test::make_client_datasets(4, 8, 62);
  Rng rng(62);
  const auto init = gsfl::test::make_tiny_model(rng);

  GsflTrainer shallow(network, data, init, config_with_groups(2, 1));
  GsflTrainer deep(network, data, init, config_with_groups(2, 3));
  const auto shallow_latency = shallow.run_round().latency;
  const auto deep_latency = deep.run_round().latency;
  EXPECT_GT(deep_latency.client_compute, shallow_latency.client_compute);
  EXPECT_LT(deep_latency.server_compute, shallow_latency.server_compute);
}

TEST(LatencyModel, WiderBandShortensEveryRound) {
  const auto data = gsfl::test::make_client_datasets(4, 8, 63);
  Rng rng(63);
  const auto init = gsfl::test::make_tiny_model(rng);

  double prev = 1e18;
  for (const double mhz : {1.0, 5.0, 20.0}) {
    gsfl::net::NetworkConfig net_config;
    net_config.total_bandwidth_hz = mhz * 1e6;
    std::vector<gsfl::net::DeviceProfile> devices(4);
    const gsfl::net::WirelessNetwork network(net_config, std::move(devices));
    GsflTrainer trainer(network, data, init,
                        config_with_groups(2, gsfl::test::kTinyCut));
    const double t = trainer.run_round().latency.total();
    EXPECT_LT(t, prev) << "at " << mhz << " MHz";
    prev = t;
  }
}

TEST(LatencyModel, FasterDevicesShortenClientCompute) {
  const auto data = gsfl::test::make_client_datasets(2, 8, 64);
  Rng rng(64);
  const auto init = gsfl::test::make_tiny_model(rng);

  const auto make_network = [](double flops) {
    gsfl::net::NetworkConfig config;
    std::vector<gsfl::net::DeviceProfile> devices(2);
    devices[0].compute_flops = flops;
    devices[1].compute_flops = flops;
    return gsfl::net::WirelessNetwork(config, std::move(devices));
  };
  const auto slow_net = make_network(1e8);
  const auto fast_net = make_network(1e10);
  SplitLearningTrainer slow(slow_net, data, init, gsfl::test::kTinyCut,
                            TrainConfig{});
  SplitLearningTrainer fast(fast_net, data, init, gsfl::test::kTinyCut,
                            TrainConfig{});
  const auto slow_latency = slow.run_round().latency;
  const auto fast_latency = fast.run_round().latency;
  EXPECT_NEAR(slow_latency.client_compute / fast_latency.client_compute,
              100.0, 1.0);
  // Radio time unchanged.
  EXPECT_NEAR(slow_latency.uplink, fast_latency.uplink, 1e-9);
}

TEST(LatencyModel, SlRoundTimeEqualsSumOfGsflSingleGroupChain) {
  // GSFL with M=1 and SL walk the same chain; their per-round latency
  // should agree except for GSFL's distribution + upload + aggregation
  // (SL relays instead of re-distributing).
  const auto network = gsfl::test::make_tiny_network(4);
  const auto data = gsfl::test::make_client_datasets(4, 8, 65);
  Rng rng(65);
  const auto init = gsfl::test::make_tiny_model(rng);

  GsflTrainer gsfl_trainer(network, data, init,
                           config_with_groups(1, gsfl::test::kTinyCut));
  SplitLearningTrainer sl(network, data, init, gsfl::test::kTinyCut,
                          TrainConfig{});
  const auto g = gsfl_trainer.run_round().latency;
  const auto s = sl.run_round().latency;
  // Identical compute and smashed-data traffic.
  EXPECT_NEAR(g.client_compute, s.client_compute, 1e-9);
  EXPECT_NEAR(g.server_compute, s.server_compute, 1e-9);
  // Same number of intra-round hand-offs.
  EXPECT_NEAR(g.relay, s.relay, 1e-9);
  // GSFL adds aggregation; SL has none.
  EXPECT_GT(g.aggregation, 0.0);
  EXPECT_DOUBLE_EQ(s.aggregation, 0.0);
}

TEST(LatencyModel, SmashedDataTrafficScalesWithLocalData) {
  const auto network = gsfl::test::make_tiny_network(2);
  Rng rng(66);
  const auto init = gsfl::test::make_tiny_model(rng);

  const auto small_data = gsfl::test::make_client_datasets(2, 8, 66);
  const auto big_data = gsfl::test::make_client_datasets(2, 32, 66);
  SplitLearningTrainer small(network, small_data, init, gsfl::test::kTinyCut,
                             TrainConfig{});
  SplitLearningTrainer big(network, big_data, init, gsfl::test::kTinyCut,
                           TrainConfig{});
  const double small_up = small.run_round().latency.uplink;
  const double big_up = big.run_round().latency.uplink;
  EXPECT_NEAR(big_up / small_up, 4.0, 0.5);
}

}  // namespace
