// Scheme-level property sweep: invariants that must hold for every
// population shape (N clients × M groups), not just the paper's 30×6.
#include <cmath>
#include <gtest/gtest.h>

#include "gsfl/core/gsfl.hpp"
#include "gsfl/schemes/fedavg.hpp"
#include "gsfl/schemes/split_learning.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::core::GsflConfig;
using gsfl::core::GsflTrainer;

struct Population {
  std::size_t clients;
  std::size_t groups;
};

class SchemeProperties : public ::testing::TestWithParam<Population> {
 protected:
  GsflConfig make_config() const {
    GsflConfig config;
    config.num_groups = GetParam().groups;
    config.cut_layer = gsfl::test::kTinyCut;
    return config;
  }
};

TEST_P(SchemeProperties, GsflRoundInvariants) {
  const auto [n, m] = GetParam();
  const auto network = gsfl::test::make_tiny_network(n);
  const auto data = gsfl::test::make_client_datasets(n, 6, 200 + n);
  Rng rng(200 + n);
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      make_config());

  for (int round = 0; round < 3; ++round) {
    const auto result = trainer.run_round();
    // Losses and latencies are finite and positive.
    ASSERT_TRUE(std::isfinite(result.train_loss));
    EXPECT_GT(result.train_loss, 0.0);
    EXPECT_GT(result.latency.total(), 0.0);
    // One chain per group; the round span is the critical chain.
    ASSERT_EQ(trainer.last_group_chains().size(), m);
    double max_chain = 0.0;
    for (const auto& chain : trainer.last_group_chains()) {
      max_chain = std::max(max_chain, chain.total());
    }
    EXPECT_NEAR(result.latency.total(),
                max_chain + result.latency.aggregation, 1e-9);
  }
}

TEST_P(SchemeProperties, GsflModelStaysFinite) {
  const auto [n, m] = GetParam();
  const auto network = gsfl::test::make_tiny_network(n);
  const auto data = gsfl::test::make_client_datasets(n, 6, 300 + n);
  Rng rng(300 + n);
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      make_config());
  for (int round = 0; round < 5; ++round) (void)trainer.run_round();
  auto model = trainer.global_model();
  for (const auto& tensor : model.state()) {
    for (const float v : tensor.data()) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST_P(SchemeProperties, LossDecreasesOverRounds) {
  const auto [n, m] = GetParam();
  const auto network = gsfl::test::make_tiny_network(n);
  const auto data = gsfl::test::make_client_datasets(n, 10, 500 + n);
  Rng rng(500 + n);
  auto config = make_config();
  config.train.learning_rate = 0.1;
  GsflTrainer trainer(network, data, gsfl::test::make_tiny_model(rng),
                      config);
  const double first = trainer.run_round().train_loss;
  double last = first;
  for (int i = 0; i < 10; ++i) last = trainer.run_round().train_loss;
  EXPECT_LT(last, first);
}

INSTANTIATE_TEST_SUITE_P(
    Populations, SchemeProperties,
    ::testing::Values(Population{2, 1}, Population{2, 2}, Population{5, 2},
                      Population{6, 3}, Population{7, 3}, Population{9, 9},
                      Population{12, 4}, Population{10, 1}),
    [](const ::testing::TestParamInfo<Population>& param_info) {
      return "n" + std::to_string(param_info.param.clients) + "_m" +
             std::to_string(param_info.param.groups);
    });

}  // namespace
