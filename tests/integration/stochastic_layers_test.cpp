// Split-vs-full equivalence in the presence of *stochastic* and *stateful*
// layers (dropout masks, batch-norm running statistics) — the cases where
// naive split implementations usually diverge from the unsplit model.
#include <gtest/gtest.h>

#include "gsfl/nn/loss.hpp"
#include "gsfl/nn/model_zoo.hpp"
#include "gsfl/nn/split.hpp"
#include "support/test_world.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::CnnConfig;
using gsfl::nn::make_gtsrb_cnn;
using gsfl::nn::SplitModel;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

CnnConfig stochastic_config() {
  CnnConfig config;
  config.image_size = 8;
  config.classes = 4;
  config.conv1_filters = 4;
  config.conv2_filters = 4;
  config.hidden = 16;
  config.batch_norm = true;
  config.dropout = 0.4f;
  return config;
}

TEST(StochasticLayers, SplitEqualsFullInTrainingMode) {
  // Cloned dropout layers carry their RNG state, so the split model must
  // draw the *same masks* as the full model it was split from.
  Rng rng(1);
  const auto full = make_gtsrb_cnn(stochastic_config(), rng);
  auto reference = full;
  SplitModel split(full, 4);  // conv, bn, relu, pool | rest

  const auto x = Tensor::uniform(Shape{4, 3, 8, 8}, rng, 0, 1);
  for (int step = 0; step < 3; ++step) {
    const auto expected = reference.forward(x, /*train=*/true);
    const auto actual = split.forward(x, /*train=*/true);
    EXPECT_EQ(actual, expected) << "diverged at training step " << step;
  }
}

TEST(StochasticLayers, SplitBackwardMatchesFullWithBatchNorm) {
  Rng rng(2);
  auto config = stochastic_config();
  config.dropout = 0.0f;  // keep backward deterministic w.r.t. masks
  const auto full = make_gtsrb_cnn(config, rng);
  auto reference = full;
  SplitModel split(full, 4);

  const auto x = Tensor::uniform(Shape{4, 3, 8, 8}, rng, 0, 1);
  const std::int32_t labels[] = {0, 1, 2, 3};

  reference.zero_grad();
  const auto logits_ref = reference.forward(x, true);
  const auto loss_ref = gsfl::nn::softmax_cross_entropy(logits_ref, labels);
  (void)reference.backward(loss_ref.grad_logits);

  split.zero_grad();
  const auto smashed = split.client_forward(x, true);
  const auto logits = split.server_forward(smashed, true);
  const auto loss = gsfl::nn::softmax_cross_entropy(logits, labels);
  const auto grad_smashed = split.server_backward(loss.grad_logits);
  split.client_backward(grad_smashed);

  std::vector<Tensor*> split_grads;
  for (auto* g : split.client().gradients()) split_grads.push_back(g);
  for (auto* g : split.server().gradients()) split_grads.push_back(g);
  const auto ref_grads = reference.gradients();
  ASSERT_EQ(split_grads.size(), ref_grads.size());
  for (std::size_t i = 0; i < split_grads.size(); ++i) {
    EXPECT_EQ(*split_grads[i], *ref_grads[i]) << "gradient slot " << i;
  }
}

TEST(StochasticLayers, RunningStatsTravelWithTheSplit) {
  Rng rng(3);
  auto config = stochastic_config();
  config.dropout = 0.0f;
  const auto full = make_gtsrb_cnn(config, rng);
  SplitModel split(full, 4);

  // Train-mode forwards perturb the client-side batch-norm running stats;
  // merged() must carry the *updated* stats, not the initial ones.
  const auto x = Tensor::uniform(Shape{8, 3, 8, 8}, rng, 0, 1);
  for (int i = 0; i < 5; ++i) (void)split.forward(x, true);

  auto merged = split.merged();
  auto original = full;
  // Evaluation outputs differ unless running stats were carried over.
  const auto eval_merged = merged.forward(x, false);
  const auto eval_original = original.forward(x, false);
  EXPECT_NE(eval_merged, eval_original);

  // And the merged model must equal the split model's own eval output.
  EXPECT_EQ(eval_merged, split.forward(x, false));
}

TEST(StochasticLayers, EvalModeIsDeterministic) {
  Rng rng(4);
  const auto full = make_gtsrb_cnn(stochastic_config(), rng);
  SplitModel split(full, 4);
  const auto x = Tensor::uniform(Shape{2, 3, 8, 8}, rng, 0, 1);
  const auto once = split.forward(x, false);
  const auto twice = split.forward(x, false);
  EXPECT_EQ(once, twice);
}

}  // namespace
