#include <gtest/gtest.h>

#include "gsfl/metrics/evaluate.hpp"
#include "gsfl/nn/dense.hpp"
#include "gsfl/nn/flatten.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::data::Dataset;
using gsfl::metrics::evaluate;
using gsfl::nn::Dense;
using gsfl::nn::Sequential;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

/// Two-class dataset where class = sign of the single pixel.
Dataset make_sign_dataset(std::size_t n) {
  Tensor images(Shape{n, 1, 1, 1});
  std::vector<std::int32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float v = (i % 2 == 0) ? 1.0f : -1.0f;
    images.at4(i, 0, 0, 0) = v;
    labels[i] = v > 0 ? 1 : 0;
  }
  return Dataset(std::move(images), std::move(labels), 2);
}

/// A hand-built perfect classifier: logit_1 = x, logit_0 = -x.
Sequential make_perfect_model() {
  Rng rng(1);
  Sequential model;
  model.emplace<gsfl::nn::Flatten>();
  auto dense = std::make_unique<Dense>(1, 2, rng);
  dense->weight() = Tensor(Shape{2, 1}, {-1.0f, 1.0f});
  dense->bias().fill(0.0f);
  model.add(std::move(dense));
  return model;
}

TEST(Evaluate, PerfectModelScoresOne) {
  auto model = make_perfect_model();
  const auto ds = make_sign_dataset(32);
  const auto result = evaluate(model, ds);
  EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
  EXPECT_GT(result.loss, 0.0);
  EXPECT_LT(result.loss, 0.5);
}

TEST(Evaluate, InvertedModelScoresZero) {
  Rng rng(2);
  Sequential model;
  model.emplace<gsfl::nn::Flatten>();
  auto dense = std::make_unique<Dense>(1, 2, rng);
  dense->weight() = Tensor(Shape{2, 1}, {1.0f, -1.0f});  // flipped
  dense->bias().fill(0.0f);
  model.add(std::move(dense));
  const auto ds = make_sign_dataset(32);
  EXPECT_DOUBLE_EQ(evaluate(model, ds).accuracy, 0.0);
}

TEST(Evaluate, BatchSizeDoesNotChangeResult) {
  auto model = make_perfect_model();
  const auto ds = make_sign_dataset(37);  // deliberately not a multiple
  const auto a = evaluate(model, ds, 8);
  const auto b = evaluate(model, ds, 64);
  const auto c = evaluate(model, ds, 1);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_NEAR(a.loss, b.loss, 1e-9);
  EXPECT_NEAR(a.loss, c.loss, 1e-9);
}

TEST(Evaluate, ValidatesArguments) {
  auto model = make_perfect_model();
  const auto ds = make_sign_dataset(4);
  EXPECT_THROW(evaluate(model, ds, 0), std::invalid_argument);
  EXPECT_THROW(evaluate(model, Dataset{}, 8), std::invalid_argument);
}

}  // namespace
