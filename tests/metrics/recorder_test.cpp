#include <gtest/gtest.h>
#include <sstream>

#include "gsfl/metrics/recorder.hpp"

namespace {

using gsfl::metrics::RoundRecord;
using gsfl::metrics::RunRecorder;

RoundRecord record(std::size_t round, double seconds, double accuracy) {
  return RoundRecord{.round = round,
                     .sim_seconds = seconds,
                     .train_loss = 1.0 / static_cast<double>(round),
                     .eval_accuracy = accuracy};
}

TEST(Recorder, RecordsInOrder) {
  RunRecorder rec("GSFL");
  rec.record(record(1, 10.0, 0.2));
  rec.record(record(2, 20.0, 0.4));
  EXPECT_EQ(rec.scheme_name(), "GSFL");
  EXPECT_EQ(rec.rounds(), 2u);
  EXPECT_DOUBLE_EQ(rec.last().sim_seconds, 20.0);
}

TEST(Recorder, RejectsNonMonotonicRoundsAndTime) {
  RunRecorder rec("SL");
  rec.record(record(5, 10.0, 0.2));
  EXPECT_THROW(rec.record(record(5, 20.0, 0.3)), std::invalid_argument);
  EXPECT_THROW(rec.record(record(4, 20.0, 0.3)), std::invalid_argument);
  EXPECT_THROW(rec.record(record(6, 5.0, 0.3)), std::invalid_argument);
}

TEST(Recorder, BestAndFinalAccuracy) {
  RunRecorder rec("FL");
  rec.record(record(1, 1.0, 0.3));
  rec.record(record(2, 2.0, 0.7));
  rec.record(record(3, 3.0, 0.5));
  EXPECT_DOUBLE_EQ(rec.best_accuracy(), 0.7);
  EXPECT_DOUBLE_EQ(rec.final_accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(RunRecorder("x").best_accuracy(), 0.0);
}

TEST(Recorder, RoundsToAccuracyWithWindowOne) {
  RunRecorder rec("CL");
  rec.record(record(1, 1.0, 0.2));
  rec.record(record(2, 2.0, 0.6));
  rec.record(record(3, 3.0, 0.9));
  EXPECT_EQ(rec.rounds_to_accuracy(0.55, 1), 2u);
  EXPECT_EQ(rec.rounds_to_accuracy(0.95, 1), std::nullopt);
}

TEST(Recorder, SmoothingIgnoresSingleSpike) {
  RunRecorder rec("CL");
  rec.record(record(1, 1.0, 0.1));
  rec.record(record(2, 2.0, 0.9));  // lucky spike
  rec.record(record(3, 3.0, 0.1));
  rec.record(record(4, 4.0, 0.8));
  rec.record(record(5, 5.0, 0.85));
  rec.record(record(6, 6.0, 0.9));
  // Window-3 mean first reaches 0.8 at round 6 ((0.8+0.85+0.9)/3 = 0.85),
  // not at the round-2 spike.
  EXPECT_EQ(rec.rounds_to_accuracy(0.8, 3), 6u);
}

TEST(Recorder, SecondsToAccuracyMatchesRound) {
  RunRecorder rec("GSFL");
  rec.record(record(1, 5.0, 0.2));
  rec.record(record(2, 11.0, 0.8));
  EXPECT_DOUBLE_EQ(*rec.seconds_to_accuracy(0.75, 1), 11.0);
  EXPECT_EQ(rec.seconds_to_accuracy(0.99, 1), std::nullopt);
}

TEST(Recorder, EvalEveryKRecordsStillQueryable) {
  RunRecorder rec("GSFL");
  rec.record(record(5, 50.0, 0.5));
  rec.record(record(10, 100.0, 0.9));
  EXPECT_EQ(rec.rounds_to_accuracy(0.85, 1), 10u);
  EXPECT_DOUBLE_EQ(*rec.seconds_to_accuracy(0.85, 1), 100.0);
}

TEST(Recorder, CsvOutput) {
  RunRecorder rec("SL");
  rec.record(record(1, 2.5, 0.25));
  std::ostringstream out;
  rec.write_csv(out);
  const auto text = out.str();
  EXPECT_NE(text.find("scheme,round,sim_seconds"), std::string::npos);
  EXPECT_NE(text.find("SL,1,2.5,1,0.25"), std::string::npos);
}

TEST(Recorder, WindowZeroRejected) {
  RunRecorder rec("SL");
  rec.record(record(1, 1.0, 0.5));
  EXPECT_THROW(rec.rounds_to_accuracy(0.5, 0), std::invalid_argument);
}

}  // namespace
