#include <cmath>
#include <gtest/gtest.h>

#include "gsfl/common/units.hpp"
#include "gsfl/net/channel.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::net::ChannelConfig;
using gsfl::net::PathLossModel;
using gsfl::net::ShannonLink;

TEST(PathLoss, ReferenceDistanceGivesReferenceLoss) {
  const PathLossModel model{.reference_loss_db = 40.0,
                            .reference_distance_m = 1.0,
                            .exponent = 3.0};
  EXPECT_DOUBLE_EQ(model.loss_db(1.0), 40.0);
}

TEST(PathLoss, TenXDistanceAdds10GammaDb) {
  const PathLossModel model{.reference_loss_db = 40.0,
                            .reference_distance_m = 1.0,
                            .exponent = 3.0};
  EXPECT_NEAR(model.loss_db(10.0), 70.0, 1e-9);
  EXPECT_NEAR(model.loss_db(100.0), 100.0, 1e-9);
}

TEST(PathLoss, MonotoneInDistance) {
  const PathLossModel model;
  double prev = model.loss_db(1.0);
  for (double d = 2.0; d < 500.0; d *= 1.7) {
    const double loss = model.loss_db(d);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(PathLoss, ClampsBelowReferenceDistance) {
  const PathLossModel model{.reference_loss_db = 40.0,
                            .reference_distance_m = 1.0,
                            .exponent = 3.0};
  EXPECT_DOUBLE_EQ(model.loss_db(0.2), 40.0);
  EXPECT_THROW(model.loss_db(0.0), std::invalid_argument);
}

ChannelConfig default_channel() { return ChannelConfig{}; }

TEST(ShannonLink, SnrDecreasesWithDistance) {
  const auto config = default_channel();
  const ShannonLink near_link(config, 20.0, 10.0);
  const ShannonLink far_link(config, 20.0, 100.0);
  EXPECT_GT(near_link.snr(1e6), far_link.snr(1e6));
}

TEST(ShannonLink, SnrIncreasesWithPower) {
  const auto config = default_channel();
  const ShannonLink weak(config, 10.0, 50.0);
  const ShannonLink strong(config, 30.0, 50.0);
  EXPECT_GT(strong.snr(1e6), weak.snr(1e6));
  // +20 dB transmit power = 100× SNR.
  EXPECT_NEAR(strong.snr(1e6) / weak.snr(1e6), 100.0, 1e-6);
}

TEST(ShannonLink, RateMonotoneInBandwidth) {
  const auto config = default_channel();
  const ShannonLink link(config, 20.0, 50.0);
  double prev = 0.0;
  for (double bw = 1e5; bw <= 1e8; bw *= 10.0) {
    const double rate = link.rate_bps(bw);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(ShannonLink, RateMatchesShannonFormula) {
  const auto config = default_channel();
  const ShannonLink link(config, 20.0, 50.0);
  const double bw = 5e6;
  const double expected = bw * std::log2(1.0 + link.snr(bw));
  EXPECT_NEAR(link.rate_bps(bw), expected, 1e-6 * expected);
}

TEST(ShannonLink, TransmitTimeInverseInRate) {
  const auto config = default_channel();
  const ShannonLink link(config, 20.0, 50.0);
  const double t = link.transmit_seconds(1e6, 1e6);
  EXPECT_GT(t, 0.0);
  // Same payload, double bandwidth → strictly faster (rate grows with B).
  EXPECT_LT(link.transmit_seconds(1e6, 2e6), t);
  // Double payload at fixed bandwidth → exactly double time.
  EXPECT_NEAR(link.transmit_seconds(2e6, 1e6), 2.0 * t, 1e-9);
  // Zero payload is free.
  EXPECT_DOUBLE_EQ(link.transmit_seconds(0.0, 1e6), 0.0);
}

// The explicit fade-power overload is the building block WirelessNetwork's
// pre-drawn per-round fades apply; unit gain must reproduce the unfaded
// rate bitwise (snr·1.0 is exact), and the gain must scale the SNR, not the
// rate.
TEST(ShannonLink, ExplicitFadePowerScalesTheSnr) {
  const auto config = default_channel();
  const ShannonLink link(config, 20.0, 50.0);
  const double bw = 1e6;
  EXPECT_EQ(link.rate_bps(bw, 1.0), link.rate_bps(bw));
  EXPECT_EQ(link.transmit_seconds(1e6, bw, 1.0),
            link.transmit_seconds(1e6, bw));
  const double expected_half = bw * std::log2(1.0 + 0.5 * link.snr(bw));
  EXPECT_NEAR(link.rate_bps(bw, 0.5), expected_half, 1e-6 * expected_half);
  EXPECT_LT(link.rate_bps(bw, 0.25), link.rate_bps(bw, 4.0));
  // Total outage: zero gain zeroes the rate, and transfers reject it.
  EXPECT_DOUBLE_EQ(link.rate_bps(bw, 0.0), 0.0);
  EXPECT_THROW((void)link.transmit_seconds(1e6, bw, 0.0), std::logic_error);
  EXPECT_THROW((void)link.rate_bps(bw, -0.5), std::invalid_argument);
}

TEST(ShannonLink, FadedRateAveragesNearDeterministic) {
  const auto config = default_channel();
  const ShannonLink link(config, 20.0, 50.0);
  Rng rng(1);
  const double bw = 1e6;
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double r = link.faded_rate_bps(bw, rng);
    EXPECT_GE(r, 0.0);
    sum += r;
  }
  // Jensen: E[log2(1+aX)] < log2(1+a E[X]); mean faded rate sits below the
  // deterministic rate but within a factor ~2 at these SNRs.
  const double deterministic = link.rate_bps(bw);
  EXPECT_LT(sum / kDraws, deterministic);
  EXPECT_GT(sum / kDraws, 0.3 * deterministic);
}

TEST(ShannonLink, HigherNoiseFigureLowersRate) {
  ChannelConfig quiet;
  quiet.noise_figure_db = 3.0;
  ChannelConfig noisy;
  noisy.noise_figure_db = 12.0;
  const ShannonLink quiet_link(quiet, 20.0, 50.0);
  const ShannonLink noisy_link(noisy, 20.0, 50.0);
  EXPECT_GT(quiet_link.rate_bps(1e6), noisy_link.rate_bps(1e6));
}

TEST(ShannonLink, InvalidArgumentsThrow) {
  const auto config = default_channel();
  const ShannonLink link(config, 20.0, 50.0);
  EXPECT_THROW(link.snr(0.0), std::invalid_argument);
  EXPECT_THROW(link.transmit_seconds(-1.0, 1e6), std::invalid_argument);
}

}  // namespace
