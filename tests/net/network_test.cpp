#include <gtest/gtest.h>

#include "gsfl/net/network.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::net::ApProfile;
using gsfl::net::DeviceProfile;
using gsfl::net::NetworkConfig;
using gsfl::net::WirelessNetwork;

WirelessNetwork make_two_client_network() {
  NetworkConfig config;
  config.total_bandwidth_hz = 10e6;
  std::vector<DeviceProfile> clients(2);
  clients[0].distance_m = 20.0;
  clients[0].compute_flops = 2e9;
  clients[1].distance_m = 120.0;
  clients[1].compute_flops = 5e8;
  return WirelessNetwork(config, std::move(clients));
}

TEST(Network, BasicAccessors) {
  const auto net = make_two_client_network();
  EXPECT_EQ(net.num_clients(), 2u);
  EXPECT_DOUBLE_EQ(net.client(0).distance_m, 20.0);
  EXPECT_THROW((void)net.client(2), std::invalid_argument);
}

TEST(Network, NearClientFasterThanFarClient) {
  const auto net = make_two_client_network();
  EXPECT_GT(net.uplink_rate_bps(0, 1.0), net.uplink_rate_bps(1, 1.0));
  EXPECT_GT(net.downlink_rate_bps(0, 1.0), net.downlink_rate_bps(1, 1.0));
  EXPECT_LT(net.uplink_seconds(0, 1e6, 1.0), net.uplink_seconds(1, 1e6, 1.0));
}

TEST(Network, DownlinkFasterThanUplink) {
  // AP transmits at 36 dBm vs the client's 20 dBm.
  const auto net = make_two_client_network();
  EXPECT_GT(net.downlink_rate_bps(0, 1.0), net.uplink_rate_bps(0, 1.0));
}

TEST(Network, RateMonotoneInBandwidthShare) {
  const auto net = make_two_client_network();
  double prev = 0.0;
  for (const double share : {0.1, 0.25, 0.5, 1.0}) {
    const double rate = net.uplink_rate_bps(0, share);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(Network, SmallerShareSlowerTransfer) {
  const auto net = make_two_client_network();
  const double full = net.uplink_seconds(0, 1e6, 1.0);
  const double sixth = net.uplink_seconds(0, 1e6, 1.0 / 6.0);
  EXPECT_GT(sixth, full);
  // Rate is sub-linear in bandwidth, so 1/6 of the band costs less than
  // 6× the time only when SNR gain compensates; it must cost at least
  // somewhat more than full-band time though.
  EXPECT_LT(sixth, 12.0 * full);
}

TEST(Network, ComputeSecondsScaleInversely) {
  const auto net = make_two_client_network();
  EXPECT_DOUBLE_EQ(net.client_compute_seconds(0, 2e9), 1.0);
  EXPECT_DOUBLE_EQ(net.client_compute_seconds(1, 5e8), 1.0);
  EXPECT_DOUBLE_EQ(net.client_compute_seconds(0, 0.0), 0.0);
  // Edge server default is 1e11 FLOP/s.
  EXPECT_DOUBLE_EQ(net.server_compute_seconds(1e11), 1.0);
}

TEST(Network, RelayIsUplinkPlusDownlink) {
  const auto net = make_two_client_network();
  const double bytes = 5e5;
  const double share = 0.5;
  EXPECT_NEAR(net.relay_seconds(0, 1, bytes, share),
              net.uplink_seconds(0, bytes, share) +
                  net.downlink_seconds(1, bytes, share),
              1e-12);
}

TEST(Network, UniformRandomFleetRespectsBounds) {
  NetworkConfig config;
  Rng rng(1);
  const auto net = WirelessNetwork::make_uniform_random(
      config, 30, 10.0, 100.0, 1e8, 1e9, rng);
  EXPECT_EQ(net.num_clients(), 30u);
  for (std::size_t c = 0; c < 30; ++c) {
    EXPECT_GE(net.client(c).distance_m, 10.0);
    EXPECT_LE(net.client(c).distance_m, 100.0);
    EXPECT_GE(net.client(c).compute_flops, 1e8);
    EXPECT_LE(net.client(c).compute_flops, 1e9);
  }
}

TEST(Network, UniformRandomIsHeterogeneous) {
  NetworkConfig config;
  Rng rng(2);
  const auto net = WirelessNetwork::make_uniform_random(
      config, 10, 10.0, 200.0, 1e8, 1e10, rng);
  double min_d = 1e9;
  double max_d = 0.0;
  for (std::size_t c = 0; c < 10; ++c) {
    min_d = std::min(min_d, net.client(c).distance_m);
    max_d = std::max(max_d, net.client(c).distance_m);
  }
  EXPECT_GT(max_d - min_d, 20.0);
}

TEST(Network, ValidationOfArguments) {
  const auto net = make_two_client_network();
  EXPECT_THROW((void)net.uplink_rate_bps(0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)net.uplink_rate_bps(0, 1.5), std::invalid_argument);
  EXPECT_THROW((void)net.uplink_seconds(5, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)net.client_compute_seconds(0, -1.0), std::invalid_argument);

  NetworkConfig config;
  EXPECT_THROW(WirelessNetwork(config, {}), std::invalid_argument);
  config.total_bandwidth_hz = 0.0;
  EXPECT_THROW(WirelessNetwork(config, {DeviceProfile{}}),
               std::invalid_argument);
}

// relay_seconds guards both of its client indices itself — a bad `to` must
// throw before any latency is computed, same as every other accessor.
TEST(Network, RelaySecondsRejectsOutOfRangeClients) {
  const auto net = make_two_client_network();
  EXPECT_THROW((void)net.relay_seconds(2, 0, 1e6, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)net.relay_seconds(0, 2, 1e6, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)net.relay_seconds(7, 9, 1e6, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)net.uplink_fade(2), std::invalid_argument);
  EXPECT_THROW((void)net.downlink_fade(2), std::invalid_argument);
}

WirelessNetwork make_fading_network() {
  NetworkConfig config;
  config.total_bandwidth_hz = 10e6;
  config.channel.rayleigh_fading = true;
  std::vector<DeviceProfile> clients(2);
  clients[0].distance_m = 20.0;
  clients[1].distance_m = 120.0;
  return WirelessNetwork(config, std::move(clients));
}

TEST(Network, FadesDefaultToUnityAndMatchTheStaticChannel) {
  const auto faded = make_fading_network();
  const auto static_net = make_two_client_network();
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_DOUBLE_EQ(faded.uplink_fade(c), 1.0);
    EXPECT_DOUBLE_EQ(faded.downlink_fade(c), 1.0);
    // fade = 1 is bitwise the unfaded arithmetic (snr·1.0 is exact).
    EXPECT_EQ(faded.uplink_rate_bps(c, 0.5),
              static_net.uplink_rate_bps(c, 0.5));
    EXPECT_EQ(faded.downlink_seconds(c, 1e6, 0.5),
              static_net.downlink_seconds(c, 1e6, 0.5));
  }
}

TEST(Network, RedrawFadesIsANoOpWhenFadingDisabled) {
  auto net = make_two_client_network();  // rayleigh_fading = false
  Rng rng(5);
  net.redraw_fades(rng);
  EXPECT_DOUBLE_EQ(net.uplink_fade(0), 1.0);
  EXPECT_DOUBLE_EQ(net.downlink_fade(1), 1.0);
}

TEST(Network, RedrawFadesIsDeterministicAndClears) {
  auto a = make_fading_network();
  auto b = make_fading_network();
  Rng rng_a(42);
  Rng rng_b(42);
  a.redraw_fades(rng_a);
  b.redraw_fades(rng_b);
  for (std::size_t c = 0; c < 2; ++c) {
    // Same seed ⇒ identical draws (fixed per-client order), so faded rates
    // are bitwise reproducible.
    EXPECT_EQ(a.uplink_fade(c), b.uplink_fade(c));
    EXPECT_EQ(a.downlink_fade(c), b.downlink_fade(c));
    EXPECT_EQ(a.uplink_rate_bps(c, 1.0), b.uplink_rate_bps(c, 1.0));
    EXPECT_GT(a.uplink_fade(c), 0.0);
    EXPECT_NE(a.uplink_fade(c), 1.0);
  }
  // Distinct draws per client and per direction.
  EXPECT_NE(a.uplink_fade(0), a.uplink_fade(1));
  EXPECT_NE(a.uplink_fade(0), a.downlink_fade(0));

  a.clear_fades();
  EXPECT_DOUBLE_EQ(a.uplink_fade(0), 1.0);
  EXPECT_EQ(a.uplink_rate_bps(0, 1.0),
            make_two_client_network().uplink_rate_bps(0, 1.0));
}

TEST(Network, FadeScalesRatesInTheRightDirection) {
  auto net = make_fading_network();
  const double base = net.uplink_rate_bps(0, 1.0);
  Rng rng(9);
  net.redraw_fades(rng);
  const double fade = net.uplink_fade(0);
  const double faded = net.uplink_rate_bps(0, 1.0);
  if (fade < 1.0) {
    EXPECT_LT(faded, base);
  } else {
    EXPECT_GT(faded, base);
  }
  // Faded transfers stay consistent with the faded rate.
  const double seconds = net.uplink_seconds(0, 1e6, 1.0);
  EXPECT_NEAR(seconds, 8.0 * 1e6 / faded, 1e-9 * seconds);
}

}  // namespace
