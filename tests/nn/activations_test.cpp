#include <cmath>
#include <gtest/gtest.h>

#include "gsfl/nn/activations.hpp"
#include "support/gradcheck.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::LeakyRelu;
using gsfl::nn::Relu;
using gsfl::nn::Sigmoid;
using gsfl::nn::Tanh;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

TEST(Relu, ClampsNegatives) {
  Relu relu;
  const Tensor x(Shape{1, 4}, {-2.0f, -0.5f, 0.0f, 3.0f});
  const auto y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);
  EXPECT_FLOAT_EQ(y.at(2), 0.0f);
  EXPECT_FLOAT_EQ(y.at(3), 3.0f);
}

TEST(Relu, BackwardMasksGradient) {
  Relu relu;
  const Tensor x(Shape{1, 3}, {-1.0f, 2.0f, -0.1f});
  (void)relu.forward(x, true);
  const auto g = relu.backward(Tensor::ones(Shape{1, 3}));
  EXPECT_FLOAT_EQ(g.at(0), 0.0f);
  EXPECT_FLOAT_EQ(g.at(1), 1.0f);
  EXPECT_FLOAT_EQ(g.at(2), 0.0f);
}

TEST(LeakyRelu, NegativeSlope) {
  LeakyRelu leaky(0.1f);
  const Tensor x(Shape{1, 2}, {-10.0f, 10.0f});
  const auto y = leaky.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), -1.0f);
  EXPECT_FLOAT_EQ(y.at(1), 10.0f);
  const auto g = leaky.backward(Tensor::ones(Shape{1, 2}));
  EXPECT_FLOAT_EQ(g.at(0), 0.1f);
  EXPECT_FLOAT_EQ(g.at(1), 1.0f);
}

TEST(Tanh, MatchesStdTanh) {
  Tanh tanh_layer;
  const Tensor x(Shape{1, 3}, {-1.0f, 0.0f, 2.0f});
  const auto y = tanh_layer.forward(x, true);
  EXPECT_NEAR(y.at(0), std::tanh(-1.0f), 1e-6);
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);
  EXPECT_NEAR(y.at(2), std::tanh(2.0f), 1e-6);
}

TEST(Sigmoid, KnownValues) {
  Sigmoid sigmoid;
  const Tensor x(Shape{1, 3}, {0.0f, 100.0f, -100.0f});
  const auto y = sigmoid.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 0.5f);
  EXPECT_NEAR(y.at(1), 1.0f, 1e-6);
  EXPECT_NEAR(y.at(2), 0.0f, 1e-6);
}

template <typename L>
class SmoothActivationGradient : public ::testing::Test {};

using SmoothActivations = ::testing::Types<Tanh, Sigmoid, LeakyRelu>;
TYPED_TEST_SUITE(SmoothActivationGradient, SmoothActivations);

TYPED_TEST(SmoothActivationGradient, NumericCheck) {
  Rng rng(42);
  TypeParam layer;
  auto input = Tensor::uniform(Shape{2, 6}, rng, -2.0f, 2.0f);
  gsfl::test::check_input_gradient(layer, input, rng);
}

TEST(Relu, NumericCheckAwayFromKink) {
  Rng rng(43);
  Relu layer;
  // Keep inputs away from 0 where ReLU is non-differentiable.
  auto input = Tensor::uniform(Shape{2, 6}, rng, 0.5f, 2.0f);
  gsfl::test::check_input_gradient(layer, input, rng);
  auto negative = Tensor::uniform(Shape{2, 6}, rng, -2.0f, -0.5f);
  gsfl::test::check_input_gradient(layer, negative, rng);
}

TEST(Activations, ShapePreservedAndFlopsLinear) {
  Relu relu;
  EXPECT_EQ(relu.output_shape(Shape{3, 4, 5, 6}), Shape({3, 4, 5, 6}));
  EXPECT_EQ(relu.flops(Shape{2, 10}).forward, 20u);
  EXPECT_TRUE(relu.parameters().empty());
}

TEST(Activations, BackwardShapeMismatchThrows) {
  Relu relu;
  (void)relu.forward(Tensor(Shape{1, 3}), true);
  EXPECT_THROW((void)relu.backward(Tensor(Shape{1, 4})),
               std::invalid_argument);
}

TEST(Activations, CloneKeepsBehaviour) {
  Rng rng(44);
  LeakyRelu original(0.2f);
  auto clone = original.clone();
  const auto x = Tensor::uniform(Shape{1, 8}, rng, -1, 1);
  EXPECT_EQ(original.forward(x, true), clone->forward(x, true));
}

}  // namespace
