#include <cmath>
#include <gtest/gtest.h>

#include "gsfl/nn/batchnorm.hpp"
#include "support/gradcheck.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::BatchNorm2d;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

TEST(BatchNorm, TrainingOutputIsNormalizedPerChannel) {
  Rng rng(1);
  BatchNorm2d bn(3);
  const auto x = Tensor::uniform(Shape{4, 3, 5, 5}, rng, -2, 7);
  const auto y = bn.forward(x, /*train=*/true);

  for (std::size_t c = 0; c < 3; ++c) {
    double sum = 0.0;
    double sq = 0.0;
    std::size_t count = 0;
    for (std::size_t n = 0; n < 4; ++n) {
      for (std::size_t h = 0; h < 5; ++h) {
        for (std::size_t w = 0; w < 5; ++w) {
          const double v = y.at4(n, c, h, w);
          sum += v;
          sq += v * v;
          ++count;
        }
      }
    }
    const double mean = sum / static_cast<double>(count);
    const double var = sq / static_cast<double>(count) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4) << "channel " << c;
    EXPECT_NEAR(var, 1.0, 1e-2) << "channel " << c;
  }
}

TEST(BatchNorm, GammaBetaAffectOutput) {
  BatchNorm2d bn(1);
  bn.parameters()[0]->fill(2.0f);  // gamma
  bn.parameters()[1]->fill(3.0f);  // beta
  Rng rng(2);
  const auto x = Tensor::uniform(Shape{2, 1, 4, 4}, rng, -1, 1);
  const auto y = bn.forward(x, true);
  EXPECT_NEAR(y.mean(), 3.0, 1e-4);  // mean(γ·x̂+β) = β
}

TEST(BatchNorm, RunningStatsConvergeToDataStats) {
  BatchNorm2d bn(1, /*momentum=*/0.5f);
  Rng rng(3);
  // Feed batches drawn from N(4, 2²); running stats should approach them.
  for (int i = 0; i < 60; ++i) {
    const auto x = Tensor::normal(Shape{8, 1, 4, 4}, rng, 4.0f, 2.0f);
    (void)bn.forward(x, true);
  }
  EXPECT_NEAR(bn.buffers()[0]->at(0), 4.0f, 0.3f);
  EXPECT_NEAR(bn.buffers()[1]->at(0), 4.0f, 0.8f);  // variance ≈ 4
}

TEST(BatchNorm, RunningVarianceIsBesselCorrected) {
  // momentum 1 ⇒ running stats = last batch's estimates, so the estimator
  // choice is directly observable: the *batch* is normalized with the
  // biased 1/m variance, but the *running* estimate feeding eval gets the
  // Bessel-corrected 1/(m−1) one (the torch convention — the biased
  // estimator is systematically low at small per-channel counts, so eval
  // would over-scale activations relative to training).
  BatchNorm2d bn(1, /*momentum=*/1.0f);
  const Tensor x(Shape{1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  const auto y = bn.forward(x, /*train=*/true);

  // m = 4, mean = 2.5, Σd² = 5 ⇒ biased var 1.25, unbiased 5/3.
  EXPECT_FLOAT_EQ(bn.buffers()[0]->at(0), 2.5f);
  EXPECT_NEAR(bn.buffers()[1]->at(0), 5.0f / 3.0f, 1e-6f);
  // …while the normalization itself used the biased variance.
  const float inv_std = 1.0f / std::sqrt(1.25f + 1e-5f);
  EXPECT_NEAR(y.at(0), (1.0f - 2.5f) * inv_std, 1e-5f);
}

TEST(BatchNorm, SingleSampleRunningVarianceFallsBackToBiased) {
  // per_channel == 1 has no unbiased estimator (division by m−1 = 0); the
  // update falls back to the biased value (0) instead of poisoning the
  // running buffer with inf/NaN.
  BatchNorm2d bn(1, /*momentum=*/1.0f);
  const Tensor x(Shape{1, 1, 1, 1}, {5.0f});
  (void)bn.forward(x, /*train=*/true);
  EXPECT_FLOAT_EQ(bn.buffers()[0]->at(0), 5.0f);
  EXPECT_FLOAT_EQ(bn.buffers()[1]->at(0), 0.0f);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(1, 1.0f);  // momentum 1: running stats = last batch stats
  Rng rng(4);
  const auto train_batch = Tensor::normal(Shape{16, 1, 4, 4}, rng, 2.0f, 3.0f);
  (void)bn.forward(train_batch, true);

  // In eval mode, a constant input equal to the running mean maps to ≈ 0.
  const float mean = bn.buffers()[0]->at(0);
  const auto constant = Tensor::full(Shape{1, 1, 2, 2}, mean);
  const auto y = bn.forward(constant, /*train=*/false);
  for (const float v : y.data()) EXPECT_NEAR(v, 0.0f, 1e-4f);
}

TEST(BatchNorm, EvalDoesNotUpdateRunningStats) {
  BatchNorm2d bn(2);
  Rng rng(5);
  const Tensor before_mean = *bn.buffers()[0];
  const auto x = Tensor::uniform(Shape{2, 2, 3, 3}, rng, -1, 1);
  (void)bn.forward(x, /*train=*/false);
  EXPECT_EQ(before_mean, *bn.buffers()[0]);
}

TEST(BatchNorm, InputGradientCheck) {
  Rng rng(6);
  BatchNorm2d bn(2);
  auto input = Tensor::uniform(Shape{3, 2, 3, 3}, rng, -1, 1);
  gsfl::test::check_input_gradient(bn, input, rng);
}

TEST(BatchNorm, ParameterGradientCheck) {
  Rng rng(7);
  BatchNorm2d bn(2);
  auto input = Tensor::uniform(Shape{3, 2, 3, 3}, rng, -1, 1);
  gsfl::test::check_parameter_gradients(bn, input, rng);
}

TEST(BatchNorm, ChannelMismatchThrows) {
  BatchNorm2d bn(3);
  EXPECT_THROW((void)bn.forward(Tensor(Shape{1, 2, 4, 4}), true),
               std::invalid_argument);
}

TEST(BatchNorm, BackwardWithoutTrainForwardThrows) {
  BatchNorm2d bn(1);
  EXPECT_THROW((void)bn.backward(Tensor(Shape{1, 1, 2, 2})),
               std::invalid_argument);
}

TEST(BatchNorm, CloneCarriesRunningStats) {
  BatchNorm2d bn(1, 1.0f);
  Rng rng(8);
  (void)bn.forward(Tensor::normal(Shape{8, 1, 3, 3}, rng, 5.0f, 1.0f), true);
  auto clone = bn.clone();
  auto* cloned_bn = dynamic_cast<BatchNorm2d*>(clone.get());
  ASSERT_NE(cloned_bn, nullptr);
  EXPECT_EQ(*cloned_bn->buffers()[0], *bn.buffers()[0]);
  EXPECT_EQ(*cloned_bn->buffers()[1], *bn.buffers()[1]);
}

TEST(BatchNorm, BuffersExposedForAggregation) {
  BatchNorm2d bn(4);
  EXPECT_EQ(bn.buffers().size(), 2u);
  EXPECT_EQ(bn.parameters().size(), 2u);
  EXPECT_EQ(bn.parameter_count(), 8u);
}

}  // namespace
