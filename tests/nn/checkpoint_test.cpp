#include <cstdio>
#include <gtest/gtest.h>
#include <sstream>

#include "gsfl/nn/checkpoint.hpp"
#include "gsfl/nn/model_zoo.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::CnnConfig;
using gsfl::nn::load_checkpoint;
using gsfl::nn::load_checkpoint_file;
using gsfl::nn::make_gtsrb_cnn;
using gsfl::nn::read_checkpoint_state;
using gsfl::nn::save_checkpoint;
using gsfl::nn::save_checkpoint_file;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

CnnConfig small_config() {
  CnnConfig config;
  config.image_size = 8;
  config.classes = 4;
  config.conv1_filters = 4;
  config.conv2_filters = 4;
  config.hidden = 8;
  config.batch_norm = true;  // exercises buffers in the checkpoint
  return config;
}

TEST(Checkpoint, RoundTripRestoresExactState) {
  Rng rng(1);
  auto original = make_gtsrb_cnn(small_config(), rng);
  auto other = make_gtsrb_cnn(small_config(), rng);  // different weights

  std::stringstream buffer;
  save_checkpoint(buffer, original);
  load_checkpoint(buffer, other);

  const auto x = Tensor::uniform(Shape{2, 3, 8, 8}, rng, 0, 1);
  EXPECT_EQ(original.forward(x, false), other.forward(x, false));
}

TEST(Checkpoint, StateIncludesBuffers) {
  Rng rng(2);
  auto model = make_gtsrb_cnn(small_config(), rng);
  // Train-mode forward perturbs batch-norm running stats.
  (void)model.forward(Tensor::uniform(Shape{4, 3, 8, 8}, rng, 0, 1), true);

  std::stringstream buffer;
  save_checkpoint(buffer, model);
  const auto state = read_checkpoint_state(buffer);
  EXPECT_EQ(state.size(), model.state().size());
  // Parameter count alone is smaller than the state (buffers add entries).
  EXPECT_GT(state.size(), model.parameters().size());
}

TEST(Checkpoint, FileRoundTrip) {
  Rng rng(3);
  auto original = make_gtsrb_cnn(small_config(), rng);
  auto other = make_gtsrb_cnn(small_config(), rng);
  const std::string path = "/tmp/gsfl_checkpoint_test.bin";
  save_checkpoint_file(path, original);
  load_checkpoint_file(path, other);
  const auto x = Tensor::uniform(Shape{1, 3, 8, 8}, rng, 0, 1);
  EXPECT_EQ(original.forward(x, false), other.forward(x, false));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsBadMagicAndTruncation) {
  std::stringstream bad("NOPEgarbage");
  EXPECT_THROW(read_checkpoint_state(bad), std::runtime_error);

  Rng rng(4);
  auto model = make_gtsrb_cnn(small_config(), rng);
  std::stringstream buffer;
  save_checkpoint(buffer, model);
  const auto full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_checkpoint_state(truncated), std::runtime_error);
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  Rng rng(5);
  auto small = make_gtsrb_cnn(small_config(), rng);
  auto big_config = small_config();
  big_config.hidden = 16;
  auto big = make_gtsrb_cnn(big_config, rng);

  std::stringstream buffer;
  save_checkpoint(buffer, small);
  EXPECT_THROW(load_checkpoint(buffer, big), std::invalid_argument);
}

TEST(Checkpoint, MissingFileThrows) {
  Rng rng(6);
  auto model = make_gtsrb_cnn(small_config(), rng);
  EXPECT_THROW(load_checkpoint_file("/nonexistent/gsfl.bin", model),
               std::runtime_error);
  EXPECT_THROW(save_checkpoint_file("/nonexistent/gsfl.bin", model),
               std::runtime_error);
}

// ---- malformed inputs ------------------------------------------------------
// Errors must say where the stream broke: which state entry, at what byte
// offset. A checkpoint that fails to load hours into an experiment is only
// debuggable if the message localizes the corruption.

std::string checkpoint_bytes() {
  Rng rng(7);
  auto model = make_gtsrb_cnn(small_config(), rng);
  std::stringstream buffer;
  save_checkpoint(buffer, model);
  return buffer.str();
}

TEST(Checkpoint, TruncatedHeaderNamesTheOffset) {
  const auto full = checkpoint_bytes();
  // Cut inside the header (magic + version + entry count = 16 bytes).
  std::stringstream cut(full.substr(0, 6));
  try {
    (void)read_checkpoint_state(cut);
    FAIL() << "truncated header must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("offset"), std::string::npos)
        << "message was: " << error.what();
  }
}

TEST(Checkpoint, OversizedTensorLengthIsRejectedWithContext) {
  auto bytes = checkpoint_bytes();
  // The first tensor's first dimension lives right after the checkpoint
  // header (16 bytes) and the tensor's own magic + rank (8 bytes). Blow it
  // up to an absurd length: the reader must reject it instead of trying to
  // allocate, and the error must say which entry broke.
  const std::size_t dim_offset = 16 + 4 + 4;
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[dim_offset + i] = static_cast<char>(0xFF);
  }
  std::stringstream corrupt(bytes);
  try {
    (void)read_checkpoint_state(corrupt);
    FAIL() << "oversized tensor length must throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("state entry 0"), std::string::npos)
        << "message was: " << what;
    EXPECT_NE(what.find("offset"), std::string::npos)
        << "message was: " << what;
  }
}

TEST(Checkpoint, TrailingGarbageAfterTheLastTensorIsRejected) {
  Rng rng(8);
  auto model = make_gtsrb_cnn(small_config(), rng);
  auto other = make_gtsrb_cnn(small_config(), rng);
  std::stringstream buffer;
  save_checkpoint(buffer, model);
  buffer << "spurious trailing bytes";
  try {
    load_checkpoint(buffer, other);
    FAIL() << "trailing garbage must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("trailing"), std::string::npos)
        << "message was: " << error.what();
  }
}

TEST(Checkpoint, MidTensorTruncationNamesEntryAndOffset) {
  const auto full = checkpoint_bytes();
  // Cut deep into the blob, past at least one whole tensor.
  std::stringstream cut(full.substr(0, full.size() - full.size() / 4));
  try {
    (void)read_checkpoint_state(cut);
    FAIL() << "mid-tensor truncation must throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("state entry"), std::string::npos)
        << "message was: " << what;
    EXPECT_NE(what.find("offset"), std::string::npos)
        << "message was: " << what;
  }
}

}  // namespace
