#include <cstdio>
#include <gtest/gtest.h>
#include <sstream>

#include "gsfl/nn/checkpoint.hpp"
#include "gsfl/nn/model_zoo.hpp"

namespace {

using gsfl::common::Rng;
using gsfl::nn::CnnConfig;
using gsfl::nn::load_checkpoint;
using gsfl::nn::load_checkpoint_file;
using gsfl::nn::make_gtsrb_cnn;
using gsfl::nn::read_checkpoint_state;
using gsfl::nn::save_checkpoint;
using gsfl::nn::save_checkpoint_file;
using gsfl::tensor::Shape;
using gsfl::tensor::Tensor;

CnnConfig small_config() {
  CnnConfig config;
  config.image_size = 8;
  config.classes = 4;
  config.conv1_filters = 4;
  config.conv2_filters = 4;
  config.hidden = 8;
  config.batch_norm = true;  // exercises buffers in the checkpoint
  return config;
}

TEST(Checkpoint, RoundTripRestoresExactState) {
  Rng rng(1);
  auto original = make_gtsrb_cnn(small_config(), rng);
  auto other = make_gtsrb_cnn(small_config(), rng);  // different weights

  std::stringstream buffer;
  save_checkpoint(buffer, original);
  load_checkpoint(buffer, other);

  const auto x = Tensor::uniform(Shape{2, 3, 8, 8}, rng, 0, 1);
  EXPECT_EQ(original.forward(x, false), other.forward(x, false));
}

TEST(Checkpoint, StateIncludesBuffers) {
  Rng rng(2);
  auto model = make_gtsrb_cnn(small_config(), rng);
  // Train-mode forward perturbs batch-norm running stats.
  (void)model.forward(Tensor::uniform(Shape{4, 3, 8, 8}, rng, 0, 1), true);

  std::stringstream buffer;
  save_checkpoint(buffer, model);
  const auto state = read_checkpoint_state(buffer);
  EXPECT_EQ(state.size(), model.state().size());
  // Parameter count alone is smaller than the state (buffers add entries).
  EXPECT_GT(state.size(), model.parameters().size());
}

TEST(Checkpoint, FileRoundTrip) {
  Rng rng(3);
  auto original = make_gtsrb_cnn(small_config(), rng);
  auto other = make_gtsrb_cnn(small_config(), rng);
  const std::string path = "/tmp/gsfl_checkpoint_test.bin";
  save_checkpoint_file(path, original);
  load_checkpoint_file(path, other);
  const auto x = Tensor::uniform(Shape{1, 3, 8, 8}, rng, 0, 1);
  EXPECT_EQ(original.forward(x, false), other.forward(x, false));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsBadMagicAndTruncation) {
  std::stringstream bad("NOPEgarbage");
  EXPECT_THROW(read_checkpoint_state(bad), std::runtime_error);

  Rng rng(4);
  auto model = make_gtsrb_cnn(small_config(), rng);
  std::stringstream buffer;
  save_checkpoint(buffer, model);
  const auto full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_checkpoint_state(truncated), std::runtime_error);
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  Rng rng(5);
  auto small = make_gtsrb_cnn(small_config(), rng);
  auto big_config = small_config();
  big_config.hidden = 16;
  auto big = make_gtsrb_cnn(big_config, rng);

  std::stringstream buffer;
  save_checkpoint(buffer, small);
  EXPECT_THROW(load_checkpoint(buffer, big), std::invalid_argument);
}

TEST(Checkpoint, MissingFileThrows) {
  Rng rng(6);
  auto model = make_gtsrb_cnn(small_config(), rng);
  EXPECT_THROW(load_checkpoint_file("/nonexistent/gsfl.bin", model),
               std::runtime_error);
  EXPECT_THROW(save_checkpoint_file("/nonexistent/gsfl.bin", model),
               std::runtime_error);
}

}  // namespace
